//! Error type for photonic device construction and operation.

use std::error::Error;
use std::fmt;

/// Errors produced by photonic device models.
///
/// Every fallible public API in this crate returns this type. The messages
/// follow the Rust API guidelines: lowercase, no trailing punctuation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PhotonicsError {
    /// A channel index was outside the WDM grid.
    ChannelOutOfRange {
        /// The offending channel index.
        channel: usize,
        /// Number of channels in the grid.
        channels: usize,
    },
    /// A device parameter was non-finite, non-positive or otherwise
    /// physically meaningless.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Value that was rejected.
        value: f64,
    },
    /// A requested transmission value cannot be realized by the device.
    TransmissionOutOfRange {
        /// The requested through-port transmission.
        requested: f64,
        /// Smallest realizable transmission (at resonance).
        min: f64,
    },
    /// A tuning request exceeded the range of the selected tuning circuit.
    TuningRangeExceeded {
        /// Requested resonance shift in nanometres.
        requested_nm: f64,
        /// Maximum shift the circuit supports in nanometres.
        max_nm: f64,
    },
    /// A WDM grid with zero channels was requested.
    EmptyGrid,
}

impl fmt::Display for PhotonicsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ChannelOutOfRange { channel, channels } => {
                write!(
                    f,
                    "channel {channel} out of range for {channels}-channel grid"
                )
            }
            Self::InvalidParameter { name, value } => {
                write!(f, "invalid value {value} for parameter `{name}`")
            }
            Self::TransmissionOutOfRange { requested, min } => write!(
                f,
                "transmission {requested} not realizable; device range is [{min}, 1)"
            ),
            Self::TuningRangeExceeded {
                requested_nm,
                max_nm,
            } => write!(
                f,
                "requested shift of {requested_nm} nm exceeds tuning range of {max_nm} nm"
            ),
            Self::EmptyGrid => write!(f, "a WDM grid must contain at least one channel"),
        }
    }
}

impl Error for PhotonicsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_trailing_period() {
        let e = PhotonicsError::EmptyGrid;
        let s = e.to_string();
        assert!(s.chars().next().unwrap().is_lowercase());
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PhotonicsError>();
    }
}

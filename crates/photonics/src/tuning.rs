//! Peripheral tuning circuits: electro-optic (EO) and thermo-optic (TO).
//!
//! Per the paper's §II.B, every microring carries two peripheral circuits —
//! a signal-modulation circuit and a bias/tuning circuit — realized either
//! electro-optically (fast, low power, small range) or thermo-optically
//! (slow, power hungry, full-FSR range). Both are attack surfaces: actuation
//! HTs subvert the EO modulation path, hotspot HTs subvert the TO heaters.

use crate::constants::SiliconProperties;
use crate::PhotonicsError;

/// The physical mechanism of a tuning circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TuningKind {
    /// Carrier-injection electro-optic tuning: nanosecond response,
    /// ~4 µW/nm, but a tuning range limited to a fraction of a nanometre.
    ElectroOptic,
    /// Thermo-optic tuning via an integrated heater: microsecond response,
    /// ~27 mW per free spectral range, full-FSR range.
    ThermoOptic,
}

/// Latency and power consumed by a tuning operation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TuningBudget {
    /// Settling latency in nanoseconds.
    pub latency_ns: f64,
    /// Static power draw in milliwatts while the shift is held.
    pub power_mw: f64,
}

/// A peripheral circuit that biases a microring's resonance.
///
/// # Example
///
/// ```
/// use safelight_photonics::{TuningCircuit, TuningKind};
///
/// # fn main() -> Result<(), safelight_photonics::PhotonicsError> {
/// let eo = TuningCircuit::new(TuningKind::ElectroOptic)?;
/// let budget = eo.budget_for_shift(0.2)?; // 0.2 nm bias
/// assert!(budget.latency_ns < 10.0);      // EO settles in nanoseconds
///
/// let to = TuningCircuit::new(TuningKind::ThermoOptic)?;
/// assert!(to.budget_for_shift(4.0)?.power_mw > 1.0); // heaters are hungry
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TuningCircuit {
    kind: TuningKind,
    max_shift_nm: f64,
    latency_ns: f64,
    /// Power per nanometre of shift, in milliwatts.
    power_mw_per_nm: f64,
}

/// Free spectral range assumed when quoting the paper's "27 mW/FSR" TO
/// power figure, in nanometres (default 10 µm-radius ring near 1550 nm).
const REFERENCE_FSR_NM: f64 = 9.1;

impl TuningCircuit {
    /// Creates a tuning circuit of the given kind with the paper's cited
    /// latency/power/range characteristics (§II.B).
    ///
    /// # Errors
    ///
    /// Currently infallible for the built-in kinds; returns an error only if
    /// internal parameters are invalid (kept for forward compatibility).
    pub fn new(kind: TuningKind) -> Result<Self, PhotonicsError> {
        let circuit = match kind {
            TuningKind::ElectroOptic => Self {
                kind,
                // Carrier injection covers only a fraction of a channel.
                max_shift_nm: 0.4,
                latency_ns: 2.0,
                // ≈4 µW/nm.
                power_mw_per_nm: 4.0e-3,
            },
            TuningKind::ThermoOptic => Self {
                kind,
                max_shift_nm: REFERENCE_FSR_NM,
                latency_ns: 4_000.0,
                // ≈27 mW per FSR.
                power_mw_per_nm: 27.0 / REFERENCE_FSR_NM,
            },
        };
        Ok(circuit)
    }

    /// The mechanism of this circuit.
    #[must_use]
    pub fn kind(&self) -> TuningKind {
        self.kind
    }

    /// Largest resonance shift this circuit can apply, in nanometres.
    #[must_use]
    pub fn max_shift_nm(&self) -> f64 {
        self.max_shift_nm
    }

    /// Latency and power needed to hold a resonance shift of `shift_nm`.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::TuningRangeExceeded`] when the magnitude of
    /// `shift_nm` exceeds [`Self::max_shift_nm`], mirroring the EO circuit's
    /// limited range that the paper notes "cannot be used for large tuning
    /// ranges".
    pub fn budget_for_shift(&self, shift_nm: f64) -> Result<TuningBudget, PhotonicsError> {
        if !shift_nm.is_finite() {
            return Err(PhotonicsError::InvalidParameter {
                name: "shift_nm",
                value: shift_nm,
            });
        }
        if shift_nm.abs() > self.max_shift_nm {
            return Err(PhotonicsError::TuningRangeExceeded {
                requested_nm: shift_nm,
                max_nm: self.max_shift_nm,
            });
        }
        Ok(TuningBudget {
            latency_ns: self.latency_ns,
            power_mw: self.power_mw_per_nm * shift_nm.abs(),
        })
    }
}

/// Thermo-optic resonance shift of eq. (2):
/// `Δλ_MR = Γ_Si · (δn_Si/δT) · λ_MR / n_g · ΔT`.
///
/// Free function form used by attack models that compute shifts for many
/// rings from a temperature field without materializing device objects.
///
/// # Example
///
/// ```
/// use safelight_photonics::{thermal_resonance_shift_nm, SiliconProperties};
///
/// let si = SiliconProperties::default();
/// let shift = thermal_resonance_shift_nm(&si, 1550.0, 15.0);
/// assert!((shift - 0.823).abs() < 0.01); // ≈ one 0.8 nm channel spacing
/// ```
#[must_use]
pub fn thermal_resonance_shift_nm(
    silicon: &SiliconProperties,
    wavelength_nm: f64,
    delta_kelvin: f64,
) -> f64 {
    silicon.resonance_shift_per_kelvin_nm(wavelength_nm) * delta_kelvin
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eo_is_fast_and_frugal() {
        let eo = TuningCircuit::new(TuningKind::ElectroOptic).unwrap();
        let b = eo.budget_for_shift(0.3).unwrap();
        assert!(b.latency_ns < 10.0);
        assert!(b.power_mw < 0.01);
    }

    #[test]
    fn to_is_slow_and_hungry_but_wide() {
        let to = TuningCircuit::new(TuningKind::ThermoOptic).unwrap();
        assert!(to.max_shift_nm() > 5.0);
        let b = to.budget_for_shift(REFERENCE_FSR_NM).unwrap();
        assert!(b.latency_ns > 1_000.0);
        assert!((b.power_mw - 27.0).abs() < 1e-9);
    }

    #[test]
    fn eo_range_is_enforced() {
        let eo = TuningCircuit::new(TuningKind::ElectroOptic).unwrap();
        assert!(matches!(
            eo.budget_for_shift(2.0),
            Err(PhotonicsError::TuningRangeExceeded { .. })
        ));
    }

    #[test]
    fn shift_is_symmetric_in_sign() {
        let to = TuningCircuit::new(TuningKind::ThermoOptic).unwrap();
        let up = to.budget_for_shift(1.5).unwrap();
        let down = to.budget_for_shift(-1.5).unwrap();
        assert_eq!(up, down);
    }

    #[test]
    fn eq2_shift_matches_slope_times_dt() {
        let si = SiliconProperties::default();
        let slope = si.resonance_shift_per_kelvin_nm(1550.0);
        let got = thermal_resonance_shift_nm(&si, 1550.0, 20.0);
        assert!((got - 20.0 * slope).abs() < 1e-12);
    }
}

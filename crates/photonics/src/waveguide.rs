//! Waveguide propagation and insertion-loss bookkeeping.

use crate::PhotonicsError;

/// A silicon waveguide segment with propagation and coupling losses.
///
/// Loss does not corrupt ONN results by itself (it is calibrated out), but
/// it bounds how many microring banks can be chained before the signal
/// drops below the detector noise floor, so the accelerator model accounts
/// for it when sizing vector-dot-product units.
///
/// # Example
///
/// ```
/// use safelight_photonics::Waveguide;
///
/// # fn main() -> Result<(), safelight_photonics::PhotonicsError> {
/// let wg = Waveguide::new(2.0, 1.0)?; // 2 mm long, 1 dB/cm
/// let out = wg.transmit(1.0);         // 1 mW in
/// assert!(out < 1.0 && out > 0.9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Waveguide {
    length_mm: f64,
    loss_db_per_cm: f64,
    coupler_loss_db: f64,
}

impl Waveguide {
    /// Creates a waveguide of `length_mm` with `loss_db_per_cm` propagation
    /// loss and no coupler loss.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::InvalidParameter`] for negative or
    /// non-finite lengths/losses.
    pub fn new(length_mm: f64, loss_db_per_cm: f64) -> Result<Self, PhotonicsError> {
        if !length_mm.is_finite() || length_mm < 0.0 {
            return Err(PhotonicsError::InvalidParameter {
                name: "length_mm",
                value: length_mm,
            });
        }
        if !loss_db_per_cm.is_finite() || loss_db_per_cm < 0.0 {
            return Err(PhotonicsError::InvalidParameter {
                name: "loss_db_per_cm",
                value: loss_db_per_cm,
            });
        }
        Ok(Self {
            length_mm,
            loss_db_per_cm,
            coupler_loss_db: 0.0,
        })
    }

    /// Adds a fixed coupler/splitter insertion loss in dB.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::InvalidParameter`] for negative or
    /// non-finite losses.
    pub fn with_coupler_loss_db(mut self, loss_db: f64) -> Result<Self, PhotonicsError> {
        if !loss_db.is_finite() || loss_db < 0.0 {
            return Err(PhotonicsError::InvalidParameter {
                name: "coupler_loss_db",
                value: loss_db,
            });
        }
        self.coupler_loss_db = loss_db;
        Ok(self)
    }

    /// Total insertion loss of the segment in dB.
    #[must_use]
    pub fn total_loss_db(&self) -> f64 {
        self.loss_db_per_cm * self.length_mm / 10.0 + self.coupler_loss_db
    }

    /// Linear power transmission factor of the segment (0..=1].
    #[must_use]
    pub fn transmission(&self) -> f64 {
        10f64.powf(-self.total_loss_db() / 10.0)
    }

    /// Propagates `power_mw` through the segment.
    #[must_use]
    pub fn transmit(&self, power_mw: f64) -> f64 {
        power_mw * self.transmission()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_length_is_lossless() {
        let wg = Waveguide::new(0.0, 2.0).unwrap();
        assert!((wg.transmit(3.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn three_db_halves_power() {
        let wg = Waveguide::new(30.0, 1.0).unwrap(); // 3 dB
        assert!((wg.transmit(1.0) - 0.501).abs() < 0.01);
    }

    #[test]
    fn losses_compose_in_db() {
        let wg = Waveguide::new(10.0, 1.0)
            .unwrap()
            .with_coupler_loss_db(2.0)
            .unwrap();
        assert!((wg.total_loss_db() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn negative_parameters_are_rejected() {
        assert!(Waveguide::new(-1.0, 1.0).is_err());
        assert!(Waveguide::new(1.0, -1.0).is_err());
        assert!(Waveguide::new(1.0, 1.0)
            .unwrap()
            .with_coupler_loss_db(-0.1)
            .is_err());
    }
}

//! Photodetectors: optical summation and optical-to-electrical conversion.
//!
//! In a non-coherent ONN the per-wavelength products of a vector dot product
//! are summed "for free" by a photodetector (PD), whose photocurrent is the
//! responsivity-weighted total optical power across all incident channels
//! (Fig. 2(g) of the paper). Signed arithmetic uses a *balanced* pair of PDs
//! subtracting a negative rail from a positive rail.

use crate::PhotonicsError;

/// A photodetector converting incident optical power to photocurrent.
///
/// # Example
///
/// ```
/// use safelight_photonics::Photodetector;
///
/// # fn main() -> Result<(), safelight_photonics::PhotonicsError> {
/// let pd = Photodetector::new(1.0)?; // 1 A/W responsivity
/// // Three WDM channels carrying the products 0.2, 0.5 and 0.1 (mW):
/// let current = pd.detect([0.2, 0.5, 0.1]);
/// assert!((current - 0.8).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Photodetector {
    responsivity_a_per_w: f64,
    dark_current_ma: f64,
}

impl Photodetector {
    /// Creates a detector with the given responsivity in amperes per watt.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::InvalidParameter`] when the responsivity is
    /// not a positive finite number.
    pub fn new(responsivity_a_per_w: f64) -> Result<Self, PhotonicsError> {
        if !responsivity_a_per_w.is_finite() || responsivity_a_per_w <= 0.0 {
            return Err(PhotonicsError::InvalidParameter {
                name: "responsivity_a_per_w",
                value: responsivity_a_per_w,
            });
        }
        Ok(Self {
            responsivity_a_per_w,
            dark_current_ma: 0.0,
        })
    }

    /// Sets a constant dark current (mA) added to every detection.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::InvalidParameter`] for negative or
    /// non-finite values.
    pub fn with_dark_current(mut self, dark_current_ma: f64) -> Result<Self, PhotonicsError> {
        if !dark_current_ma.is_finite() || dark_current_ma < 0.0 {
            return Err(PhotonicsError::InvalidParameter {
                name: "dark_current_ma",
                value: dark_current_ma,
            });
        }
        self.dark_current_ma = dark_current_ma;
        Ok(self)
    }

    /// Responsivity in A/W.
    #[must_use]
    pub fn responsivity(&self) -> f64 {
        self.responsivity_a_per_w
    }

    /// Photocurrent (mA) for the given per-channel optical powers (mW).
    ///
    /// Summation across channels is the ONN's free accumulation: the detector
    /// cannot distinguish wavelengths, so corrupted channels are silently
    /// folded into the partial sum — which is exactly why MR-level attacks
    /// propagate into dot products.
    #[must_use]
    pub fn detect<I>(&self, channel_powers_mw: I) -> f64
    where
        I: IntoIterator<Item = f64>,
    {
        let total: f64 = channel_powers_mw.into_iter().sum();
        self.responsivity_a_per_w * total + self.dark_current_ma
    }
}

/// A balanced photodetector pair computing `positive − negative`.
///
/// Differential (two-rail) weight encoding maps a signed weight `w` to a
/// positive-rail magnitude (for `w ≥ 0`) or a negative-rail magnitude (for
/// `w < 0`); the balanced pair restores the sign in the photocurrent domain.
///
/// # Example
///
/// ```
/// use safelight_photonics::BalancedPhotodetector;
///
/// # fn main() -> Result<(), safelight_photonics::PhotonicsError> {
/// let pd = BalancedPhotodetector::new(1.0)?;
/// let i = pd.detect([0.6, 0.2], [0.1, 0.3]); // (0.8) − (0.4)
/// assert!((i - 0.4).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BalancedPhotodetector {
    positive: Photodetector,
    negative: Photodetector,
}

impl BalancedPhotodetector {
    /// Creates a balanced pair with matched responsivity (A/W).
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::InvalidParameter`] when the responsivity is
    /// not a positive finite number.
    pub fn new(responsivity_a_per_w: f64) -> Result<Self, PhotonicsError> {
        Ok(Self {
            positive: Photodetector::new(responsivity_a_per_w)?,
            negative: Photodetector::new(responsivity_a_per_w)?,
        })
    }

    /// Differential photocurrent (mA): positive-rail minus negative-rail.
    #[must_use]
    pub fn detect<P, N>(&self, positive_mw: P, negative_mw: N) -> f64
    where
        P: IntoIterator<Item = f64>,
        N: IntoIterator<Item = f64>,
    {
        self.positive.detect(positive_mw) - self.negative.detect(negative_mw)
    }

    /// Per-rail monitor readout (mA): the `(positive, negative)` rail
    /// photocurrents *before* subtraction.
    ///
    /// The balanced output only carries the difference, so a trojan that
    /// darkens both rails equally is invisible there; a runtime monitor
    /// tapping each rail's photocurrent individually (this readout) sees
    /// the common-mode drop too. This is the device-level primitive behind
    /// the detection subsystem's drop-port telemetry.
    #[must_use]
    pub fn monitor<P, N>(&self, positive_mw: P, negative_mw: N) -> (f64, f64)
    where
        P: IntoIterator<Item = f64>,
        N: IntoIterator<Item = f64>,
    {
        (
            self.positive.detect(positive_mw),
            self.negative.detect(negative_mw),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_is_linear_in_power() {
        let pd = Photodetector::new(0.8).unwrap();
        let a = pd.detect([1.0, 2.0]);
        let b = pd.detect([2.0, 4.0]);
        assert!((b - 2.0 * a).abs() < 1e-12);
    }

    #[test]
    fn empty_channel_set_gives_dark_current_only() {
        let pd = Photodetector::new(1.0)
            .unwrap()
            .with_dark_current(0.05)
            .unwrap();
        assert!((pd.detect(std::iter::empty()) - 0.05).abs() < 1e-15);
    }

    #[test]
    fn invalid_responsivity_is_rejected() {
        assert!(Photodetector::new(0.0).is_err());
        assert!(Photodetector::new(f64::NAN).is_err());
        assert!(Photodetector::new(-1.0).is_err());
    }

    #[test]
    fn balanced_detection_subtracts_rails() {
        let pd = BalancedPhotodetector::new(1.0).unwrap();
        let i = pd.detect([1.0], [0.25]);
        assert!((i - 0.75).abs() < 1e-12);
    }

    #[test]
    fn monitor_reads_rails_individually() {
        let pd = BalancedPhotodetector::new(1.0).unwrap();
        let (pos, neg) = pd.monitor([0.6, 0.2], [0.1, 0.3]);
        assert!((pos - 0.8).abs() < 1e-12);
        assert!((neg - 0.4).abs() < 1e-12);
        // A common-mode drop is invisible to the balanced output but plain
        // in the monitor readout.
        let clean = pd.detect([0.5], [0.5]);
        let tapped = pd.detect([0.25], [0.25]);
        assert!((clean - tapped).abs() < 1e-12);
        let (p1, _) = pd.monitor([0.5], [0.5]);
        let (p2, _) = pd.monitor([0.25], [0.25]);
        assert!(p1 > p2);
    }

    #[test]
    fn balanced_detection_can_go_negative() {
        let pd = BalancedPhotodetector::new(1.0).unwrap();
        assert!(pd.detect([0.1], [0.9]) < 0.0);
    }
}

//! Multi-wavelength laser source feeding the accelerator's waveguides.

use crate::wavelength::WdmGrid;
use crate::PhotonicsError;

/// A comb laser emitting equal power on every channel of a [`WdmGrid`].
///
/// # Example
///
/// ```
/// use safelight_photonics::{Laser, WdmGrid};
///
/// # fn main() -> Result<(), safelight_photonics::PhotonicsError> {
/// let grid = WdmGrid::c_band(4)?;
/// let laser = Laser::new(grid, 1.0)?; // 1 mW per channel
/// assert_eq!(laser.channel_powers_mw().len(), 4);
/// assert!((laser.total_power_mw() - 4.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Laser {
    grid: WdmGrid,
    power_per_channel_mw: f64,
    wall_plug_efficiency: f64,
}

impl Laser {
    /// Creates a comb laser over `grid` with `power_per_channel_mw` per line.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::InvalidParameter`] when the power is not a
    /// positive finite number.
    pub fn new(grid: WdmGrid, power_per_channel_mw: f64) -> Result<Self, PhotonicsError> {
        if !power_per_channel_mw.is_finite() || power_per_channel_mw <= 0.0 {
            return Err(PhotonicsError::InvalidParameter {
                name: "power_per_channel_mw",
                value: power_per_channel_mw,
            });
        }
        Ok(Self {
            grid,
            power_per_channel_mw,
            wall_plug_efficiency: 0.2,
        })
    }

    /// Overrides the wall-plug efficiency used for electrical power figures.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::InvalidParameter`] unless `0 < η ≤ 1`.
    pub fn with_wall_plug_efficiency(mut self, eta: f64) -> Result<Self, PhotonicsError> {
        if !eta.is_finite() || eta <= 0.0 || eta > 1.0 {
            return Err(PhotonicsError::InvalidParameter {
                name: "wall_plug_efficiency",
                value: eta,
            });
        }
        self.wall_plug_efficiency = eta;
        Ok(self)
    }

    /// The WDM grid this laser emits on.
    #[must_use]
    pub fn grid(&self) -> &WdmGrid {
        &self.grid
    }

    /// Optical power per channel in milliwatts.
    #[must_use]
    pub fn power_per_channel_mw(&self) -> f64 {
        self.power_per_channel_mw
    }

    /// Per-channel launch powers, in channel order.
    #[must_use]
    pub fn channel_powers_mw(&self) -> Vec<f64> {
        vec![self.power_per_channel_mw; self.grid.channels()]
    }

    /// Total optical output power in milliwatts.
    #[must_use]
    pub fn total_power_mw(&self) -> f64 {
        self.power_per_channel_mw * self.grid.channels() as f64
    }

    /// Electrical power drawn, given the wall-plug efficiency, in milliwatts.
    #[must_use]
    pub fn electrical_power_mw(&self) -> f64 {
        self.total_power_mw() / self.wall_plug_efficiency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laser_power_scales_with_channel_count() {
        let l4 = Laser::new(WdmGrid::c_band(4).unwrap(), 0.5).unwrap();
        let l8 = Laser::new(WdmGrid::c_band(8).unwrap(), 0.5).unwrap();
        assert!((l8.total_power_mw() - 2.0 * l4.total_power_mw()).abs() < 1e-12);
    }

    #[test]
    fn electrical_power_exceeds_optical_power() {
        let l = Laser::new(WdmGrid::c_band(4).unwrap(), 1.0).unwrap();
        assert!(l.electrical_power_mw() > l.total_power_mw());
    }

    #[test]
    fn invalid_efficiency_is_rejected() {
        let l = Laser::new(WdmGrid::c_band(1).unwrap(), 1.0).unwrap();
        assert!(l.clone().with_wall_plug_efficiency(0.0).is_err());
        assert!(l.with_wall_plug_efficiency(1.5).is_err());
    }
}

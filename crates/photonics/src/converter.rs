//! Data converters between the digital control plane and the analog
//! photonic datapath (Fig. 2(e)/(f)/(h) of the paper).
//!
//! DAC arrays turn buffered digital parameters into analog tuning signals
//! for the microrings; ADC arrays digitize the photodetector outputs. Both
//! quantize, and both are themselves known HT attack surfaces (§II.C cites
//! DAC and ADC trojan literature); this module provides the clean devices
//! that attack models can wrap.

use crate::PhotonicsError;

fn check_bits(bits: u8) -> Result<(), PhotonicsError> {
    if bits == 0 || bits > 24 {
        return Err(PhotonicsError::InvalidParameter {
            name: "bits",
            value: f64::from(bits),
        });
    }
    Ok(())
}

fn check_range(lo: f64, hi: f64) -> Result<(), PhotonicsError> {
    if !lo.is_finite() || !hi.is_finite() || hi <= lo {
        return Err(PhotonicsError::InvalidParameter {
            name: "range",
            value: hi - lo,
        });
    }
    Ok(())
}

/// A uniform digital-to-analog converter.
///
/// # Example
///
/// ```
/// use safelight_photonics::Dac;
///
/// # fn main() -> Result<(), safelight_photonics::PhotonicsError> {
/// let dac = Dac::new(8, 0.0, 1.0)?;
/// let y = dac.convert(0.5);
/// assert!((y - 0.5).abs() < dac.lsb()); // within one LSB
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Dac {
    bits: u8,
    lo: f64,
    hi: f64,
}

impl Dac {
    /// Creates a `bits`-bit DAC spanning `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::InvalidParameter`] when `bits` is zero or
    /// above 24, or when the range is empty or non-finite.
    pub fn new(bits: u8, lo: f64, hi: f64) -> Result<Self, PhotonicsError> {
        check_bits(bits)?;
        check_range(lo, hi)?;
        Ok(Self { bits, lo, hi })
    }

    /// Resolution in bits.
    #[must_use]
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// One least-significant-bit step in output units.
    #[must_use]
    pub fn lsb(&self) -> f64 {
        (self.hi - self.lo) / (f64::from(self.levels() - 1))
    }

    /// Number of quantization levels, `2^bits`.
    #[must_use]
    pub fn levels(&self) -> u32 {
        1u32 << self.bits
    }

    /// Quantizes `value` to the nearest representable level, clamping to the
    /// converter's range.
    #[must_use]
    pub fn convert(&self, value: f64) -> f64 {
        let clamped = value.clamp(self.lo, self.hi);
        let code = ((clamped - self.lo) / self.lsb()).round();
        self.lo + code * self.lsb()
    }
}

/// A uniform analog-to-digital converter.
///
/// Identical uniform-quantizer maths to [`Dac`], but `convert` additionally
/// exposes the digital code, which attack models on the readout path use.
///
/// # Example
///
/// ```
/// use safelight_photonics::Adc;
///
/// # fn main() -> Result<(), safelight_photonics::PhotonicsError> {
/// let adc = Adc::new(8, -1.0, 1.0)?;
/// let (code, value) = adc.convert(0.25);
/// assert!(code < adc.levels());
/// assert!((value - 0.25).abs() < adc.lsb());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Adc {
    bits: u8,
    lo: f64,
    hi: f64,
}

impl Adc {
    /// Creates a `bits`-bit ADC spanning `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::InvalidParameter`] when `bits` is zero or
    /// above 24, or when the range is empty or non-finite.
    pub fn new(bits: u8, lo: f64, hi: f64) -> Result<Self, PhotonicsError> {
        check_bits(bits)?;
        check_range(lo, hi)?;
        Ok(Self { bits, lo, hi })
    }

    /// Resolution in bits.
    #[must_use]
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// One least-significant-bit step in input units.
    #[must_use]
    pub fn lsb(&self) -> f64 {
        (self.hi - self.lo) / (f64::from(self.levels() - 1))
    }

    /// Number of quantization levels, `2^bits`.
    #[must_use]
    pub fn levels(&self) -> u32 {
        1u32 << self.bits
    }

    /// Digitizes `value`, returning `(code, reconstructed_value)`.
    ///
    /// Values outside the range saturate at the end codes, as real converter
    /// front-ends do.
    #[must_use]
    pub fn convert(&self, value: f64) -> (u32, f64) {
        let clamped = value.clamp(self.lo, self.hi);
        let code = ((clamped - self.lo) / self.lsb()).round() as u32;
        let code = code.min(self.levels() - 1);
        (code, self.lo + f64::from(code) * self.lsb())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dac_quantization_error_is_within_half_lsb() {
        let dac = Dac::new(6, 0.0, 1.0).unwrap();
        for i in 0..=100 {
            let x = i as f64 / 100.0;
            assert!((dac.convert(x) - x).abs() <= dac.lsb() / 2.0 + 1e-12);
        }
    }

    #[test]
    fn dac_clamps_out_of_range() {
        let dac = Dac::new(8, 0.0, 1.0).unwrap();
        assert_eq!(dac.convert(-5.0), 0.0);
        assert_eq!(dac.convert(5.0), 1.0);
    }

    #[test]
    fn adc_codes_are_monotone() {
        let adc = Adc::new(8, -1.0, 1.0).unwrap();
        let mut last = 0u32;
        for i in 0..=200 {
            let x = -1.0 + 2.0 * (i as f64) / 200.0;
            let (code, _) = adc.convert(x);
            assert!(code >= last, "ADC code regressed at {x}");
            last = code;
        }
    }

    #[test]
    fn adc_end_codes_saturate() {
        let adc = Adc::new(4, 0.0, 1.0).unwrap();
        assert_eq!(adc.convert(9.0).0, adc.levels() - 1);
        assert_eq!(adc.convert(-9.0).0, 0);
    }

    #[test]
    fn zero_and_oversized_bits_are_rejected() {
        assert!(Dac::new(0, 0.0, 1.0).is_err());
        assert!(Dac::new(25, 0.0, 1.0).is_err());
        assert!(Adc::new(0, 0.0, 1.0).is_err());
    }

    #[test]
    fn empty_range_is_rejected() {
        assert!(Dac::new(8, 1.0, 1.0).is_err());
        assert!(Adc::new(8, 2.0, 1.0).is_err());
    }

    #[test]
    fn high_resolution_round_trip_is_tight() {
        let adc = Adc::new(16, 0.0, 1.0).unwrap();
        let (_, v) = adc.convert(0.123_456);
        assert!((v - 0.123_456).abs() < 1e-4);
    }
}

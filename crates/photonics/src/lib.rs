//! Silicon-photonic device models for non-coherent optical neural network
//! (ONN) accelerators.
//!
//! This crate is the device-level substrate of the SafeLight reproduction
//! (DATE 2025). It models every photonic and mixed-signal component that a
//! CrossLight-class non-coherent CNN accelerator is built from:
//!
//! * [`Microring`] — add-drop microring resonators (MRs) with Lorentzian
//!   through/drop transfer functions, the resonance condition of the paper's
//!   eq. (1), and the thermo-optic resonance shift of eq. (2);
//! * [`WdmGrid`] — the wavelength-division-multiplexing channel comb a
//!   waveguide carries;
//! * [`TuningCircuit`] — electro-optic (EO) and thermo-optic (TO) peripheral
//!   tuning circuits with the latency/power/range trade-offs cited in the
//!   paper (§II.B);
//! * [`Photodetector`] / [`BalancedPhotodetector`] — optical summation;
//! * [`Dac`] / [`Adc`] — quantizing converters between the electronic and
//!   analog tuning domains;
//! * [`Laser`] and [`Waveguide`] — optical power sources and loss budgets.
//!
//! # Example
//!
//! Imprint a weight on a microring and read the multiplied optical value
//! back, exactly as one column of an ONN vector-dot-product unit would:
//!
//! ```
//! use safelight_photonics::{Microring, WdmGrid};
//!
//! # fn main() -> Result<(), safelight_photonics::PhotonicsError> {
//! let grid = WdmGrid::c_band(8)?;
//! let mut ring = Microring::for_channel(&grid, 3)?;
//!
//! // Tune the ring so its through-port transmission encodes the weight 0.7.
//! ring.imprint_transmission(0.7)?;
//! let carrier = grid.channel_wavelength(3)?;
//! let product = 0.9 * ring.through_transmission(carrier); // activation 0.9
//! assert!((product - 0.9 * 0.7).abs() < 1e-3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod constants;
mod converter;
mod error;
mod laser;
mod microring;
mod photodetector;
mod tuning;
mod waveguide;
mod wavelength;

pub use constants::{
    SiliconProperties, DEFAULT_GROUP_INDEX, DEFAULT_SI_CONFINEMENT, DEFAULT_THERMO_OPTIC_COEFF,
    SPEED_OF_LIGHT_M_PER_S,
};
pub use converter::{Adc, Dac};
pub use error::PhotonicsError;
pub use laser::Laser;
pub use microring::{Microring, MicroringGeometry, MicroringState};
pub use photodetector::{BalancedPhotodetector, Photodetector};
pub use tuning::{thermal_resonance_shift_nm, TuningBudget, TuningCircuit, TuningKind};
pub use waveguide::Waveguide;
pub use wavelength::{Nanometers, WdmGrid};

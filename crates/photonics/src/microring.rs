//! Add-drop microring resonator (MR) model.
//!
//! The microring is the workhorse of non-coherent ONN accelerators: each MR
//! in a bank is tuned to one WDM carrier and imprints one operand (an input
//! activation or a weight) onto that carrier's amplitude. This module models
//!
//! * the resonance condition of the paper's eq. (1),
//!   `λ_MR = 2πR·n_eff / m`;
//! * a Lorentzian through/drop transfer function parameterized by quality
//!   factor and extinction ratio;
//! * operand imprinting by resonance detuning (the signal-modulation circuit
//!   of §II.B);
//! * thermo-optic resonance shifts per eq. (2) — the physical channel
//!   through which hotspot attacks corrupt computations;
//! * the "parked off-resonance" failure state that an actuation-attack HT
//!   forces (§III.B.1).

use crate::constants::SiliconProperties;
use crate::wavelength::{Nanometers, WdmGrid};
use crate::PhotonicsError;

/// Geometric and optical parameters of a microring resonator.
///
/// # Example
///
/// ```
/// use safelight_photonics::MicroringGeometry;
///
/// let g = MicroringGeometry::default();
/// // Eq. (1): λ_MR = 2πR·n_eff/m, near the C band for the default geometry.
/// let lambda = g.resonance_for_order(g.order_near(1550.0));
/// assert!((lambda.value() - 1550.0).abs() < 10.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MicroringGeometry {
    /// Ring radius in micrometres.
    pub radius_um: f64,
    /// Loaded quality factor; sets the Lorentzian linewidth `FWHM = λ/Q`.
    pub q_factor: f64,
    /// Through-port transmission at exact resonance (extinction floor),
    /// e.g. `0.01` for a 20 dB extinction ratio.
    pub extinction_floor: f64,
    /// Maximum detuning (in units of the channel spacing) that the signal
    /// modulation circuit may apply when imprinting an operand. Bounded well
    /// below one spacing so that an imprinting ring does not capture its
    /// neighbour's carrier.
    pub max_imprint_detuning_rel: f64,
    /// Silicon platform properties (thermo-optics, indices).
    pub silicon: SiliconProperties,
}

impl Default for MicroringGeometry {
    fn default() -> Self {
        Self {
            radius_um: 10.0,
            q_factor: 7750.0,
            extinction_floor: 0.01,
            max_imprint_detuning_rel: 0.35,
            silicon: SiliconProperties::default(),
        }
    }
}

impl MicroringGeometry {
    /// Resonance wavelength for azimuthal order `m` per the paper's eq. (1).
    #[must_use]
    pub fn resonance_for_order(&self, m: u32) -> Nanometers {
        let circumference_nm = 2.0 * std::f64::consts::PI * self.radius_um * 1e3;
        Nanometers::new(circumference_nm * self.silicon.effective_index / f64::from(m.max(1)))
    }

    /// The azimuthal order whose resonance lies closest to `target_nm`.
    #[must_use]
    pub fn order_near(&self, target_nm: f64) -> u32 {
        let circumference_nm = 2.0 * std::f64::consts::PI * self.radius_um * 1e3;
        let m = (circumference_nm * self.silicon.effective_index / target_nm).round();
        if m < 1.0 {
            1
        } else {
            m as u32
        }
    }

    /// Free spectral range near `wavelength_nm`, `FSR = λ²/(n_g·2πR)`.
    #[must_use]
    pub fn free_spectral_range_nm(&self, wavelength_nm: f64) -> f64 {
        let circumference_nm = 2.0 * std::f64::consts::PI * self.radius_um * 1e3;
        wavelength_nm * wavelength_nm / (self.silicon.group_index * circumference_nm)
    }

    fn validate(&self) -> Result<(), PhotonicsError> {
        if !self.radius_um.is_finite() || self.radius_um <= 0.0 {
            return Err(PhotonicsError::InvalidParameter {
                name: "radius_um",
                value: self.radius_um,
            });
        }
        if !self.q_factor.is_finite() || self.q_factor <= 1.0 {
            return Err(PhotonicsError::InvalidParameter {
                name: "q_factor",
                value: self.q_factor,
            });
        }
        if !self.extinction_floor.is_finite()
            || self.extinction_floor <= 0.0
            || self.extinction_floor >= 1.0
        {
            return Err(PhotonicsError::InvalidParameter {
                name: "extinction_floor",
                value: self.extinction_floor,
            });
        }
        if !self.max_imprint_detuning_rel.is_finite()
            || self.max_imprint_detuning_rel <= 0.0
            || self.max_imprint_detuning_rel >= 0.5
        {
            return Err(PhotonicsError::InvalidParameter {
                name: "max_imprint_detuning_rel",
                value: self.max_imprint_detuning_rel,
            });
        }
        Ok(())
    }
}

/// Operational state of a microring's peripheral circuitry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum MicroringState {
    /// Tuning and modulation circuits behave nominally.
    #[default]
    Operational,
    /// An actuation-attack hardware trojan has hijacked the modulation
    /// circuit and parked the ring at the modulator's maximum detuning — the
    /// most transparent state the EO circuit can reach. The ring is "no
    /// longer tuned to function at the intended wavelength" (§III.B.1): its
    /// own carrier passes almost unattenuated regardless of the operand that
    /// should have been imprinted.
    ParkedOffResonance,
}

/// An add-drop microring resonator assigned to one WDM channel.
///
/// The ring's *effective* resonance is the sum of its fabricated resonance,
/// the operand-imprint detuning applied by the modulation circuit, and any
/// thermo-optic shift (eq. 2):
///
/// ```text
/// λ_eff = λ_base + δ_imprint + Δλ_thermal
/// ```
///
/// # Example
///
/// A hotspot attack that heats the ring by one channel spacing makes it
/// respond to its *neighbour's* carrier (Fig. 5 of the paper):
///
/// ```
/// use safelight_photonics::{Microring, WdmGrid};
///
/// # fn main() -> Result<(), safelight_photonics::PhotonicsError> {
/// let grid = WdmGrid::c_band(8)?;
/// let mut ring = Microring::for_channel(&grid, 2)?;
/// ring.imprint_transmission(0.2)?;
///
/// let own = grid.channel_wavelength(2)?;
/// assert!(ring.through_transmission(own) < 0.25);
///
/// // ΔT large enough to shift the resonance by one channel spacing:
/// let dt = grid.channel_spacing_nm() / ring.thermal_shift_per_kelvin_nm();
/// ring.set_temperature_delta(dt);
/// // The ring no longer modulates its own carrier ...
/// assert!(ring.through_transmission(own) > 0.9);
/// // ... and instead crushes the neighbouring channel.
/// let neighbour = grid.channel_wavelength(3)?;
/// assert!(ring.through_transmission(neighbour) < 0.3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Microring {
    geometry: MicroringGeometry,
    /// Fabricated (trimmed) resonance — aligned with the assigned carrier.
    base_resonance_nm: f64,
    /// Carrier wavelength this ring is assigned to.
    carrier_nm: f64,
    /// Channel spacing of the owning grid (bounds imprint detuning).
    channel_spacing_nm: f64,
    /// Detuning applied by the modulation circuit to imprint an operand.
    imprint_detuning_nm: f64,
    /// Thermo-optic shift accumulated from the current temperature delta.
    thermal_shift_nm: f64,
    state: MicroringState,
}

impl Microring {
    /// Builds a ring trimmed to resonate exactly on `channel` of `grid`.
    ///
    /// The fabricated resonance from eq. (1) is first snapped to the nearest
    /// azimuthal order and the residual is absorbed by trimming, which is how
    /// fabricated banks are calibrated in practice.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::ChannelOutOfRange`] for a bad channel index.
    pub fn for_channel(grid: &WdmGrid, channel: usize) -> Result<Self, PhotonicsError> {
        Self::with_geometry(MicroringGeometry::default(), grid, channel)
    }

    /// Builds a ring with explicit `geometry`, trimmed onto `channel`.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::InvalidParameter`] when the geometry is
    /// unphysical and [`PhotonicsError::ChannelOutOfRange`] for a bad
    /// channel index.
    pub fn with_geometry(
        geometry: MicroringGeometry,
        grid: &WdmGrid,
        channel: usize,
    ) -> Result<Self, PhotonicsError> {
        geometry.validate()?;
        let carrier = grid.channel_wavelength(channel)?;
        Ok(Self {
            geometry,
            base_resonance_nm: carrier.value(),
            carrier_nm: carrier.value(),
            channel_spacing_nm: grid.channel_spacing_nm(),
            imprint_detuning_nm: 0.0,
            thermal_shift_nm: 0.0,
            state: MicroringState::Operational,
        })
    }

    /// The ring's geometry.
    #[must_use]
    pub fn geometry(&self) -> &MicroringGeometry {
        &self.geometry
    }

    /// The carrier wavelength this ring is assigned to.
    #[must_use]
    pub fn carrier(&self) -> Nanometers {
        Nanometers::new(self.carrier_nm)
    }

    /// Current operational state.
    #[must_use]
    pub fn state(&self) -> MicroringState {
        self.state
    }

    /// Sets the operational state (used by attack injectors).
    pub fn set_state(&mut self, state: MicroringState) {
        self.state = state;
    }

    /// Lorentzian full width at half maximum, `FWHM = λ/Q`, in nanometres.
    #[must_use]
    pub fn fwhm_nm(&self) -> f64 {
        self.base_resonance_nm / self.geometry.q_factor
    }

    /// Thermo-optic resonance shift per kelvin (the slope of eq. 2).
    #[must_use]
    pub fn thermal_shift_per_kelvin_nm(&self) -> f64 {
        self.geometry
            .silicon
            .resonance_shift_per_kelvin_nm(self.base_resonance_nm)
    }

    /// Applies a temperature delta `ΔT` (kelvin above the calibrated
    /// operating point), red-shifting the resonance per eq. (2).
    pub fn set_temperature_delta(&mut self, delta_kelvin: f64) {
        self.thermal_shift_nm = self.thermal_shift_per_kelvin_nm() * delta_kelvin;
    }

    /// The currently applied thermo-optic shift in nanometres.
    #[must_use]
    pub fn thermal_shift_nm(&self) -> f64 {
        self.thermal_shift_nm
    }

    /// Effective resonance wavelength including imprint and thermal shifts.
    ///
    /// When the ring is [`MicroringState::ParkedOffResonance`] the imprint
    /// detuning is stuck at the modulation circuit's maximum (the EO range
    /// is far smaller than a free spectral range, so this is the most
    /// transparent state an actuation trojan can force); thermal shifts
    /// still apply on top.
    #[must_use]
    pub fn resonance_wavelength(&self) -> Nanometers {
        let imprint = match self.state {
            MicroringState::Operational => self.imprint_detuning_nm,
            MicroringState::ParkedOffResonance => {
                self.geometry.max_imprint_detuning_rel * self.channel_spacing_nm
            }
        };
        Nanometers::new(self.base_resonance_nm + imprint + self.thermal_shift_nm)
    }

    /// Smallest through-port transmission the ring can imprint (at `δ = 0`).
    #[must_use]
    pub fn min_transmission(&self) -> f64 {
        self.geometry.extinction_floor
    }

    /// Largest through-port transmission the modulation circuit can imprint,
    /// reached at the maximum allowed detuning.
    #[must_use]
    pub fn max_transmission(&self) -> f64 {
        let delta = self.geometry.max_imprint_detuning_rel * self.channel_spacing_nm;
        self.lorentzian_through(delta)
    }

    /// Through-port transmission at `wavelength` given the current state.
    #[must_use]
    pub fn through_transmission(&self, wavelength: Nanometers) -> f64 {
        let delta = wavelength.value() - self.resonance_wavelength().value();
        self.lorentzian_through(delta)
    }

    /// Drop-port transmission at `wavelength` (complement of the through
    /// port up to the extinction floor).
    #[must_use]
    pub fn drop_transmission(&self, wavelength: Nanometers) -> f64 {
        1.0 - self.through_transmission(wavelength)
    }

    /// Tunes the modulation circuit so the through port passes exactly
    /// `transmission` of the assigned carrier's power.
    ///
    /// This is the *imprint* operation of Fig. 1(c): the ONN encodes a
    /// normalized operand as a transmission in
    /// `[`[`Self::min_transmission`]`, `[`Self::max_transmission`]`]`.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::TransmissionOutOfRange`] when `transmission`
    /// is outside the realizable interval.
    pub fn imprint_transmission(&mut self, transmission: f64) -> Result<(), PhotonicsError> {
        let t_min = self.min_transmission();
        let t_max = self.max_transmission();
        if !(t_min..=t_max).contains(&transmission) {
            return Err(PhotonicsError::TransmissionOutOfRange {
                requested: transmission,
                min: t_min,
            });
        }
        self.imprint_detuning_nm = self.detuning_for_transmission(transmission);
        Ok(())
    }

    /// The detuning (nm, red side) at which the through port transmits
    /// `transmission`; the inverse of the Lorentzian transfer.
    ///
    /// Saturates at the modulation circuit's maximum detuning; callers should
    /// validate the operand against [`Self::max_transmission`] first (as
    /// [`Self::imprint_transmission`] does).
    #[must_use]
    pub fn detuning_for_transmission(&self, transmission: f64) -> f64 {
        let t_min = self.geometry.extinction_floor;
        let t = transmission.clamp(t_min, 1.0 - 1e-12);
        // T(δ) = 1 − (1 − t_min)/(1 + (2δ/FWHM)²)  ⇒  solve for δ ≥ 0.
        let ratio = (1.0 - t_min) / (1.0 - t) - 1.0;
        let delta = 0.5 * self.fwhm_nm() * ratio.max(0.0).sqrt();
        let max = self.geometry.max_imprint_detuning_rel * self.channel_spacing_nm;
        delta.min(max)
    }

    /// The Lorentzian through-port response at detuning `delta_nm` from the
    /// effective resonance.
    fn lorentzian_through(&self, delta_nm: f64) -> f64 {
        let t_min = self.geometry.extinction_floor;
        let x = 2.0 * delta_nm / self.fwhm_nm();
        1.0 - (1.0 - t_min) / (1.0 + x * x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> WdmGrid {
        WdmGrid::c_band(8).unwrap()
    }

    #[test]
    fn resonance_order_is_physical() {
        let g = MicroringGeometry::default();
        let m = g.order_near(1550.0);
        // 2π·10 µm · 2.4 / 1550 nm ≈ 97.3
        assert!((90..=105).contains(&m), "order {m} not plausible");
    }

    #[test]
    fn eq1_resonance_matches_formula() {
        let g = MicroringGeometry::default();
        let m = 97;
        let expected = 2.0 * std::f64::consts::PI * 10.0e3 * 2.4 / 97.0;
        assert!((g.resonance_for_order(m).value() - expected).abs() < 1e-9);
    }

    #[test]
    fn fsr_near_nine_nanometres_for_default_geometry() {
        let g = MicroringGeometry::default();
        let fsr = g.free_spectral_range_nm(1550.0);
        assert!((8.0..12.0).contains(&fsr), "FSR {fsr} nm not plausible");
    }

    #[test]
    fn transmission_at_resonance_is_extinction_floor() {
        let ring = Microring::for_channel(&grid(), 0).unwrap();
        let t = ring.through_transmission(ring.carrier());
        assert!((t - ring.min_transmission()).abs() < 1e-12);
    }

    #[test]
    fn transmission_far_from_resonance_approaches_unity() {
        let ring = Microring::for_channel(&grid(), 0).unwrap();
        let far = Nanometers::new(ring.carrier().value() + 4.0);
        assert!(ring.through_transmission(far) > 0.995);
    }

    #[test]
    fn through_plus_drop_is_unity() {
        let ring = Microring::for_channel(&grid(), 2).unwrap();
        for d in [-0.5, -0.1, 0.0, 0.05, 0.3, 1.0] {
            let l = Nanometers::new(ring.carrier().value() + d);
            let sum = ring.through_transmission(l) + ring.drop_transmission(l);
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn imprint_round_trips_across_the_range() {
        let mut ring = Microring::for_channel(&grid(), 3).unwrap();
        let (lo, hi) = (ring.min_transmission(), ring.max_transmission());
        for i in 0..=20 {
            let t = lo + (hi - lo) * (i as f64) / 20.0;
            ring.imprint_transmission(t).unwrap();
            let got = ring.through_transmission(ring.carrier());
            assert!((got - t).abs() < 1e-9, "imprint {t} read back {got}");
        }
    }

    #[test]
    fn imprint_out_of_range_is_rejected() {
        let mut ring = Microring::for_channel(&grid(), 3).unwrap();
        let err = ring.imprint_transmission(0.9999).unwrap_err();
        assert!(matches!(err, PhotonicsError::TransmissionOutOfRange { .. }));
        let err = ring.imprint_transmission(0.0).unwrap_err();
        assert!(matches!(err, PhotonicsError::TransmissionOutOfRange { .. }));
    }

    #[test]
    fn parked_ring_is_maximally_transparent() {
        let g = grid();
        let mut ring = Microring::for_channel(&g, 4).unwrap();
        ring.imprint_transmission(0.05).unwrap();
        ring.set_state(MicroringState::ParkedOffResonance);
        // Its own carrier now passes at the modulator's maximum transmission,
        // independent of the operand that was imprinted before the attack.
        let own = g.channel_wavelength(4).unwrap();
        assert!((ring.through_transmission(own) - ring.max_transmission()).abs() < 1e-12);
        // And no channel of the comb is strongly modulated any more.
        for l in g.iter() {
            assert!(
                ring.through_transmission(l) > 0.85,
                "parked ring crushes {l}"
            );
        }
    }

    #[test]
    fn one_spacing_thermal_shift_captures_the_neighbour_channel() {
        let g = grid();
        let mut ring = Microring::for_channel(&g, 2).unwrap();
        ring.imprint_transmission(ring.min_transmission()).unwrap();
        let dt = g.channel_spacing_nm() / ring.thermal_shift_per_kelvin_nm();
        ring.set_temperature_delta(dt);
        let own = g.channel_wavelength(2).unwrap();
        let neighbour = g.channel_wavelength(3).unwrap();
        assert!(ring.through_transmission(own) > 0.9);
        assert!(ring.through_transmission(neighbour) < 0.05);
    }

    #[test]
    fn one_channel_shift_needs_about_fifteen_kelvin() {
        let g = grid();
        let ring = Microring::for_channel(&g, 0).unwrap();
        let dt = g.channel_spacing_nm() / ring.thermal_shift_per_kelvin_nm();
        assert!((12.0..18.0).contains(&dt), "ΔT for one channel = {dt} K");
    }

    #[test]
    fn crosstalk_on_adjacent_channel_is_small_when_untuned() {
        let g = grid();
        let mut ring = Microring::for_channel(&g, 2).unwrap();
        ring.imprint_transmission(ring.min_transmission()).unwrap();
        let neighbour = g.channel_wavelength(3).unwrap();
        assert!(ring.through_transmission(neighbour) > 0.98);
    }

    #[test]
    fn detuning_saturates_at_modulator_range() {
        let ring = Microring::for_channel(&grid(), 1).unwrap();
        let max = ring.geometry().max_imprint_detuning_rel * 0.8;
        assert!(ring.detuning_for_transmission(0.999_999) <= max + 1e-12);
    }
}

//! Physical constants and silicon material properties used across the crate.

/// Speed of light in vacuum, metres per second.
pub const SPEED_OF_LIGHT_M_PER_S: f64 = 299_792_458.0;

/// Thermo-optic coefficient of silicon, `δn_Si/δT`, per kelvin.
///
/// This is the value commonly used for crystalline silicon near 1550 nm and
/// room temperature, and the quantity appearing in eq. (2) of the SafeLight
/// paper.
pub const DEFAULT_THERMO_OPTIC_COEFF: f64 = 1.86e-4;

/// Group refractive index `n_g` of a typical silicon strip waveguide.
pub const DEFAULT_GROUP_INDEX: f64 = 4.2;

/// Modal confinement factor `Γ_Si` of the microring core.
pub const DEFAULT_SI_CONFINEMENT: f64 = 0.8;

/// Effective refractive index `n_eff` of a typical silicon strip waveguide
/// near 1550 nm.
pub const DEFAULT_EFFECTIVE_INDEX: f64 = 2.4;

/// Material and modal properties of the silicon waveguide platform.
///
/// Bundles the three quantities entering the thermo-optic resonance shift of
/// the paper's eq. (2),
/// `Δλ_MR = Γ_Si · (δn_Si/δT) · λ_MR / n_g · ΔT`,
/// plus the effective index used by the resonance condition of eq. (1).
///
/// # Example
///
/// ```
/// use safelight_photonics::SiliconProperties;
///
/// let si = SiliconProperties::default();
/// // ~0.055 nm of red-shift per kelvin at 1550 nm.
/// let shift = si.resonance_shift_per_kelvin_nm(1550.0);
/// assert!((shift - 0.0549).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SiliconProperties {
    /// Thermo-optic coefficient `δn_Si/δT` in 1/K.
    pub thermo_optic_coeff: f64,
    /// Group refractive index `n_g` (dimensionless).
    pub group_index: f64,
    /// Modal confinement factor `Γ_Si` in the silicon core (0..=1).
    pub confinement: f64,
    /// Effective refractive index `n_eff` (dimensionless).
    pub effective_index: f64,
}

impl Default for SiliconProperties {
    fn default() -> Self {
        Self {
            thermo_optic_coeff: DEFAULT_THERMO_OPTIC_COEFF,
            group_index: DEFAULT_GROUP_INDEX,
            confinement: DEFAULT_SI_CONFINEMENT,
            effective_index: DEFAULT_EFFECTIVE_INDEX,
        }
    }
}

impl SiliconProperties {
    /// Resonance red-shift in nanometres produced by a 1 K temperature rise
    /// for a ring resonant at `wavelength_nm` (the `Δλ/ΔT` slope of eq. 2).
    #[must_use]
    pub fn resonance_shift_per_kelvin_nm(&self, wavelength_nm: f64) -> f64 {
        self.confinement * self.thermo_optic_coeff * wavelength_nm / self.group_index
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_slope_matches_hand_computation() {
        let si = SiliconProperties::default();
        let expected = 0.8 * 1.86e-4 * 1550.0 / 4.2;
        assert!((si.resonance_shift_per_kelvin_nm(1550.0) - expected).abs() < 1e-12);
    }

    #[test]
    fn shift_scales_linearly_with_wavelength() {
        let si = SiliconProperties::default();
        let a = si.resonance_shift_per_kelvin_nm(1550.0);
        let b = si.resonance_shift_per_kelvin_nm(3100.0);
        assert!((b - 2.0 * a).abs() < 1e-12);
    }
}

//! Wavelengths and the WDM channel grid carried by an ONN waveguide.

use crate::PhotonicsError;

/// A wavelength expressed in nanometres.
///
/// A thin newtype so that wavelengths cannot be confused with temperatures,
/// powers or transmissions in the simulator's many `f64`-valued interfaces.
///
/// # Example
///
/// ```
/// use safelight_photonics::Nanometers;
///
/// let lambda = Nanometers::new(1550.0);
/// assert_eq!(lambda.value(), 1550.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Nanometers(f64);

impl Nanometers {
    /// Creates a wavelength from a value in nanometres.
    #[must_use]
    pub fn new(nm: f64) -> Self {
        Self(nm)
    }

    /// Returns the wavelength in nanometres.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }
}

impl From<f64> for Nanometers {
    fn from(nm: f64) -> Self {
        Self(nm)
    }
}

impl std::fmt::Display for Nanometers {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} nm", self.0)
    }
}

/// The comb of evenly spaced WDM carrier wavelengths in one waveguide.
///
/// A non-coherent ONN multiplexes one multiplication per channel; the number
/// of channels equals the number of columns of a microring bank (paper
/// §II.B). The paper's thermal attack (Fig. 5) works precisely because the
/// channels are *evenly spaced*: a uniform thermal red-shift of one channel
/// spacing slides every microring onto its neighbour's carrier.
///
/// # Example
///
/// ```
/// use safelight_photonics::WdmGrid;
///
/// # fn main() -> Result<(), safelight_photonics::PhotonicsError> {
/// let grid = WdmGrid::c_band(4)?;
/// assert_eq!(grid.channels(), 4);
/// let spacing = grid.channel_spacing_nm();
/// let l0 = grid.channel_wavelength(0)?.value();
/// let l1 = grid.channel_wavelength(1)?.value();
/// assert!((l1 - l0 - spacing).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WdmGrid {
    start_nm: f64,
    spacing_nm: f64,
    channels: usize,
}

/// Conventional 100 GHz DWDM channel spacing near 1550 nm, in nanometres.
pub const DWDM_100GHZ_SPACING_NM: f64 = 0.8;

/// Start of the simulated C-band comb used by [`WdmGrid::c_band`].
pub const C_BAND_START_NM: f64 = 1546.0;

impl WdmGrid {
    /// Creates a grid of `channels` carriers starting at `start_nm` with
    /// uniform `spacing_nm`.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::EmptyGrid`] when `channels == 0`, and
    /// [`PhotonicsError::InvalidParameter`] when `start_nm` or `spacing_nm`
    /// is not a positive finite number.
    pub fn new(start_nm: f64, spacing_nm: f64, channels: usize) -> Result<Self, PhotonicsError> {
        if channels == 0 {
            return Err(PhotonicsError::EmptyGrid);
        }
        if !start_nm.is_finite() || start_nm <= 0.0 {
            return Err(PhotonicsError::InvalidParameter {
                name: "start_nm",
                value: start_nm,
            });
        }
        if !spacing_nm.is_finite() || spacing_nm <= 0.0 {
            return Err(PhotonicsError::InvalidParameter {
                name: "spacing_nm",
                value: spacing_nm,
            });
        }
        Ok(Self {
            start_nm,
            spacing_nm,
            channels,
        })
    }

    /// Creates a C-band grid with the conventional 100 GHz (0.8 nm) spacing.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::EmptyGrid`] when `channels == 0`.
    pub fn c_band(channels: usize) -> Result<Self, PhotonicsError> {
        Self::new(C_BAND_START_NM, DWDM_100GHZ_SPACING_NM, channels)
    }

    /// Number of channels in the grid.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Uniform spacing between adjacent carriers, in nanometres.
    #[must_use]
    pub fn channel_spacing_nm(&self) -> f64 {
        self.spacing_nm
    }

    /// Carrier wavelength of channel `channel`.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicsError::ChannelOutOfRange`] when `channel` is not
    /// below [`Self::channels`].
    pub fn channel_wavelength(&self, channel: usize) -> Result<Nanometers, PhotonicsError> {
        if channel >= self.channels {
            return Err(PhotonicsError::ChannelOutOfRange {
                channel,
                channels: self.channels,
            });
        }
        Ok(Nanometers::new(
            self.start_nm + self.spacing_nm * channel as f64,
        ))
    }

    /// The channel whose carrier is closest to `wavelength`, or `None` when
    /// the wavelength falls more than half a spacing outside the comb.
    ///
    /// A microring red-shifted past the end of the comb "operates on an
    /// unsupported wavelength" in the paper's terms (Fig. 5), which this
    /// method reports as `None`.
    #[must_use]
    pub fn nearest_channel(&self, wavelength: Nanometers) -> Option<usize> {
        let offset = (wavelength.value() - self.start_nm) / self.spacing_nm;
        let idx = offset.round();
        if (offset - idx).abs() > 0.5 + 1e-9 {
            return None;
        }
        if idx < -0.25 || idx > (self.channels as f64 - 1.0) + 0.25 {
            return None;
        }
        let idx = idx as isize;
        if idx < 0 || idx as usize >= self.channels {
            None
        } else {
            Some(idx as usize)
        }
    }

    /// Iterates over all carrier wavelengths in channel order.
    pub fn iter(&self) -> impl Iterator<Item = Nanometers> + '_ {
        (0..self.channels).map(move |c| Nanometers::new(self.start_nm + self.spacing_nm * c as f64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_rejects_zero_channels() {
        assert_eq!(WdmGrid::new(1550.0, 0.8, 0), Err(PhotonicsError::EmptyGrid));
    }

    #[test]
    fn grid_rejects_nonpositive_spacing() {
        assert!(matches!(
            WdmGrid::new(1550.0, 0.0, 4),
            Err(PhotonicsError::InvalidParameter {
                name: "spacing_nm",
                ..
            })
        ));
        assert!(matches!(
            WdmGrid::new(1550.0, -0.8, 4),
            Err(PhotonicsError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn channel_wavelengths_are_evenly_spaced() {
        let g = WdmGrid::c_band(16).unwrap();
        for c in 1..16 {
            let prev = g.channel_wavelength(c - 1).unwrap().value();
            let cur = g.channel_wavelength(c).unwrap().value();
            assert!((cur - prev - DWDM_100GHZ_SPACING_NM).abs() < 1e-12);
        }
    }

    #[test]
    fn channel_out_of_range_is_reported() {
        let g = WdmGrid::c_band(4).unwrap();
        assert!(matches!(
            g.channel_wavelength(4),
            Err(PhotonicsError::ChannelOutOfRange {
                channel: 4,
                channels: 4
            })
        ));
    }

    #[test]
    fn nearest_channel_round_trips() {
        let g = WdmGrid::c_band(8).unwrap();
        for c in 0..8 {
            let l = g.channel_wavelength(c).unwrap();
            assert_eq!(g.nearest_channel(l), Some(c));
        }
    }

    #[test]
    fn nearest_channel_after_one_spacing_shift_is_the_neighbour() {
        // The Fig. 5 thermal slide: +1 spacing moves ring k onto channel k+1's
        // carrier; seen from the channels, channel k is now served by ring k-1.
        let g = WdmGrid::c_band(8).unwrap();
        let l3 = g.channel_wavelength(3).unwrap().value();
        let shifted = Nanometers::new(l3 + g.channel_spacing_nm());
        assert_eq!(g.nearest_channel(shifted), Some(4));
    }

    #[test]
    fn nearest_channel_off_comb_is_none() {
        let g = WdmGrid::c_band(4).unwrap();
        let last = g.channel_wavelength(3).unwrap().value();
        assert_eq!(g.nearest_channel(Nanometers::new(last + 2.0)), None);
        let first = g.channel_wavelength(0).unwrap().value();
        assert_eq!(g.nearest_channel(Nanometers::new(first - 2.0)), None);
    }

    #[test]
    fn iter_matches_indexing() {
        let g = WdmGrid::c_band(5).unwrap();
        let via_iter: Vec<f64> = g.iter().map(Nanometers::value).collect();
        let via_index: Vec<f64> = (0..5)
            .map(|c| g.channel_wavelength(c).unwrap().value())
            .collect();
        assert_eq!(via_iter, via_index);
    }
}

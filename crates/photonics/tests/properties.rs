//! Property-based tests for the photonic device models.

use proptest::prelude::*;
use safelight_photonics::{
    thermal_resonance_shift_nm, Adc, Dac, Microring, MicroringState, Nanometers, SiliconProperties,
    WdmGrid,
};

proptest! {
    /// Through-port transmission is always a physical power fraction.
    #[test]
    fn transmission_is_bounded(
        channel in 0usize..16,
        delta_nm in -20.0f64..20.0,
        dt in 0.0f64..80.0,
    ) {
        let grid = WdmGrid::c_band(16).unwrap();
        let mut ring = Microring::for_channel(&grid, channel).unwrap();
        ring.set_temperature_delta(dt);
        let lambda = Nanometers::new(grid.channel_wavelength(channel).unwrap().value() + delta_nm);
        let t = ring.through_transmission(lambda);
        prop_assert!((0.0..=1.0).contains(&t), "T = {t}");
    }

    /// The Lorentzian is symmetric about the effective resonance.
    #[test]
    fn transmission_is_symmetric(delta in 0.0f64..5.0) {
        let grid = WdmGrid::c_band(4).unwrap();
        let ring = Microring::for_channel(&grid, 1).unwrap();
        let res = ring.resonance_wavelength().value();
        let up = ring.through_transmission(Nanometers::new(res + delta));
        let down = ring.through_transmission(Nanometers::new(res - delta));
        prop_assert!((up - down).abs() < 1e-12);
    }

    /// Transmission increases monotonically with |detuning|.
    #[test]
    fn transmission_is_monotone_in_detuning(a in 0.0f64..4.0, b in 0.0f64..4.0) {
        let grid = WdmGrid::c_band(4).unwrap();
        let ring = Microring::for_channel(&grid, 0).unwrap();
        let res = ring.resonance_wavelength().value();
        let (near, far) = if a <= b { (a, b) } else { (b, a) };
        let t_near = ring.through_transmission(Nanometers::new(res + near));
        let t_far = ring.through_transmission(Nanometers::new(res + far));
        prop_assert!(t_far + 1e-12 >= t_near);
    }

    /// Imprinting a transmission and reading it back at the carrier
    /// round-trips across the full realizable range.
    #[test]
    fn imprint_round_trip(frac in 0.0f64..=1.0) {
        let grid = WdmGrid::c_band(8).unwrap();
        let mut ring = Microring::for_channel(&grid, 5).unwrap();
        let t = ring.min_transmission()
            + frac * (ring.max_transmission() - ring.min_transmission());
        ring.imprint_transmission(t).unwrap();
        let got = ring.through_transmission(ring.carrier());
        prop_assert!((got - t).abs() < 1e-9, "asked {t} got {got}");
    }

    /// Eq. (2) is linear in ΔT and in λ.
    #[test]
    fn thermal_shift_is_linear(dt in 0.0f64..100.0, lambda in 1200.0f64..1700.0) {
        let si = SiliconProperties::default();
        let one = thermal_resonance_shift_nm(&si, lambda, 1.0);
        let many = thermal_resonance_shift_nm(&si, lambda, dt);
        prop_assert!((many - dt * one).abs() < 1e-9);
    }

    /// A parked (actuation-attacked) ring passes its own carrier at the
    /// modulator's maximum transmission and never strongly modulates any
    /// grid channel, independent of its previous imprint.
    #[test]
    fn parked_ring_transparent(channel in 0usize..8, frac in 0.0f64..=1.0) {
        let grid = WdmGrid::c_band(8).unwrap();
        let mut ring = Microring::for_channel(&grid, channel).unwrap();
        let t = ring.min_transmission()
            + frac * (ring.max_transmission() - ring.min_transmission());
        ring.imprint_transmission(t).unwrap();
        ring.set_state(MicroringState::ParkedOffResonance);
        let own = grid.channel_wavelength(channel).unwrap();
        prop_assert!(
            (ring.through_transmission(own) - ring.max_transmission()).abs() < 1e-12
        );
        for l in grid.iter() {
            prop_assert!(ring.through_transmission(l) > 0.85);
        }
    }

    /// DAC output is always a representable level within range, and the
    /// quantization error is at most half an LSB for in-range inputs.
    #[test]
    fn dac_quantization_contract(bits in 1u8..16, x in -2.0f64..3.0) {
        let dac = Dac::new(bits, 0.0, 1.0).unwrap();
        let y = dac.convert(x);
        prop_assert!((0.0..=1.0).contains(&y));
        if (0.0..=1.0).contains(&x) {
            prop_assert!((y - x).abs() <= dac.lsb() / 2.0 + 1e-12);
        }
    }

    /// ADC codes are monotone non-decreasing in the analog input.
    #[test]
    fn adc_monotone(a in -1.0f64..1.0, b in -1.0f64..1.0) {
        let adc = Adc::new(10, -1.0, 1.0).unwrap();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(adc.convert(lo).0 <= adc.convert(hi).0);
    }

    /// nearest_channel inverts channel_wavelength for all grid sizes.
    #[test]
    fn grid_nearest_channel_inverts(channels in 1usize..64, ch_frac in 0.0f64..1.0) {
        let grid = WdmGrid::c_band(channels).unwrap();
        let ch = ((channels as f64 - 1.0) * ch_frac).round() as usize;
        let l = grid.channel_wavelength(ch).unwrap();
        prop_assert_eq!(grid.nearest_channel(l), Some(ch));
    }
}

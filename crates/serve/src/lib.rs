//! The secure inference-serving runtime: where SafeLight's offline
//! detection results become a *running system*.
//!
//! PR 3's detection subsystem answers "was this accelerator compromised?"
//! after the fact. A production deployment has to keep serving traffic
//! while it answers — and then *do something* about a positive answer.
//! This crate layers that runtime on top of the existing stack:
//!
//! * [`scheduler`] — the request plane: virtual-time open-loop arrival
//!   models ([`ArrivalModel`] — closed-loop, Poisson or bursty, replayable
//!   from the in-tree RNG), a bounded FIFO [`AdmissionQueue`] with
//!   load-shedding backpressure, and the [`partition`] helper for the
//!   degenerate closed-loop (rate = ∞) case. Continuous batching fills
//!   each tick's micro-batches from whatever has arrived, with
//!   per-request outcomes reassembled in arrival order regardless of
//!   worker-thread count;
//! * [`runtime`] — the accelerator fleet. Each [`FleetMember`] is a full
//!   simulated accelerator (clean weights + [`WeightMapping`] +
//!   [`ConditionMap`] + derived effective executor network +
//!   [`TelemetryProbe`]) carrying its own calibrated detector suite. The
//!   fleet serves one micro-batch per active member per tick on the shared
//!   worker pool, scores every batch's telemetry frame inline, and runs
//!   the closed-loop response policy:
//!
//!   ```text
//!   alarm ──▶ implicate banks (guard-band excursions)
//!         ──▶ quarantine rings, remap parameters onto idle spares
//!               │ spares exhausted / nothing to localize
//!               ▼
//!             fail the shard over to a healthy fleet member
//!   ```
//!
//!   after which the member re-derives its executor network and telemetry
//!   probe from the remapped [`WeightMapping`] and re-baselines its
//!   detectors on a short recalibration window;
//! * [`eval`] — [`eval::run_serving`] plays the attack-scenario grid as
//!   request streams with mid-stream compromise onset and reports
//!   end-to-end accuracy per phase, detection/recovery latency in batches,
//!   availability and service-latency percentiles (p50/p99/p999) per
//!   scenario, byte-identical across worker-thread counts;
//!   [`eval::run_rate_sweep`] records the throughput-vs-p99 curve across
//!   offered arrival rates and locates the saturation point;
//! * [`chaos`] — [`chaos::run_chaos`] replays the benign-fault grid
//!   (dead/stuck/drifting sensors, supply glitches, member crashes) alone,
//!   trojans alone, and fault+trojan overlap, reporting the
//!   spurious-quarantine rate, trojan TPR under discrimination, overlap
//!   missed-detection rate and crash-recovery latency;
//! * [`observe`] — the bridge to the `safelight-obs` observability
//!   plane: a per-stream [`ServeObserver`] turns every admission tick,
//!   served batch and response-policy decision into structured trace
//!   events (deterministic, byte-identical across worker-thread counts)
//!   and scoped metrics, so a committed trace reconstructs the policy's
//!   decision sequence; with an SLO spec attached it also evaluates the
//!   virtual-time alert rules at end of stream — see
//!   `docs/observability.md`;
//! * [`incident`] — automated forensics over the audit trace: one
//!   [`IncidentReport`] per injected
//!   fault/attack, with causal timeline (detection → discrimination →
//!   remediation → recovery), root-cause classification checked against
//!   the injected ground truth, latencies and SLO impact;
//! * [`report`] — CSV/JSON emitters for the serving and chaos
//!   evaluations, wired into `repro --serve` / `repro --chaos` (`--json`).
//!
//! See `docs/serving.md` for the fleet model, the scheduler's determinism
//! argument and the response-policy state machine.
//!
//! [`WeightMapping`]: safelight_onn::WeightMapping
//! [`ConditionMap`]: safelight_onn::ConditionMap
//! [`TelemetryProbe`]: safelight_onn::TelemetryProbe
//! [`FleetMember`]: runtime::FleetMember
//! [`ArrivalModel`]: scheduler::ArrivalModel
//! [`AdmissionQueue`]: scheduler::AdmissionQueue
//! [`partition`]: scheduler::partition
//!
//! # Example
//!
//! Serve a short request stream on a two-member fleet and watch the
//! closed loop recover from a mid-stream actuation attack:
//!
//! ```no_run
//! use safelight::models::{build_model, matched_accelerator, ModelKind};
//! use safelight::prelude::*;
//! use safelight_serve::eval::{run_serving, ServingOptions};
//!
//! # fn main() -> Result<(), SafelightError> {
//! let bundle = build_model(ModelKind::Cnn1, 7)?;
//! let config = matched_accelerator(ModelKind::Cnn1)?;
//! let mapping = WeightMapping::new(&config, &bundle.layer_specs)?;
//! let data = safelight_datasets::generate(
//!     safelight::models::dataset_kind_for(ModelKind::Cnn1),
//!     &safelight_datasets::SyntheticSpec::default(),
//! )?;
//! let scenarios = vec![ScenarioSpec::new(
//!     VectorSpec::Actuation, AttackTarget::Both, 0.10, 0,
//! )];
//! let backend = safelight_onn::AnalyticBackend::new(&config);
//! let report = run_serving(
//!     &bundle.network, &mapping, &backend, &data.test, &scenarios,
//!     &default_detectors(), &ServingOptions::default(), 11, 2,
//! )?;
//! println!("{}", safelight_serve::report::serving_csv(&report));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod eval;
pub mod incident;
pub mod observe;
pub mod report;
pub mod runtime;
pub mod scheduler;

pub use chaos::{
    chaos_grid, run_chaos, run_chaos_experiment, run_chaos_experiment_observed, run_chaos_observed,
    ChaosCase, ChaosReport, ChaosRow,
};
pub use eval::{
    run_rate_sweep, run_rate_sweep_experiment, run_serving, run_serving_experiment,
    run_serving_experiment_observed, run_serving_observed, RatePoint, RateSweepReport,
    ScenarioServing, ServingOptions, ServingReport,
};
pub use incident::{
    incidents_from_trace, incidents_json, incidents_txt, IncidentReport, Milestone, RootCauseKind,
};
pub use observe::{ObsArtifacts, ServeObserver};
pub use runtime::{
    Compromise, Fleet, FleetMember, MemberFault, MemberState, PolicyConfig, PolicyEvent,
    ResponseAction, ServedBatch, StreamOutcome,
};
pub use scheduler::{partition, percentile, AdmissionQueue, ArrivalModel, Request, RequestOutcome};

//! Automated incident forensics over the audit-trace plane.
//!
//! The committed trace ([`crate::observe`]) already records every
//! anomalous telemetry frame, discrimination decision, remediation action
//! and recovery — this module turns that audit log back into *incidents*:
//! one [`IncidentReport`] per injected fault/attack, reconstructed from
//! the trace text alone (no access to the runtime state), with
//!
//! * a **causal timeline** — first anomalous telemetry → discrimination
//!   decision → remediation action → recovery, each anchored at its
//!   virtual tick and global batch index;
//! * a **root-cause classification** read off the policy's own audit
//!   events and checked against the injected
//!   [`FaultSpec`](safelight::fault::FaultSpec)/
//!   [`ScenarioSpec`](safelight::attack::ScenarioSpec) ground truth in
//!   the section header;
//! * **detection / recovery latency** in batches relative to the earliest
//!   injected onset;
//! * **SLO impact** — degraded requests inside the incident window as a
//!   fraction of the stream's availability error budget.
//!
//! Because the committed trace is byte-identical across worker-thread
//! counts, so is every reconstructed report: the forensics layer inherits
//! the determinism contract for free.
//!
//! Ground-truth subtlety: a drifting *rail* sensor is observationally
//! close to a genuine supply transient (both present as a coherent rail
//! excursion), so its acceptable root-cause set is
//! `{sensor_fault, supply_transient}` — either discrimination is a
//! correct reading of the physics. This mirrors the grid's exclusion of
//! the drifting drop-current sensor (see [`crate::chaos`]).

use safelight_obs::SloSpec;

/// A root-cause class the discrimination policy can settle on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RootCauseKind {
    /// A broken readback (dead/stuck/drifting sensor): maintenance.
    SensorFault,
    /// A coherent supply transient (rail glitch): maintenance.
    SupplyTransient,
    /// A fleet-member crash and cache restart.
    Crash,
    /// A physical trojan: quarantine/remap/failover.
    Trojan,
}

impl RootCauseKind {
    /// Stable label used in reports and artifacts.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::SensorFault => "sensor_fault",
            Self::SupplyTransient => "supply_transient",
            Self::Crash => "crash",
            Self::Trojan => "trojan",
        }
    }
}

impl std::fmt::Display for RootCauseKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One timeline milestone: where in virtual time (and which global
/// batch) a phase of the incident happened, and the audit event that
/// marked it.
#[derive(Clone, Debug, PartialEq)]
pub struct Milestone {
    /// Virtual tick of the marking event.
    pub vt: u64,
    /// Global batch index of the marking event.
    pub batch: u64,
    /// The `event=` name of the marking trace event.
    pub event: String,
}

/// One reconstructed incident: everything the forensics layer recovered
/// about a single injected fault/attack from the committed trace.
#[derive(Clone, Debug, PartialEq)]
pub struct IncidentReport {
    /// Section identity: `case=NN` for chaos sections, `scenario=<spec>`
    /// for serving sections.
    pub id: String,
    /// Case kind: `fault`, `trojan`, `overlap` or `serving`.
    pub kind: String,
    /// Injected fault spec string (empty when none).
    pub fault: String,
    /// Injected trojan scenario spec string (empty when none).
    pub scenario: String,
    /// Earliest injected onset batch (fault onset vs trojan onset).
    pub onset_batch: u64,
    /// Ground truth: one acceptable root-cause set per injected cause
    /// (an overlap case carries two). The classification matches when
    /// every set intersects the observed causes.
    pub expected: Vec<Vec<RootCauseKind>>,
    /// Root causes the policy's audit events actually settled on, in
    /// first-observation order.
    pub observed: Vec<RootCauseKind>,
    /// Whether the observed classification covers the ground truth.
    pub root_cause_match: bool,
    /// First anomalous telemetry: alarmed batch, crash or policy event.
    pub detected: Option<Milestone>,
    /// First discrimination decision (policy event; the crash itself for
    /// a bare crash, which needs no discrimination).
    pub discriminated: Option<Milestone>,
    /// First remediation action (maintenance/remap/failover/restart).
    pub remediated: Option<Milestone>,
    /// Recovery completion (cache recovery, mask clearance; falls back
    /// to the remediation milestone when the action itself restores
    /// service, e.g. a remap).
    pub recovered: Option<Milestone>,
    /// Batches from the injected onset to detection, inclusive (`NaN`
    /// when never detected).
    pub detection_latency_batches: f64,
    /// Batches from detection to recovery (`NaN` when unrecovered).
    pub recovery_latency_batches: f64,
    /// Requests served degraded inside the `[detected, recovered]`
    /// virtual-time window.
    pub degraded_requests: u64,
    /// Incident-window error-budget burn: degraded requests over the
    /// stream's availability budget `(1 − target) × total` (infinite on
    /// a zero budget with any degradation).
    pub budget_burn: f64,
    /// Alert rules that fired in this section, in firing order.
    pub alerts: Vec<String>,
}

/// One parsed trace event line.
struct Event<'a> {
    vt: u64,
    stage: &'a str,
    seq: u64,
    fields: Vec<(&'a str, &'a str)>,
}

impl<'a> Event<'a> {
    fn field(&self, key: &str) -> Option<&'a str> {
        self.fields
            .iter()
            .find(|&&(k, _)| k == key)
            .map(|&(_, v)| v)
    }

    fn name(&self) -> &'a str {
        self.field("event").unwrap_or("")
    }

    /// The event's global batch index: the explicit `batch=` field when
    /// present (crash/recover carry the member id in `seq`), else `seq`
    /// (serve/policy events use the batch index as their sequence key).
    fn batch(&self) -> u64 {
        self.field("batch")
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.seq)
    }

    fn member(&self) -> Option<u64> {
        self.field("member").and_then(|v| v.parse().ok())
    }

    fn milestone(&self) -> Milestone {
        Milestone {
            vt: self.vt,
            batch: self.batch(),
            event: self.name().to_string(),
        }
    }
}

/// One trace section: its `# ` header lines plus parsed events.
struct Section<'a> {
    headers: Vec<&'a str>,
    events: Vec<Event<'a>>,
}

/// Parses `vt=000012 policy     seq=000014 event=... k=v ...`.
fn parse_event(line: &str) -> Option<Event<'_>> {
    let rest = line.strip_prefix("vt=")?;
    let mut tokens = rest.split_whitespace();
    let vt = tokens.next()?.parse().ok()?;
    let stage = tokens.next()?;
    let seq = tokens.next()?.strip_prefix("seq=")?.parse().ok()?;
    let fields = tokens.filter_map(|t| t.split_once('=')).collect();
    Some(Event {
        vt,
        stage,
        seq,
        fields,
    })
}

/// Splits a concatenated committed trace into sections: each run of `# `
/// header lines opens a new section owning the event lines that follow.
fn sections(trace: &str) -> Vec<Section<'_>> {
    let mut out: Vec<Section<'_>> = Vec::new();
    for line in trace.lines() {
        if let Some(header) = line.strip_prefix("# ") {
            match out.last_mut() {
                Some(s) if s.events.is_empty() => s.headers.push(header),
                _ => out.push(Section {
                    headers: vec![header],
                    events: Vec::new(),
                }),
            }
        } else if let Some(ev) = parse_event(line) {
            if let Some(s) = out.last_mut() {
                s.events.push(ev);
            }
        }
    }
    out
}

/// Reads a `key=value` token off a whitespace-separated header line
/// (spec strings never contain spaces; trailing free-form fields like
/// the debug-printed arrival model are simply never looked up).
fn header_field<'a>(headers: &[&'a str], key: &str) -> Option<&'a str> {
    let prefix = format!("{key}=");
    headers.iter().find_map(|h| {
        h.split_whitespace()
            .find_map(|t| t.strip_prefix(prefix.as_str()))
    })
}

/// The acceptable root-cause set(s) implied by the injected ground
/// truth: one disjunction per injected cause.
fn expected_causes(fault: &str, has_scenario: bool) -> Vec<Vec<RootCauseKind>> {
    use RootCauseKind::*;
    let mut expected = Vec::new();
    if !fault.is_empty() {
        let vector = fault.split('/').next().unwrap_or("");
        let set = if vector.starts_with("dead:") || vector.starts_with("stuck:") {
            vec![SensorFault]
        } else if let Some(rest) = vector.strip_prefix("drift:") {
            // A drifting rail readback is observationally close to a real
            // supply transient: either discrimination is acceptable.
            if rest.split(':').next() == Some("rail") {
                vec![SensorFault, SupplyTransient]
            } else {
                vec![SensorFault]
            }
        } else if vector.starts_with("glitch:") {
            vec![SupplyTransient]
        } else if vector == "crash" {
            vec![Crash]
        } else {
            Vec::new()
        };
        if !set.is_empty() {
            expected.push(set);
        }
    }
    if has_scenario {
        expected.push(vec![Trojan]);
    }
    expected
}

/// The root cause one audit event testifies to, if any.
fn observed_cause(ev: &Event<'_>) -> Option<RootCauseKind> {
    match ev.name() {
        "sensor_mask" | "sensor_quarantine" => Some(RootCauseKind::SensorFault),
        "rail_glitch" => Some(RootCauseKind::SupplyTransient),
        "crash" => Some(RootCauseKind::Crash),
        "implicate" => Some(RootCauseKind::Trojan),
        "unlocalized" if ev.field("action") == Some("failover") => Some(RootCauseKind::Trojan),
        _ => None,
    }
}

/// Reconstructs one incident from a parsed section, or `None` for a
/// clean section (nothing injected ⇒ nothing to report).
fn reconstruct(section: &Section<'_>, slo: &SloSpec) -> Option<IncidentReport> {
    let headers = &section.headers;
    let (id, kind) = if let Some(case) = header_field(headers, "case") {
        let kind = header_field(headers, "kind").unwrap_or("").to_string();
        (format!("case={case}"), kind)
    } else {
        let spec = header_field(headers, "scenario")?;
        (format!("scenario={spec}"), "serving".to_string())
    };
    let fault = header_field(headers, "fault").unwrap_or("").to_string();
    let scenario = header_field(headers, "scenario").unwrap_or("").to_string();
    if fault.is_empty() && scenario.is_empty() {
        return None;
    }
    let trojan_onset = header_field(headers, "trojan_onset")
        .or_else(|| header_field(headers, "onset"))
        .and_then(|v| v.parse::<u64>().ok());
    let fault_onset = fault.split('/').nth(3).and_then(|v| v.parse::<u64>().ok());
    let onset_batch = match (fault_onset, scenario.is_empty()) {
        (Some(f), false) => f.min(trojan_onset.unwrap_or(f)),
        (Some(f), true) => f,
        (None, _) => trojan_onset.unwrap_or(0),
    };

    // Events sorted by (vt, stage, seq, text) already; scan member 0, the
    // member every injection lands on.
    let on_member0 = |ev: &&Event<'_>| ev.member().is_none_or(|m| m == 0);

    let mut observed: Vec<RootCauseKind> = Vec::new();
    let mut detected: Option<Milestone> = None;
    let mut discriminated: Option<Milestone> = None;
    let mut remediated: Option<Milestone> = None;
    let mut recovered: Option<Milestone> = None;
    let mut alerts: Vec<String> = Vec::new();
    for ev in section.events.iter().filter(on_member0) {
        let name = ev.name();
        if ev.stage == "alert" {
            if let Some(rule) = ev.field("rule") {
                alerts.push(rule.to_string());
            }
            continue;
        }
        if let Some(cause) = observed_cause(ev) {
            if !observed.contains(&cause) {
                observed.push(cause);
            }
        }
        // Detection: the first anomalous telemetry — an alarmed batch, a
        // crash, or any policy verdict (the sensor-health screen can mask
        // a dead readback before the detectors alarm).
        let anomalous = (name == "batch" && ev.field("alarmed") == Some("true"))
            || ev.stage == "crash"
            || ev.stage == "policy";
        if anomalous && detected.is_none() {
            detected = Some(ev.milestone());
        }
        // Discrimination: the first policy verdict. A bare crash needs no
        // discrimination — the crash event is its own diagnosis.
        if discriminated.is_none() && (ev.stage == "policy" || ev.stage == "crash") {
            discriminated = Some(ev.milestone());
        }
        // Remediation: the first action taken — a maintenance verdict,
        // a remap/failover, or a crash restart (beginning at the crash).
        let action = ev.field("action");
        let acted =
            matches!(action, Some("maintenance" | "remap" | "failover")) || ev.stage == "crash";
        if acted && remediated.is_none() {
            remediated = Some(ev.milestone());
        }
        // Recovery completion: cache recovery after a crash, or every
        // mask cleared after a transient sensor verdict.
        if recovered.is_none() && (ev.stage == "recover" || name == "mask_clear") {
            recovered = Some(ev.milestone());
        }
    }
    // When the remediation action itself restores service (remap,
    // failover, standing maintenance mask), recovery coincides with it.
    if recovered.is_none() {
        recovered = remediated.clone();
    }

    let expected = expected_causes(&fault, !scenario.is_empty());
    let root_cause_match = !expected.is_empty()
        && expected
            .iter()
            .all(|set| set.iter().any(|k| observed.contains(k)));

    let detection_latency_batches = detected.as_ref().map_or(f64::NAN, |m| {
        (m.batch.saturating_sub(onset_batch) + 1) as f64
    });
    let recovery_latency_batches = match (&detected, &recovered) {
        (Some(d), Some(r)) => r.batch.saturating_sub(d.batch) as f64,
        _ => f64::NAN,
    };

    // SLO impact: degraded requests inside the incident window, against
    // the whole stream's availability error budget. Shed requests are not
    // batch-attributed, so the burn is measured on degraded service only.
    let window = detected
        .as_ref()
        .zip(recovered.as_ref())
        .map(|(d, r)| (d.vt, r.vt));
    let mut degraded_requests = 0u64;
    let mut total = 0u64;
    for ev in &section.events {
        if ev.name() == "stream_end" {
            let n = |k: &str| ev.field(k).and_then(|v| v.parse::<u64>().ok()).unwrap_or(0);
            total = n("served") + n("unserved") + n("shed");
        }
        if let Some((lo, hi)) = window {
            if ev.name() == "batch"
                && ev.field("degraded") == Some("true")
                && (lo..=hi).contains(&ev.vt)
            {
                degraded_requests += ev
                    .field("size")
                    .and_then(|v| v.parse::<u64>().ok())
                    .unwrap_or(0);
            }
        }
    }
    let budget = (1.0 - slo.availability) * total as f64;
    let budget_burn = if budget > 0.0 {
        degraded_requests as f64 / budget
    } else if degraded_requests > 0 {
        f64::INFINITY
    } else {
        0.0
    };

    Some(IncidentReport {
        id,
        kind,
        fault,
        scenario,
        onset_batch,
        expected,
        observed,
        root_cause_match,
        detected,
        discriminated,
        remediated,
        recovered,
        detection_latency_batches,
        recovery_latency_batches,
        degraded_requests,
        budget_burn,
        alerts,
    })
}

/// Reconstructs one [`IncidentReport`] per injected fault/attack from a
/// concatenated committed trace (chaos and serving sections both parse).
/// Clean sections yield nothing. Deterministic: a pure function of the
/// trace bytes and the spec.
#[must_use]
pub fn incidents_from_trace(trace: &str, slo: &SloSpec) -> Vec<IncidentReport> {
    sections(trace)
        .iter()
        .filter_map(|s| reconstruct(s, slo))
        .collect()
}

fn fmt_num(v: f64) -> String {
    if v.is_nan() {
        "nan".to_string()
    } else if v.is_infinite() {
        "inf".to_string()
    } else {
        format!("{v}")
    }
}

fn fmt_expected(expected: &[Vec<RootCauseKind>]) -> String {
    if expected.is_empty() {
        return "none".to_string();
    }
    expected
        .iter()
        .map(|set| set.iter().map(|k| k.label()).collect::<Vec<_>>().join("|"))
        .collect::<Vec<_>>()
        .join("+")
}

fn fmt_observed(observed: &[RootCauseKind]) -> String {
    if observed.is_empty() {
        return "none".to_string();
    }
    observed
        .iter()
        .map(|k| k.label())
        .collect::<Vec<_>>()
        .join("+")
}

fn fmt_milestone(m: &Option<Milestone>) -> String {
    match m {
        Some(m) => format!("vt={:06} batch={:06} event={}", m.vt, m.batch, m.event),
        None => "never".to_string(),
    }
}

/// Renders incident reports as the human-facing text artifact.
#[must_use]
pub fn incidents_txt(incidents: &[IncidentReport]) -> String {
    let mut out = String::new();
    out.push_str("# incident forensics: one report per injected fault/attack\n");
    for r in incidents {
        out.push_str(&format!(
            "incident {} kind={} fault={} scenario={} onset={}\n",
            r.id, r.kind, r.fault, r.scenario, r.onset_batch
        ));
        out.push_str(&format!(
            "  root_cause observed={} expected={} match={}\n",
            fmt_observed(&r.observed),
            fmt_expected(&r.expected),
            r.root_cause_match
        ));
        out.push_str(&format!("  detected      {}\n", fmt_milestone(&r.detected)));
        out.push_str(&format!(
            "  discriminated {}\n",
            fmt_milestone(&r.discriminated)
        ));
        out.push_str(&format!(
            "  remediated    {}\n",
            fmt_milestone(&r.remediated)
        ));
        out.push_str(&format!(
            "  recovered     {}\n",
            fmt_milestone(&r.recovered)
        ));
        out.push_str(&format!(
            "  detection_latency_batches={} recovery_latency_batches={}\n",
            fmt_num(r.detection_latency_batches),
            fmt_num(r.recovery_latency_batches)
        ));
        out.push_str(&format!(
            "  degraded_requests={} budget_burn={} alerts={}\n",
            r.degraded_requests,
            fmt_num(r.budget_burn),
            if r.alerts.is_empty() {
                "none".to_string()
            } else {
                r.alerts.join("+")
            }
        ));
    }
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_milestone(m: &Option<Milestone>) -> String {
    match m {
        Some(m) => format!(
            "{{\"vt\":{},\"batch\":{},\"event\":{}}}",
            m.vt,
            m.batch,
            json_str(&m.event)
        ),
        None => "null".to_string(),
    }
}

/// Renders incident reports as the machine-facing JSON artifact.
#[must_use]
pub fn incidents_json(incidents: &[IncidentReport]) -> String {
    let mut out = String::from("{\n  \"incidents\": [\n");
    for (i, r) in incidents.iter().enumerate() {
        let expected: Vec<String> = r
            .expected
            .iter()
            .map(|set| {
                format!(
                    "[{}]",
                    set.iter()
                        .map(|k| json_str(k.label()))
                        .collect::<Vec<_>>()
                        .join(",")
                )
            })
            .collect();
        let observed: Vec<String> = r.observed.iter().map(|k| json_str(k.label())).collect();
        let alerts: Vec<String> = r.alerts.iter().map(|a| json_str(a)).collect();
        out.push_str(&format!(
            "    {{\"id\": {}, \"kind\": {}, \"fault\": {}, \"scenario\": {}, \
             \"onset_batch\": {}, \"expected\": [{}], \"observed\": [{}], \
             \"root_cause_match\": {}, \"detected\": {}, \"discriminated\": {}, \
             \"remediated\": {}, \"recovered\": {}, \"detection_latency_batches\": {}, \
             \"recovery_latency_batches\": {}, \"degraded_requests\": {}, \
             \"budget_burn\": {}, \"alerts\": [{}]}}{}\n",
            json_str(&r.id),
            json_str(&r.kind),
            json_str(&r.fault),
            json_str(&r.scenario),
            r.onset_batch,
            expected.join(","),
            observed.join(","),
            r.root_cause_match,
            json_milestone(&r.detected),
            json_milestone(&r.discriminated),
            json_milestone(&r.remediated),
            json_milestone(&r.recovered),
            json_num(r.detection_latency_batches),
            json_num(r.recovery_latency_batches),
            r.degraded_requests,
            json_num(r.budget_burn),
            alerts.join(","),
            if i + 1 < incidents.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_trace() -> String {
        // A hand-built two-section trace exercising the parser: a chaos
        // crash case and a serving trojan section.
        concat!(
            "# case=07 kind=fault fault=crash/both/0/8/0 scenario= trojan_onset=8\n",
            "vt=000010 admission  seq=000010 event=admit admitted=6 shed=0 depth=6\n",
            "vt=000016 crash      seq=000000 event=crash member=0 batch=8 restart_until=000020\n",
            "vt=000024 recover    seq=000000 event=recover member=0 batch=12 latency_batches=4\n",
            "vt=000040 summary    seq=000000 event=stream_end served=100 unserved=4 shed=4 healthy=90 ticks=40\n",
            "# scenario=actuation/both/0.1/0/targeted:8 onset=8 arrival=Closed\n",
            "vt=000018 serve      seq=000009 event=batch member=0 size=6 worst=9.1 alarmed=true masked=0 degraded=true\n",
            "vt=000019 policy     seq=000009 event=implicate member=0 banks=[conv:1(z=9.100)] score=9.1000 action=remap quarantined=1\n",
            "vt=000030 summary    seq=000000 event=stream_end served=96 unserved=0 shed=0 healthy=84 ticks=30\n",
            "vt=000019 alert      seq=000000 event=alert_firing rule=availability_below_target series=serve_availability value=0.8750 threshold=0.9\n",
        )
        .to_string()
    }

    #[test]
    fn crash_section_reconstructs_full_timeline() {
        let slo = SloSpec::default();
        let incidents = incidents_from_trace(&demo_trace(), &slo);
        assert_eq!(incidents.len(), 2);
        let crash = &incidents[0];
        assert_eq!(crash.id, "case=07");
        assert_eq!(crash.kind, "fault");
        assert_eq!(crash.observed, [RootCauseKind::Crash]);
        assert!(crash.root_cause_match);
        assert_eq!(crash.onset_batch, 8);
        // crash at batch 8 = detection, discrimination and remediation;
        // the recover event completes the incident.
        for m in [&crash.detected, &crash.discriminated, &crash.remediated] {
            assert_eq!(m.as_ref().unwrap().event, "crash");
            assert_eq!(m.as_ref().unwrap().batch, 8);
        }
        assert_eq!(crash.recovered.as_ref().unwrap().event, "recover");
        assert_eq!(crash.detection_latency_batches, 1.0);
        assert_eq!(crash.recovery_latency_batches, 4.0);
        assert!(crash.alerts.is_empty());
    }

    #[test]
    fn trojan_section_classifies_and_burns_budget() {
        let slo = SloSpec::default();
        let incidents = incidents_from_trace(&demo_trace(), &slo);
        let trojan = &incidents[1];
        assert_eq!(trojan.kind, "serving");
        assert_eq!(trojan.observed, [RootCauseKind::Trojan]);
        assert!(trojan.root_cause_match);
        assert_eq!(trojan.detected.as_ref().unwrap().event, "batch");
        assert_eq!(trojan.discriminated.as_ref().unwrap().event, "implicate");
        // Remap is both remediation and recovery.
        assert_eq!(trojan.recovered, trojan.remediated);
        // 6 degraded requests in the window over a budget of 0.1 × 96.
        assert_eq!(trojan.degraded_requests, 6);
        assert!((trojan.budget_burn - 6.0 / 9.6).abs() < 1e-12);
        assert_eq!(trojan.alerts, ["availability_below_target"]);
    }

    #[test]
    fn ordering_detection_to_recovery_holds() {
        let slo = SloSpec::default();
        for r in incidents_from_trace(&demo_trace(), &slo) {
            let seq = [&r.detected, &r.discriminated, &r.remediated, &r.recovered];
            for pair in seq.windows(2) {
                let (a, b) = (pair[0].as_ref().unwrap(), pair[1].as_ref().unwrap());
                assert!(a.vt <= b.vt, "{:?}", r.id);
            }
        }
    }

    #[test]
    fn rail_drift_accepts_either_discrimination() {
        let expected = expected_causes("drift:rail:-0.002:0.0005/both/0.5/8/0", false);
        assert_eq!(expected.len(), 1);
        assert!(expected[0].contains(&RootCauseKind::SensorFault));
        assert!(expected[0].contains(&RootCauseKind::SupplyTransient));
        // Other drifts only accept the sensor-fault reading.
        let temp = expected_causes("drift:temp:0.05:0.01/fc/0.25/8/0", false);
        assert_eq!(temp, [[RootCauseKind::SensorFault]]);
    }

    #[test]
    fn clean_sections_yield_nothing() {
        let trace = "# case=00 kind=clean fault= scenario= trojan_onset=8\n\
                     vt=000001 admission  seq=000001 event=admit admitted=6 shed=0 depth=6\n";
        assert!(incidents_from_trace(trace, &SloSpec::default()).is_empty());
    }

    #[test]
    fn renderers_cover_every_incident() {
        let slo = SloSpec::default();
        let incidents = incidents_from_trace(&demo_trace(), &slo);
        let txt = incidents_txt(&incidents);
        assert!(txt.contains("incident case=07"));
        assert!(txt.contains("incident scenario=actuation/both/0.1/0/targeted:8"));
        assert!(txt.contains("match=true"));
        let json = incidents_json(&incidents);
        assert!(json.contains("\"id\": \"case=07\""));
        assert!(json.contains("\"root_cause_match\": true"));
        assert!(json.contains("\"alerts\": [\"availability_below_target\"]"));
    }
}

//! Micro-batching of an ordered request stream.
//!
//! The scheduler's contract is deliberately narrow and fully
//! deterministic: requests are partitioned into contiguous, arrival-order
//! micro-batches of at most `batch_size` requests, every request lands in
//! exactly one batch, and per-request outcomes are reassembled in arrival
//! order. Which *accelerator* runs a batch is decided by the fleet's
//! routing (see [`crate::runtime`]), never by worker availability — that
//! is what makes serving results byte-identical across worker-thread
//! counts.

use safelight_neuro::Tensor;

/// One inference request in the stream.
#[derive(Debug, Clone)]
pub struct Request {
    /// Monotone arrival identifier (also the request's stream position).
    pub id: u64,
    /// The CHW input image.
    pub input: Tensor,
    /// Ground-truth label, carried for evaluation-time accuracy
    /// bookkeeping only — the runtime never reads it before predicting.
    pub label: usize,
}

/// The served result of one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestOutcome {
    /// The request's arrival identifier.
    pub id: u64,
    /// Ground-truth label (copied from the request).
    pub label: usize,
    /// The class the serving accelerator predicted.
    pub prediction: usize,
    /// Fleet member that served the request.
    pub member: usize,
    /// Global micro-batch index the request was served in.
    pub batch: u64,
    /// Whether the serving member was compromised with no remediation
    /// applied yet when the batch ran — the bit behind the availability
    /// metric. A remediation clears it even when partial (residual
    /// corruption on unimplicated rings is visible in the post-recovery
    /// accuracy instead, which is measured, not believed).
    pub degraded_service: bool,
}

/// Partitions `count` requests into contiguous micro-batches of at most
/// `batch_size` (minimum 1), in arrival order.
///
/// Every returned range is non-empty, the ranges are disjoint, ordered and
/// cover `0..count` exactly.
///
/// # Example
///
/// ```
/// let batches = safelight_serve::scheduler::partition(10, 4);
/// assert_eq!(batches, vec![0..4, 4..8, 8..10]);
/// ```
#[must_use]
pub fn partition(count: usize, batch_size: usize) -> Vec<std::ops::Range<usize>> {
    let batch_size = batch_size.max(1);
    let mut out = Vec::with_capacity(count.div_ceil(batch_size));
    let mut start = 0;
    while start < count {
        let end = (start + batch_size).min(count);
        out.push(start..end);
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn partition_handles_edges() {
        assert!(partition(0, 8).is_empty());
        assert_eq!(partition(1, 8), vec![0..1]);
        assert_eq!(partition(8, 8), vec![0..8]);
        // A zero batch size clamps to one request per batch.
        assert_eq!(partition(3, 0), vec![0..1, 1..2, 2..3]);
    }

    proptest! {
        #[test]
        fn partition_preserves_order_and_drops_nothing(
            count in 0usize..500,
            batch_size in 0usize..33,
        ) {
            let ranges = partition(count, batch_size);
            // Contiguous, ordered, non-empty and exactly covering.
            let mut cursor = 0usize;
            for r in &ranges {
                prop_assert_eq!(r.start, cursor);
                prop_assert!(r.end > r.start);
                prop_assert!(r.end - r.start <= batch_size.max(1));
                cursor = r.end;
            }
            prop_assert_eq!(cursor, count);
            // Only the tail batch may be short.
            for r in ranges.iter().rev().skip(1) {
                prop_assert_eq!(r.end - r.start, batch_size.max(1));
            }
        }
    }
}

//! The request plane: arrival processes, bounded admission and
//! micro-batching of an ordered request stream.
//!
//! The scheduler separates *when requests arrive* from *when they
//! execute*. An [`ArrivalModel`] stamps every request with a virtual
//! arrival time (in tick units, replayable from the in-tree xoshiro
//! RNG), an [`AdmissionQueue`] bounds how many admitted-but-unserved
//! requests the fleet will hold before shedding load, and the runtime's
//! continuous batcher fills each tick's micro-batches from whatever has
//! arrived (see [`crate::runtime`]).
//!
//! The contract stays deliberately narrow and fully deterministic:
//! requests are admitted in arrival order, each admitted request lands in
//! exactly one batch, batches preserve admission order, and per-request
//! outcomes are reassembled in arrival order. Which *accelerator* runs a
//! batch is decided by the fleet's routing, never by worker availability
//! — that is what keeps serving results byte-identical across
//! worker-thread counts. Virtual time makes the arrival process equally
//! deterministic: a tick is one unit of virtual time, every arrival
//! timestamp is drawn from a seeded generator, and the wall clock is
//! never consulted.
//!
//! [`partition`] survives as the degenerate closed-loop case: at arrival
//! rate ∞ every request is present before tick 0 and the continuous
//! batcher reproduces the old contiguous partition byte-for-byte.

use std::collections::VecDeque;
use std::fmt;
use std::str::FromStr;

use safelight::attack::fold;
use safelight_neuro::{SimRng, Tensor};

/// Stream-selection constant folded into arrival-schedule seeds so the
/// arrival draws never alias the attack/telemetry/noise streams that are
/// derived from the same experiment seed.
const ARRIVAL_STREAM: u64 = 0xA441_7A1E_0F10_AD5C;

/// One inference request in the stream.
#[derive(Debug, Clone)]
pub struct Request {
    /// Monotone arrival identifier (also the request's stream position).
    pub id: u64,
    /// The CHW input image.
    pub input: Tensor,
    /// Virtual arrival time in tick units. Tick `t` spans virtual time
    /// `[t, t+1)`; a request with `arrived_at <= t` is eligible for
    /// admission at tick `t`. Closed-loop callers set `0.0` (everything
    /// arrived before serving started).
    pub arrived_at: f64,
}

/// The served result of one request.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestOutcome {
    /// The request's arrival identifier.
    pub id: u64,
    /// The class the serving accelerator predicted.
    pub prediction: usize,
    /// Fleet member that served the request.
    pub member: usize,
    /// Global micro-batch index the request was served in.
    pub batch: u64,
    /// Whether the serving member was compromised with no remediation
    /// applied yet when the batch ran — the bit behind the availability
    /// metric. A remediation clears it even when partial (residual
    /// corruption on unimplicated rings is visible in the post-recovery
    /// accuracy instead, which is measured, not believed).
    pub degraded_service: bool,
    /// Virtual ticks the request waited in the admission queue before its
    /// batch was dispatched: `dispatch_tick - arrived_at`.
    pub queue_delay: f64,
    /// End-to-end virtual-time latency: queueing plus the one tick of
    /// execution, `(dispatch_tick + 1) - arrived_at`.
    pub service_latency: f64,
}

/// An open-loop arrival process in virtual time.
///
/// Rates are in requests per tick (one tick = one micro-batch round of
/// the fleet). [`ArrivalModel::Closed`] is the rate-∞ degenerate case:
/// every request is already queued when serving starts, which reproduces
/// the pre-request-plane closed-loop scheduler exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalModel {
    /// Closed loop: all requests arrive at virtual time 0 (rate = ∞).
    Closed,
    /// Poisson arrivals: i.i.d. exponential inter-arrival gaps with mean
    /// `1 / rate` ticks.
    Poisson {
        /// Mean arrival rate in requests per tick; finite and positive.
        rate: f64,
    },
    /// Bursty (batch-Poisson) arrivals: burst epochs arrive as a Poisson
    /// process at rate `rate / burst`, and every request in a burst
    /// shares its epoch's arrival time — same long-run rate as
    /// [`ArrivalModel::Poisson`], far heavier instantaneous load.
    Bursty {
        /// Mean arrival rate in requests per tick; finite and positive.
        rate: f64,
        /// Requests per burst epoch (minimum 1).
        burst: usize,
    },
}

impl ArrivalModel {
    /// The long-run offered load in requests per tick (∞ for
    /// [`ArrivalModel::Closed`]).
    #[must_use]
    pub fn rate(&self) -> f64 {
        match *self {
            ArrivalModel::Closed => f64::INFINITY,
            ArrivalModel::Poisson { rate } | ArrivalModel::Bursty { rate, .. } => rate,
        }
    }

    /// Whether the model's parameters are usable (finite positive rate,
    /// non-zero burst).
    #[must_use]
    pub fn is_valid(&self) -> bool {
        match *self {
            ArrivalModel::Closed => true,
            ArrivalModel::Poisson { rate } => rate.is_finite() && rate > 0.0,
            ArrivalModel::Bursty { rate, burst } => rate.is_finite() && rate > 0.0 && burst >= 1,
        }
    }

    /// Draws a replayable arrival schedule for `count` requests:
    /// non-decreasing virtual arrival times in tick units, fully
    /// determined by `(self, seed)`.
    ///
    /// # Example
    ///
    /// ```
    /// use safelight_serve::scheduler::ArrivalModel;
    ///
    /// let model = ArrivalModel::Poisson { rate: 4.0 };
    /// let a = model.schedule(100, 7);
    /// let b = model.schedule(100, 7);
    /// assert_eq!(a, b); // replay-deterministic per (seed, rate)
    /// assert!(a.windows(2).all(|w| w[0] <= w[1]));
    /// ```
    #[must_use]
    pub fn schedule(&self, count: usize, seed: u64) -> Vec<f64> {
        match *self {
            ArrivalModel::Closed => vec![0.0; count],
            ArrivalModel::Poisson { rate } => {
                let mut rng = SimRng::seed_from(fold(fold(seed, ARRIVAL_STREAM), rate.to_bits()));
                let mut t = 0.0;
                (0..count)
                    .map(|_| {
                        t += exponential(&mut rng, rate);
                        t
                    })
                    .collect()
            }
            ArrivalModel::Bursty { rate, burst } => {
                let burst = burst.max(1);
                let mut rng = SimRng::seed_from(fold(
                    fold(fold(seed, ARRIVAL_STREAM), rate.to_bits()),
                    burst as u64,
                ));
                let epoch_rate = rate / burst as f64;
                let mut out = Vec::with_capacity(count);
                let mut t = 0.0;
                while out.len() < count {
                    t += exponential(&mut rng, epoch_rate);
                    for _ in 0..burst.min(count - out.len()) {
                        out.push(t);
                    }
                }
                out
            }
        }
    }
}

/// Inverse-CDF exponential draw with the given rate; `1 - u` keeps the
/// argument in `(0, 1]` so the draw is finite and non-negative.
fn exponential(rng: &mut SimRng, rate: f64) -> f64 {
    -(1.0 - rng.uniform()).ln() / rate
}

impl fmt::Display for ArrivalModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ArrivalModel::Closed => write!(f, "closed"),
            ArrivalModel::Poisson { rate } => write!(f, "poisson:{rate}"),
            ArrivalModel::Bursty { rate, burst } => write!(f, "bursty:{rate}:{burst}"),
        }
    }
}

impl FromStr for ArrivalModel {
    type Err = String;

    /// Parses `closed` (aliases `inf`/`infinite`), `poisson:RATE`, or
    /// `bursty:RATE[:BURST]` (default burst 4), with rates in requests
    /// per tick.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split(':');
        let kind = parts.next().unwrap_or("");
        let model = match kind {
            "closed" | "inf" | "infinite" => ArrivalModel::Closed,
            "poisson" | "bursty" => {
                let rate: f64 = parts
                    .next()
                    .ok_or_else(|| format!("`{s}`: missing rate (e.g. `{kind}:8`)"))?
                    .parse()
                    .map_err(|e| format!("`{s}`: bad rate: {e}"))?;
                if kind == "poisson" {
                    ArrivalModel::Poisson { rate }
                } else {
                    let burst = match parts.next() {
                        Some(b) => b.parse().map_err(|e| format!("`{s}`: bad burst: {e}"))?,
                        None => 4,
                    };
                    ArrivalModel::Bursty { rate, burst }
                }
            }
            _ => {
                return Err(format!(
                    "`{s}`: expected `closed`, `poisson:RATE` or `bursty:RATE[:BURST]`"
                ))
            }
        };
        if parts.next().is_some() {
            return Err(format!("`{s}`: trailing fields"));
        }
        if !model.is_valid() {
            return Err(format!("`{s}`: rate must be finite and positive"));
        }
        Ok(model)
    }
}

/// A bounded FIFO admission queue over request stream positions.
///
/// Admission preserves arrival order; when the queue is full the offered
/// request is shed (counted, never served). Capacity 0 clamps to 1 so
/// the queue can always make progress.
#[derive(Debug, Clone)]
pub struct AdmissionQueue {
    capacity: usize,
    queue: VecDeque<usize>,
    shed: usize,
}

impl AdmissionQueue {
    /// An empty queue holding at most `capacity` admitted requests.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            queue: VecDeque::new(),
            shed: 0,
        }
    }

    /// Offers the request at stream position `index`; returns `false`
    /// (and counts it shed) when the queue is at capacity.
    pub fn offer(&mut self, index: usize) -> bool {
        if self.queue.len() >= self.capacity {
            self.shed += 1;
            return false;
        }
        self.queue.push_back(index);
        true
    }

    /// Takes up to `batch_size` requests off the front of the queue, in
    /// admission order — one continuous-batching micro-batch.
    #[must_use]
    pub fn take_batch(&mut self, batch_size: usize) -> Vec<usize> {
        let take = batch_size.max(1).min(self.queue.len());
        self.queue.drain(..take).collect()
    }

    /// Admitted-but-unserved requests currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Requests shed at admission so far.
    #[must_use]
    pub fn shed(&self) -> usize {
        self.shed
    }
}

/// Nearest-rank percentile of an ascending-sorted sample: the smallest
/// value with at least `q` of the sample at or below it. `q` is a
/// fraction in `(0, 1]`; an empty sample yields NaN.
#[must_use]
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Partitions `count` requests into contiguous micro-batches of at most
/// `batch_size` (minimum 1), in arrival order.
///
/// Every returned range is non-empty, the ranges are disjoint, ordered and
/// cover `0..count` exactly. This is the degenerate closed-loop schedule:
/// the continuous batcher at arrival rate ∞ produces exactly these
/// batches (a regression test in [`crate::runtime`] holds it to that).
///
/// # Example
///
/// ```
/// let batches = safelight_serve::scheduler::partition(10, 4);
/// assert_eq!(batches, vec![0..4, 4..8, 8..10]);
/// ```
#[must_use]
pub fn partition(count: usize, batch_size: usize) -> Vec<std::ops::Range<usize>> {
    let batch_size = batch_size.max(1);
    let mut out = Vec::with_capacity(count.div_ceil(batch_size));
    let mut start = 0;
    while start < count {
        let end = (start + batch_size).min(count);
        out.push(start..end);
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn partition_handles_edges() {
        assert!(partition(0, 8).is_empty());
        assert_eq!(partition(1, 8), vec![0..1]);
        assert_eq!(partition(8, 8), vec![0..8]);
        // A zero batch size clamps to one request per batch.
        assert_eq!(partition(3, 0), vec![0..1, 1..2, 2..3]);
    }

    #[test]
    fn arrival_model_round_trips_through_strings() {
        for (text, model) in [
            ("closed", ArrivalModel::Closed),
            ("poisson:8", ArrivalModel::Poisson { rate: 8.0 }),
            (
                "bursty:2.5:6",
                ArrivalModel::Bursty {
                    rate: 2.5,
                    burst: 6,
                },
            ),
        ] {
            let parsed: ArrivalModel = text.parse().unwrap();
            assert_eq!(parsed, model);
            assert_eq!(parsed.to_string().parse::<ArrivalModel>().unwrap(), model);
        }
        // Aliases and the default burst.
        assert_eq!("inf".parse::<ArrivalModel>().unwrap(), ArrivalModel::Closed);
        assert_eq!(
            "bursty:4".parse::<ArrivalModel>().unwrap(),
            ArrivalModel::Bursty {
                rate: 4.0,
                burst: 4
            }
        );
        // Degenerate rates and malformed strings are rejected.
        for bad in [
            "poisson:0",
            "poisson:-1",
            "poisson:inf",
            "poisson",
            "drip:3",
            "poisson:2:3",
        ] {
            assert!(bad.parse::<ArrivalModel>().is_err(), "`{bad}` parsed");
        }
    }

    #[test]
    fn closed_schedule_is_all_zeros() {
        assert_eq!(ArrivalModel::Closed.schedule(5, 99), vec![0.0; 5]);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let sample = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&sample, 0.5), 2.0);
        assert_eq!(percentile(&sample, 0.99), 4.0);
        assert_eq!(percentile(&sample, 0.25), 1.0);
        assert_eq!(percentile(&[7.0], 0.999), 7.0);
        assert!(percentile(&[], 0.5).is_nan());
    }

    proptest! {
        #[test]
        fn partition_preserves_order_and_drops_nothing(
            count in 0usize..500,
            batch_size in 0usize..33,
        ) {
            let ranges = partition(count, batch_size);
            // Contiguous, ordered, non-empty and exactly covering.
            let mut cursor = 0usize;
            for r in &ranges {
                prop_assert_eq!(r.start, cursor);
                prop_assert!(r.end > r.start);
                prop_assert!(r.end - r.start <= batch_size.max(1));
                cursor = r.end;
            }
            prop_assert_eq!(cursor, count);
            // Only the tail batch may be short.
            for r in ranges.iter().rev().skip(1) {
                prop_assert_eq!(r.end - r.start, batch_size.max(1));
            }
        }

        #[test]
        fn schedules_are_replay_deterministic_and_monotone(
            count in 0usize..300,
            rate_milli in 1u32..20_000,
            burst in 1usize..9,
            seed in 0u64..u64::MAX,
        ) {
            let rate = f64::from(rate_milli) / 1e3;
            for model in [
                ArrivalModel::Poisson { rate },
                ArrivalModel::Bursty { rate, burst },
            ] {
                let a = model.schedule(count, seed);
                // Same (model, seed) ⇒ the same schedule, draw for draw.
                prop_assert_eq!(&a, &model.schedule(count, seed));
                prop_assert_eq!(a.len(), count);
                for w in a.windows(2) {
                    prop_assert!(w[0] <= w[1]);
                }
                for t in &a {
                    prop_assert!(t.is_finite() && *t >= 0.0);
                }
            }
        }

        #[test]
        fn bursty_and_poisson_streams_differ_per_seed(
            rate_milli in 100u32..10_000,
            seed in 0u64..u64::MAX,
        ) {
            // Distinct seeds must not alias into the same arrival draws
            // (the schedule is keyed on seed, not just on the model).
            let rate = f64::from(rate_milli) / 1e3;
            let model = ArrivalModel::Poisson { rate };
            prop_assert!(model.schedule(16, seed) != model.schedule(16, seed ^ 0xDEAD_BEEF));
        }

        #[test]
        fn admission_never_reorders_admitted_requests(
            capacity in 1usize..12,
            offered in 0usize..200,
            drain in 0usize..5,
        ) {
            // Interleave offers with partial drains; everything popped
            // must come out in strictly increasing stream order and every
            // offer is either admitted or counted shed.
            let mut queue = AdmissionQueue::new(capacity);
            let mut admitted = 0usize;
            let mut popped = Vec::new();
            for index in 0..offered {
                if queue.offer(index) {
                    admitted += 1;
                }
                if index % 7 == drain {
                    popped.extend(queue.take_batch(2));
                }
            }
            while !queue.is_empty() {
                popped.extend(queue.take_batch(3));
            }
            prop_assert!(popped.windows(2).all(|w| w[0] < w[1]));
            prop_assert_eq!(popped.len(), admitted);
            prop_assert_eq!(admitted + queue.shed(), offered);
        }
    }
}

//! CSV and JSON renderers for the serving and chaos evaluations,
//! mirroring the style of `safelight::eval`'s figure emitters: `f64`
//! values print through `Display` (exact round-trip), `NaN` renders as an
//! empty CSV field and a JSON `null`, and row order equals case input
//! order — so the artifacts are byte-identical across worker-thread
//! counts.

use safelight::eval::{json_num, json_str};
use safelight_obs::SloVerdict;

use crate::chaos::ChaosReport;
use crate::eval::{RateSweepReport, ServingReport};

fn csv_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        String::new()
    }
}

/// The violated-objective list as one CSV/JSON token (`none` when clean).
fn slo_violations(v: &SloVerdict) -> String {
    if v.violated.is_empty() {
        "none".to_string()
    } else {
        v.violated.join("+")
    }
}

/// The three SLO verdict CSV fields (`pass,violations,budget_burn`),
/// empty when no spec was attached. Infinite burn renders empty like NaN.
fn slo_csv(slo: &Option<SloVerdict>) -> String {
    match slo {
        Some(v) => format!(
            "{},{},{}",
            u8::from(v.pass),
            slo_violations(v),
            csv_num(v.budget_burn)
        ),
        None => ",,".to_string(),
    }
}

/// The SLO verdict JSON keys with a leading comma, `null`s when no spec
/// was attached.
fn slo_json(slo: &Option<SloVerdict>) -> String {
    match slo {
        Some(v) => format!(
            ",\"slo_pass\":{},\"slo_violations\":{},\"slo_budget_burn\":{}",
            v.pass,
            json_str(&slo_violations(v)),
            json_num(v.budget_burn)
        ),
        None => ",\"slo_pass\":null,\"slo_violations\":null,\"slo_budget_burn\":null".to_string(),
    }
}

/// Renders a serving report as CSV: `# clean_accuracy`, stream-shape,
/// `# arrival` and `# threshold` header lines, then one
/// `vector,selection,target,fraction,trial,effective_fraction,pre_onset,degraded,recovered,baseline_post,detect_latency,recovery_latency,action,remapped,unplaced,availability,p50_latency,p99_latency,p999_latency,throughput,shed_rate,slo_pass,slo_violations,slo_budget_burn`
/// row per scenario (the three SLO fields are empty when no spec was
/// attached).
///
/// # Example
///
/// ```
/// use safelight_serve::eval::ServingReport;
/// use safelight_serve::report::serving_csv;
/// use safelight_serve::scheduler::ArrivalModel;
///
/// let report = ServingReport {
///     detectors: vec!["guard_band".into()],
///     thresholds: vec![4.5],
///     clean_accuracy: 0.97,
///     batches: 24,
///     batch_size: 8,
///     fleet_size: 2,
///     onset_batch: 8,
///     arrival: ArrivalModel::Closed,
///     rows: vec![],
/// };
/// assert!(serving_csv(&report).starts_with("# clean_accuracy,0.97"));
/// ```
#[must_use]
pub fn serving_csv(report: &ServingReport) -> String {
    let mut out = format!("# clean_accuracy,{}\n", report.clean_accuracy);
    out.push_str(&format!(
        "# stream,batches,{},batch_size,{},fleet,{},onset,{}\n",
        report.batches, report.batch_size, report.fleet_size, report.onset_batch
    ));
    out.push_str(&format!("# arrival,{}\n", report.arrival));
    for (name, threshold) in report.detectors.iter().zip(&report.thresholds) {
        out.push_str(&format!("# threshold,{name},{threshold}\n"));
    }
    out.push_str(
        "vector,selection,target,fraction,trial,effective_fraction,pre_onset,degraded,\
         recovered,baseline_post,detect_latency,recovery_latency,action,remapped,unplaced,\
         availability,p50_latency,p99_latency,p999_latency,throughput,shed_rate,\
         slo_pass,slo_violations,slo_budget_burn\n",
    );
    for r in &report.rows {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            r.scenario.vector_label(),
            r.scenario.selection,
            r.scenario.target,
            r.scenario.fraction,
            r.scenario.trial,
            r.effective_fraction,
            csv_num(r.pre_onset_accuracy),
            csv_num(r.degraded_accuracy),
            csv_num(r.recovered_accuracy),
            csv_num(r.baseline_post_accuracy),
            csv_num(r.detection_latency_batches),
            csv_num(r.recovery_latency_batches),
            r.action,
            r.remapped_rings,
            r.unplaced_rings,
            csv_num(r.availability),
            csv_num(r.p50_latency),
            csv_num(r.p99_latency),
            csv_num(r.p999_latency),
            csv_num(r.throughput),
            csv_num(r.shed_rate),
            slo_csv(&r.slo),
        ));
    }
    out
}

/// Renders a serving report as a JSON object mirroring
/// [`serving_csv`]'s columns, with an `operating` array of
/// detector/threshold pairs.
#[must_use]
pub fn serving_json(report: &ServingReport) -> String {
    let operating: Vec<String> = report
        .detectors
        .iter()
        .zip(&report.thresholds)
        .map(|(name, threshold)| {
            format!(
                "{{\"detector\":{},\"threshold\":{}}}",
                json_str(name),
                json_num(*threshold)
            )
        })
        .collect();
    let rows: Vec<String> = report
        .rows
        .iter()
        .map(|r| {
            format!(
                "{{\"vector\":{},\"selection\":{},\"target\":{},\"fraction\":{},\
                 \"trial\":{},\"effective_fraction\":{},\"pre_onset\":{},\"degraded\":{},\
                 \"recovered\":{},\"baseline_post\":{},\"detect_latency\":{},\
                 \"recovery_latency\":{},\"action\":{},\"remapped\":{},\"unplaced\":{},\
                 \"availability\":{},\"p50_latency\":{},\"p99_latency\":{},\
                 \"p999_latency\":{},\"throughput\":{},\"shed_rate\":{}{}}}",
                json_str(&r.scenario.vector_label()),
                json_str(r.scenario.selection.label()),
                json_str(&r.scenario.target.to_string()),
                json_num(r.scenario.fraction),
                r.scenario.trial,
                json_num(r.effective_fraction),
                json_num(r.pre_onset_accuracy),
                json_num(r.degraded_accuracy),
                json_num(r.recovered_accuracy),
                json_num(r.baseline_post_accuracy),
                json_num(r.detection_latency_batches),
                json_num(r.recovery_latency_batches),
                json_str(&r.action),
                r.remapped_rings,
                r.unplaced_rings,
                json_num(r.availability),
                json_num(r.p50_latency),
                json_num(r.p99_latency),
                json_num(r.p999_latency),
                json_num(r.throughput),
                json_num(r.shed_rate),
                slo_json(&r.slo),
            )
        })
        .collect();
    format!(
        "{{\"clean_accuracy\":{},\"batches\":{},\"batch_size\":{},\"fleet_size\":{},\
         \"onset_batch\":{},\"arrival\":{},\"operating\":[{}],\"rows\":[{}]}}",
        json_num(report.clean_accuracy),
        report.batches,
        report.batch_size,
        report.fleet_size,
        report.onset_batch,
        json_str(&report.arrival.to_string()),
        operating.join(","),
        rows.join(",")
    )
}

/// Renders a chaos report as CSV: `# clean_accuracy`, stream-shape,
/// `# arrival`, `# threshold` and `# rate` header lines, then one
/// `kind,fault,scenario,trojan_detected,spurious_quarantine,maintenance_events,crash_recovery,post_accuracy,availability,action,p99_latency,throughput,shed_rate,slo_pass,slo_violations,slo_budget_burn`
/// row per grid case (the three SLO fields are empty when no spec was
/// attached).
#[must_use]
pub fn chaos_csv(report: &ChaosReport) -> String {
    let mut out = format!("# clean_accuracy,{}\n", report.clean_accuracy);
    out.push_str(&format!(
        "# stream,batches,{},batch_size,{},fleet,{},onset,{}\n",
        report.batches, report.batch_size, report.fleet_size, report.onset_batch
    ));
    out.push_str(&format!("# arrival,{}\n", report.arrival));
    for (name, threshold) in report.detectors.iter().zip(&report.thresholds) {
        out.push_str(&format!("# threshold,{name},{threshold}\n"));
    }
    out.push_str(&format!(
        "# rate,spurious_quarantine,{},trojan_tpr,{},overlap_missed,{},mean_crash_recovery,{}\n",
        csv_num(report.spurious_quarantine_rate),
        csv_num(report.trojan_tpr),
        csv_num(report.overlap_missed_rate),
        csv_num(report.mean_crash_recovery_batches),
    ));
    out.push_str(
        "kind,fault,scenario,trojan_detected,spurious_quarantine,maintenance_events,\
         crash_recovery,post_accuracy,availability,action,p99_latency,throughput,shed_rate,\
         slo_pass,slo_violations,slo_budget_burn\n",
    );
    for r in &report.rows {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            r.kind,
            r.fault,
            r.scenario,
            u8::from(r.trojan_detected),
            u8::from(r.spurious_quarantine),
            r.maintenance_events,
            csv_num(r.crash_recovery_batches),
            csv_num(r.post_accuracy),
            csv_num(r.availability),
            r.action,
            csv_num(r.p99_latency),
            csv_num(r.throughput),
            csv_num(r.shed_rate),
            slo_csv(&r.slo),
        ));
    }
    out
}

/// Renders a chaos report as a JSON object mirroring [`chaos_csv`]'s
/// columns, with an `operating` array of detector/threshold pairs and a
/// `rates` object of the headline robustness rates.
#[must_use]
pub fn chaos_json(report: &ChaosReport) -> String {
    let operating: Vec<String> = report
        .detectors
        .iter()
        .zip(&report.thresholds)
        .map(|(name, threshold)| {
            format!(
                "{{\"detector\":{},\"threshold\":{}}}",
                json_str(name),
                json_num(*threshold)
            )
        })
        .collect();
    let rows: Vec<String> = report
        .rows
        .iter()
        .map(|r| {
            format!(
                "{{\"kind\":{},\"fault\":{},\"scenario\":{},\"trojan_detected\":{},\
                 \"spurious_quarantine\":{},\"maintenance_events\":{},\"crash_recovery\":{},\
                 \"post_accuracy\":{},\"availability\":{},\"action\":{},\"p99_latency\":{},\
                 \"throughput\":{},\"shed_rate\":{}{}}}",
                json_str(&r.kind),
                json_str(&r.fault),
                json_str(&r.scenario),
                r.trojan_detected,
                r.spurious_quarantine,
                r.maintenance_events,
                json_num(r.crash_recovery_batches),
                json_num(r.post_accuracy),
                json_num(r.availability),
                json_str(&r.action),
                json_num(r.p99_latency),
                json_num(r.throughput),
                json_num(r.shed_rate),
                slo_json(&r.slo),
            )
        })
        .collect();
    format!(
        "{{\"clean_accuracy\":{},\"batches\":{},\"batch_size\":{},\"fleet_size\":{},\
         \"onset_batch\":{},\"arrival\":{},\"rates\":{{\"spurious_quarantine\":{},\
         \"trojan_tpr\":{},\"overlap_missed\":{},\"mean_crash_recovery\":{}}},\
         \"operating\":[{}],\"rows\":[{}]}}",
        json_num(report.clean_accuracy),
        report.batches,
        report.batch_size,
        report.fleet_size,
        report.onset_batch,
        json_str(&report.arrival.to_string()),
        json_num(report.spurious_quarantine_rate),
        json_num(report.trojan_tpr),
        json_num(report.overlap_missed_rate),
        json_num(report.mean_crash_recovery_batches),
        operating.join(","),
        rows.join(",")
    )
}

/// Renders a rate sweep as CSV: `# sweep` and `# saturation_rate` header
/// lines, then one
/// `rate,offered,served,shed_rate,throughput,p50_latency,p99_latency,p999_latency`
/// row per swept rate.
#[must_use]
pub fn rate_sweep_csv(report: &RateSweepReport) -> String {
    let mut out = format!(
        "# sweep,batch_size,{},fleet,{},queue_capacity,{}\n",
        report.batch_size, report.fleet_size, report.queue_capacity
    );
    out.push_str(&format!(
        "# saturation_rate,{}\n",
        csv_num(report.saturation_rate)
    ));
    out.push_str("rate,offered,served,shed_rate,throughput,p50_latency,p99_latency,p999_latency\n");
    for r in &report.rows {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{}\n",
            r.rate,
            r.offered,
            r.served,
            csv_num(r.shed_rate),
            csv_num(r.throughput),
            csv_num(r.p50_latency),
            csv_num(r.p99_latency),
            csv_num(r.p999_latency),
        ));
    }
    out
}

/// Renders a rate sweep as a JSON object mirroring [`rate_sweep_csv`]'s
/// columns, with the located `saturation_rate` (`null` when even the
/// lowest swept rate saturates).
#[must_use]
pub fn rate_sweep_json(report: &RateSweepReport) -> String {
    let rows: Vec<String> = report
        .rows
        .iter()
        .map(|r| {
            format!(
                "{{\"rate\":{},\"offered\":{},\"served\":{},\"shed_rate\":{},\
                 \"throughput\":{},\"p50_latency\":{},\"p99_latency\":{},\"p999_latency\":{}}}",
                json_num(r.rate),
                r.offered,
                r.served,
                json_num(r.shed_rate),
                json_num(r.throughput),
                json_num(r.p50_latency),
                json_num(r.p99_latency),
                json_num(r.p999_latency),
            )
        })
        .collect();
    format!(
        "{{\"batch_size\":{},\"fleet_size\":{},\"queue_capacity\":{},\"saturation_rate\":{},\
         \"rows\":[{}]}}",
        report.batch_size,
        report.fleet_size,
        report.queue_capacity,
        json_num(report.saturation_rate),
        rows.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::ChaosRow;
    use crate::eval::{RatePoint, ScenarioServing};
    use crate::scheduler::ArrivalModel;
    use safelight::attack::{AttackTarget, ScenarioSpec, VectorSpec};

    fn tiny_report() -> ServingReport {
        ServingReport {
            detectors: vec!["guard_band".into(), "ewma_cusum".into()],
            thresholds: vec![4.5, 2.25],
            clean_accuracy: 0.96,
            batches: 24,
            batch_size: 8,
            fleet_size: 2,
            onset_batch: 8,
            arrival: ArrivalModel::Closed,
            rows: vec![ScenarioServing {
                scenario: ScenarioSpec::new(VectorSpec::Actuation, AttackTarget::Both, 0.1, 0),
                effective_fraction: 0.1,
                pre_onset_accuracy: 0.96,
                degraded_accuracy: 0.7,
                recovered_accuracy: 0.95,
                baseline_post_accuracy: 0.72,
                detection_latency_batches: 1.0,
                recovery_latency_batches: 2.0,
                action: "remap".into(),
                remapped_rings: 120,
                unplaced_rings: 0,
                availability: 0.9,
                p50_latency: 1.0,
                p99_latency: 2.0,
                p999_latency: 2.0,
                throughput: 16.0,
                shed_rate: 0.0,
                slo: None,
            }],
        }
    }

    #[test]
    fn csv_renders_headers_and_rows() {
        let csv = serving_csv(&tiny_report());
        assert!(csv.starts_with("# clean_accuracy,0.96\n"));
        assert!(csv.contains("# stream,batches,24,batch_size,8,fleet,2,onset,8"));
        assert!(csv.contains("# arrival,closed"));
        assert!(csv.contains("# threshold,guard_band,4.5"));
        assert!(csv.contains(
            "actuation,uniform,CONV+FC,0.1,0,0.1,0.96,0.7,0.95,0.72,1,2,remap,120,0,0.9,\
             1,2,2,16,0"
        ));
    }

    #[test]
    fn csv_renders_nan_as_empty_field() {
        let mut report = tiny_report();
        report.rows[0].recovered_accuracy = f64::NAN;
        report.rows[0].recovery_latency_batches = f64::NAN;
        let csv = serving_csv(&report);
        assert!(csv.contains("0.7,,0.72,1,,remap"), "{csv}");
    }

    #[test]
    fn json_mirrors_csv_with_nulls() {
        let mut report = tiny_report();
        report.rows[0].recovered_accuracy = f64::NAN;
        let json = serving_json(&report);
        assert!(json.starts_with("{\"clean_accuracy\":0.96"));
        assert!(json.contains("\"arrival\":\"closed\""));
        assert!(json.contains("\"recovered\":null"));
        assert!(json.contains("\"detector\":\"guard_band\",\"threshold\":4.5"));
        assert!(json.contains("\"action\":\"remap\""));
        assert!(json.contains("\"p50_latency\":1,\"p99_latency\":2,\"p999_latency\":2"));
        assert!(json.contains("\"throughput\":16,\"shed_rate\":0"));
    }

    fn tiny_chaos_report() -> ChaosReport {
        ChaosReport {
            detectors: vec!["guard_band".into()],
            thresholds: vec![4.5],
            clean_accuracy: 0.96,
            batches: 24,
            batch_size: 8,
            fleet_size: 2,
            onset_batch: 8,
            arrival: ArrivalModel::Closed,
            rows: vec![
                ChaosRow {
                    kind: "fault".into(),
                    fault: "dead:drop/fc/0.5/8/0".into(),
                    scenario: String::new(),
                    trojan_detected: false,
                    spurious_quarantine: false,
                    maintenance_events: 2,
                    crash_recovery_batches: f64::NAN,
                    post_accuracy: 0.95,
                    availability: 1.0,
                    action: "maintenance".into(),
                    p99_latency: 1.0,
                    throughput: 16.0,
                    shed_rate: 0.0,
                    slo: Some(SloVerdict {
                        pass: true,
                        violated: vec![],
                        budget_burn: 0.0,
                    }),
                },
                ChaosRow {
                    kind: "overlap".into(),
                    fault: "crash/both/0/10/0".into(),
                    scenario: "actuation/targeted/both/0.1/0".into(),
                    trojan_detected: true,
                    spurious_quarantine: false,
                    maintenance_events: 0,
                    crash_recovery_batches: 2.0,
                    post_accuracy: 0.94,
                    availability: 0.8,
                    action: "crash+recover+alarm+remap".into(),
                    p99_latency: 3.0,
                    throughput: 12.8,
                    shed_rate: 0.05,
                    slo: Some(SloVerdict {
                        pass: false,
                        violated: vec!["availability", "shed_rate"],
                        budget_burn: 2.0,
                    }),
                },
            ],
            spurious_quarantine_rate: 0.0,
            trojan_tpr: 1.0,
            overlap_missed_rate: 0.0,
            mean_crash_recovery_batches: 2.0,
        }
    }

    #[test]
    fn chaos_csv_renders_rates_and_rows() {
        let csv = chaos_csv(&tiny_chaos_report());
        assert!(csv.starts_with("# clean_accuracy,0.96\n"));
        assert!(csv.contains(
            "# rate,spurious_quarantine,0,trojan_tpr,1,overlap_missed,0,mean_crash_recovery,2"
        ));
        assert!(csv.contains("# arrival,closed"));
        assert!(
            csv.contains("fault,dead:drop/fc/0.5/8/0,,0,0,2,,0.95,1,maintenance,1,16,0,1,none,0")
        );
        assert!(csv.contains(
            "overlap,crash/both/0/10/0,actuation/targeted/both/0.1/0,1,0,0,2,0.94,0.8,\
             crash+recover+alarm+remap,3,12.8,0.05,0,availability+shed_rate,2"
        ));
    }

    #[test]
    fn chaos_json_mirrors_csv_with_nulls_and_booleans() {
        let json = chaos_json(&tiny_chaos_report());
        assert!(json.starts_with("{\"clean_accuracy\":0.96"));
        assert!(json.contains("\"arrival\":\"closed\""));
        assert!(json.contains(
            "\"rates\":{\"spurious_quarantine\":0,\"trojan_tpr\":1,\"overlap_missed\":0,\
             \"mean_crash_recovery\":2}"
        ));
        assert!(json.contains("\"trojan_detected\":true"));
        assert!(json.contains("\"crash_recovery\":null"));
        assert!(json.contains("\"action\":\"crash+recover+alarm+remap\""));
        assert!(json.contains("\"p99_latency\":3,\"throughput\":12.8,\"shed_rate\":0.05"));
    }

    fn tiny_sweep() -> RateSweepReport {
        RateSweepReport {
            batch_size: 8,
            fleet_size: 2,
            queue_capacity: 64,
            rows: vec![
                RatePoint {
                    rate: 8.0,
                    offered: 96,
                    served: 96,
                    shed_rate: 0.0,
                    throughput: 8.0,
                    p50_latency: 1.0,
                    p99_latency: 2.0,
                    p999_latency: 2.0,
                },
                RatePoint {
                    rate: 64.0,
                    offered: 96,
                    served: 80,
                    shed_rate: 0.25,
                    throughput: 16.0,
                    p50_latency: 3.0,
                    p99_latency: 5.0,
                    p999_latency: 5.0,
                },
            ],
            saturation_rate: 8.0,
        }
    }

    #[test]
    fn rate_sweep_csv_renders_headers_and_rows() {
        let csv = rate_sweep_csv(&tiny_sweep());
        assert!(csv.starts_with("# sweep,batch_size,8,fleet,2,queue_capacity,64\n"));
        assert!(csv.contains("# saturation_rate,8\n"));
        assert!(csv.contains(
            "rate,offered,served,shed_rate,throughput,p50_latency,p99_latency,p999_latency\n"
        ));
        assert!(csv.contains("8,96,96,0,8,1,2,2\n"));
        assert!(csv.contains("64,96,80,0.25,16,3,5,5\n"));
    }

    #[test]
    fn rate_sweep_csv_renders_nan_saturation_as_empty() {
        let mut sweep = tiny_sweep();
        sweep.saturation_rate = f64::NAN;
        assert!(rate_sweep_csv(&sweep).contains("# saturation_rate,\n"));
        assert!(rate_sweep_json(&sweep).contains("\"saturation_rate\":null"));
    }

    #[test]
    fn rate_sweep_json_mirrors_csv() {
        let json = rate_sweep_json(&tiny_sweep());
        assert!(json.starts_with("{\"batch_size\":8,\"fleet_size\":2,\"queue_capacity\":64"));
        assert!(json.contains("\"saturation_rate\":8"));
        assert!(json.contains(
            "{\"rate\":8,\"offered\":96,\"served\":96,\"shed_rate\":0,\"throughput\":8,\
             \"p50_latency\":1,\"p99_latency\":2,\"p999_latency\":2}"
        ));
    }
}

//! The chaos evaluation grid: benign hardware faults alone, trojans
//! alone, and fault+trojan overlap, each replayed as a request stream
//! against the fault-tolerant closed-loop runtime.
//!
//! Where [`eval`](crate::eval) asks *"does the policy catch and survive
//! the attack?"*, this module asks the complementary robustness
//! questions:
//!
//! * **fault-only** — does a dead/stuck/drifting sensor, a supply
//!   glitch or a member crash stay a *maintenance* event, or does the
//!   policy spuriously quarantine banks (spending spares) or fail the
//!   member over? The spurious-quarantine rate over these rows is the
//!   headline number;
//! * **trojan-only** — with the fault-discrimination logic in the loop,
//!   does the trojan true-positive rate survive? (A policy that explains
//!   every alarm away as a sensor fault would score zero here);
//! * **overlap** — a fault and a trojan active on the *same* member:
//!   does the benign fault mask the attack?
//!
//! One deliberate gap: a *drifting drop-current* sensor is excluded from
//! the grid because it is observationally indistinguishable from an
//! actuation trojan (both present as a persistent drop-power excursion).
//! The policy fails secure there — it quarantines — and the docs call
//! that out rather than the grid papering over it.
//!
//! Every noise draw derives from `(seed, fault spec, scenario spec,
//! batch)`, so the report and its CSV/JSON renderings are bitwise
//! independent of the worker-thread count.

use std::sync::Arc;

use safelight::attack::{AttackTarget, ScenarioSpec, Selection, VectorSpec};
use safelight::detect::Detector;
use safelight::eval::{inject_all, InjectedScenario};
use safelight::experiment::{workbench, ExperimentOptions, ModelWorkbench};
use safelight::fault::{inject_fault, FaultSpec, FaultVector};
use safelight::models::ModelKind;
use safelight::SafelightError;
use safelight_neuro::parallel::par_map;
use safelight_neuro::{Dataset, Network};
use safelight_obs::{MetricsRegistry, SloInput, SloSpec, SloVerdict};
use safelight_onn::{BlockKind, InferenceBackend, SensorChannel, SentinelPlan, WeightMapping};

use crate::eval::{build_fleet, calibrate, request_stream, spec_stream_key, ServingOptions};
use crate::observe::{ObsArtifacts, ServeObserver};
use crate::runtime::{fold, Compromise, MemberFault, ResponseAction, StreamOutcome};
use crate::scheduler::{percentile, ArrivalModel};

/// One cell of the chaos grid: an optional benign fault and an optional
/// trojan scenario, both landing on member 0 of the fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosCase {
    /// The benign fault, when this case injects one.
    pub fault: Option<FaultSpec>,
    /// The trojan scenario, when this case injects one.
    pub scenario: Option<ScenarioSpec>,
}

impl ChaosCase {
    /// A fault-only case.
    #[must_use]
    pub fn fault(spec: FaultSpec) -> Self {
        Self {
            fault: Some(spec),
            scenario: None,
        }
    }

    /// A trojan-only case.
    #[must_use]
    pub fn trojan(spec: ScenarioSpec) -> Self {
        Self {
            fault: None,
            scenario: Some(spec),
        }
    }

    /// A fault+trojan overlap case.
    #[must_use]
    pub fn overlap(fault: FaultSpec, scenario: ScenarioSpec) -> Self {
        Self {
            fault: Some(fault),
            scenario: Some(scenario),
        }
    }

    /// The case's kind label: `fault`, `trojan` or `overlap`.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match (&self.fault, &self.scenario) {
            (Some(_), None) => "fault",
            (None, Some(_)) => "trojan",
            (Some(_), Some(_)) => "overlap",
            (None, None) => "clean",
        }
    }
}

/// The canonical chaos grid with fault onset `onset` (the trojan onset is
/// always [`ServingOptions::onset_batch`]; the crash-under-attack case
/// crashes two batches after the trojan lands, the hardest ordering — the
/// compromised member recovers its *clean* cache while the physical
/// trojan persists).
#[must_use]
pub fn chaos_grid(onset: u64) -> Vec<ChaosCase> {
    let dead = |channel, target, fraction| {
        FaultSpec::new(FaultVector::DeadSensor { channel }, target, fraction, onset)
    };
    let targeted = |fraction| ScenarioSpec {
        selection: Selection::Targeted,
        ..ScenarioSpec::new(VectorSpec::Actuation, AttackTarget::Both, fraction, 0)
    };
    vec![
        // Benign faults alone: none of these should cost a spare.
        ChaosCase::fault(dead(SensorChannel::DropCurrent, AttackTarget::FcBlock, 0.5)),
        ChaosCase::fault(dead(SensorChannel::DeltaKelvin, AttackTarget::Both, 1.0)),
        ChaosCase::fault(dead(SensorChannel::Sentinel, AttackTarget::ConvBlock, 0.5)),
        ChaosCase::fault(FaultSpec::new(
            FaultVector::StuckSensor {
                channel: SensorChannel::DropCurrent,
            },
            AttackTarget::FcBlock,
            0.5,
            onset,
        )),
        ChaosCase::fault(FaultSpec::new(
            FaultVector::DriftSensor {
                channel: SensorChannel::DeltaKelvin,
                per_batch: 0.05,
                noise: 0.01,
            },
            AttackTarget::FcBlock,
            0.25,
            onset,
        )),
        ChaosCase::fault(FaultSpec::new(
            FaultVector::DriftSensor {
                channel: SensorChannel::RailPower,
                per_batch: -0.002,
                noise: 0.0005,
            },
            AttackTarget::Both,
            0.5,
            onset,
        )),
        ChaosCase::fault(FaultSpec::new(
            FaultVector::RailGlitch {
                depth: 0.3,
                duration: 2,
            },
            AttackTarget::Both,
            1.0,
            onset,
        )),
        ChaosCase::fault(FaultSpec::new(
            FaultVector::Crash,
            AttackTarget::Both,
            0.0,
            onset,
        )),
        // Trojans alone: the discrimination logic must not explain these
        // away. The 10 % targeted actuation row is the acceptance case.
        ChaosCase::trojan(targeted(0.10)),
        ChaosCase::trojan(ScenarioSpec::new(
            VectorSpec::Actuation,
            AttackTarget::FcBlock,
            0.05,
            0,
        )),
        ChaosCase::trojan(ScenarioSpec::new(
            VectorSpec::Actuation,
            AttackTarget::ConvBlock,
            0.10,
            0,
        )),
        // Overlap: fault and trojan on the same member.
        ChaosCase::overlap(
            dead(SensorChannel::DropCurrent, AttackTarget::FcBlock, 0.5),
            targeted(0.10),
        ),
        ChaosCase::overlap(
            FaultSpec::new(FaultVector::Crash, AttackTarget::Both, 0.0, onset + 2),
            targeted(0.10),
        ),
        ChaosCase::overlap(
            FaultSpec::new(
                FaultVector::RailGlitch {
                    depth: 0.3,
                    duration: 2,
                },
                AttackTarget::Both,
                1.0,
                onset,
            ),
            ScenarioSpec::new(VectorSpec::Actuation, AttackTarget::Both, 0.10, 0),
        ),
    ]
}

/// The chaos outcome of one grid case.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosRow {
    /// Case kind: `fault`, `trojan` or `overlap`.
    pub kind: String,
    /// The fault spec string, empty when the case injects no fault.
    pub fault: String,
    /// The scenario spec string, empty when the case injects no trojan.
    pub scenario: String,
    /// Whether the trojan was detected (post-onset alarm, remap or
    /// failover on the compromised member). `false` on fault-only rows.
    pub trojan_detected: bool,
    /// Whether spares were spent (or the member failed over) with no
    /// trojan to justify it: any remap/failover on a fault-only row, or
    /// one before the trojan onset on an overlap row.
    pub spurious_quarantine: bool,
    /// Maintenance events raised on the faulted member.
    pub maintenance_events: usize,
    /// Batches from crash to cache recovery (`NaN` when no crash fired).
    pub crash_recovery_batches: f64,
    /// Accuracy after the last remediation/recovery settled (from the
    /// earliest onset when nothing fired).
    pub post_accuracy: f64,
    /// Fraction of requests served by trustworthy members.
    pub availability: f64,
    /// Policy actions observed, joined by `+` (`none` when quiet).
    pub action: String,
    /// 99th-percentile service latency in virtual ticks.
    pub p99_latency: f64,
    /// Sustained throughput in requests per virtual tick.
    pub throughput: f64,
    /// Fraction of offered requests shed at admission.
    pub shed_rate: f64,
    /// The SLO verdict for this case, when the options carry a spec
    /// (spurious quarantines count against the spec's budget).
    pub slo: Option<SloVerdict>,
}

/// The full chaos-evaluation report.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    /// Detector names, in suite order.
    pub detectors: Vec<String>,
    /// Operating thresholds, aligned with `detectors`.
    pub thresholds: Vec<f64>,
    /// Accuracy of the clean fleet over the whole reference stream.
    pub clean_accuracy: f64,
    /// Stream shape: micro-batches served.
    pub batches: usize,
    /// Stream shape: requests per micro-batch.
    pub batch_size: usize,
    /// Fleet members.
    pub fleet_size: usize,
    /// Trojan onset batch (fault onsets live in each case's spec).
    pub onset_batch: u64,
    /// The arrival process the streams were replayed through.
    pub arrival: ArrivalModel,
    /// One row per grid case, in input order.
    pub rows: Vec<ChaosRow>,
    /// Fraction of fault-carrying rows with a spurious quarantine.
    pub spurious_quarantine_rate: f64,
    /// Fraction of trojan-only rows detected.
    pub trojan_tpr: f64,
    /// Fraction of overlap rows whose trojan went undetected.
    pub overlap_missed_rate: f64,
    /// Mean crash-to-recovery latency in batches (`NaN` when no row
    /// crashed).
    pub mean_crash_recovery_batches: f64,
}

impl ChaosReport {
    /// The rows of kind `kind` (`fault`, `trojan` or `overlap`).
    pub fn rows_of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a ChaosRow> {
        self.rows.iter().filter(move |r| r.kind == kind)
    }
}

/// A stable stream key of a chaos case: the fault and scenario keys
/// avalanche-mixed under a constant distinct from either engine's, so a
/// case's stream can never alias a plain serving or fault stream.
fn case_stream_key(case: &ChaosCase) -> u64 {
    let mut h = 0xC4A0_5ABC_D0D0_5EEDu64;
    if let Some(f) = &case.fault {
        h = fold(h, f.stream_key());
    }
    if let Some(s) = &case.scenario {
        h = fold(h, spec_stream_key(s));
    }
    h
}

/// Slices the stream outcome of one chaos case into its report row.
/// `labels` is the eval-side answer key, indexed by request id.
fn summarize_chaos(
    case: &ChaosCase,
    out: &StreamOutcome,
    labels: &[usize],
    opts: &ServingOptions,
) -> ChaosRow {
    let member = 0usize;
    // Continuous batching can form more (smaller) batches than the
    // closed loop's `opts.batches`; "stream end" is open-ended.
    let end = u64::MAX;
    let trojan_onset = opts.onset_batch;
    // The earliest instant anything lands on the member: the accuracy
    // window of a quiet row starts here.
    let first_onset = match (&case.fault, &case.scenario) {
        (Some(f), Some(_)) => f.onset_batch.min(trojan_onset),
        (Some(f), None) => f.onset_batch,
        _ => trojan_onset,
    };
    let mut actions: Vec<&str> = Vec::new();
    let mut trojan_detected = false;
    let mut spurious = false;
    let mut maintenance = 0usize;
    let mut crash_batch: Option<u64> = None;
    let mut recover_batch: Option<u64> = None;
    let mut settle: Option<u64> = None;
    for e in out.events.iter().filter(|e| e.member == member) {
        let label = match e.action {
            ResponseAction::Alarm => "alarm",
            ResponseAction::Remap { .. } => "remap",
            ResponseAction::Failover => "failover",
            ResponseAction::Maintenance { .. } => {
                maintenance += 1;
                "maintenance"
            }
            ResponseAction::Crash => {
                crash_batch.get_or_insert(e.batch);
                "crash"
            }
            ResponseAction::Recover => {
                recover_batch.get_or_insert(e.batch);
                settle = Some(settle.map_or(e.batch + 1, |s| s.max(e.batch + 1)));
                "recover"
            }
        };
        let quarantine = matches!(
            e.action,
            ResponseAction::Remap { .. } | ResponseAction::Failover
        );
        if quarantine {
            settle = Some(settle.map_or(e.batch + 1, |s| s.max(e.batch + 1)));
            if case.scenario.is_none() || e.batch < trojan_onset {
                spurious = true;
            }
        }
        if case.scenario.is_some()
            && e.batch >= trojan_onset
            && (quarantine || e.action == ResponseAction::Alarm)
        {
            trojan_detected = true;
        }
        if !actions.contains(&label) {
            actions.push(label);
        }
    }
    let post_start = settle.unwrap_or(first_onset).min(end);
    let crash_recovery = match (crash_batch, recover_batch) {
        (Some(c), Some(r)) => (r.saturating_sub(c)) as f64,
        _ => f64::NAN,
    };
    let latencies = out.sorted_latencies();
    ChaosRow {
        kind: case.kind().to_string(),
        fault: case
            .fault
            .as_ref()
            .map(FaultSpec::to_spec_string)
            .unwrap_or_default(),
        scenario: case
            .scenario
            .as_ref()
            .map(ScenarioSpec::to_spec_string)
            .unwrap_or_default(),
        trojan_detected,
        spurious_quarantine: spurious,
        maintenance_events: maintenance,
        crash_recovery_batches: crash_recovery,
        post_accuracy: out.accuracy_in(post_start..end, labels),
        availability: out.availability(),
        action: if actions.is_empty() {
            "none".into()
        } else {
            actions.join("+")
        },
        p99_latency: percentile(&latencies, 0.99),
        throughput: out.throughput(),
        shed_rate: out.shed_rate(),
        slo: opts.slo.map(|spec| {
            spec.verdict(&SloInput {
                availability: out.availability(),
                p99_latency: percentile(&latencies, 0.99),
                p999_latency: percentile(&latencies, 0.999),
                shed_rate: out.shed_rate(),
                spurious_quarantines: u64::from(spurious),
            })
        }),
    }
}

/// Runs the chaos evaluation: calibrates the detector suite once,
/// measures the clean fleet's reference accuracy, then replays every
/// grid case — fault, trojan or both landing on member 0 — against the
/// responding closed-loop fleet and aggregates the robustness rates.
///
/// Case work fans out over `threads` workers of the shared pool (the
/// fleets' per-member batches fan out again underneath); rows are ordered
/// by the input case order and bitwise independent of `threads`.
///
/// # Errors
///
/// Rejects degenerate options (zero batches/batch size, onset beyond the
/// stream, empty fleet) and propagates injection, derivation and
/// forward-pass errors.
#[allow(clippy::too_many_arguments)]
pub fn run_chaos<D: Dataset + Sync + ?Sized>(
    network: &Network,
    mapping: &WeightMapping,
    backend: &dyn InferenceBackend,
    data: &D,
    cases: &[ChaosCase],
    detectors: &[Box<dyn Detector>],
    opts: &ServingOptions,
    seed: u64,
    threads: usize,
) -> Result<ChaosReport, SafelightError> {
    run_chaos_observed(
        network, mapping, backend, data, cases, detectors, opts, seed, threads, false,
    )
    .map(|(report, _)| report)
}

/// [`run_chaos`] with the observability plane attached when `observe` is
/// true: each grid case runs under its own [`ServeObserver`] (scoped
/// `case="NN"` metric labels, private tracer), and the returned
/// [`ObsArtifacts`] concatenate the per-case committed traces in
/// input-case order — byte-identical across worker-thread counts — plus
/// the wall-clock profile sidecar and the merged metrics snapshot. The
/// committed trace is the audit log: every quarantine, remap, failover,
/// maintenance verdict, crash and recovery of every case, with the
/// decision inputs inline.
///
/// # Errors
///
/// Same as [`run_chaos`].
#[allow(clippy::too_many_arguments)]
pub fn run_chaos_observed<D: Dataset + Sync + ?Sized>(
    network: &Network,
    mapping: &WeightMapping,
    backend: &dyn InferenceBackend,
    data: &D,
    cases: &[ChaosCase],
    detectors: &[Box<dyn Detector>],
    opts: &ServingOptions,
    seed: u64,
    threads: usize,
    observe: bool,
) -> Result<(ChaosReport, Option<ObsArtifacts>), SafelightError> {
    if opts.batches == 0 || opts.batch_size == 0 || opts.onset_batch >= opts.batches as u64 {
        return Err(SafelightError::InvalidParameter {
            name: "batches/onset",
            value: opts.batches as f64,
        });
    }
    if opts.fleet_size == 0 {
        return Err(SafelightError::InvalidParameter {
            name: "fleet size",
            value: 0.0,
        });
    }
    if !opts.arrival.is_valid() {
        return Err(SafelightError::InvalidParameter {
            name: "arrival rate",
            value: opts.arrival.rate(),
        });
    }
    let parts = calibrate(network, mapping, backend, detectors, opts, seed)?;
    let (requests, labels) = request_stream(data, opts, seed)?;
    let capacity = opts.effective_queue_capacity();

    let clean_accuracy = {
        let mut fleet = build_fleet(network, mapping, backend, &parts, opts, false)?;
        let out = fleet.serve_queue(
            &requests,
            opts.batch_size,
            capacity,
            None,
            None,
            fold(seed, 0xC1EA),
            threads,
        )?;
        out.accuracy_in(0..u64::MAX, &labels)
    };

    // Fault plans index sentinel readbacks by slot, so injection needs the
    // per-block sentinel population of the provisioning the members use.
    let sentinel_counts = {
        let plan = SentinelPlan::new(
            mapping,
            backend.config(),
            opts.sentinels_per_block,
            opts.sentinel_magnitude,
        );
        (
            plan.sites(BlockKind::Conv).len(),
            plan.sites(BlockKind::Fc).len(),
        )
    };

    // Trojan conditions are injected once up front (salience derivation is
    // the expensive part); each case then references its entry by slot.
    let mut specs: Vec<ScenarioSpec> = Vec::new();
    let slots: Vec<Option<usize>> = cases
        .iter()
        .map(|c| {
            c.scenario.as_ref().map(|s| {
                specs.push(s.clone());
                specs.len() - 1
            })
        })
        .collect();
    let needs_salience = specs.iter().any(|s| s.selection == Selection::Targeted);
    let salience = if needs_salience {
        Some(safelight::attack::RingSalience::from_network(
            network,
            mapping,
            backend.config(),
        )?)
    } else {
        None
    };
    let injected = inject_all(backend.config(), &specs, salience.as_ref(), seed, threads)?;

    let items: Vec<(usize, &ChaosCase, Option<&InjectedScenario>)> = cases
        .iter()
        .zip(&slots)
        .enumerate()
        .map(|(i, (c, slot))| (i, c, slot.map(|s| &injected[s])))
        .collect();
    // One shared registry; each case's observer namespaces its series
    // with a `case` label, so every series has a single (serial) writer
    // and the merged snapshot is thread-count independent.
    let registry = observe.then(|| Arc::new(MetricsRegistry::new()));
    type ObservedRow = (ChaosRow, Option<(String, String)>);
    let rows: Vec<Result<ObservedRow, SafelightError>> =
        par_map(items, threads, |(idx, case, entry)| {
            let stream_seed = fold(seed, case_stream_key(case));
            let plan = case
                .fault
                .as_ref()
                .map(|spec| inject_fault(spec, backend.config(), sentinel_counts, seed))
                .transpose()?;
            let compromise = entry.map(|e| Compromise {
                member: 0,
                onset_batch: opts.onset_batch,
                conditions: &e.conditions,
            });
            let fault = plan.as_ref().map(|p| MemberFault { member: 0, plan: p });
            let mut fleet = build_fleet(network, mapping, backend, &parts, opts, true)?;
            let observer = registry.as_ref().map(|reg| {
                Arc::new(ServeObserver::with_scope_slo(
                    reg.clone(),
                    &[("case", &format!("{idx:02}"))],
                    opts.slo.as_ref(),
                ))
            });
            fleet.set_observer(observer.clone());
            let out = fleet.serve_queue(
                &requests,
                opts.batch_size,
                capacity,
                compromise,
                fault,
                stream_seed,
                threads,
            )?;
            // Scoped to this case's series: deterministic even while
            // sibling cases are still writing theirs.
            if let Some(o) = &observer {
                o.evaluate_alerts();
            }
            let sections = observer.as_ref().map(|o| {
                o.drain(&[format!(
                    "case={idx:02} kind={} fault={} scenario={} trojan_onset={}",
                    case.kind(),
                    case.fault
                        .as_ref()
                        .map(FaultSpec::to_spec_string)
                        .unwrap_or_default(),
                    case.scenario
                        .as_ref()
                        .map(ScenarioSpec::to_spec_string)
                        .unwrap_or_default(),
                    opts.onset_batch,
                )])
            });
            Ok((summarize_chaos(case, &out, &labels, opts), sections))
        });
    let rows = rows.into_iter().collect::<Result<Vec<_>, _>>()?;
    // Per-case trace sections concatenate in input-case order — par_map
    // returns results in task order, so the artifact is independent of
    // which worker ran which case.
    let artifacts = registry.map(|reg| {
        let mut trace = String::new();
        let mut profile = String::new();
        for (_, sections) in &rows {
            if let Some((committed, wall)) = sections {
                trace.push_str(committed);
                profile.push_str(wall);
            }
        }
        let incidents = opts
            .slo
            .as_ref()
            .map(|s| crate::incident::incidents_from_trace(&trace, s))
            .unwrap_or_default();
        ObsArtifacts {
            trace,
            profile,
            metrics: reg.snapshot(),
            incidents,
        }
    });
    let rows: Vec<ChaosRow> = rows.into_iter().map(|(row, _)| row).collect();

    let rate = |num: usize, den: usize| {
        if den == 0 {
            f64::NAN
        } else {
            num as f64 / den as f64
        }
    };
    let faulted = rows.iter().filter(|r| !r.fault.is_empty()).count();
    let spurious = rows
        .iter()
        .filter(|r| !r.fault.is_empty() && r.spurious_quarantine)
        .count();
    let trojan_rows = rows.iter().filter(|r| r.kind == "trojan").count();
    let detected = rows
        .iter()
        .filter(|r| r.kind == "trojan" && r.trojan_detected)
        .count();
    let overlap_rows = rows.iter().filter(|r| r.kind == "overlap").count();
    let missed = rows
        .iter()
        .filter(|r| r.kind == "overlap" && !r.trojan_detected)
        .count();
    let recoveries: Vec<f64> = rows
        .iter()
        .map(|r| r.crash_recovery_batches)
        .filter(|b| b.is_finite())
        .collect();
    let mean_recovery = if recoveries.is_empty() {
        f64::NAN
    } else {
        recoveries.iter().sum::<f64>() / recoveries.len() as f64
    };

    Ok((
        ChaosReport {
            detectors: parts.names,
            thresholds: parts.thresholds,
            clean_accuracy,
            batches: opts.batches,
            batch_size: opts.batch_size,
            fleet_size: opts.fleet_size,
            onset_batch: opts.onset_batch,
            arrival: opts.arrival,
            rows,
            spurious_quarantine_rate: rate(spurious, faulted),
            trojan_tpr: rate(detected, trojan_rows),
            overlap_missed_rate: rate(missed, overlap_rows),
            mean_crash_recovery_batches: mean_recovery,
        },
        artifacts,
    ))
}

/// Runs the chaos experiment for `kind`: trains (or loads) the original
/// model through the shared [`workbench`], builds the canonical
/// [`chaos_grid`] at the fidelity's onset batch and evaluates the
/// fault-tolerant runtime over it, with the streams replayed through
/// `arrival` ([`ArrivalModel::Closed`] = the pre-request-plane loop).
///
/// # Errors
///
/// Propagates workbench and chaos-evaluation errors.
pub fn run_chaos_experiment(
    kind: ModelKind,
    opts: &ExperimentOptions,
    arrival: ArrivalModel,
) -> Result<(ModelWorkbench, ChaosReport), SafelightError> {
    run_chaos_experiment_observed(kind, opts, arrival, false, None)
        .map(|(bench, report, _)| (bench, report))
}

/// [`run_chaos_experiment`] with the observability plane attached when
/// `observe` is true (see [`run_chaos_observed`]) and an optional SLO
/// spec judging every case (verdict columns, alert firings, incident
/// reconstruction).
///
/// # Errors
///
/// Propagates workbench and chaos-evaluation errors.
pub fn run_chaos_experiment_observed(
    kind: ModelKind,
    opts: &ExperimentOptions,
    arrival: ArrivalModel,
    observe: bool,
    slo: Option<SloSpec>,
) -> Result<(ModelWorkbench, ChaosReport, Option<ObsArtifacts>), SafelightError> {
    let bench = workbench(kind, opts)?;
    let serving_opts = ServingOptions {
        arrival,
        slo,
        ..ServingOptions::for_fidelity(opts.fidelity)
    };
    let cases = chaos_grid(serving_opts.onset_batch);
    let (report, artifacts) = run_chaos_observed(
        &bench.original,
        &bench.mapping,
        bench.backend.as_ref(),
        &bench.data.test,
        &cases,
        &safelight::detect::default_detectors(),
        &serving_opts,
        opts.seed,
        opts.threads,
        observe,
    )?;
    Ok((bench, report, artifacts))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_all_three_kinds_without_drop_drift() {
        let grid = chaos_grid(12);
        let count = |k: &str| grid.iter().filter(|c| c.kind() == k).count();
        assert_eq!(count("fault"), 8);
        assert_eq!(count("trojan"), 3);
        assert_eq!(count("overlap"), 3);
        assert_eq!(count("clean"), 0);
        // The undecidable case stays out of the grid: a drifting
        // drop-current sensor is indistinguishable from actuation and the
        // policy fails secure on it.
        assert!(grid.iter().filter_map(|c| c.fault.as_ref()).all(|f| {
            !matches!(
                f.vector,
                FaultVector::DriftSensor {
                    channel: SensorChannel::DropCurrent,
                    ..
                }
            )
        }));
        // Every fault-only onset honors the requested batch; the
        // crash-under-attack overlap lands two batches after the trojan.
        assert!(grid.iter().filter(|c| c.kind() == "fault").all(|c| c
            .fault
            .as_ref()
            .unwrap()
            .onset_batch
            == 12));
        assert!(grid.iter().any(
            |c| c.kind() == "overlap" && c.fault.as_ref().is_some_and(|f| f.onset_batch == 14)
        ));
    }

    #[test]
    fn case_stream_keys_never_alias() {
        let grid = chaos_grid(8);
        let mut keys: Vec<u64> = grid.iter().map(case_stream_key).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), grid.len(), "chaos cases share an RNG stream");
    }
}

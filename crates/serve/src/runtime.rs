//! The accelerator fleet and its closed-loop response policy.
//!
//! A [`FleetMember`] is one simulated accelerator: the clean trained
//! weights, a [`WeightMapping`] (which learns relocations as the closed
//! loop remaps), the ground-truth fault [`ConditionMap`], the derived
//! *effective* executor network, the analytic [`TelemetryProbe`], and a
//! calibrated detector suite of its own. A [`Fleet`] serves an ordered
//! request stream one micro-batch per active member per tick, fanning the
//! per-member work over the shared worker pool. Ticks are units of
//! *virtual time*: requests become eligible when their
//! [`Request::arrived_at`] stamp is reached, wait in a bounded
//! [`AdmissionQueue`], and the continuous batcher fills each tick's
//! micro-batches from whatever has arrived ([`Fleet::serve_queue`]).
//! With every request stamped `0.0` this degenerates to the closed loop
//! ([`Fleet::serve_stream`]), which reproduces the pre-request-plane
//! contiguous partition byte-for-byte.
//!
//! # Response-policy state machine
//!
//! Per member and batch, the inline detectors score the batch's telemetry
//! frame against the operating thresholds. On an alarm:
//!
//! 1. **Implicate** — the guard-band detector's per-bank excursions
//!    localize the compromise to the banks whose worst z-score exceeds
//!    [`PolicyConfig::implicate_z`].
//! 2. **Quarantine + remap** — every ring of the implicated banks is
//!    retired and its parameters relocated onto the mapping's idle spare
//!    rings ([`WeightMapping::remap_params`]); the quarantined rings are
//!    parked by an operator overlay so they stop contributing corrupted
//!    responses, and the member re-derives its executor network, telemetry
//!    probe and sentinel plan from the remapped state.
//! 3. **Failover** — when the spare pool cannot absorb the quarantined
//!    parameters (or the alarm persists without localizing), the shard
//!    fails over: the member leaves the routing set and its traffic
//!    redistributes to the healthy members.
//! 4. **Re-baseline** — after a remap the member recalibrates its
//!    detectors against the expected post-remediation sensor signature
//!    (the operator knows the remap it just performed), restoring the
//!    calibrated false-positive rate instead of re-alarming forever on
//!    its own repair.
//!
//! Every decision derives from detector scores and deterministic seeds,
//! so a served stream is byte-identical across worker-thread counts.

use std::ops::Range;
use std::sync::Arc;
use std::time::Instant;

use safelight::detect::{Detector, GuardBandDetector, MaskedChannel, SensorHealthScreen};
use safelight::fault::{FaultPlan, FaultState};
use safelight::SafelightError;
use safelight_neuro::parallel::par_map;
use safelight_neuro::{Network, Tensor};
use safelight_obs::profile_span;
use safelight_onn::{
    BlockKind, ConditionMap, InferenceBackend, MrCondition, SensorChannel, SentinelPlan, TapConfig,
    TelemetryFrame, TelemetryProbe, WeightMapping,
};

use crate::observe::ServeObserver;
use crate::scheduler::{AdmissionQueue, Request, RequestOutcome};

/// The workspace's shared stream-key fold (full avalanche per field),
/// used here to derive independent noise streams for members,
/// recalibration windows and scenario replays.
pub(crate) use safelight::attack::fold;

/// Knobs of the closed-loop response policy.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyConfig {
    /// Per-detector alarm thresholds, aligned with the member suites'
    /// detector order (calibrated so the per-run false-positive rate stays
    /// below a target; see [`crate::eval::operating_thresholds`]).
    pub thresholds: Vec<f64>,
    /// Guard-band excursion (in σ) above which a bank is implicated and
    /// quarantined.
    pub implicate_z: f64,
    /// Frames synthesized from the post-remediation probe to re-baseline
    /// the detectors after a remap.
    pub recalibration_frames: usize,
    /// Consecutive unlocalized alarms tolerated before the member fails
    /// over anyway (a persistent alarm the guard bands cannot pin down).
    pub unlocalized_patience: usize,
    /// Batches a crashed member spends in [`MemberState::Restarting`]
    /// before cache recovery brings it back into the routing set.
    pub restart_batches: u64,
    /// Failed remap attempts retried (with backoff) before the member
    /// fails over. 0 restores the pre-fault-tolerance behaviour of failing
    /// over on the first exhausted spare pool.
    pub remap_retries: usize,
    /// Batches to back off after a failed remap attempt (doubled per
    /// consecutive failure).
    pub remap_backoff_batches: u64,
    /// Coherent rail excursion (in σ, per [`GuardBandDetector::coherent_rail_shift`])
    /// above which an alarm is classified as a supply-side transient
    /// (maintenance) instead of a trojan: a glitch dims every bank of a
    /// block at once, a tap on a fraction of the rings cannot.
    pub rail_glitch_z: f64,
    /// Whether the response policy acts on alarms at all (`false` = the
    /// no-response baseline: detection still scores, nothing reacts).
    pub respond: bool,
    /// Whether telemetry frames are emitted and scored inline at all
    /// (`false` strips the detection path entirely — the steady-state
    /// baseline the overhead benchmark compares against).
    pub inline_detection: bool,
}

impl PolicyConfig {
    /// A responding policy with the given operating thresholds and default
    /// knobs.
    #[must_use]
    pub fn new(thresholds: Vec<f64>) -> Self {
        Self {
            thresholds,
            implicate_z: 6.0,
            recalibration_frames: 32,
            unlocalized_patience: 3,
            restart_batches: 2,
            remap_retries: 1,
            remap_backoff_batches: 2,
            rail_glitch_z: 4.0,
            respond: true,
            inline_detection: true,
        }
    }

    /// The no-response baseline: scores frames, never acts.
    #[must_use]
    pub fn baseline(thresholds: Vec<f64>) -> Self {
        Self {
            respond: false,
            ..Self::new(thresholds)
        }
    }

    /// Serving without any inline detection (bench baseline).
    #[must_use]
    pub fn without_detection() -> Self {
        Self {
            inline_detection: false,
            ..Self::baseline(Vec::new())
        }
    }
}

/// Routing state of one fleet member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberState {
    /// In the routing set, serving traffic.
    Healthy,
    /// In the routing set with a maintenance flag raised: one or more of
    /// its sensors are masked as faulty (or a supply transient is in
    /// progress). The member keeps serving — a broken *sensor* does not
    /// degrade the *datapath* — but the flag tells the operator which
    /// hardware to service. Clears back to [`MemberState::Healthy`] when
    /// the masks clear.
    Suspect,
    /// Crashed: out of the routing set while cache recovery re-derives the
    /// member's state; returns to the routing set after
    /// [`PolicyConfig::restart_batches`].
    Restarting,
    /// Failed over: out of the routing set for good.
    Failed,
}

/// What the policy did in response to one alarm (or fault event).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResponseAction {
    /// An alarm the guard bands could not localize (or a remap waiting out
    /// its retry backoff); no remediation taken yet.
    Alarm,
    /// Banks were quarantined and their parameters remapped onto spares.
    Remap {
        /// Banks quarantined (across both blocks).
        quarantined_banks: usize,
        /// Parameter-carrying rings successfully relocated.
        remapped_rings: usize,
        /// Parameter-carrying rings the spare pool could not absorb
        /// (non-zero only when no healthy peer was left to fail over to —
        /// their parameters are parked to zero instead of serving
        /// corrupted values).
        unplaced_rings: usize,
    },
    /// The member left the routing set; traffic redistributed to healthy
    /// peers.
    Failover,
    /// A sensor-health verdict: channels were masked (or an alarm was
    /// classified as a benign sensor fault / supply transient) and the
    /// member was flagged for maintenance — *no* spares were spent.
    Maintenance {
        /// Channels currently masked on the member (0 for a pure supply
        /// transient, which masks nothing).
        masked_channels: usize,
    },
    /// The member crashed and left the routing set for recovery.
    Crash,
    /// The member recovered from the version-stamped model cache and
    /// rejoined the routing set with re-baselined detectors.
    Recover,
}

/// One policy decision, stamped with when and where it happened.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyEvent {
    /// Global micro-batch index of the alarming frame.
    pub batch: u64,
    /// Member the event concerns.
    pub member: usize,
    /// The worst suite score at the alarm.
    pub score: f64,
    /// What the policy did.
    pub action: ResponseAction,
}

/// The per-batch result a member hands back to the fleet loop.
#[derive(Debug, Clone)]
pub struct ServedBatch {
    /// Member that served the batch.
    pub member: usize,
    /// Global micro-batch index.
    pub batch: u64,
    /// Per-request class predictions, in request order.
    pub predictions: Vec<usize>,
    /// Per-detector scores of the batch's telemetry frame (empty when
    /// inline detection is off or the member is a fresh alarm cooldown).
    pub scores: Vec<f64>,
    /// Whether any score crossed its operating threshold.
    pub alarmed: bool,
    /// The *sanitized* telemetry frame the detectors scored (masked
    /// channels replaced by their calibrated means; kept for bank
    /// implication), when detection ran.
    pub frame: Option<TelemetryFrame>,
    /// Channels the sensor-health screen masked on the raw frame.
    pub masked: Vec<MaskedChannel>,
    /// Ground truth: the member was compromised and not yet remediated.
    pub degraded: bool,
}

/// One simulated accelerator of the serving fleet.
pub struct FleetMember {
    id: usize,
    /// The datapath implementation this member simulates — boxed, so one
    /// fleet can mix backends (e.g. a physical-model canary next to fast
    /// analytic members).
    backend: Box<dyn InferenceBackend>,
    mapping: WeightMapping,
    clean: Network,
    /// Injected trojan state (ground truth).
    attack: ConditionMap,
    /// Operator overlay: quarantined rings parked out of the datapath.
    overlay: ConditionMap,
    /// The derived effective executor network.
    effective: Network,
    probe: TelemetryProbe,
    sentinels: SentinelPlan,
    sentinel_magnitude: f64,
    tap: TapConfig,
    suite: Vec<Box<dyn Detector>>,
    guard: GuardBandDetector,
    state: MemberState,
    frames_emitted: u64,
    noise_salt: u64,
    unlocalized_alarms: usize,
    compromised: bool,
    remediated: bool,
    remediations: usize,
    /// Per-sensor health screen masking broken channels ahead of scoring.
    screen: SensorHealthScreen,
    /// Version stamp of the clean model held by the recovery cache.
    cache_stamp: u64,
    /// Factory mapping snapshot the recovery cache restores.
    cache_mapping: WeightMapping,
    /// Factory sentinel plan the recovery cache restores.
    cache_sentinels: SentinelPlan,
    /// Armed benign-fault plan corrupting this member's raw telemetry.
    fault: Option<FaultPlan>,
    fault_state: FaultState,
    /// Global batch index at which a crashed member rejoins the routing
    /// set.
    restart_until: Option<u64>,
    restarts: usize,
    /// Consecutive failed remap attempts (drives the retry backoff).
    remap_attempts: usize,
    /// Global batch index before which remap retries back off.
    retry_after_batch: u64,
    /// Masked channels already reported, deduping maintenance events.
    flagged: Vec<(BlockKind, usize, SensorChannel)>,
}

/// The four bank-level sensor fields in [`GuardBandDetector::field_excursions`]
/// order.
const FIELD_CHANNELS: [SensorChannel; 4] = [
    SensorChannel::DropCurrent,
    SensorChannel::DeltaKelvin,
    SensorChannel::RailPower,
    SensorChannel::TrimOffsetNm,
];

/// Fixed seed and frame base of the sensor-health screen's factory
/// calibration — deliberately *not* member-salted, so a prototype and its
/// [`FleetMember::clone_as`] clones carry bit-identical screens.
const SCREEN_CAL_SEED: u64 = 0x5C4E_E27A_B1E5;
const SCREEN_CAL_BASE: u64 = 1 << 47;
const SCREEN_CAL_FRAMES: u64 = 32;

/// Version stamp of a clean model for the crash-recovery cache: every
/// parameter tensor's shape and exact bit pattern, avalanche-folded. A
/// member only restores from a cache whose stamp matches its clean model.
fn model_stamp(network: &Network) -> u64 {
    let mut h = 0x5AFE_C4A5_4EC0_7E41_u64;
    for p in network.params() {
        for &dim in p.value.shape() {
            h = fold(h, dim as u64);
        }
        for &w in p.value.as_slice() {
            h = fold(h, u64::from(w.to_bits()));
        }
    }
    h
}

impl std::fmt::Debug for FleetMember {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetMember")
            .field("id", &self.id)
            .field("state", &self.state)
            .field("compromised", &self.compromised)
            .field("remediated", &self.remediated)
            .field("remediations", &self.remediations)
            .field("frames_emitted", &self.frames_emitted)
            .finish_non_exhaustive()
    }
}

impl FleetMember {
    /// Builds a member from the clean trained `network`, deriving the
    /// effective executor network, sentinel plan and telemetry probe
    /// through `backend` (which also fixes the accelerator profile).
    ///
    /// `suite` and `guard` must already be calibrated on attack-free
    /// telemetry of this accelerator profile; the member takes ownership
    /// and [`Detector::reset`]s them so one calibration pass serves any
    /// number of members and streams without re-fitting.
    ///
    /// # Errors
    ///
    /// Propagates mapping/derivation errors.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: usize,
        network: &Network,
        mapping: WeightMapping,
        backend: Box<dyn InferenceBackend>,
        tap: TapConfig,
        sentinels_per_block: usize,
        sentinel_magnitude: f64,
        mut suite: Vec<Box<dyn Detector>>,
        guard: GuardBandDetector,
    ) -> Result<Self, SafelightError> {
        let sentinels = SentinelPlan::new(
            &mapping,
            backend.config(),
            sentinels_per_block,
            sentinel_magnitude,
        );
        let effective = backend.derive_network(network, &mapping, &ConditionMap::new())?;
        let probe = backend
            .probe(network, &mapping, &ConditionMap::new(), &sentinels, tap)
            .map_err(SafelightError::from)?;
        for d in &mut suite {
            d.reset();
        }
        // Factory calibration of the sensor-health screen, on synthesized
        // attack-free frames of this member's own probe.
        let mut screen = SensorHealthScreen::default();
        let screen_frames: Vec<TelemetryFrame> = (0..SCREEN_CAL_FRAMES)
            .map(|i| probe.frame(SCREEN_CAL_BASE + i, SCREEN_CAL_SEED))
            .collect();
        screen.calibrate(&screen_frames)?;
        Ok(Self {
            id,
            backend,
            cache_stamp: model_stamp(network),
            cache_mapping: mapping.clone(),
            cache_sentinels: sentinels.clone(),
            mapping,
            clean: network.clone(),
            attack: ConditionMap::new(),
            overlay: ConditionMap::new(),
            effective,
            probe,
            sentinels,
            sentinel_magnitude,
            tap,
            suite,
            guard,
            state: MemberState::Healthy,
            frames_emitted: 0,
            noise_salt: fold(0x0005_E4EF_1EE7, id as u64),
            unlocalized_alarms: 0,
            compromised: false,
            remediated: false,
            remediations: 0,
            screen,
            fault: None,
            fault_state: FaultState::default(),
            restart_until: None,
            restarts: 0,
            remap_attempts: 0,
            retry_after_batch: 0,
            flagged: Vec::new(),
        })
    }

    /// Clones this member as fleet index `id`: identical derived state
    /// (effective network, probe, sentinels, calibrated detectors) with
    /// its own noise stream. Building one prototype and cloning it for
    /// the rest of an identical-hardware fleet skips the redundant
    /// executor/probe derivations — the members differ only by id and
    /// noise salt.
    #[must_use]
    pub fn clone_as(&self, id: usize) -> Self {
        Self {
            id,
            backend: self.backend.clone_box(),
            mapping: self.mapping.clone(),
            clean: self.clean.clone(),
            attack: self.attack.clone(),
            overlay: self.overlay.clone(),
            effective: self.effective.clone(),
            probe: self.probe.clone(),
            sentinels: self.sentinels.clone(),
            sentinel_magnitude: self.sentinel_magnitude,
            tap: self.tap,
            suite: self.suite.clone(),
            guard: self.guard.clone(),
            state: self.state,
            frames_emitted: self.frames_emitted,
            noise_salt: fold(0x0005_E4EF_1EE7, id as u64),
            unlocalized_alarms: self.unlocalized_alarms,
            compromised: self.compromised,
            remediated: self.remediated,
            remediations: self.remediations,
            screen: self.screen.clone(),
            cache_stamp: self.cache_stamp,
            cache_mapping: self.cache_mapping.clone(),
            cache_sentinels: self.cache_sentinels.clone(),
            fault: self.fault.clone(),
            fault_state: self.fault_state.clone(),
            restart_until: self.restart_until,
            restarts: self.restarts,
            remap_attempts: self.remap_attempts,
            retry_after_batch: self.retry_after_batch,
            flagged: self.flagged.clone(),
        }
    }

    /// The member's fleet index.
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// Current routing state.
    #[must_use]
    pub fn state(&self) -> MemberState {
        self.state
    }

    /// Whether the member is in the routing set. A [`MemberState::Suspect`]
    /// member still serves — its maintenance flag concerns a sensor, not
    /// the datapath.
    #[must_use]
    pub fn serves(&self) -> bool {
        matches!(self.state, MemberState::Healthy | MemberState::Suspect)
    }

    /// Ground truth: compromised with no remediation applied yet. A
    /// remediation clears this even when it only covered the implicated
    /// banks — residual corruption on unimplicated rings is reported
    /// through the post-recovery *accuracy* (measured against labels),
    /// not through this flag.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.compromised && !self.remediated
    }

    /// Remediations (remaps) the member has performed.
    #[must_use]
    pub fn remediations(&self) -> usize {
        self.remediations
    }

    /// Crash recoveries the member has performed.
    #[must_use]
    pub fn restarts(&self) -> usize {
        self.restarts
    }

    /// Sensor channels the response policy has quarantined on this member
    /// (maintenance inventory; distinct from bank quarantines, which spend
    /// spare rings).
    #[must_use]
    pub fn quarantined_sensors(&self) -> &[(BlockKind, usize, SensorChannel)] {
        self.screen.quarantined_channels()
    }

    /// Arms a benign-fault plan: from its onset batch the plan corrupts
    /// this member's *raw telemetry* (sensors lying about a healthy
    /// datapath — the optical physics is untouched).
    pub fn arm_fault(&mut self, plan: &FaultPlan) {
        self.fault_state = FaultState::for_plan(plan);
        self.fault = Some(plan.clone());
    }

    /// Shared view of the member's (possibly remapped) mapping.
    #[must_use]
    pub fn mapping(&self) -> &WeightMapping {
        &self.mapping
    }

    /// The member's datapath backend.
    #[must_use]
    pub fn backend(&self) -> &dyn InferenceBackend {
        self.backend.as_ref()
    }

    /// The member's current sentinel plan.
    #[must_use]
    pub fn sentinels(&self) -> &SentinelPlan {
        &self.sentinels
    }

    /// Re-derives the effective executor network, sentinel plan and
    /// telemetry probe from the current mapping and fault state.
    ///
    /// The sentinel plan keeps its existing sites (the probe weights are
    /// physically imprinted — they don't move when other rings do) minus
    /// any site the closed loop retired or consumed as a relocation spare.
    /// Rebuilding from `idle_slots` instead would silently drop every
    /// sentinel of a multi-round block (whose final-round idle rings are
    /// never *fully* idle), shifting the telemetry signature at
    /// re-derivation time and tripping the guard bands on healthy banks.
    fn rederive(&mut self) -> Result<(), SafelightError> {
        let mut conditions = self.attack.clone();
        conditions.stack_map(&self.overlay);
        let surviving_sites = |kind: BlockKind| -> Vec<u64> {
            self.sentinels
                .sites(kind)
                .iter()
                .copied()
                .filter(|&s| {
                    !self.mapping.is_retired(kind, s) && self.mapping.physical_ring(kind, s) == s
                })
                .collect()
        };
        self.sentinels = SentinelPlan::on_sites(
            surviving_sites(BlockKind::Conv),
            surviving_sites(BlockKind::Fc),
            self.sentinel_magnitude,
        );
        self.effective = self
            .backend
            .derive_network(&self.clean, &self.mapping, &conditions)?;
        self.probe = self
            .backend
            .probe(
                &self.clean,
                &self.mapping,
                &conditions,
                &self.sentinels,
                self.tap,
            )
            .map_err(SafelightError::from)?;
        Ok(())
    }

    /// Injects (stacks) trojan `conditions` into the member mid-stream and
    /// re-derives its executor and telemetry state.
    ///
    /// # Errors
    ///
    /// Propagates derivation errors.
    pub fn apply_compromise(&mut self, conditions: &ConditionMap) -> Result<(), SafelightError> {
        self.attack.stack_map(conditions);
        self.compromised = true;
        self.remediated = false;
        self.rederive()
    }

    /// Serves one micro-batch — the requests at stream positions `ids`
    /// (in admission order; shedding can make them non-contiguous) — as a
    /// single batched forward pass through the effective network, plus
    /// (when enabled) one telemetry frame scored by the member's detector
    /// suite.
    ///
    /// # Errors
    ///
    /// Propagates forward-pass errors.
    pub fn serve_batch(
        &mut self,
        requests: &[Request],
        ids: &[usize],
        batch: u64,
        stream_seed: u64,
        policy: &PolicyConfig,
    ) -> Result<ServedBatch, SafelightError> {
        let inputs: Vec<&Tensor> = ids.iter().map(|&i| &requests[i].input).collect();
        let predictions = {
            let _span = profile_span("serve_predict");
            self.backend.predict_batch(&mut self.effective, &inputs)?
        };
        let degraded = self.is_degraded();
        let (scores, alarmed, frame, masked) = if policy.inline_detection {
            let _span = profile_span("serve_detect");
            let mut raw = self
                .probe
                .frame(self.frames_emitted, fold(stream_seed, self.noise_salt));
            self.frames_emitted += 1;
            // Any armed benign fault corrupts the raw readings first —
            // the screen and detectors see what the broken sensors report.
            if let Some(plan) = &self.fault {
                plan.corrupt(
                    &mut raw,
                    batch,
                    &mut self.fault_state,
                    fold(stream_seed, self.noise_salt),
                );
            }
            let health = self.screen.screen(&raw);
            let frame = self.screen.sanitize(&raw, &health);
            let scores: Vec<f64> = self.suite.iter_mut().map(|d| d.score(&frame)).collect();
            let alarmed = scores.iter().zip(&policy.thresholds).any(|(s, t)| s > t);
            (scores, alarmed, Some(frame), health.masked)
        } else {
            (Vec::new(), false, None, Vec::new())
        };
        Ok(ServedBatch {
            member: self.id,
            batch,
            predictions,
            scores,
            alarmed,
            frame,
            masked,
            degraded,
        })
    }

    /// Re-baselines the detector suite and localization guard against the
    /// member's *current* (post-remediation) telemetry signature: the
    /// operator knows the remap it just performed, so the expected sensor
    /// means are the remediated probe's, not the factory calibration's.
    fn recalibrate(&mut self, stream_seed: u64, frames: usize) -> Result<(), SafelightError> {
        let _span = profile_span("recalibrate");
        let seed = fold(
            fold(stream_seed, self.noise_salt),
            0xCA11_B8A7 ^ self.remediations as u64,
        );
        // Frame indices far above any serving stream keep the synthesized
        // calibration noise disjoint from scored frames.
        let base = 1u64 << 48;
        let synth: Vec<TelemetryFrame> = (0..frames.max(1) as u64)
            .map(|i| self.probe.frame(base + i, seed))
            .collect();
        for d in &mut self.suite {
            d.calibrate(&synth)?;
            d.reset();
        }
        self.guard.calibrate(&synth)?;
        // The screen re-baselines too (a remap moves sensor means), keeping
        // its operator quarantines — re-baselining does not un-break a
        // sensor.
        self.screen.calibrate(&synth)?;
        Ok(())
    }

    /// Quarantines every ring of the implicated `banks`, remaps the
    /// parameters they carry onto spare rings, parks the quarantined rings
    /// via the operator overlay, re-derives the executor/probe state and
    /// re-baselines the detectors.
    ///
    /// Returns the applied action. `allow_partial` permits applying a
    /// remap whose spare pool ran dry (last-member graceful degradation);
    /// otherwise the caller is expected to fail the member over and the
    /// mapping mutation is irrelevant because the member leaves service.
    fn quarantine_and_remap(
        &mut self,
        banks: &[(BlockKind, usize)],
        stream_seed: u64,
        policy: &PolicyConfig,
        allow_partial: bool,
    ) -> Result<Option<ResponseAction>, SafelightError> {
        let _span = profile_span("remap");
        // Snapshot for rollback: a refused partial remap must leave the
        // mapping untouched, or the retry (and the eventual failover
        // accounting) would start from a half-consumed spare pool.
        let snapshot = self.mapping.clone();
        let mut remapped = 0usize;
        let mut unplaced = 0usize;
        let mut quarantined: Vec<(BlockKind, u64)> = Vec::new();
        for kind in [BlockKind::Conv, BlockKind::Fc] {
            let per_bank = self.backend.config().block(kind).mrs_per_bank() as u64;
            let rings: Vec<u64> = banks
                .iter()
                .filter(|(k, _)| *k == kind)
                .flat_map(|&(_, bank)| {
                    let base = bank as u64 * per_bank;
                    base..base + per_bank
                })
                .collect();
            if rings.is_empty() {
                continue;
            }
            let outcome = self.mapping.remap_params(kind, &rings)?;
            remapped += outcome.remapped.len();
            unplaced += outcome.unplaced.len();
            quarantined.extend(rings.into_iter().map(|r| (kind, r)));
        }
        if unplaced > 0 && !allow_partial {
            self.mapping = snapshot;
            return Ok(None);
        }
        for (kind, ring) in quarantined {
            self.overlay.stack(kind, ring, MrCondition::Parked);
        }
        self.remediated = true;
        self.remediations += 1;
        self.unlocalized_alarms = 0;
        self.remap_attempts = 0;
        self.retry_after_batch = 0;
        self.rederive()?;
        self.recalibrate(stream_seed, policy.recalibration_frames)?;
        Ok(Some(ResponseAction::Remap {
            quarantined_banks: banks.len(),
            remapped_rings: remapped,
            unplaced_rings: unplaced,
        }))
    }

    /// Brings a crashed member back from the version-stamped model cache:
    /// verifies the stamp, restores the factory mapping and sentinel plan,
    /// drops the operator overlay, and re-derives the executor and probe.
    /// The trojan map is deliberately *kept* — a restart does not exorcise
    /// hardware that is physically present — and the detectors, guard and
    /// screen re-baseline on frames synthesized from the cached *clean*
    /// state, so a trojan that survives the crash re-alarms instead of
    /// being baselined into the post-recovery calibration.
    fn recover_from_cache(
        &mut self,
        stream_seed: u64,
        recalibration_frames: usize,
    ) -> Result<(), SafelightError> {
        let _span = profile_span("cache_recovery");
        if model_stamp(&self.clean) != self.cache_stamp {
            return Err(SafelightError::InvalidParameter {
                name: "recovery cache stamp",
                value: self.cache_stamp as f64,
            });
        }
        self.mapping = self.cache_mapping.clone();
        self.overlay = ConditionMap::new();
        self.sentinels = self.cache_sentinels.clone();
        self.remediated = false;
        self.restarts += 1;
        self.unlocalized_alarms = 0;
        self.remap_attempts = 0;
        self.retry_after_batch = 0;
        self.flagged.clear();
        self.rederive()?;
        let clean_probe = self
            .backend
            .probe(
                &self.clean,
                &self.mapping,
                &ConditionMap::new(),
                &self.sentinels,
                self.tap,
            )
            .map_err(SafelightError::from)?;
        let seed = fold(
            fold(stream_seed, self.noise_salt),
            0x4EC0_7E4A ^ self.restarts as u64,
        );
        let base = 1u64 << 46;
        let synth: Vec<TelemetryFrame> = (0..recalibration_frames.max(1) as u64)
            .map(|i| clean_probe.frame(base + i, seed))
            .collect();
        for d in &mut self.suite {
            d.calibrate(&synth)?;
            d.reset();
        }
        self.guard.calibrate(&synth)?;
        self.screen.calibrate(&synth)?;
        self.state = MemberState::Healthy;
        self.restart_until = None;
        Ok(())
    }
}

/// A mid-stream compromise: trojan conditions landing on one member at a
/// given global batch index.
#[derive(Debug, Clone)]
pub struct Compromise<'a> {
    /// Which member is compromised.
    pub member: usize,
    /// Global micro-batch index at which the trojan activates.
    pub onset_batch: u64,
    /// The injected fault conditions.
    pub conditions: &'a ConditionMap,
}

/// A benign fault landing on one member: a fully expanded [`FaultPlan`]
/// (sensor corruption, a crash, or both — the plan says which).
#[derive(Debug, Clone)]
pub struct MemberFault<'a> {
    /// Which member the fault hits.
    pub member: usize,
    /// The expanded plan. Its `onset_batch` is a *global* micro-batch
    /// index, like [`Compromise::onset_batch`].
    pub plan: &'a FaultPlan,
}

/// Everything a served stream produced.
#[derive(Debug, Clone)]
pub struct StreamOutcome {
    /// Per-request outcomes, in arrival order.
    pub outcomes: Vec<RequestOutcome>,
    /// Policy events, in decision order.
    pub events: Vec<PolicyEvent>,
    /// Requests left unserved because the routing set emptied out.
    pub unserved: usize,
    /// Requests shed at admission (the bounded queue was full).
    pub shed: usize,
    /// Virtual ticks the stream spanned, idle gaps included.
    pub ticks: u64,
}

impl StreamOutcome {
    /// Classification accuracy over the outcomes whose global batch index
    /// lies in `batches`, or `NaN` when the range holds no requests.
    ///
    /// Ground truth lives with the *evaluation*, not the runtime: `labels`
    /// is indexed by request id (the stream position), so the hot-path
    /// outcome never carries the answer key.
    #[must_use]
    pub fn accuracy_in(&self, batches: Range<u64>, labels: &[usize]) -> f64 {
        let mut total = 0usize;
        let mut correct = 0usize;
        for o in &self.outcomes {
            if batches.contains(&o.batch) {
                total += 1;
                correct += usize::from(labels.get(o.id as usize) == Some(&o.prediction));
            }
        }
        if total == 0 {
            f64::NAN
        } else {
            correct as f64 / total as f64
        }
    }

    /// Fraction of all requests (served, unserved and shed) answered by a
    /// member that was not compromised-and-unremediated at the time.
    /// Remediation is what the operator *did*, not a claim the attack
    /// vanished: the residual quality of remediated service shows up in
    /// the recovered accuracy, which is measured against labels.
    #[must_use]
    pub fn availability(&self) -> f64 {
        let total = self.outcomes.len() + self.unserved + self.shed;
        if total == 0 {
            return 1.0;
        }
        let healthy = self.outcomes.iter().filter(|o| !o.degraded_service).count();
        healthy as f64 / total as f64
    }

    /// Ascending-sorted per-request service latencies in virtual ticks,
    /// ready for [`crate::scheduler::percentile`].
    #[must_use]
    pub fn sorted_latencies(&self) -> Vec<f64> {
        let mut latencies: Vec<f64> = self.outcomes.iter().map(|o| o.service_latency).collect();
        latencies.sort_by(|a, b| a.total_cmp(b));
        latencies
    }

    /// Sustained throughput in requests per virtual tick (`NaN` when no
    /// tick elapsed).
    #[must_use]
    pub fn throughput(&self) -> f64 {
        if self.ticks == 0 {
            f64::NAN
        } else {
            self.outcomes.len() as f64 / self.ticks as f64
        }
    }

    /// Fraction of offered requests shed at admission.
    #[must_use]
    pub fn shed_rate(&self) -> f64 {
        let total = self.outcomes.len() + self.unserved + self.shed;
        if total == 0 {
            0.0
        } else {
            self.shed as f64 / total as f64
        }
    }
}

/// A fleet of simulated accelerators serving one model behind the
/// micro-batching scheduler.
pub struct Fleet {
    members: Vec<FleetMember>,
    policy: PolicyConfig,
    /// Optional observability sink: when attached, the tick loop and the
    /// response policy emit structured trace events and metrics to it.
    observer: Option<Arc<ServeObserver>>,
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("members", &self.members)
            .field("policy", &self.policy)
            .finish()
    }
}

impl Fleet {
    /// Assembles a fleet. `members` must be non-empty.
    ///
    /// # Errors
    ///
    /// Returns [`SafelightError::InvalidParameter`] on an empty member
    /// list.
    pub fn new(members: Vec<FleetMember>, policy: PolicyConfig) -> Result<Self, SafelightError> {
        if members.is_empty() {
            return Err(SafelightError::InvalidParameter {
                name: "fleet members",
                value: 0.0,
            });
        }
        Ok(Self {
            members,
            policy,
            observer: None,
        })
    }

    /// Attaches (or detaches, with `None`) an observability sink. The
    /// observer's lifetime should span exactly one served stream: its
    /// tracer accumulates events until [`ServeObserver::drain`].
    pub fn set_observer(&mut self, observer: Option<Arc<ServeObserver>>) {
        self.observer = observer;
    }

    /// The attached observability sink, if any.
    #[must_use]
    pub fn observer(&self) -> Option<&ServeObserver> {
        self.observer.as_deref()
    }

    /// The fleet's members.
    #[must_use]
    pub fn members(&self) -> &[FleetMember] {
        &self.members
    }

    /// The active policy.
    #[must_use]
    pub fn policy(&self) -> &PolicyConfig {
        &self.policy
    }

    /// Members currently in the routing set.
    #[must_use]
    pub fn active_members(&self) -> usize {
        self.members.iter().filter(|m| m.serves()).count()
    }

    /// Serves `requests` closed-loop as ordered micro-batches of
    /// `batch_size`: the admission queue is unbounded, so nothing is shed
    /// and the continuous batcher degenerates to the contiguous
    /// [`crate::scheduler::partition`] schedule (arrival rate = ∞ when
    /// every request is stamped `arrived_at = 0.0`).
    ///
    /// Each tick hands the next pending batches to the active members in
    /// member order and runs them concurrently on the shared worker pool;
    /// the policy then processes any alarms serially, so remediation takes
    /// effect before the next tick. An optional [`Compromise`] lands on
    /// its member at the given batch index. All scheduling, noise and
    /// policy decisions are deterministic in `(requests, seed)` and
    /// independent of `threads`.
    ///
    /// # Errors
    ///
    /// Propagates forward-pass, derivation and recalibration errors.
    pub fn serve_stream(
        &mut self,
        requests: &[Request],
        batch_size: usize,
        compromise: Option<Compromise<'_>>,
        seed: u64,
        threads: usize,
    ) -> Result<StreamOutcome, SafelightError> {
        self.serve_queue(
            requests,
            batch_size,
            usize::MAX,
            compromise,
            None,
            seed,
            threads,
        )
    }

    /// [`Fleet::serve_stream`] plus an optional benign [`MemberFault`]:
    /// sensor faults are armed on their member up front (the plan gates
    /// itself on its onset batch), and a crash plan takes the member
    /// through [`MemberState::Restarting`] and cache recovery mid-stream.
    /// Faults and compromises compose — the chaos grid's overlap cases
    /// land both on one fleet.
    ///
    /// # Errors
    ///
    /// Propagates forward-pass, derivation and recalibration errors, and
    /// rejects out-of-range member indices.
    pub fn serve_stream_with_faults(
        &mut self,
        requests: &[Request],
        batch_size: usize,
        compromise: Option<Compromise<'_>>,
        fault: Option<MemberFault<'_>>,
        seed: u64,
        threads: usize,
    ) -> Result<StreamOutcome, SafelightError> {
        self.serve_queue(
            requests,
            batch_size,
            usize::MAX,
            compromise,
            fault,
            seed,
            threads,
        )
    }

    /// The open-loop request plane: serves `requests` through a bounded
    /// admission queue in virtual time.
    ///
    /// Tick `t` spans virtual time `[t, t+1)`. At the start of each tick
    /// every request whose [`Request::arrived_at`] stamp has been reached
    /// is offered to the admission queue in stream order — admission
    /// never reorders — and shed (counted, never served) when the queue
    /// holds `queue_capacity` requests. The continuous batcher then pops
    /// up to `batch_size` requests per active member off the queue front,
    /// so each tick's micro-batches hold whatever has arrived instead of
    /// a pre-partitioned chunk. A batch dispatched at tick `t` completes
    /// at `t + 1`; per-request queue delay and service latency are
    /// recorded on the outcome in tick units. When the queue runs empty
    /// the clock jumps to the next arrival instead of spinning.
    ///
    /// Response-policy time (compromise/crash onsets, restart windows,
    /// remap backoff) stays in *dispatched-batch* units, exactly as in
    /// the closed loop, so PR 4–6 acceptance numbers remain comparable.
    /// Everything — arrivals, routing, noise, policy — is deterministic
    /// in `(requests, seed)` and independent of `threads`.
    ///
    /// # Errors
    ///
    /// Propagates forward-pass, derivation and recalibration errors, and
    /// rejects out-of-range member indices.
    #[allow(clippy::too_many_arguments)]
    pub fn serve_queue(
        &mut self,
        requests: &[Request],
        batch_size: usize,
        queue_capacity: usize,
        compromise: Option<Compromise<'_>>,
        fault: Option<MemberFault<'_>>,
        seed: u64,
        threads: usize,
    ) -> Result<StreamOutcome, SafelightError> {
        if let Some(c) = &compromise {
            if c.member >= self.members.len() {
                return Err(SafelightError::InvalidParameter {
                    name: "compromised member",
                    value: c.member as f64,
                });
            }
        }
        if let Some(f) = &fault {
            if f.member >= self.members.len() {
                return Err(SafelightError::InvalidParameter {
                    name: "faulted member",
                    value: f.member as f64,
                });
            }
        }
        let mut queue = AdmissionQueue::new(queue_capacity);
        let mut outcomes = Vec::with_capacity(requests.len());
        let mut events = Vec::new();
        // `next_batch` is the global dispatched-batch counter — the same
        // clock the closed loop called `next`, so every policy gating
        // formula below is unchanged. `tick` is the virtual-time clock.
        let mut next_batch = 0usize;
        let mut tick = 0u64;
        let mut next_arrival = 0usize;
        let mut compromise_pending = compromise;
        // Sensor faults arm up front — FaultPlan::corrupt gates itself on
        // the onset batch. The crash (if any) is activated by the tick
        // loop, so the member's last pre-crash batches still serve.
        let mut crash_pending: Option<(usize, u64)> = None;
        if let Some(f) = &fault {
            self.members[f.member].arm_fault(f.plan);
            if f.plan.crash {
                crash_pending = Some((f.member, f.plan.onset_batch));
            }
        }
        // The policy is never mutated mid-stream; one clone outlives the
        // member borrows the tick loop takes.
        let policy = self.policy.clone();
        let obs = self.observer.clone();
        let mut prev_shed = 0usize;
        loop {
            // Admission: offer everything that has arrived by this tick,
            // in stream order. The queue sheds beyond its capacity.
            let arrivals_before = next_arrival;
            while next_arrival < requests.len() && requests[next_arrival].arrived_at <= tick as f64
            {
                queue.offer(next_arrival);
                next_arrival += 1;
            }
            if let Some(o) = &obs {
                let shed_now = queue.shed() - prev_shed;
                prev_shed = queue.shed();
                let admitted = (next_arrival - arrivals_before - shed_now) as u64;
                o.admission(tick, admitted, shed_now as u64, queue.len());
            }
            if queue.is_empty() {
                if next_arrival >= requests.len() {
                    break; // stream drained
                }
                // Idle: jump the virtual clock to the next arrival
                // instead of burning empty ticks.
                tick = (requests[next_arrival].arrived_at.ceil() as u64).max(tick + 1);
                continue;
            }
            // Pending work in batch units, the closed loop's `remaining`:
            // it caps how many members are dealt a batch this tick and
            // anchors the rank-based onset gating below.
            let remaining = queue.len().div_ceil(batch_size.max(1));
            // Recoveries due this tick: a restarting member whose window
            // elapsed rejoins from the model cache before work is dealt.
            for i in 0..self.members.len() {
                let due = self.members[i].state == MemberState::Restarting
                    && self.members[i]
                        .restart_until
                        .is_some_and(|until| next_batch as u64 >= until);
                if due {
                    if let Some(o) = &obs {
                        let until = self.members[i].restart_until.unwrap_or(next_batch as u64);
                        let crash_at = until.saturating_sub(policy.restart_batches);
                        o.recover(
                            tick,
                            next_batch as u64,
                            i,
                            (next_batch as u64).saturating_sub(crash_at),
                        );
                    }
                    self.members[i].recover_from_cache(seed, policy.recalibration_frames)?;
                    events.push(PolicyEvent {
                        batch: next_batch as u64,
                        member: i,
                        score: 0.0,
                        action: ResponseAction::Recover,
                    });
                }
            }
            if let Some((member_id, onset)) = crash_pending {
                // Same rank gating as the compromise below: the crash
                // lands when the member's own next batch index reaches
                // the onset.
                let active_ids: Vec<usize> = self
                    .members
                    .iter()
                    .filter(|m| m.serves())
                    .take(remaining)
                    .map(|m| m.id)
                    .collect();
                let due_at = match active_ids.iter().position(|&id| id == member_id) {
                    Some(rank) => (next_batch + rank) as u64,
                    None => next_batch as u64,
                };
                if due_at >= onset {
                    let member = &mut self.members[member_id];
                    if member.state != MemberState::Failed {
                        member.state = MemberState::Restarting;
                        member.restart_until = Some(due_at + policy.restart_batches);
                        if let Some(o) = &obs {
                            o.crash(tick, due_at, member_id, due_at + policy.restart_batches);
                        }
                        events.push(PolicyEvent {
                            batch: due_at,
                            member: member_id,
                            score: 0.0,
                            action: ResponseAction::Crash,
                        });
                    }
                    crash_pending = None;
                }
            }
            if let Some(c) = &compromise_pending {
                // Activate exactly when the compromised member's *own*
                // next batch index reaches the onset — ticks hand out
                // several batch indices at once, so gating on the tick
                // start alone would slip the onset by up to
                // `fleet_size − 1` batches on larger fleets.
                let active_ids: Vec<usize> = self
                    .members
                    .iter()
                    .filter(|m| m.serves())
                    .take(remaining)
                    .map(|m| m.id)
                    .collect();
                let due = match active_ids.iter().position(|&id| id == c.member) {
                    Some(rank) => (next_batch + rank) as u64 >= c.onset_batch,
                    // The member serves nothing (failed, or out of work
                    // this tick): fall back to the stream position.
                    None => next_batch as u64 >= c.onset_batch,
                };
                if due {
                    self.members[c.member].apply_compromise(c.conditions)?;
                    if let Some(o) = &obs {
                        o.compromise(tick, next_batch as u64, c.member);
                    }
                    compromise_pending = None;
                }
            }
            if self.active_members() == 0 {
                let restarting: Vec<usize> = self
                    .members
                    .iter()
                    .enumerate()
                    .filter(|(_, m)| m.state == MemberState::Restarting)
                    .map(|(i, _)| i)
                    .collect();
                if restarting.is_empty() {
                    break; // routing set exhausted — remaining requests unserved
                }
                // The entire routing set is down but members are coming
                // back: the stream simply waits out the restart window (no
                // request could be served during it either way), so the
                // recovery is fast-forwarded instead of spinning.
                for i in restarting {
                    if let Some(o) = &obs {
                        let until = self.members[i].restart_until.unwrap_or(next_batch as u64);
                        let crash_at = until.saturating_sub(policy.restart_batches);
                        // The window is fast-forwarded, so the recovery
                        // latency is the full restart window, not the
                        // batches that happened to elapse.
                        o.recover(tick, next_batch as u64, i, until.saturating_sub(crash_at));
                    }
                    self.members[i].recover_from_cache(seed, policy.recalibration_frames)?;
                    events.push(PolicyEvent {
                        batch: next_batch as u64,
                        member: i,
                        score: 0.0,
                        action: ResponseAction::Recover,
                    });
                }
                continue;
            }
            // Continuous batching: pop one micro-batch per active member
            // (member order) off the queue front. With everything arrived
            // at time 0 this deals exactly the contiguous partition.
            let dealt: Vec<Vec<usize>> = self
                .members
                .iter()
                .filter(|m| m.serves())
                .take(remaining)
                .map(|_| queue.take_batch(batch_size))
                .collect();
            let tasks: Vec<(&mut FleetMember, u64, Vec<usize>)> = self
                .members
                .iter_mut()
                .filter(|m| m.serves())
                .zip(dealt)
                .enumerate()
                .map(|(i, (m, ids))| (m, (next_batch + i) as u64, ids))
                .collect();
            let served = tasks.len();
            let results: Vec<Result<(ServedBatch, Vec<usize>), SafelightError>> =
                par_map(tasks, threads, |(member, bi, ids)| {
                    // Wall-clock is read only when observed; the timing
                    // rides the trace's uncommitted profile section, so
                    // the committed artifact stays machine-independent.
                    let start = obs.is_some().then(Instant::now);
                    let batch = member.serve_batch(requests, &ids, bi, seed, &policy)?;
                    if let Some(o) = &obs {
                        let wall = start.map_or(0, |s| s.elapsed().as_nanos() as u64);
                        o.batch_served(tick, &batch, ids.len(), wall);
                    }
                    Ok((batch, ids))
                });
            for result in results {
                let (batch, ids) = result?;
                let mut delays = obs.as_ref().map(|_| Vec::with_capacity(ids.len()));
                for (&idx, &prediction) in ids.iter().zip(&batch.predictions) {
                    let req = &requests[idx];
                    let queue_delay = tick as f64 - req.arrived_at;
                    if let Some(d) = &mut delays {
                        d.push((queue_delay, queue_delay + 1.0));
                    }
                    outcomes.push(RequestOutcome {
                        id: req.id,
                        prediction,
                        member: batch.member,
                        batch: batch.batch,
                        degraded_service: batch.degraded,
                        queue_delay,
                        service_latency: queue_delay + 1.0,
                    });
                }
                if let Some(o) = &obs {
                    o.batch_outcomes(&batch, delays.as_deref().unwrap_or(&[]));
                }
                if self.policy.respond && !batch.scores.is_empty() {
                    self.process_batch(&batch, tick, seed, &mut events)?;
                }
            }
            next_batch += served;
            tick += 1;
        }
        let shed = queue.shed();
        let unserved = requests.len() - outcomes.len() - shed;
        if let Some(o) = &obs {
            let healthy = outcomes.iter().filter(|o| !o.degraded_service).count();
            o.stream_end(tick, outcomes.len(), unserved, shed, healthy);
        }
        Ok(StreamOutcome {
            outcomes,
            events,
            unserved,
            shed,
            ticks: tick,
        })
    }

    /// Processes one scored batch: sensor-health bookkeeping first, then —
    /// on an alarm — the fault-vs-trojan discrimination rule, cheapest
    /// benign explanation first. Only a bank whose *physics* moved (drop
    /// current, or several sensor fields together) spends spares; a lone
    /// broken readback or a coherent supply transient raises maintenance.
    fn process_batch(
        &mut self,
        batch: &ServedBatch,
        tick: u64,
        seed: u64,
        events: &mut Vec<PolicyEvent>,
    ) -> Result<(), SafelightError> {
        let _span = profile_span("process_batch");
        let worst = batch.scores.iter().fold(0.0f64, |a, &s| a.max(s));
        let healthy_peers = self
            .members
            .iter()
            .filter(|m| m.id != batch.member && m.serves())
            .count();
        let policy = self.policy.clone();
        let obs = self.observer.clone();
        let member = &mut self.members[batch.member];

        // --- Sensor-health bookkeeping, independent of the trojan verdict.
        let newly_masked: Vec<(BlockKind, usize, SensorChannel)> = batch
            .masked
            .iter()
            .map(|m| (m.block, m.index, m.channel))
            .filter(|key| !member.flagged.contains(key))
            .collect();
        if !newly_masked.is_empty() {
            if let Some(o) = &obs {
                o.sensor_mask(
                    tick,
                    batch.batch,
                    batch.member,
                    &newly_masked,
                    batch.masked.len(),
                    worst,
                );
            }
            member.flagged.extend(newly_masked);
            if member.state == MemberState::Healthy {
                member.state = MemberState::Suspect;
            }
            // The sequential detectors may have integrated corrupt
            // pre-mask readings (a stuck sensor takes a few frames to
            // catch): drop that state rather than let it decay into a
            // late false alarm.
            for d in &mut member.suite {
                d.reset();
            }
            events.push(PolicyEvent {
                batch: batch.batch,
                member: batch.member,
                score: worst,
                action: ResponseAction::Maintenance {
                    masked_channels: batch.masked.len(),
                },
            });
        } else if batch.masked.is_empty() && member.state == MemberState::Suspect && !batch.alarmed
        {
            // Every mask cleared (e.g. a transient ended) and the
            // detectors are quiet: drop the maintenance flag.
            member.state = MemberState::Healthy;
            member.flagged.clear();
            if let Some(o) = &obs {
                o.mask_clear(tick, batch.batch, batch.member);
            }
        }

        if !batch.alarmed {
            // A quiet scored batch breaks the run of *consecutive*
            // unlocalized alarms — isolated calibrated-rate false
            // positives must not accumulate into a failover.
            member.unlocalized_alarms = 0;
            return Ok(());
        }
        let frame = batch
            .frame
            .as_ref()
            .expect("an alarm implies a scored frame");

        // 1. A coherent rail dip across *every* bank of a block is a
        //    supply-side transient: a trojan tapping a fraction of the
        //    rings cannot dim them all at once.
        let rail_z = member.guard.coherent_rail_shift(frame);
        if rail_z >= policy.rail_glitch_z {
            if let Some(o) = &obs {
                o.rail_glitch(
                    tick,
                    batch.batch,
                    batch.member,
                    rail_z,
                    policy.rail_glitch_z,
                    worst,
                );
            }
            if member.state == MemberState::Healthy {
                member.state = MemberState::Suspect;
            }
            for d in &mut member.suite {
                d.reset();
            }
            events.push(PolicyEvent {
                batch: batch.batch,
                member: batch.member,
                score: worst,
                action: ResponseAction::Maintenance {
                    masked_channels: batch.masked.len(),
                },
            });
            return Ok(());
        }

        // 2. Bank implication: the compute-coupled drop channel moved, or
        //    at least two sensor fields moved together. One lone non-drop
        //    field is a sensor story, not a physics story.
        let fields = member.guard.field_excursions(frame);
        let implicated_full: Vec<(BlockKind, usize, [f64; 4])> = fields
            .iter()
            .filter(|(_, _, zs)| {
                zs[0] >= policy.implicate_z
                    || zs.iter().filter(|&&z| z >= policy.implicate_z).count() >= 2
            })
            .copied()
            .collect();
        let implicated: Vec<(BlockKind, usize)> = implicated_full
            .iter()
            .map(|&(kind, bank, _)| (kind, bank))
            .collect();
        let action = if !implicated.is_empty() {
            if batch.batch < member.retry_after_batch {
                // Backing off a failed remap attempt: keep alarming
                // without spending spares until the retry window opens.
                if let Some(o) = &obs {
                    o.implicate(
                        tick,
                        batch.batch,
                        batch.member,
                        &implicated_full,
                        worst,
                        "backoff",
                        &format!(" retry_after={}", member.retry_after_batch),
                    );
                }
                ResponseAction::Alarm
            } else {
                match member.quarantine_and_remap(&implicated, seed, &policy, healthy_peers == 0)? {
                    Some(action) => {
                        if let (
                            Some(o),
                            ResponseAction::Remap {
                                quarantined_banks,
                                remapped_rings,
                                unplaced_rings,
                            },
                        ) = (&obs, &action)
                        {
                            let spares = member.mapping.idle_slots(BlockKind::Conv).len()
                                + member.mapping.idle_slots(BlockKind::Fc).len();
                            o.implicate(
                                tick,
                                batch.batch,
                                batch.member,
                                &implicated_full,
                                worst,
                                "remap",
                                &format!(
                                    " quarantined={quarantined_banks} \
                                     remapped={remapped_rings} unplaced={unplaced_rings}"
                                ),
                            );
                            o.remap_applied(
                                *quarantined_banks,
                                *remapped_rings,
                                *unplaced_rings,
                                batch.member,
                                spares,
                            );
                        }
                        action
                    }
                    None => {
                        member.remap_attempts += 1;
                        if member.remap_attempts > policy.remap_retries {
                            // Spares exhausted beyond patience and a
                            // healthy peer exists: fail over.
                            member.state = MemberState::Failed;
                            if let Some(o) = &obs {
                                o.implicate(
                                    tick,
                                    batch.batch,
                                    batch.member,
                                    &implicated_full,
                                    worst,
                                    "failover",
                                    " reason=spares_exhausted",
                                );
                                o.failover();
                            }
                            ResponseAction::Failover
                        } else {
                            member.retry_after_batch = batch.batch
                                + (policy.remap_backoff_batches << (member.remap_attempts - 1));
                            if let Some(o) = &obs {
                                o.implicate(
                                    tick,
                                    batch.batch,
                                    batch.member,
                                    &implicated_full,
                                    worst,
                                    "remap_failed",
                                    &format!(
                                        " attempts={} retry_after={}",
                                        member.remap_attempts, member.retry_after_batch
                                    ),
                                );
                                o.remap_retry();
                            }
                            ResponseAction::Alarm
                        }
                    }
                }
            }
        } else {
            // 3. Single-sensor stories: exactly one non-drop field of a
            //    bank excursed — quarantine the *sensor*, flag
            //    maintenance, spend no spares. The attribution threshold
            //    is half the implication threshold: a detector already
            //    fired, so *something* moved — a drifting readback alarms
            //    while its z is still between the operating threshold and
            //    `implicate_z`, and waiting for full implication would
            //    burn the unlocalized-alarm patience on a benign sensor.
            //    A sensor story can only explain a *guard-band* alarm:
            //    the sentinel integrity channel and the drop-mean CUSUM
            //    watch the computation itself (dead/stuck sentinels are
            //    masked by the health screen before scoring), so when
            //    either of those is the detector alarming, a broken
            //    readback cannot be the cause and the alarm falls through
            //    to the fail-secure path below.
            let guard_only_alarm = member
                .suite
                .iter()
                .zip(&batch.scores)
                .zip(&policy.thresholds)
                .all(|((d, &s), &t)| s <= t || d.name() == "guard_band");
            let sensor_z = policy.implicate_z * 0.5;
            let mut suspects: Vec<(BlockKind, usize, SensorChannel)> = Vec::new();
            if guard_only_alarm {
                for &(kind, bank, zs) in &fields {
                    let hot: Vec<usize> = (0..4).filter(|&f| zs[f] >= sensor_z).collect();
                    if let [field] = hot.as_slice() {
                        if *field != 0 {
                            suspects.push((kind, bank, FIELD_CHANNELS[*field]));
                        }
                    }
                }
            }
            if suspects.is_empty() {
                // 4. Unlocalized alarm: patience, then failover.
                member.unlocalized_alarms += 1;
                let failing =
                    member.unlocalized_alarms >= policy.unlocalized_patience && healthy_peers > 0;
                if let Some(o) = &obs {
                    o.unlocalized(
                        tick,
                        batch.batch,
                        batch.member,
                        member.unlocalized_alarms,
                        worst,
                        if failing { "failover" } else { "alarm" },
                    );
                }
                if failing {
                    member.state = MemberState::Failed;
                    ResponseAction::Failover
                } else {
                    ResponseAction::Alarm
                }
            } else {
                if let Some(o) = &obs {
                    o.sensor_quarantine(tick, batch.batch, batch.member, &suspects, worst);
                }
                for &(kind, index, channel) in &suspects {
                    member.screen.quarantine_channel(kind, index, channel);
                    if !member.flagged.contains(&(kind, index, channel)) {
                        member.flagged.push((kind, index, channel));
                    }
                }
                if member.state == MemberState::Healthy {
                    member.state = MemberState::Suspect;
                }
                for d in &mut member.suite {
                    d.reset();
                }
                ResponseAction::Maintenance {
                    masked_channels: batch.masked.len() + suspects.len(),
                }
            }
        };
        events.push(PolicyEvent {
            batch: batch.batch,
            member: batch.member,
            score: worst,
            action,
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safelight::detect::default_detectors;
    use safelight_neuro::{Flatten, Layer, Linear};
    use safelight_onn::{AcceleratorConfig, AnalyticBackend, BlockConfig, LayerSpec};

    /// A 4-class identity classifier whose 16 FC weights occupy the first
    /// two banks of a 4-bank FC block — banks 2/3 are spare capacity.
    fn fixture() -> (Network, WeightMapping, AcceleratorConfig) {
        let mut net = Network::new();
        net.push(Flatten::new());
        let mut fc = Linear::new(4, 4, 3).unwrap();
        let mut w = vec![0.05f32; 16];
        for i in 0..4 {
            w[i * 4 + i] = 0.9;
        }
        fc.params_mut()[0].value = Tensor::from_vec(vec![4, 4], w).unwrap();
        net.push(fc);
        let config = AcceleratorConfig::custom(
            BlockConfig {
                vdp_units: 2,
                bank_rows: 2,
                bank_cols: 4,
            },
            BlockConfig {
                vdp_units: 4,
                bank_rows: 2,
                bank_cols: 4,
            },
        )
        .unwrap();
        let mapping =
            WeightMapping::new(&config, &[LayerSpec::new("fc", BlockKind::Fc, 16)]).unwrap();
        (net, mapping, config)
    }

    /// One-hot requests whose ground-truth class equals the hot index:
    /// the clean identity classifier answers them all correctly. Ground
    /// truth lives in [`labels`], not on the request.
    fn requests(count: usize) -> Vec<Request> {
        (0..count)
            .map(|i| {
                let class = i % 4;
                let mut data = vec![0.0f32; 4];
                data[class] = 1.0;
                Request {
                    id: i as u64,
                    input: Tensor::from_vec(vec![1, 2, 2], data).unwrap(),
                    arrived_at: 0.0,
                }
            })
            .collect()
    }

    /// The answer key for [`requests`], indexed by request id.
    fn labels(count: usize) -> Vec<usize> {
        (0..count).map(|i| i % 4).collect()
    }

    fn calibrated_parts(
        net: &Network,
        mapping: &WeightMapping,
        config: &AcceleratorConfig,
    ) -> (Vec<Box<dyn Detector>>, GuardBandDetector, Vec<f64>) {
        let sentinels = SentinelPlan::new(mapping, config, 4, 0.7);
        let probe = TelemetryProbe::new(
            net,
            mapping,
            &ConditionMap::new(),
            config,
            &sentinels,
            TapConfig::default(),
        )
        .unwrap();
        let frames: Vec<TelemetryFrame> = (0..48).map(|b| probe.frame(b, 0xCA1)).collect();
        let mut suite = default_detectors();
        for d in &mut suite {
            d.calibrate(&frames).unwrap();
        }
        let mut guard = GuardBandDetector::default();
        guard.calibrate(&frames).unwrap();
        let thresholds = crate::eval::operating_thresholds(&probe, &mut suite, 24, 24, 0.05, 0xCA1);
        (suite, guard, thresholds)
    }

    fn make_fleet(size: usize, respond: bool) -> (Fleet, Vec<Request>) {
        let (net, mapping, config) = fixture();
        let (suite, guard, thresholds) = calibrated_parts(&net, &mapping, &config);
        let members = (0..size)
            .map(|id| {
                FleetMember::new(
                    id,
                    &net,
                    mapping.clone(),
                    Box::new(AnalyticBackend::new(&config)),
                    TapConfig::default(),
                    4,
                    0.7,
                    suite.iter().map(|d| d.clone_box()).collect(),
                    guard.clone(),
                )
                .unwrap()
            })
            .collect();
        let policy = if respond {
            PolicyConfig::new(thresholds)
        } else {
            PolicyConfig::baseline(thresholds)
        };
        (Fleet::new(members, policy).unwrap(), requests(96))
    }

    /// Park every ring of FC bank 0 — a localized, devastating compromise.
    fn bank0_attack() -> ConditionMap {
        let mut map = ConditionMap::new();
        for ring in 0..8 {
            map.set(BlockKind::Fc, ring, MrCondition::Parked);
        }
        map
    }

    #[test]
    fn clean_stream_serves_every_request_in_order() {
        let (mut fleet, reqs) = make_fleet(2, true);
        let out = fleet.serve_stream(&reqs, 8, None, 7, 2).unwrap();
        assert_eq!(out.outcomes.len(), reqs.len());
        assert_eq!(out.unserved, 0);
        assert!(
            out.events.is_empty(),
            "clean stream alarmed: {:?}",
            out.events
        );
        // Arrival order preserved, all correct, availability 1.
        let key = labels(reqs.len());
        for (i, o) in out.outcomes.iter().enumerate() {
            assert_eq!(o.id, i as u64);
            assert_eq!(o.prediction, key[i]);
            assert!(!o.degraded_service);
            // Closed loop: everything arrived at time 0, so the service
            // latency is the dispatch tick plus the one execution tick.
            assert_eq!(o.queue_delay, (o.batch / 2) as f64);
            assert_eq!(o.service_latency, o.queue_delay + 1.0);
        }
        assert_eq!(out.availability(), 1.0);
        assert_eq!(out.shed, 0);
        assert_eq!(out.ticks, 6); // 12 batches over 2 members
        assert_eq!(out.throughput(), 16.0);
    }

    #[test]
    fn closed_loop_remaps_and_recovers() {
        let (mut fleet, reqs) = make_fleet(2, true);
        let attack = bank0_attack();
        let out = fleet
            .serve_stream(
                &reqs,
                8,
                Some(Compromise {
                    member: 0,
                    onset_batch: 4,
                    conditions: &attack,
                }),
                7,
                2,
            )
            .unwrap();
        // The compromise is localized to one bank with spare capacity on
        // the same die: the policy remaps instead of failing over.
        let remap = out
            .events
            .iter()
            .find(|e| matches!(e.action, ResponseAction::Remap { .. }))
            .expect("no remap event");
        assert_eq!(remap.member, 0);
        assert!(remap.batch >= 4);
        if let ResponseAction::Remap {
            quarantined_banks,
            remapped_rings,
            unplaced_rings,
        } = remap.action
        {
            assert_eq!(quarantined_banks, 1);
            assert_eq!(remapped_rings, 8);
            assert_eq!(unplaced_rings, 0);
        }
        assert_eq!(fleet.members()[0].remediations(), 1);
        assert!(fleet.members()[0].serves());
        // Post-recovery traffic is answered correctly again.
        let recovered = out.accuracy_in(remap.batch + 1..u64::MAX, &labels(reqs.len()));
        assert!(
            recovered > 0.99,
            "post-remap accuracy {recovered} ({:?})",
            out.events
        );
        // The degraded window is confined to member 0's pre-remap batches.
        assert!(out.availability() < 1.0);
        assert!(out.availability() > 0.8);
    }

    #[test]
    fn baseline_policy_stays_degraded() {
        let (mut fleet, reqs) = make_fleet(2, false);
        let attack = bank0_attack();
        let out = fleet
            .serve_stream(
                &reqs,
                8,
                Some(Compromise {
                    member: 0,
                    onset_batch: 4,
                    conditions: &attack,
                }),
                7,
                1,
            )
            .unwrap();
        assert!(out.events.is_empty());
        // Member 0 keeps mis-serving its share: post-onset accuracy stays
        // well below the clean 1.0.
        let post = out.accuracy_in(4..u64::MAX, &labels(reqs.len()));
        assert!(post < 0.95, "baseline post-onset accuracy {post}");
        assert!(out.availability() < 0.8);
    }

    #[test]
    fn spare_exhaustion_fails_over_to_the_healthy_peer() {
        let (mut fleet, reqs) = make_fleet(2, true);
        // Park *every* FC ring: quarantine wants the whole block, the
        // spare pool cannot absorb it, and the shard must fail over.
        let mut attack = ConditionMap::new();
        for ring in 0..32 {
            attack.set(BlockKind::Fc, ring, MrCondition::Parked);
        }
        let out = fleet
            .serve_stream(
                &reqs,
                8,
                Some(Compromise {
                    member: 0,
                    onset_batch: 4,
                    conditions: &attack,
                }),
                7,
                2,
            )
            .unwrap();
        let failover = out
            .events
            .iter()
            .find(|e| matches!(e.action, ResponseAction::Failover))
            .expect("no failover event");
        assert_eq!(failover.member, 0);
        assert!(!fleet.members()[0].serves());
        assert_eq!(fleet.active_members(), 1);
        // Everything after the failover is served clean by member 1.
        let recovered = out.accuracy_in(failover.batch + 1..u64::MAX, &labels(reqs.len()));
        assert!(recovered > 0.99, "post-failover accuracy {recovered}");
        assert_eq!(out.unserved, 0);
        let post_failover: Vec<_> = out
            .outcomes
            .iter()
            .filter(|o| o.batch > failover.batch)
            .collect();
        assert!(post_failover.iter().all(|o| o.member == 1));
        assert!(!post_failover.is_empty());
    }

    #[test]
    fn last_member_degrades_gracefully_when_every_member_is_compromised() {
        let (mut fleet, reqs) = make_fleet(2, true);
        // Park *every* FC ring on *every* member: no remap can fully place,
        // and there is no clean peer to hide behind.
        let mut attack = ConditionMap::new();
        for ring in 0..32 {
            attack.set(BlockKind::Fc, ring, MrCondition::Parked);
        }
        for member in &mut fleet.members {
            member.apply_compromise(&attack).unwrap();
        }
        let out = fleet.serve_stream(&reqs, 8, None, 7, 2).unwrap();
        // One member exhausts its remap retries and fails over...
        let failover = out
            .events
            .iter()
            .find(|e| matches!(e.action, ResponseAction::Failover))
            .expect("no failover event");
        // ...but the last member must NOT fail over into an empty routing
        // set: it takes the partial-remap graceful-degradation branch
        // (parking unplaced parameters) and keeps serving.
        let partial = out
            .events
            .iter()
            .find(|e| {
                matches!(
                    e.action,
                    ResponseAction::Remap {
                        unplaced_rings, ..
                    } if unplaced_rings > 0
                )
            })
            .expect("no partial remap event");
        assert_ne!(partial.member, failover.member);
        assert_eq!(fleet.active_members(), 1);
        assert_eq!(out.unserved, 0, "graceful degradation dropped requests");
        assert_eq!(out.outcomes.len(), reqs.len());
    }

    #[test]
    fn dead_sensors_raise_maintenance_not_quarantine() {
        use safelight::fault::{inject_fault, FaultSpec};
        let (mut fleet, reqs) = make_fleet(2, true);
        let (_, mapping, config) = fixture();
        let sentinels = SentinelPlan::new(&mapping, &config, 4, 0.7);
        let counts = (
            sentinels.sites(BlockKind::Conv).len(),
            sentinels.sites(BlockKind::Fc).len(),
        );
        let spec: FaultSpec = "dead:drop/fc/0.5/2/0".parse().unwrap();
        let plan = inject_fault(&spec, &config, counts, 7).unwrap();
        let out = fleet
            .serve_stream_with_faults(
                &reqs,
                8,
                None,
                Some(MemberFault {
                    member: 0,
                    plan: &plan,
                }),
                7,
                2,
            )
            .unwrap();
        // The dead drop-port monitors are masked and flagged for
        // maintenance — never treated as a trojan.
        assert!(
            out.events
                .iter()
                .any(|e| matches!(e.action, ResponseAction::Maintenance { masked_channels } if masked_channels > 0)),
            "no maintenance event: {:?}",
            out.events
        );
        assert!(
            !out.events.iter().any(|e| matches!(
                e.action,
                ResponseAction::Remap { .. } | ResponseAction::Failover
            )),
            "benign sensor fault spent spares: {:?}",
            out.events
        );
        // The member keeps serving (Suspect, not Failed), with full
        // accuracy: a broken sensor does not degrade the datapath.
        assert_eq!(fleet.members()[0].state(), MemberState::Suspect);
        assert_eq!(fleet.active_members(), 2);
        assert_eq!(out.unserved, 0);
        assert_eq!(out.accuracy_in(0..u64::MAX, &labels(reqs.len())), 1.0);
        assert_eq!(out.availability(), 1.0);
    }

    #[test]
    fn crash_recovers_from_cache_and_rejoins() {
        let (mut fleet, reqs) = make_fleet(2, true);
        let plan = FaultPlan {
            onset_batch: 4,
            sensors: Vec::new(),
            crash: true,
        };
        let out = fleet
            .serve_stream_with_faults(
                &reqs,
                8,
                None,
                Some(MemberFault {
                    member: 0,
                    plan: &plan,
                }),
                7,
                2,
            )
            .unwrap();
        let crash = out
            .events
            .iter()
            .find(|e| matches!(e.action, ResponseAction::Crash))
            .expect("no crash event");
        let recover = out
            .events
            .iter()
            .find(|e| matches!(e.action, ResponseAction::Recover))
            .expect("no recover event");
        assert_eq!(crash.member, 0);
        assert_eq!(recover.member, 0);
        assert!(recover.batch >= crash.batch + 2, "{:?}", out.events);
        assert_eq!(fleet.members()[0].restarts(), 1);
        assert!(fleet.members()[0].serves());
        // No request is lost to the crash (the peer absorbs the traffic),
        // and the recovered member serves clean again.
        assert_eq!(out.unserved, 0);
        assert_eq!(out.accuracy_in(0..u64::MAX, &labels(reqs.len())), 1.0);
        assert!(
            out.outcomes
                .iter()
                .any(|o| o.member == 0 && o.batch > recover.batch),
            "member 0 never served after recovery"
        );
    }

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(8))]
        /// The scheduler satellite property: for arbitrary stream lengths,
        /// batch sizes and fleet shapes, serving preserves request order,
        /// drops nothing, and produces byte-identical per-request outputs
        /// at 1 vs N worker threads — compromise and closed loop included.
        #[test]
        fn serving_is_thread_count_invariant(
            count in 1usize..120,
            batch_size in 1usize..13,
            fleet in 2usize..4,
            onset in 0u64..6,
        ) {
            let attack = bank0_attack();
            let run = |threads: usize| {
                let (mut fleet_rt, _) = make_fleet(fleet, true);
                let reqs = requests(count);
                fleet_rt
                    .serve_stream(
                        &reqs,
                        batch_size,
                        Some(Compromise {
                            member: 0,
                            onset_batch: onset,
                            conditions: &attack,
                        }),
                        13,
                        threads,
                    )
                    .unwrap()
            };
            let a = run(1);
            let b = run(4);
            // Nothing dropped, order preserved.
            proptest::prop_assert_eq!(a.outcomes.len() + a.unserved, count);
            for (i, o) in a.outcomes.iter().enumerate() {
                proptest::prop_assert_eq!(o.id, i as u64);
            }
            // Byte-identical at 1 vs N threads.
            proptest::prop_assert_eq!(&a.outcomes, &b.outcomes);
            proptest::prop_assert_eq!(&a.events, &b.events);
            proptest::prop_assert_eq!(a.unserved, b.unserved);
        }
    }

    #[test]
    fn rederive_preserves_sentinels_on_multi_round_blocks() {
        // A CONV block that wraps (10 weights on 8 rings ⇒ 2 rounds) has
        // no *fully* idle rings, but SentinelPlan::new still provisions
        // sentinels on the final round's idle region (rings 2..8). A
        // regression here made rederive() rebuild the plan from
        // idle_slots() — empty for wrapped blocks — so every compromise
        // onset silently dropped the CONV sentinels and shifted the
        // telemetry baseline of *unattacked* banks.
        let mut net = Network::new();
        let mut conv_like = Linear::new(2, 5, 3).unwrap(); // 10 weights
        conv_like.params_mut()[0].value = Tensor::from_vec(vec![5, 2], vec![0.4; 10]).unwrap();
        net.push(Flatten::new());
        net.push(conv_like);
        let config = AcceleratorConfig::custom(
            BlockConfig {
                vdp_units: 2,
                bank_rows: 1,
                bank_cols: 4,
            }, // 8 CONV rings, wraps
            BlockConfig {
                vdp_units: 2,
                bank_rows: 2,
                bank_cols: 4,
            },
        )
        .unwrap();
        let mapping =
            WeightMapping::new(&config, &[LayerSpec::new("conv", BlockKind::Conv, 10)]).unwrap();
        let (suite, guard, _) = calibrated_parts(&net, &mapping, &config);
        let mut member = FleetMember::new(
            0,
            &net,
            mapping,
            Box::new(AnalyticBackend::new(&config)),
            TapConfig::default(),
            4,
            0.7,
            suite,
            guard,
        )
        .unwrap();
        let factory_sites = member.sentinels().sites(BlockKind::Conv).to_vec();
        assert!(
            !factory_sites.is_empty(),
            "fixture must provision CONV sentinels"
        );
        let baseline = member.probe.noiseless(0);
        // An FC-only compromise must leave the CONV sentinels — and the
        // CONV banks' telemetry means — exactly where they were.
        let mut attack = ConditionMap::new();
        attack.set(BlockKind::Fc, 1, MrCondition::Parked);
        member.apply_compromise(&attack).unwrap();
        assert_eq!(member.sentinels().sites(BlockKind::Conv), factory_sites);
        let after = member.probe.noiseless(0);
        assert_eq!(after.conv, baseline.conv, "CONV telemetry baseline moved");
        assert_eq!(after.conv_sentinels, baseline.conv_sentinels);
    }

    #[test]
    fn outcomes_are_byte_identical_across_thread_counts() {
        let attack = bank0_attack();
        let run = |threads: usize| {
            let (mut fleet, reqs) = make_fleet(3, true);
            fleet
                .serve_stream(
                    &reqs,
                    8,
                    Some(Compromise {
                        member: 0,
                        onset_batch: 3,
                        conditions: &attack,
                    }),
                    11,
                    threads,
                )
                .unwrap()
        };
        let a = run(1);
        let b = run(4);
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.events, b.events);
        assert_eq!(a.unserved, b.unserved);
    }

    /// The satellite regression: at arrival rate ∞ the continuous
    /// batcher reproduces `scheduler::partition` byte-for-byte — same
    /// contiguous batch membership, same global batch indices, same
    /// member round-robin — with the compromise onset and closed loop in
    /// play, so PR 4–6 acceptance numbers remain comparable.
    #[test]
    fn infinite_rate_reproduces_the_closed_loop_partition() {
        use crate::scheduler::partition;
        let attack = bank0_attack();
        for (count, batch_size, fleet_size) in [(96usize, 8usize, 2usize), (50, 7, 3)] {
            let (mut fleet, _) = make_fleet(fleet_size, true);
            let reqs = requests(count);
            let out = fleet
                .serve_queue(
                    &reqs,
                    batch_size,
                    usize::MAX,
                    Some(Compromise {
                        member: 0,
                        onset_batch: 3,
                        conditions: &attack,
                    }),
                    None,
                    11,
                    2,
                )
                .unwrap();
            assert_eq!(out.shed, 0, "an unbounded queue shed load");
            // Group served requests by global batch index and compare
            // against the pre-partitioned schedule.
            let ranges = partition(count, batch_size);
            let mut by_batch: Vec<Vec<u64>> = vec![Vec::new(); ranges.len()];
            let mut batch_member: Vec<Option<usize>> = vec![None; ranges.len()];
            for o in &out.outcomes {
                by_batch[o.batch as usize].push(o.id);
                assert!(batch_member[o.batch as usize].is_none_or(|m| m == o.member));
                batch_member[o.batch as usize] = Some(o.member);
            }
            for (b, range) in ranges.iter().enumerate() {
                let expected: Vec<u64> = (range.start as u64..range.end as u64).collect();
                assert_eq!(by_batch[b], expected, "batch {b} membership diverged");
            }
            // No member serves two batches in one tick, and batches are
            // dealt to active members in member order within a tick.
            let active = fleet.members().iter().filter(|m| m.serves()).count();
            assert!(active >= 1);
        }
    }

    /// Open-loop serving at a finite rate: admission preserves order,
    /// the bounded queue sheds exactly the overflow, latency fields are
    /// consistent, and the result is thread-count invariant.
    #[test]
    fn finite_rate_stream_sheds_and_stays_deterministic() {
        use crate::scheduler::ArrivalModel;
        let model = ArrivalModel::Bursty {
            rate: 24.0,
            burst: 12,
        };
        let schedule = model.schedule(96, 11);
        let mut reqs = requests(96);
        for (r, t) in reqs.iter_mut().zip(&schedule) {
            r.arrived_at = *t;
        }
        let run = |threads: usize| {
            let (mut fleet, _) = make_fleet(2, true);
            fleet
                .serve_queue(&reqs, 8, 10, None, None, 7, threads)
                .unwrap()
        };
        let out = run(1);
        // Heavy bursts into a 10-deep queue on a 16-requests-per-tick
        // fleet must shed something, and everything admitted is served.
        assert!(out.shed > 0, "burst load never overflowed the queue");
        assert_eq!(out.outcomes.len() + out.shed, 96);
        assert_eq!(out.unserved, 0);
        assert!((out.shed_rate() - out.shed as f64 / 96.0).abs() < 1e-12);
        // Admitted requests come back in admission order with sane
        // latency accounting.
        for w in out.outcomes.windows(2) {
            assert!(w[0].id < w[1].id);
        }
        for o in &out.outcomes {
            assert!(o.queue_delay >= 0.0);
            assert_eq!(o.service_latency, o.queue_delay + 1.0);
        }
        assert!(out.ticks > 0);
        let sorted = out.sorted_latencies();
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
        // Byte-identical across worker-thread counts at a finite rate.
        let other = run(4);
        assert_eq!(out.outcomes, other.outcomes);
        assert_eq!(out.events, other.events);
        assert_eq!((out.shed, out.ticks), (other.shed, other.ticks));
    }

    /// The obs histogram's percentile estimate on real serving latencies
    /// stays within one log-bucket width of the exact nearest-rank
    /// [`crate::scheduler::percentile`] — the accuracy contract the
    /// serving metrics (`serve_latency_ticks` et al.) rely on.
    #[test]
    fn histogram_percentiles_track_exact_on_serving_latencies() {
        use crate::scheduler::{percentile, ArrivalModel};
        use safelight_obs::{Histogram, HistogramConfig};
        let model = ArrivalModel::Bursty {
            rate: 24.0,
            burst: 12,
        };
        let schedule = model.schedule(96, 11);
        let mut reqs = requests(96);
        for (r, t) in reqs.iter_mut().zip(&schedule) {
            r.arrived_at = *t;
        }
        let (mut fleet, _) = make_fleet(2, true);
        let out = fleet.serve_queue(&reqs, 8, 10, None, None, 7, 2).unwrap();
        let sorted = out.sorted_latencies();
        assert!(sorted.len() >= 16, "want a real latency spread");
        assert!(sorted.last() > sorted.first(), "latencies all equal");
        let hist = Histogram::new(HistogramConfig::latency_ticks());
        for &v in &sorted {
            hist.observe(v);
        }
        let config = hist.config();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let exact = percentile(&sorted, q);
            let est = hist.percentile(q);
            let bucket = config.bucket_of(exact);
            let width = if bucket == 0 {
                config.upper_bound(0)
            } else {
                config.upper_bound(bucket) - config.upper_bound(bucket - 1)
            };
            assert!(
                est >= exact && est - exact <= width,
                "q={q}: est {est} vs exact {exact} (bucket width {width})"
            );
        }
    }
}

//! The serving evaluation: every attack scenario replayed as a request
//! stream with mid-stream compromise onset, against the closed-loop
//! runtime *and* a no-response baseline.
//!
//! Methodology:
//!
//! 1. the detector suite and localization guard are calibrated once on
//!    attack-free telemetry of the accelerator profile; operating
//!    thresholds come from attack-free replay runs at a target
//!    false-positive rate (same discipline as `eval::detection`);
//! 2. a fixed request stream is derived from the test set (request `i`
//!    is test item `i mod len`), partitioned into micro-batches;
//! 3. per scenario, the stream is served twice on a fresh fleet — once
//!    with the response policy live, once with response disabled — with
//!    the injected conditions landing on member 0 at the onset batch;
//! 4. the report slices accuracy into pre-onset / degraded / recovered
//!    phases around the policy's own events and records
//!    detection-to-recovery latency in batches, the action taken and the
//!    availability of trustworthy service.
//!
//! Every noise draw derives from `(seed, scenario spec, batch)`, so the
//! report — and its CSV/JSON renderings — are bitwise independent of the
//! worker-thread count.

use std::sync::Arc;

use safelight::attack::ScenarioSpec;
use safelight::detect::{Detector, GuardBandDetector};
use safelight::eval::{inject_all, InjectedScenario};
use safelight::experiment::{workbench, ExperimentOptions, Fidelity, ModelWorkbench};
use safelight::models::ModelKind;
use safelight::SafelightError;
use safelight_neuro::parallel::par_map;
use safelight_neuro::{Dataset, Network};
use safelight_obs::{MetricsRegistry, SloInput, SloSpec, SloVerdict};
use safelight_onn::{
    ConditionMap, InferenceBackend, SentinelPlan, TapConfig, TelemetryFrame, TelemetryProbe,
    WeightMapping,
};

use crate::observe::{ObsArtifacts, ServeObserver};
use crate::runtime::{
    fold, Compromise, Fleet, FleetMember, PolicyConfig, ResponseAction, StreamOutcome,
};
use crate::scheduler::{percentile, ArrivalModel, Request};

/// Tuning knobs of the serving evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServingOptions {
    /// Requests per micro-batch.
    pub batch_size: usize,
    /// Micro-batches in the request stream.
    pub batches: usize,
    /// Global batch index at which the compromise activates.
    pub onset_batch: u64,
    /// Fleet members serving the stream (member 0 is compromised).
    pub fleet_size: usize,
    /// Attack-free frames the detectors are calibrated on.
    pub calibration_frames: usize,
    /// Attack-free replay runs behind the operating thresholds.
    pub clean_runs: usize,
    /// Per-run false-positive-rate target of the thresholds.
    pub fpr_target: f64,
    /// Guard-band excursion (σ) that implicates a bank.
    pub implicate_z: f64,
    /// Frames synthesized to re-baseline detectors after a remap.
    pub recalibration_frames: usize,
    /// Consecutive unlocalized alarms before failing over anyway.
    pub unlocalized_patience: usize,
    /// Batches a crashed member spends restarting before cache recovery.
    pub restart_batches: u64,
    /// Failed remap attempts retried (with backoff) before failover.
    pub remap_retries: usize,
    /// Backoff after a failed remap attempt, doubled per failure.
    pub remap_backoff_batches: u64,
    /// Coherent rail excursion (σ) classifying an alarm as a supply
    /// transient instead of a trojan.
    pub rail_glitch_z: f64,
    /// Sensor tap configuration.
    pub tap: TapConfig,
    /// Sentinel rings provisioned per block.
    pub sentinels_per_block: usize,
    /// Probe magnitude imprinted on sentinel rings.
    pub sentinel_magnitude: f64,
    /// The arrival process replaying the stream through the request
    /// plane ([`ArrivalModel::Closed`] = the pre-request-plane closed
    /// loop: everything arrives before serving starts).
    pub arrival: ArrivalModel,
    /// Admission-queue capacity; `0` picks the default — unbounded for
    /// closed-loop arrivals, `4 × fleet × batch_size` at a finite rate.
    pub queue_capacity: usize,
    /// The SLO every stream is judged against, when set: rows gain an
    /// [`SloVerdict`], observers evaluate the virtual-time alert rules,
    /// and observed runs reconstruct incident reports from the trace.
    pub slo: Option<SloSpec>,
}

impl Default for ServingOptions {
    fn default() -> Self {
        Self {
            batch_size: 16,
            batches: 36,
            onset_batch: 12,
            fleet_size: 2,
            calibration_frames: 48,
            clean_runs: 32,
            fpr_target: 0.05,
            implicate_z: 6.0,
            recalibration_frames: 32,
            unlocalized_patience: 3,
            restart_batches: 2,
            remap_retries: 1,
            remap_backoff_batches: 2,
            rail_glitch_z: 4.0,
            tap: TapConfig::default(),
            sentinels_per_block: 32,
            sentinel_magnitude: 0.7,
            arrival: ArrivalModel::Closed,
            queue_capacity: 0,
            slo: None,
        }
    }
}

impl ServingOptions {
    /// The serving knobs matched to an experiment fidelity.
    #[must_use]
    pub fn for_fidelity(fidelity: Fidelity) -> Self {
        match fidelity {
            Fidelity::Quick => Self {
                batch_size: 8,
                batches: 24,
                onset_batch: 8,
                calibration_frames: 32,
                clean_runs: 24,
                ..Self::default()
            },
            Fidelity::Full => Self::default(),
        }
    }

    /// The admission-queue capacity the evaluation actually uses: the
    /// explicit `queue_capacity` when set, otherwise unbounded for the
    /// closed loop and `4 × fleet × batch_size` at a finite rate (deep
    /// enough to ride a burst out, shallow enough that overload sheds
    /// instead of growing the tail without bound).
    #[must_use]
    pub fn effective_queue_capacity(&self) -> usize {
        if self.queue_capacity > 0 {
            self.queue_capacity
        } else if self.arrival == ArrivalModel::Closed {
            usize::MAX
        } else {
            4 * self.fleet_size.max(1) * self.batch_size.max(1)
        }
    }
}

/// The serving outcome of one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioServing {
    /// The injected scenario.
    pub scenario: ScenarioSpec,
    /// Fraction of the targeted blocks' rings actually compromised.
    pub effective_fraction: f64,
    /// Accuracy over the pre-onset batches (clean fleet).
    pub pre_onset_accuracy: f64,
    /// Accuracy from onset until recovery (stream end when never
    /// recovered).
    pub degraded_accuracy: f64,
    /// Accuracy over the post-recovery batches (`NaN` when the policy
    /// never remediated or no post-recovery batch remained).
    pub recovered_accuracy: f64,
    /// No-response baseline accuracy over every post-onset batch.
    pub baseline_post_accuracy: f64,
    /// Batches from onset to the first alarm/action, inclusive (`NaN`
    /// when nothing fired).
    pub detection_latency_batches: f64,
    /// Batches from onset until remediated service resumed (`NaN` when it
    /// never did).
    pub recovery_latency_batches: f64,
    /// The remediation applied: `remap`, `failover`, `alarm` (unlocalized
    /// alarms only) or `none`, joined by `+` when several fired.
    pub action: String,
    /// Parameter-carrying rings relocated onto spares.
    pub remapped_rings: usize,
    /// Parameter-carrying rings the spare pool could not absorb.
    pub unplaced_rings: usize,
    /// Fraction of requests served by trustworthy (never-compromised or
    /// remediated) members.
    pub availability: f64,
    /// Median per-request service latency in virtual ticks (closed-loop
    /// response run).
    pub p50_latency: f64,
    /// 99th-percentile service latency in virtual ticks.
    pub p99_latency: f64,
    /// 99.9th-percentile service latency in virtual ticks.
    pub p999_latency: f64,
    /// Sustained throughput in requests per virtual tick.
    pub throughput: f64,
    /// Fraction of offered requests shed at admission.
    pub shed_rate: f64,
    /// The SLO verdict for this stream, when the options carry a spec.
    pub slo: Option<SloVerdict>,
}

/// The full serving-evaluation report.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// Detector names, in suite order.
    pub detectors: Vec<String>,
    /// Operating thresholds, aligned with `detectors`.
    pub thresholds: Vec<f64>,
    /// Accuracy of the clean fleet over the whole reference stream.
    pub clean_accuracy: f64,
    /// Stream shape: micro-batches served.
    pub batches: usize,
    /// Stream shape: requests per micro-batch.
    pub batch_size: usize,
    /// Fleet members.
    pub fleet_size: usize,
    /// Compromise onset batch.
    pub onset_batch: u64,
    /// The arrival process the stream was replayed through.
    pub arrival: ArrivalModel,
    /// One row per scenario, in input order.
    pub rows: Vec<ScenarioServing>,
}

impl ServingReport {
    /// The row of the scenario equal to `spec`.
    #[must_use]
    pub fn row(&self, spec: &ScenarioSpec) -> Option<&ScenarioServing> {
        self.rows.iter().find(|r| &r.scenario == spec)
    }
}

/// Calibrates per-detector operating thresholds: the k-th largest
/// max-score over `clean_runs` attack-free replay runs of `frames` frames
/// each, with k chosen so the per-run false-positive rate stays below
/// `fpr_target` (the same rule `eval::detection` applies).
///
/// The suite is reused across runs via [`Detector::reset`] — no
/// per-run reallocation.
#[must_use]
pub fn operating_thresholds(
    probe: &TelemetryProbe,
    suite: &mut [Box<dyn Detector>],
    clean_runs: usize,
    frames: usize,
    fpr_target: f64,
    seed: u64,
) -> Vec<f64> {
    let clean_runs = clean_runs.max(1);
    let mut maxima: Vec<Vec<f64>> = vec![Vec::with_capacity(clean_runs); suite.len()];
    for run in 0..clean_runs as u64 {
        for d in suite.iter_mut() {
            d.reset();
        }
        let run_seed = fold(fold(seed, 0xC1EA_4095), run);
        let mut run_max = vec![0.0f64; suite.len()];
        for batch in 0..frames as u64 {
            let frame = probe.frame(batch, run_seed);
            for (d, m) in suite.iter_mut().zip(&mut run_max) {
                *m = m.max(d.score(&frame));
            }
        }
        for (per, m) in maxima.iter_mut().zip(run_max) {
            per.push(m);
        }
    }
    for d in suite.iter_mut() {
        d.reset();
    }
    let k = ((fpr_target * clean_runs as f64).floor() as usize).clamp(1, clean_runs);
    maxima
        .into_iter()
        .map(|mut per| {
            per.sort_by(|a, b| b.partial_cmp(a).expect("scores are finite"));
            per[k - 1]
        })
        .collect()
}

/// Builds the evaluation's fixed request stream from `data`: request `i`
/// is test item `i % len`, for `batches × batch_size` requests, stamped
/// with arrival times drawn once from `opts.arrival` — every scenario
/// replays the *same* arrivals. Ground truth stays out of the stream:
/// the returned label vector (indexed by request id) is the evaluation's
/// answer key.
pub(crate) fn request_stream<D: Dataset + ?Sized>(
    data: &D,
    opts: &ServingOptions,
    seed: u64,
) -> Result<(Vec<Request>, Vec<usize>), SafelightError> {
    let total = opts.batches * opts.batch_size;
    let len = data.len();
    let schedule = opts.arrival.schedule(total, seed);
    let mut requests = Vec::with_capacity(total);
    let mut labels = Vec::with_capacity(total);
    for (i, &arrived_at) in schedule.iter().enumerate() {
        let (input, label) = data.item(i % len)?;
        requests.push(Request {
            id: i as u64,
            input,
            arrived_at,
        });
        labels.push(label);
    }
    Ok((requests, labels))
}

/// Everything the per-scenario fleets share: calibrated detector suite,
/// localization guard and thresholds.
pub(crate) struct CalibratedParts {
    pub(crate) suite: Vec<Box<dyn Detector>>,
    pub(crate) guard: GuardBandDetector,
    pub(crate) thresholds: Vec<f64>,
    pub(crate) names: Vec<String>,
}

pub(crate) fn calibrate(
    network: &Network,
    mapping: &WeightMapping,
    backend: &dyn InferenceBackend,
    detectors: &[Box<dyn Detector>],
    opts: &ServingOptions,
    seed: u64,
) -> Result<CalibratedParts, SafelightError> {
    let sentinels = SentinelPlan::new(
        mapping,
        backend.config(),
        opts.sentinels_per_block,
        opts.sentinel_magnitude,
    );
    let probe = backend
        .probe(network, mapping, &ConditionMap::new(), &sentinels, opts.tap)
        .map_err(SafelightError::from)?;
    let cal_seed = fold(seed, 0xCA11_B8A7);
    let frames: Vec<TelemetryFrame> = (0..opts.calibration_frames as u64)
        .map(|b| probe.frame(b, cal_seed))
        .collect();
    let mut suite: Vec<Box<dyn Detector>> = detectors.iter().map(|d| d.clone_box()).collect();
    for d in &mut suite {
        d.calibrate(&frames)?;
    }
    let mut guard = GuardBandDetector::default();
    guard.calibrate(&frames)?;
    let thresholds = operating_thresholds(
        &probe,
        &mut suite,
        opts.clean_runs,
        opts.batches,
        opts.fpr_target,
        seed,
    );
    let names = suite.iter().map(|d| d.name().to_string()).collect();
    Ok(CalibratedParts {
        suite,
        guard,
        thresholds,
        names,
    })
}

pub(crate) fn build_fleet(
    network: &Network,
    mapping: &WeightMapping,
    backend: &dyn InferenceBackend,
    parts: &CalibratedParts,
    opts: &ServingOptions,
    respond: bool,
) -> Result<Fleet, SafelightError> {
    // Identical hardware: derive the executor/probe state once and clone
    // it across the fleet (members differ only by id and noise salt).
    let prototype = FleetMember::new(
        0,
        network,
        mapping.clone(),
        backend.clone_box(),
        opts.tap,
        opts.sentinels_per_block,
        opts.sentinel_magnitude,
        parts.suite.iter().map(|d| d.clone_box()).collect(),
        parts.guard.clone(),
    )?;
    let mut members: Vec<FleetMember> = (1..opts.fleet_size.max(1))
        .map(|id| prototype.clone_as(id))
        .collect();
    members.insert(0, prototype);
    let mut policy = if respond {
        PolicyConfig::new(parts.thresholds.clone())
    } else {
        PolicyConfig::baseline(parts.thresholds.clone())
    };
    policy.implicate_z = opts.implicate_z;
    policy.recalibration_frames = opts.recalibration_frames;
    policy.unlocalized_patience = opts.unlocalized_patience;
    policy.restart_batches = opts.restart_batches;
    policy.remap_retries = opts.remap_retries;
    policy.remap_backoff_batches = opts.remap_backoff_batches;
    policy.rail_glitch_z = opts.rail_glitch_z;
    Fleet::new(members, policy)
}

/// A stable stream key of a scenario spec (all fields avalanche-mixed).
pub(crate) fn spec_stream_key(spec: &ScenarioSpec) -> u64 {
    let mut h = fold(0x5E4E_5742_EA11, spec.trial);
    h = fold(h, spec.fraction.to_bits());
    for byte in spec.to_spec_string().bytes() {
        h = fold(h, u64::from(byte));
    }
    h
}

/// Slices the stream outcome of one scenario into the report row.
/// `labels` is the eval-side answer key, indexed by request id.
fn summarize(
    entry: &InjectedScenario,
    compromised_member: usize,
    with_response: &StreamOutcome,
    baseline: &StreamOutcome,
    labels: &[usize],
    opts: &ServingOptions,
) -> ScenarioServing {
    let onset = opts.onset_batch;
    // Continuous batching can form more (smaller) batches than the
    // closed loop's `opts.batches`, so "stream end" is open-ended; at
    // rate ∞ the indices still top out at `opts.batches`.
    let end = u64::MAX;
    let mut detect_batch: Option<u64> = None;
    let mut recovery_batch: Option<u64> = None;
    let mut actions: Vec<&str> = Vec::new();
    let mut remapped = 0usize;
    let mut unplaced = 0usize;
    // Only post-onset events *on the compromised member* describe the
    // attack's detection/response — a pre-onset event, or a post-onset
    // event on an uncompromised peer, is a calibrated-rate false positive
    // and must not masquerade as detection or shift the phase boundaries.
    for e in with_response
        .events
        .iter()
        .filter(|e| e.batch >= onset && e.member == compromised_member)
    {
        let label = match e.action {
            // Maintenance flags and crash/recovery transitions are not
            // trojan detections — they must not start the latency clock
            // or shift the phase boundaries.
            ResponseAction::Maintenance { .. }
            | ResponseAction::Crash
            | ResponseAction::Recover => continue,
            ResponseAction::Alarm => "alarm",
            ResponseAction::Remap {
                remapped_rings,
                unplaced_rings,
                ..
            } => {
                remapped += remapped_rings;
                unplaced += unplaced_rings;
                if recovery_batch.is_none() {
                    recovery_batch = Some(e.batch + 1);
                }
                "remap"
            }
            ResponseAction::Failover => {
                if recovery_batch.is_none() {
                    recovery_batch = Some(e.batch + 1);
                }
                "failover"
            }
        };
        if detect_batch.is_none() {
            detect_batch = Some(e.batch);
        }
        if !actions.contains(&label) {
            actions.push(label);
        }
    }
    let degraded_end = recovery_batch.unwrap_or(end);
    let latencies = with_response.sorted_latencies();
    ScenarioServing {
        scenario: entry.scenario.clone(),
        effective_fraction: entry.effective_fraction,
        pre_onset_accuracy: with_response.accuracy_in(0..onset, labels),
        degraded_accuracy: with_response.accuracy_in(onset..degraded_end, labels),
        recovered_accuracy: recovery_batch
            .map_or(f64::NAN, |r| with_response.accuracy_in(r..end, labels)),
        baseline_post_accuracy: baseline.accuracy_in(onset..end, labels),
        detection_latency_batches: detect_batch
            .map_or(f64::NAN, |b| (b.saturating_sub(onset) + 1) as f64),
        recovery_latency_batches: recovery_batch
            .map_or(f64::NAN, |b| b.saturating_sub(onset) as f64),
        action: if actions.is_empty() {
            "none".into()
        } else {
            actions.join("+")
        },
        remapped_rings: remapped,
        unplaced_rings: unplaced,
        availability: with_response.availability(),
        p50_latency: percentile(&latencies, 0.50),
        p99_latency: percentile(&latencies, 0.99),
        p999_latency: percentile(&latencies, 0.999),
        throughput: with_response.throughput(),
        shed_rate: with_response.shed_rate(),
        // Serving rows always inject a real trojan, so a quarantine here
        // is never spurious.
        slo: opts.slo.map(|spec| {
            spec.verdict(&SloInput {
                availability: with_response.availability(),
                p99_latency: percentile(&latencies, 0.99),
                p999_latency: percentile(&latencies, 0.999),
                shed_rate: with_response.shed_rate(),
                spurious_quarantines: 0,
            })
        }),
    }
}

/// Runs the full serving evaluation: calibrates the detector suite,
/// measures the clean fleet's reference accuracy, then replays every
/// scenario of `scenarios` as a mid-stream compromise against both the
/// closed-loop runtime and the no-response baseline.
///
/// Scenario work fans out over `threads` workers of the shared pool (the
/// fleets' per-member batches fan out again underneath); results are
/// ordered by the input scenario order and bitwise independent of
/// `threads`.
///
/// # Errors
///
/// Rejects degenerate options (zero batches/batch size, onset beyond the
/// stream) and propagates injection, derivation and forward-pass errors.
#[allow(clippy::too_many_arguments)]
pub fn run_serving<D: Dataset + Sync + ?Sized>(
    network: &Network,
    mapping: &WeightMapping,
    backend: &dyn InferenceBackend,
    data: &D,
    scenarios: &[ScenarioSpec],
    detectors: &[Box<dyn Detector>],
    opts: &ServingOptions,
    seed: u64,
    threads: usize,
) -> Result<ServingReport, SafelightError> {
    run_serving_observed(
        network, mapping, backend, data, scenarios, detectors, opts, seed, threads, false,
    )
    .map(|(report, _)| report)
}

/// [`run_serving`] with the observability plane attached when `observe`
/// is true: each scenario's with-response stream runs under its own
/// [`ServeObserver`] (scoped `scenario="<spec>"` metric labels, private
/// tracer), and the returned [`ObsArtifacts`] concatenate the per-scenario
/// committed traces in input-scenario order — byte-identical across
/// worker-thread counts — plus the wall-clock profile sidecar and the
/// merged metrics snapshot.
///
/// # Errors
///
/// Same as [`run_serving`].
#[allow(clippy::too_many_arguments)]
pub fn run_serving_observed<D: Dataset + Sync + ?Sized>(
    network: &Network,
    mapping: &WeightMapping,
    backend: &dyn InferenceBackend,
    data: &D,
    scenarios: &[ScenarioSpec],
    detectors: &[Box<dyn Detector>],
    opts: &ServingOptions,
    seed: u64,
    threads: usize,
    observe: bool,
) -> Result<(ServingReport, Option<ObsArtifacts>), SafelightError> {
    if opts.batches == 0 || opts.batch_size == 0 || opts.onset_batch >= opts.batches as u64 {
        return Err(SafelightError::InvalidParameter {
            name: "batches/onset",
            value: opts.batches as f64,
        });
    }
    if opts.fleet_size == 0 {
        return Err(SafelightError::InvalidParameter {
            name: "fleet size",
            value: 0.0,
        });
    }
    if !opts.arrival.is_valid() {
        return Err(SafelightError::InvalidParameter {
            name: "arrival rate",
            value: opts.arrival.rate(),
        });
    }
    let parts = calibrate(network, mapping, backend, detectors, opts, seed)?;
    let (requests, labels) = request_stream(data, opts, seed)?;
    let capacity = opts.effective_queue_capacity();

    // Clean reference: the whole stream on an uncompromised fleet. The
    // score-but-never-respond baseline policy keeps a calibrated-rate
    // false alarm from remapping (or failing over) the reference fleet
    // mid-measurement.
    let clean_accuracy = {
        let mut fleet = build_fleet(network, mapping, backend, &parts, opts, false)?;
        let out = fleet.serve_queue(
            &requests,
            opts.batch_size,
            capacity,
            None,
            None,
            fold(seed, 0xC1EA),
            threads,
        )?;
        out.accuracy_in(0..u64::MAX, &labels)
    };

    let needs_salience = scenarios
        .iter()
        .any(|s| s.selection == safelight::attack::Selection::Targeted);
    let salience = if needs_salience {
        Some(safelight::attack::RingSalience::from_network(
            network,
            mapping,
            backend.config(),
        )?)
    } else {
        None
    };
    let injected = inject_all(
        backend.config(),
        scenarios,
        salience.as_ref(),
        seed,
        threads,
    )?;
    // The compromise always lands on member 0; summarize() filters the
    // policy events down to that member so a false alarm on a healthy
    // peer never masquerades as the attack's detection.
    let compromise_member = 0usize;
    // One shared registry; each scenario's observer namespaces its series
    // with a `scenario` label, so every series has a single (serial)
    // writer and the merged snapshot is thread-count independent.
    let registry = observe.then(|| Arc::new(MetricsRegistry::new()));
    type ObservedRow = (ScenarioServing, Option<(String, String)>);
    let rows: Vec<Result<ObservedRow, SafelightError>> = par_map(injected, threads, |entry| {
        let stream_seed = fold(seed, spec_stream_key(&entry.scenario));
        let compromise = Compromise {
            member: compromise_member,
            onset_batch: opts.onset_batch,
            conditions: &entry.conditions,
        };
        let mut fleet = build_fleet(network, mapping, backend, &parts, opts, true)?;
        let spec = entry.scenario.to_spec_string();
        let observer = registry.as_ref().map(|reg| {
            Arc::new(ServeObserver::with_scope_slo(
                reg.clone(),
                &[("scenario", &spec)],
                opts.slo.as_ref(),
            ))
        });
        fleet.set_observer(observer.clone());
        let with_response = fleet.serve_queue(
            &requests,
            opts.batch_size,
            capacity,
            Some(compromise.clone()),
            None,
            stream_seed,
            threads,
        )?;
        // Alert evaluation reads only this observer's scoped series, so
        // running it mid-experiment (while sibling scenarios still write
        // their own series) stays deterministic.
        if let Some(o) = &observer {
            o.evaluate_alerts();
        }
        let sections = observer.as_ref().map(|o| {
            o.drain(&[format!(
                "scenario={spec} onset={} arrival={:?}",
                opts.onset_batch, opts.arrival
            )])
        });
        let mut base_fleet = build_fleet(network, mapping, backend, &parts, opts, false)?;
        let baseline = base_fleet.serve_queue(
            &requests,
            opts.batch_size,
            capacity,
            Some(compromise),
            None,
            stream_seed,
            threads,
        )?;
        Ok((
            summarize(
                &entry,
                compromise_member,
                &with_response,
                &baseline,
                &labels,
                opts,
            ),
            sections,
        ))
    });
    let rows = rows.into_iter().collect::<Result<Vec<_>, _>>()?;
    // Per-scenario trace sections concatenate in input-scenario order —
    // par_map returns results in task order, so the artifact is
    // independent of which worker ran which scenario.
    let artifacts = registry.map(|reg| {
        let mut trace = String::new();
        let mut profile = String::new();
        for (_, sections) in &rows {
            if let Some((committed, wall)) = sections {
                trace.push_str(committed);
                profile.push_str(wall);
            }
        }
        let incidents = opts
            .slo
            .as_ref()
            .map(|s| crate::incident::incidents_from_trace(&trace, s))
            .unwrap_or_default();
        ObsArtifacts {
            trace,
            profile,
            metrics: reg.snapshot(),
            incidents,
        }
    });
    let rows = rows.into_iter().map(|(row, _)| row).collect();

    Ok((
        ServingReport {
            detectors: parts.names,
            thresholds: parts.thresholds,
            clean_accuracy,
            batches: opts.batches,
            batch_size: opts.batch_size,
            fleet_size: opts.fleet_size,
            onset_batch: opts.onset_batch,
            arrival: opts.arrival,
            rows,
        },
        artifacts,
    ))
}

/// One operating point of the throughput-vs-latency sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct RatePoint {
    /// Offered Poisson arrival rate in requests per tick.
    pub rate: f64,
    /// Requests offered over the stream.
    pub offered: usize,
    /// Requests served to completion.
    pub served: usize,
    /// Fraction of offered requests shed at admission.
    pub shed_rate: f64,
    /// Sustained throughput in requests per virtual tick.
    pub throughput: f64,
    /// Median service latency in virtual ticks.
    pub p50_latency: f64,
    /// 99th-percentile service latency in virtual ticks.
    pub p99_latency: f64,
    /// 99.9th-percentile service latency in virtual ticks.
    pub p999_latency: f64,
}

/// The throughput-vs-p99 sweep: one clean-fleet operating point per
/// offered rate, plus the located saturation point.
#[derive(Debug, Clone, PartialEq)]
pub struct RateSweepReport {
    /// Requests per micro-batch.
    pub batch_size: usize,
    /// Fleet members serving.
    pub fleet_size: usize,
    /// Admission-queue capacity used at every point.
    pub queue_capacity: usize,
    /// One point per swept rate, in input order.
    pub rows: Vec<RatePoint>,
    /// The highest swept rate the fleet sustains — shed rate ≤ 1 % and
    /// p99 latency within 3× of the least-loaded swept point's. `NaN`
    /// when even the lowest rate saturates.
    pub saturation_rate: f64,
}

/// Whether a sweep point is sustained relative to the least-loaded
/// point's p99 (`baseline_p99`): (almost) nothing shed at admission
/// and no tail-latency blow-up from queue growth. With a bounded queue
/// overload shows up as shedding; with a generous capacity it shows up
/// as p99 far above the uncongested baseline — the 3× guard catches
/// both. Deliberately NOT `throughput ≥ 0.95 × rate`: `served / ticks`
/// on a finite stream undershoots the nominal rate even when perfectly
/// healthy, because the tick count includes the post-arrival drain and
/// the seeded stream's empirical pace wanders around the nominal one.
fn sustains(p: &RatePoint, baseline_p99: f64) -> bool {
    p.shed_rate <= 0.01 && (!baseline_p99.is_finite() || p.p99_latency <= 3.0 * baseline_p99)
}

/// Sweeps the clean serving fleet across Poisson arrival `rates` (requests
/// per tick) and records the throughput-vs-latency curve: per rate, the
/// stream is replayed open-loop through a bounded admission queue on a
/// score-but-never-respond fleet, and the report locates the saturation
/// point — the highest rate still sustained (see [`RateSweepReport`]).
/// Virtual-time latency percentiles are fully deterministic in `(opts,
/// seed)`, which is what makes the sweep CI-gateable without machine
/// noise.
///
/// # Errors
///
/// Rejects an empty or non-positive rate grid and degenerate options;
/// propagates calibration and forward-pass errors.
#[allow(clippy::too_many_arguments)]
pub fn run_rate_sweep<D: Dataset + Sync + ?Sized>(
    network: &Network,
    mapping: &WeightMapping,
    backend: &dyn InferenceBackend,
    data: &D,
    detectors: &[Box<dyn Detector>],
    opts: &ServingOptions,
    rates: &[f64],
    seed: u64,
    threads: usize,
) -> Result<RateSweepReport, SafelightError> {
    if rates.is_empty() || rates.iter().any(|r| !r.is_finite() || *r <= 0.0) {
        return Err(SafelightError::InvalidParameter {
            name: "sweep rates",
            value: rates.first().copied().unwrap_or(0.0),
        });
    }
    if opts.batches == 0 || opts.batch_size == 0 || opts.fleet_size == 0 {
        return Err(SafelightError::InvalidParameter {
            name: "batches/fleet",
            value: opts.batches as f64,
        });
    }
    let parts = calibrate(network, mapping, backend, detectors, opts, seed)?;
    let mut rows = Vec::with_capacity(rates.len());
    for &rate in rates {
        let point_opts = ServingOptions {
            arrival: ArrivalModel::Poisson { rate },
            ..*opts
        };
        let capacity = point_opts.effective_queue_capacity();
        let (requests, _) = request_stream(data, &point_opts, seed)?;
        let mut fleet = build_fleet(network, mapping, backend, &parts, &point_opts, false)?;
        let out = fleet.serve_queue(
            &requests,
            point_opts.batch_size,
            capacity,
            None,
            None,
            fold(seed, rate.to_bits()),
            threads,
        )?;
        let latencies = out.sorted_latencies();
        rows.push(RatePoint {
            rate,
            offered: requests.len(),
            served: out.outcomes.len(),
            shed_rate: out.shed_rate(),
            throughput: out.throughput(),
            p50_latency: percentile(&latencies, 0.50),
            p99_latency: percentile(&latencies, 0.99),
            p999_latency: percentile(&latencies, 0.999),
        });
    }
    let baseline_p99 = rows
        .iter()
        .min_by(|a, b| a.rate.total_cmp(&b.rate))
        .map_or(f64::NAN, |p| p.p99_latency);
    let saturation_rate = rows
        .iter()
        .filter(|p| sustains(p, baseline_p99))
        .map(|p| p.rate)
        .fold(f64::NAN, |a, r| if a.is_nan() || r > a { r } else { a });
    let point_opts = ServingOptions {
        arrival: ArrivalModel::Poisson { rate: rates[0] },
        ..*opts
    };
    Ok(RateSweepReport {
        batch_size: opts.batch_size,
        fleet_size: opts.fleet_size,
        queue_capacity: point_opts.effective_queue_capacity(),
        rows,
        saturation_rate,
    })
}

/// Runs the serving experiment for `kind`: trains (or loads) the original
/// model through the shared [`workbench`], builds the scenario grid
/// implied by the options' vectors/selections (one trial per cell — the
/// serving loop replays each scenario against a full stream already) and
/// evaluates the closed-loop runtime over it, with the stream replayed
/// through `arrival` (pass [`ArrivalModel::Closed`] for the
/// pre-request-plane behaviour).
///
/// # Errors
///
/// Propagates workbench and serving-evaluation errors.
pub fn run_serving_experiment(
    kind: ModelKind,
    opts: &ExperimentOptions,
    arrival: ArrivalModel,
) -> Result<(ModelWorkbench, ServingReport), SafelightError> {
    run_serving_experiment_observed(kind, opts, arrival, false, None)
        .map(|(bench, report, _)| (bench, report))
}

/// [`run_serving_experiment`] with the observability plane attached when
/// `observe` is true (see [`run_serving_observed`]) and an optional SLO
/// spec judging every row (verdict columns, alert firings, incident
/// reconstruction).
///
/// # Errors
///
/// Propagates workbench and serving-evaluation errors.
pub fn run_serving_experiment_observed(
    kind: ModelKind,
    opts: &ExperimentOptions,
    arrival: ArrivalModel,
    observe: bool,
    slo: Option<SloSpec>,
) -> Result<(ModelWorkbench, ServingReport, Option<ObsArtifacts>), SafelightError> {
    let bench = workbench(kind, opts)?;
    let scenarios = opts.fig7_grid(1);
    let serving_opts = ServingOptions {
        arrival,
        slo,
        ..ServingOptions::for_fidelity(opts.fidelity)
    };
    let (report, artifacts) = run_serving_observed(
        &bench.original,
        &bench.mapping,
        bench.backend.as_ref(),
        &bench.data.test,
        &scenarios,
        &safelight::detect::default_detectors(),
        &serving_opts,
        opts.seed,
        opts.threads,
        observe,
    )?;
    Ok((bench, report, artifacts))
}

/// Runs the throughput-vs-p99 sweep for `kind` over `rates` on the shared
/// [`workbench`] model (see [`run_rate_sweep`]).
///
/// # Errors
///
/// Propagates workbench and sweep errors.
pub fn run_rate_sweep_experiment(
    kind: ModelKind,
    opts: &ExperimentOptions,
    rates: &[f64],
) -> Result<(ModelWorkbench, RateSweepReport), SafelightError> {
    let bench = workbench(kind, opts)?;
    let serving_opts = ServingOptions::for_fidelity(opts.fidelity);
    let report = run_rate_sweep(
        &bench.original,
        &bench.mapping,
        bench.backend.as_ref(),
        &bench.data.test,
        &safelight::detect::default_detectors(),
        &serving_opts,
        rates,
        opts.seed,
        opts.threads,
    )?;
    Ok((bench, report))
}

//! The serving-plane observer: the bridge between [`crate::runtime`] and
//! the `safelight-obs` tracing/metrics plane.
//!
//! A [`ServeObserver`] is attached to a [`crate::Fleet`] for the duration
//! of one served stream (one chaos case, one serving scenario). It owns a
//! [`Tracer`] of its own — so per-case traces never interleave even when
//! cases run concurrently — and shares a [`MetricsRegistry`] with its
//! sibling observers, namespacing every series it touches with its scope
//! labels (e.g. `case="03"`). Within one observer, every metric is
//! recorded from the stream's *serial* control path (admission, the
//! results loop, the response policy), so the merged snapshot is
//! byte-identical across worker-thread counts; trace events may
//! additionally be emitted from pool workers because the tracer's
//! committed rendering sorts on a total `(virtual time, stage, sequence,
//! text)` key.
//!
//! The trace vocabulary mirrors the response-policy state machine: every
//! quarantine, remap, failover, maintenance verdict, crash and recovery
//! appears as a `policy`/`crash`/`recover` event carrying the *inputs* of
//! the decision (worst suite score, rail-glitch z, implicated banks with
//! their excursions, masked channels, retry state), so a committed trace
//! reconstructs the decision sequence without re-running the stream.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use safelight_obs::{
    default_rules, labeled, AlertEngine, AlertFiring, Histogram, HistogramConfig, MetricsRegistry,
    SloSpec, Stage, Tracer,
};
use safelight_onn::{BlockKind, SensorChannel};

use crate::incident::IncidentReport;
use crate::runtime::ServedBatch;

/// Rendered observability artifacts of one observed run: the committed
/// trace (deterministic, byte-identical across thread counts), the
/// wall-clock profile section (measurement, machine-dependent) and the
/// metrics snapshot.
#[derive(Debug, Clone)]
pub struct ObsArtifacts {
    /// Committed trace: `# `-prefixed headers plus canonical event lines.
    pub trace: String,
    /// Wall-clock sidecar: the same events' `wall_ns` timings, uncommitted.
    pub profile: String,
    /// Metrics snapshot at end of run.
    pub metrics: safelight_obs::MetricsSnapshot,
    /// Incident reports reconstructed from the committed trace, one per
    /// injected fault/attack; empty when no SLO was attached.
    pub incidents: Vec<IncidentReport>,
}

/// Per-stream observer: a private tracer plus scoped handles into a
/// shared metrics registry.
pub struct ServeObserver {
    tracer: Tracer,
    metrics: Arc<MetricsRegistry>,
    /// Labels stamped on every metric series this observer touches.
    scope: Vec<(String, String)>,
    /// Virtual-time alert engine, present when an SLO spec was attached.
    /// Fed from the serial admission path; locked, never contended.
    alerts: Option<Mutex<AlertEngine>>,
    /// Last stream-end tick, the evaluation instant for threshold rules.
    end_vt: AtomicU64,
}

impl std::fmt::Debug for ServeObserver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeObserver")
            .field("scope", &self.scope)
            .finish_non_exhaustive()
    }
}

/// Formats one implicated bank with its worst field excursion, e.g.
/// `conv:1(z=7.123)`.
fn bank_tag(kind: BlockKind, bank: usize, zs: &[f64; 4]) -> String {
    let worst = zs.iter().fold(f64::NEG_INFINITY, |a, &z| a.max(z));
    format!("{kind}:{bank}(z={worst:.3})")
}

/// Formats one sensor-channel key, e.g. `fc:1:DeltaKelvin`.
fn channel_tag(kind: BlockKind, index: usize, channel: SensorChannel) -> String {
    format!("{kind}:{index}:{channel:?}")
}

impl ServeObserver {
    /// An observer with its own fresh registry and no scope labels.
    #[must_use]
    pub fn new() -> Self {
        Self::with_scope(Arc::new(MetricsRegistry::new()), &[])
    }

    /// An observer over a shared `metrics` registry, stamping `scope`
    /// labels (e.g. `[("case", "03")]`) on every series it records.
    #[must_use]
    pub fn with_scope(metrics: Arc<MetricsRegistry>, scope: &[(&str, &str)]) -> Self {
        Self::with_scope_slo(metrics, scope, None)
    }

    /// [`Self::with_scope`] with a virtual-time alert engine attached:
    /// the observer feeds the engine per-tick admission samples and
    /// evaluates [`default_rules`] for `slo` at end of stream (see
    /// [`Self::evaluate_alerts`]).
    #[must_use]
    pub fn with_scope_slo(
        metrics: Arc<MetricsRegistry>,
        scope: &[(&str, &str)],
        slo: Option<&SloSpec>,
    ) -> Self {
        Self {
            tracer: Tracer::new(),
            metrics,
            scope: scope
                .iter()
                .map(|&(k, v)| (k.to_owned(), v.to_owned()))
                .collect(),
            alerts: slo.map(|s| Mutex::new(AlertEngine::new(default_rules(s)))),
            end_vt: AtomicU64::new(0),
        }
    }

    /// The observer's private tracer.
    #[must_use]
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The shared metrics registry.
    #[must_use]
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// A metric name carrying the observer's scope labels plus `extra`.
    fn name(&self, base: &str, extra: &[(&str, &str)]) -> String {
        let mut pairs: Vec<(&str, &str)> = self
            .scope
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        pairs.extend_from_slice(extra);
        labeled(base, &pairs)
    }

    fn inc(&self, base: &str, by: u64) {
        self.metrics.counter(&self.name(base, &[])).add(by);
    }

    fn latency_hist(&self, base: &str) -> Arc<Histogram> {
        self.metrics
            .histogram(&self.name(base, &[]), HistogramConfig::latency_ticks())
    }

    // --- Tick-loop events (serial path). -------------------------------

    /// Admission outcome of one tick: `admitted`/`shed` are this tick's
    /// deltas, `depth` the queue depth after admission.
    pub(crate) fn admission(&self, tick: u64, admitted: u64, shed: u64, depth: usize) {
        if admitted > 0 || shed > 0 {
            self.tracer.event(
                tick,
                Stage::Admission,
                tick,
                format!("event=admit admitted={admitted} shed={shed} depth={depth}"),
            );
        }
        if admitted > 0 {
            self.inc("serve_admitted_total", admitted);
        }
        if shed > 0 {
            self.inc("serve_shed_total", shed);
        }
        if admitted + shed > 0 {
            self.inc("serve_offered_total", admitted + shed);
        }
        if let Some(engine) = &self.alerts {
            // Every tick gets a sample, including quiet ones: burn-rate
            // windows measure trailing rates, so the cumulative log needs
            // the flat stretches too.
            let mut engine = engine.lock().unwrap_or_else(|e| e.into_inner());
            engine.record(tick, "serve_offered_total", (admitted + shed) as f64);
            engine.record(tick, "serve_shed_total", shed as f64);
        }
        self.metrics
            .gauge(&self.name("serve_queue_depth", &[]))
            .set(depth as f64);
        self.metrics
            .histogram(
                &self.name("serve_queue_depth_ticks", &[]),
                HistogramConfig::latency_ticks(),
            )
            .observe(depth as f64);
    }

    /// A member crashed out of the routing set.
    pub(crate) fn crash(&self, tick: u64, batch: u64, member: usize, restart_until: u64) {
        self.tracer.event(
            tick,
            Stage::Crash,
            member as u64,
            format!("event=crash member={member} batch={batch} restart_until={restart_until}"),
        );
        self.inc("serve_crashes_total", 1);
    }

    /// A member recovered from the model cache and rejoined.
    pub(crate) fn recover(&self, tick: u64, batch: u64, member: usize, latency_batches: u64) {
        self.tracer.event(
            tick,
            Stage::Recover,
            member as u64,
            format!(
                "event=recover member={member} batch={batch} latency_batches={latency_batches}"
            ),
        );
        self.inc("serve_recoveries_total", 1);
        self.latency_hist("serve_crash_recovery_latency_batches")
            .observe(latency_batches as f64);
    }

    /// A pending compromise activated on its member.
    pub(crate) fn compromise(&self, tick: u64, batch: u64, member: usize) {
        self.tracer.event(
            tick,
            Stage::Compromise,
            member as u64,
            format!("event=compromise member={member} batch={batch}"),
        );
        self.inc("serve_compromises_total", 1);
    }

    /// One served micro-batch. Called from pool workers — trace only, no
    /// metrics (worker-side metric updates would be order-dependent).
    pub(crate) fn batch_served(&self, tick: u64, batch: &ServedBatch, size: usize, wall_ns: u64) {
        let worst = batch.scores.iter().fold(0.0f64, |a, &s| a.max(s));
        let text = if batch.scores.is_empty() {
            format!(
                "event=batch member={} size={size} degraded={}",
                batch.member, batch.degraded
            )
        } else {
            format!(
                "event=batch member={} size={size} worst={worst:.4} alarmed={} masked={} degraded={}",
                batch.member,
                batch.alarmed,
                batch.masked.len(),
                batch.degraded
            )
        };
        self.tracer
            .event_timed(tick, Stage::Serve, batch.batch, text, wall_ns);
    }

    /// Serial per-batch accounting from the results loop: request count,
    /// per-member batch counters, latency histograms, detector scores.
    pub(crate) fn batch_outcomes(&self, batch: &ServedBatch, delays: &[(f64, f64)]) {
        let member = batch.member.to_string();
        self.metrics
            .counter(&self.name("serve_batches_total", &[("member", &member)]))
            .inc();
        self.inc("serve_requests_total", delays.len() as u64);
        let queue_delay = self.latency_hist("serve_queue_delay_ticks");
        let latency = self.latency_hist("serve_latency_ticks");
        for &(qd, sl) in delays {
            queue_delay.observe(qd);
            latency.observe(sl);
        }
        if !batch.scores.is_empty() {
            let worst = batch.scores.iter().fold(0.0f64, |a, &s| a.max(s));
            self.metrics
                .histogram(
                    &self.name("serve_detector_worst_score", &[]),
                    HistogramConfig {
                        lo: 0.125,
                        growth: 2.0,
                        buckets: 16,
                    },
                )
                .observe(worst);
            if batch.alarmed {
                self.inc("serve_alarmed_batches_total", 1);
            }
        }
    }

    // --- Response-policy audit events (serial path). --------------------
    //
    // One event per decision, carrying the decision's inputs. `seq` is the
    // global batch index of the alarming frame; the member id is in the
    // text (one member can only produce one decision per batch).

    fn policy(&self, tick: u64, batch: u64, text: String) {
        self.tracer.event(tick, Stage::Policy, batch, text);
    }

    /// Sensor-health screen masked new channels: maintenance verdict.
    pub(crate) fn sensor_mask(
        &self,
        tick: u64,
        batch: u64,
        member: usize,
        newly: &[(BlockKind, usize, SensorChannel)],
        total_masked: usize,
        score: f64,
    ) {
        let masked: Vec<String> = newly
            .iter()
            .map(|&(k, i, c)| channel_tag(k, i, c))
            .collect();
        self.policy(
            tick,
            batch,
            format!(
                "event=sensor_mask member={member} masked=[{}] total={total_masked} \
                 score={score:.4} action=maintenance",
                masked.join(",")
            ),
        );
        self.inc("serve_maintenance_total", 1);
        self.inc("serve_masked_channels_total", newly.len() as u64);
    }

    /// Every mask cleared and the detectors went quiet: flag dropped.
    pub(crate) fn mask_clear(&self, tick: u64, batch: u64, member: usize) {
        self.policy(tick, batch, format!("event=mask_clear member={member}"));
    }

    /// An alarm classified as a coherent supply transient.
    pub(crate) fn rail_glitch(
        &self,
        tick: u64,
        batch: u64,
        member: usize,
        rail_z: f64,
        threshold: f64,
        score: f64,
    ) {
        self.policy(
            tick,
            batch,
            format!(
                "event=rail_glitch member={member} rail_z={rail_z:.3} threshold={threshold} \
                 score={score:.4} action=maintenance"
            ),
        );
        self.inc("serve_maintenance_total", 1);
        self.inc("serve_rail_glitches_total", 1);
    }

    /// Banks implicated; the policy's disposition is in `action` (one of
    /// `remap`, `backoff`, `remap_failed`, `failover`) with `detail`
    /// appended verbatim.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn implicate(
        &self,
        tick: u64,
        batch: u64,
        member: usize,
        banks: &[(BlockKind, usize, [f64; 4])],
        score: f64,
        action: &str,
        detail: &str,
    ) {
        let tags: Vec<String> = banks
            .iter()
            .map(|(k, b, zs)| bank_tag(*k, *b, zs))
            .collect();
        self.policy(
            tick,
            batch,
            format!(
                "event=implicate member={member} banks=[{}] score={score:.4} \
                 action={action}{detail}",
                tags.join(",")
            ),
        );
        self.inc("serve_implications_total", 1);
    }

    /// A remap was applied: spare accounting.
    pub(crate) fn remap_applied(
        &self,
        quarantined_banks: usize,
        remapped: usize,
        unplaced: usize,
        member: usize,
        spare_level: usize,
    ) {
        self.inc("serve_remaps_total", 1);
        self.inc("serve_quarantined_banks_total", quarantined_banks as u64);
        self.inc("serve_remapped_rings_total", remapped as u64);
        self.inc("serve_unplaced_rings_total", unplaced as u64);
        let member = member.to_string();
        self.metrics
            .gauge(&self.name("serve_spare_rings", &[("member", &member)]))
            .set(spare_level as f64);
    }

    /// A remap attempt was refused (spares dry) and will be retried.
    pub(crate) fn remap_retry(&self) {
        self.inc("serve_remap_retries_total", 1);
    }

    /// A lone-sensor verdict: quarantine the sensor, not the bank.
    pub(crate) fn sensor_quarantine(
        &self,
        tick: u64,
        batch: u64,
        member: usize,
        suspects: &[(BlockKind, usize, SensorChannel)],
        score: f64,
    ) {
        let tags: Vec<String> = suspects
            .iter()
            .map(|&(k, i, c)| channel_tag(k, i, c))
            .collect();
        self.policy(
            tick,
            batch,
            format!(
                "event=sensor_quarantine member={member} suspects=[{}] score={score:.4} \
                 action=maintenance",
                tags.join(",")
            ),
        );
        self.inc("serve_maintenance_total", 1);
        self.inc("serve_sensor_quarantines_total", suspects.len() as u64);
    }

    /// An unlocalized alarm: patience counting toward failover.
    pub(crate) fn unlocalized(
        &self,
        tick: u64,
        batch: u64,
        member: usize,
        consecutive: usize,
        score: f64,
        action: &str,
    ) {
        self.policy(
            tick,
            batch,
            format!(
                "event=unlocalized member={member} consecutive={consecutive} score={score:.4} \
                 action={action}"
            ),
        );
        self.inc("serve_alarms_total", 1);
        if action == "failover" {
            self.inc("serve_failovers_total", 1);
        }
    }

    /// A failover decided on the implication path (spares exhausted).
    pub(crate) fn failover(&self) {
        self.inc("serve_failovers_total", 1);
    }

    /// End-of-stream summary event plus the end-of-stream SLO gauges
    /// (`serve_availability`, `serve_shed_rate`) the threshold rules
    /// judge. `healthy` counts the requests served undegraded.
    pub(crate) fn stream_end(
        &self,
        tick: u64,
        served: usize,
        unserved: usize,
        shed: usize,
        healthy: usize,
    ) {
        let total = served + unserved + shed;
        let availability = if total == 0 {
            1.0
        } else {
            healthy as f64 / total as f64
        };
        let shed_rate = if total == 0 {
            0.0
        } else {
            shed as f64 / total as f64
        };
        self.tracer.event(
            tick,
            Stage::Summary,
            0,
            format!(
                "event=stream_end served={served} unserved={unserved} shed={shed} \
                 healthy={healthy} ticks={tick}"
            ),
        );
        self.metrics
            .gauge(&self.name("serve_availability", &[]))
            .set(availability);
        self.metrics
            .gauge(&self.name("serve_shed_rate", &[]))
            .set(shed_rate);
        self.end_vt.store(tick, Ordering::Relaxed);
    }

    /// Whether a labeled metric name belongs to this observer's scope
    /// (every scope pair appears among its labels).
    fn in_scope(&self, name: &str) -> bool {
        self.scope
            .iter()
            .all(|(k, v)| name.contains(&format!("{k}=\"{v}\"")))
    }

    /// Evaluate the attached alert rules against this observer's slice of
    /// the shared registry, as of the stream-end tick. Each firing is
    /// committed to the trace (`alert` stage, at the firing's virtual
    /// tick) and counted in `serve_alerts_fired_total{rule=...}`. Returns
    /// the firings; empty when no SLO was attached. Call after the stream
    /// ends and before [`Self::drain`].
    pub fn evaluate_alerts(&self) -> Vec<AlertFiring> {
        let Some(engine) = &self.alerts else {
            return Vec::new();
        };
        let engine = engine.lock().unwrap_or_else(|e| e.into_inner());
        let mut snapshot = self.metrics.snapshot();
        snapshot.entries.retain(|(name, _)| self.in_scope(name));
        let end_vt = self.end_vt.load(Ordering::Relaxed);
        let firings = engine.evaluate(&snapshot, end_vt);
        for (i, f) in firings.iter().enumerate() {
            self.tracer.event(
                f.vt,
                Stage::Alert,
                i as u64,
                format!(
                    "event=alert_firing rule={} series={} value={:.4} threshold={}",
                    f.rule, f.series, f.value, f.threshold
                ),
            );
            self.metrics
                .counter(&self.name("serve_alerts_fired_total", &[("rule", &f.rule)]))
                .inc();
        }
        firings
    }

    /// Drains the tracer and renders both trace sections under `header`
    /// lines, leaving the observer's registry untouched (the caller
    /// snapshots the shared registry once all observers are drained).
    /// Committed rendering is invalidated (annotated) if the tracer
    /// overflowed and dropped events.
    #[must_use]
    pub fn drain(&self, header: &[String]) -> (String, String) {
        let dropped = self.tracer.dropped();
        let events = self.tracer.drain_sorted();
        let mut header = header.to_vec();
        if dropped > 0 {
            header.push(format!("WARNING dropped={dropped} (trace incomplete)"));
        }
        let committed = safelight_obs::render_committed(&header, &events);
        let profile = safelight_obs::render_profile(&events);
        (committed, profile)
    }
}

impl Default for ServeObserver {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_metric_names_carry_labels() {
        let reg = Arc::new(MetricsRegistry::new());
        let obs = ServeObserver::with_scope(reg.clone(), &[("case", "03")]);
        obs.inc("serve_admitted_total", 2);
        let snap = reg.snapshot();
        let text = snap.prometheus();
        assert!(
            text.contains("serve_admitted_total{case=\"03\"} 2"),
            "missing scoped counter in:\n{text}"
        );
    }

    #[test]
    fn drain_renders_header_and_sorted_events() {
        let obs = ServeObserver::new();
        obs.tracer()
            .event(3, Stage::Serve, 1, "event=batch member=0".into());
        obs.tracer().event(
            1,
            Stage::Admission,
            1,
            "event=admit admitted=4 shed=0 depth=4".into(),
        );
        let (committed, profile) = obs.drain(&["case=00 kind=fault".into()]);
        assert!(committed.starts_with("# case=00 kind=fault\n"));
        let lines: Vec<&str> = committed.lines().collect();
        assert!(lines[1].contains("admission"), "{committed}");
        assert!(lines[2].contains("serve"), "{committed}");
        // No timed events: the profile section is just its header line.
        assert_eq!(profile.lines().count(), 1, "{profile}");
    }
}

//! Property-based tests for the thermal solver.

use proptest::prelude::*;
use safelight_thermal::{Floorplan, ThermalConfig, ThermalGrid};

fn quick_config() -> ThermalConfig {
    ThermalConfig {
        tolerance_k: 1e-5,
        ..ThermalConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Maximum principle: with non-negative sources the temperature never
    /// drops below ambient anywhere.
    #[test]
    fn no_cell_below_ambient(
        x in 0usize..12, y in 0usize..12, watts in 0.0f64..0.05,
    ) {
        let mut grid = ThermalGrid::new(12, 12, quick_config()).unwrap();
        grid.add_power(x, y, watts).unwrap();
        let field = grid.solve().unwrap();
        for &t in field.as_slice() {
            prop_assert!(t >= field.ambient_k() - 1e-9);
        }
    }

    /// Superposition: the field of two sources equals the sum of the fields
    /// of each source alone (the steady-state operator is linear).
    #[test]
    fn superposition_holds(
        ax in 0usize..10, ay in 0usize..10,
        bx in 0usize..10, by in 0usize..10,
        pa in 0.001f64..0.03, pb in 0.001f64..0.03,
    ) {
        let cfg = ThermalConfig { tolerance_k: 1e-8, ..ThermalConfig::default() };
        let solve = |sources: &[(usize, usize, f64)]| {
            let mut g = ThermalGrid::new(10, 10, cfg).unwrap();
            for &(x, y, p) in sources {
                g.add_power(x, y, p).unwrap();
            }
            g.solve().unwrap()
        };
        let fa = solve(&[(ax, ay, pa)]);
        let fb = solve(&[(bx, by, pb)]);
        let fab = solve(&[(ax, ay, pa), (bx, by, pb)]);
        for i in 0..fab.as_slice().len() {
            let lhs = fab.as_slice()[i] - fab.ambient_k();
            let rhs = (fa.as_slice()[i] - fa.ambient_k()) + (fb.as_slice()[i] - fb.ambient_k());
            prop_assert!((lhs - rhs).abs() < 1e-3, "superposition broke at {i}: {lhs} vs {rhs}");
        }
    }

    /// Energy balance: everything injected leaves through the sink.
    #[test]
    fn energy_balance(px in 0usize..16, py in 0usize..16, watts in 0.001f64..0.05) {
        let cfg = ThermalConfig { tolerance_k: 1e-8, ..ThermalConfig::default() };
        let mut grid = ThermalGrid::new(16, 16, cfg).unwrap();
        grid.add_power(px, py, watts).unwrap();
        let field = grid.solve().unwrap();
        let sunk: f64 = field
            .as_slice()
            .iter()
            .map(|t| cfg.sink_conductance_w_per_k * (t - cfg.ambient_k))
            .sum();
        prop_assert!((sunk - watts).abs() / watts < 1e-2, "sunk {sunk} of {watts}");
    }

    /// Floorplan ring_cell never lands outside the covering grid and always
    /// lands inside its own bank's rectangle.
    #[test]
    fn ring_cells_stay_in_bank(
        rows in 1usize..4, cols in 1usize..4,
        bw in 1usize..8, bh in 1usize..8, gap in 0usize..3,
    ) {
        let plan = Floorplan::bank_grid(rows, cols, bw, bh, gap).unwrap();
        for placement in plan.banks() {
            for r in 0..bh {
                for c in 0..bw {
                    let (x, y) = plan.ring_cell(placement.bank, r, c).unwrap();
                    prop_assert!(x < plan.grid_width() && y < plan.grid_height());
                    prop_assert!(placement.rect.contains(x, y));
                    prop_assert_eq!(plan.bank_at(x, y), Some(placement.bank));
                }
            }
        }
    }

    /// A heated bank is hotter on average than any bank two or more bank
    /// pitches away (hotspots are local).
    #[test]
    fn heated_bank_is_hottest(bank in 0usize..9) {
        let plan = Floorplan::bank_grid(3, 3, 4, 4, 2).unwrap();
        let mut grid = ThermalGrid::new(
            plan.grid_width(), plan.grid_height(), quick_config(),
        ).unwrap();
        let target = plan.bank(bank).unwrap().rect;
        grid.add_power_region(target, 0.05).unwrap();
        let field = grid.solve().unwrap();
        let heated = field.mean_delta_in(target).unwrap();
        for other in plan.banks() {
            if other.bank != bank {
                let t = field.mean_delta_in(other.rect).unwrap();
                prop_assert!(heated > t, "bank {bank} not hottest vs {}", other.bank);
            }
        }
    }
}

#[test]
fn neighbouring_banks_receive_spillover() {
    // The Fig. 6 behaviour: an attacked bank heats its neighbours
    // measurably more than distant banks.
    let plan = Floorplan::bank_grid(3, 3, 6, 6, 2).unwrap();
    let mut grid = ThermalGrid::new(plan.grid_width(), plan.grid_height(), quick_config()).unwrap();
    // Attack the centre bank (index 4 of the 3×3 arrangement).
    grid.add_power_region(plan.bank(4).unwrap().rect, 0.08)
        .unwrap();
    let field = grid.solve().unwrap();
    let centre = field.mean_delta_in(plan.bank(4).unwrap().rect).unwrap();
    let side = field.mean_delta_in(plan.bank(3).unwrap().rect).unwrap();
    let corner = field.mean_delta_in(plan.bank(0).unwrap().rect).unwrap();
    assert!(
        centre > side && side > corner,
        "{centre} / {side} / {corner}"
    );
    // Spill into the adjacent bank is a significant fraction of the peak.
    assert!(
        side > 0.1 * centre,
        "side spill too weak: {side} vs {centre}"
    );
}

//! Error type for the thermal simulator.

use std::error::Error;
use std::fmt;

/// Errors produced by thermal grid construction and solving.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ThermalError {
    /// A grid dimension was zero.
    EmptyGrid,
    /// A cell coordinate was outside the grid.
    CellOutOfBounds {
        /// Offending x coordinate.
        x: usize,
        /// Offending y coordinate.
        y: usize,
        /// Grid width.
        width: usize,
        /// Grid height.
        height: usize,
    },
    /// A configuration or power value was non-finite or out of its physical
    /// range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Rejected value.
        value: f64,
    },
    /// The iterative solver failed to reach the requested tolerance.
    NotConverged {
        /// Number of iterations performed.
        iterations: usize,
        /// Residual after the final iteration, in kelvin.
        residual_k: f64,
    },
    /// A floorplan rectangle does not fit in the grid.
    RegionOutOfBounds {
        /// Index of the offending bank or region.
        index: usize,
    },
}

impl fmt::Display for ThermalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyGrid => write!(f, "thermal grid dimensions must be non-zero"),
            Self::CellOutOfBounds {
                x,
                y,
                width,
                height,
            } => {
                write!(f, "cell ({x}, {y}) out of bounds for {width}x{height} grid")
            }
            Self::InvalidParameter { name, value } => {
                write!(f, "invalid value {value} for parameter `{name}`")
            }
            Self::NotConverged {
                iterations,
                residual_k,
            } => write!(
                f,
                "solver did not converge after {iterations} iterations (residual {residual_k} K)"
            ),
            Self::RegionOutOfBounds { index } => {
                write!(f, "floorplan region {index} does not fit in the grid")
            }
        }
    }
}

impl Error for ThermalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ThermalError>();
    }

    #[test]
    fn display_mentions_coordinates() {
        let e = ThermalError::CellOutOfBounds {
            x: 3,
            y: 9,
            width: 2,
            height: 2,
        };
        assert!(e.to_string().contains("(3, 9)"));
    }
}

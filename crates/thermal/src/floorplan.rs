//! Floorplans: where microring banks sit on the thermal grid.

use crate::ThermalError;

/// An axis-aligned rectangle of grid cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Rect {
    /// Left cell column.
    pub x: usize,
    /// Top cell row.
    pub y: usize,
    /// Width in cells.
    pub width: usize,
    /// Height in cells.
    pub height: usize,
}

impl Rect {
    /// Whether the rectangle contains the cell `(x, y)`.
    #[must_use]
    pub fn contains(&self, x: usize, y: usize) -> bool {
        x >= self.x && x < self.x + self.width && y >= self.y && y < self.y + self.height
    }

    /// Number of cells covered.
    #[must_use]
    pub fn area(&self) -> usize {
        self.width * self.height
    }

    /// Iterates over all `(x, y)` cells of the rectangle in row-major order.
    pub fn cells(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let (x0, y0, w) = (self.x, self.y, self.width);
        (0..self.area()).map(move |i| (x0 + i % w, y0 + i / w))
    }
}

/// A microring bank placed on the floorplan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BankPlacement {
    /// Index of the bank in its block (row-major across the bank grid).
    pub bank: usize,
    /// Cells the bank occupies.
    pub rect: Rect,
}

/// A floorplan arranging a block's microring banks on a regular grid.
///
/// This mirrors how the paper's Fig. 6 lays out the CONV block's MR bank
/// arrays: `rows × cols` banks, each `bank_width × bank_height` cells (one
/// cell per microring), separated by `gap` cells of passive waveguide and
/// routing area.
///
/// # Example
///
/// ```
/// use safelight_thermal::Floorplan;
///
/// # fn main() -> Result<(), safelight_thermal::ThermalError> {
/// // 4×4 banks of 8×8 microrings with a 2-cell gap.
/// let plan = Floorplan::bank_grid(4, 4, 8, 8, 2)?;
/// assert_eq!(plan.banks().len(), 16);
/// // Grid size accounts for banks and gaps (plus a border gap all around).
/// assert_eq!(plan.grid_width(), 2 + 4 * (8 + 2));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Floorplan {
    rows: usize,
    cols: usize,
    bank_width: usize,
    bank_height: usize,
    gap: usize,
    banks: Vec<BankPlacement>,
}

impl Floorplan {
    /// Lays out `rows × cols` banks of `bank_width × bank_height` cells with
    /// `gap` cells between banks and around the border.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::EmptyGrid`] when any of the counts or bank
    /// dimensions is zero.
    pub fn bank_grid(
        rows: usize,
        cols: usize,
        bank_width: usize,
        bank_height: usize,
        gap: usize,
    ) -> Result<Self, ThermalError> {
        if rows == 0 || cols == 0 || bank_width == 0 || bank_height == 0 {
            return Err(ThermalError::EmptyGrid);
        }
        let mut banks = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                banks.push(BankPlacement {
                    bank: r * cols + c,
                    rect: Rect {
                        x: gap + c * (bank_width + gap),
                        y: gap + r * (bank_height + gap),
                        width: bank_width,
                        height: bank_height,
                    },
                });
            }
        }
        Ok(Self {
            rows,
            cols,
            bank_width,
            bank_height,
            gap,
            banks,
        })
    }

    /// Width of the covering thermal grid in cells.
    #[must_use]
    pub fn grid_width(&self) -> usize {
        self.gap + self.cols * (self.bank_width + self.gap)
    }

    /// Height of the covering thermal grid in cells.
    #[must_use]
    pub fn grid_height(&self) -> usize {
        self.gap + self.rows * (self.bank_height + self.gap)
    }

    /// Bank rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Bank columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Cells per bank along x.
    #[must_use]
    pub fn bank_width(&self) -> usize {
        self.bank_width
    }

    /// Cells per bank along y.
    #[must_use]
    pub fn bank_height(&self) -> usize {
        self.bank_height
    }

    /// All bank placements in bank-index order.
    #[must_use]
    pub fn banks(&self) -> &[BankPlacement] {
        &self.banks
    }

    /// The placement of bank `bank`.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::RegionOutOfBounds`] for an unknown index.
    pub fn bank(&self, bank: usize) -> Result<BankPlacement, ThermalError> {
        self.banks
            .get(bank)
            .copied()
            .ok_or(ThermalError::RegionOutOfBounds { index: bank })
    }

    /// The cell of microring `(row, col)` inside bank `bank`.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::RegionOutOfBounds`] for an unknown bank and
    /// [`ThermalError::CellOutOfBounds`] for ring coordinates outside the
    /// bank.
    pub fn ring_cell(
        &self,
        bank: usize,
        row: usize,
        col: usize,
    ) -> Result<(usize, usize), ThermalError> {
        let placement = self.bank(bank)?;
        if col >= self.bank_width || row >= self.bank_height {
            return Err(ThermalError::CellOutOfBounds {
                x: col,
                y: row,
                width: self.bank_width,
                height: self.bank_height,
            });
        }
        Ok((placement.rect.x + col, placement.rect.y + row))
    }

    /// One thermal-sensor site per bank, at the bank's centre cell, in
    /// bank-index order.
    ///
    /// Real photonic dies embed a sparse grid of on-chip temperature
    /// sensors next to the microring banks; sampling a solved
    /// [`TemperatureField`](crate::TemperatureField) at these sites (see
    /// [`TemperatureField::sample_delta`](crate::TemperatureField::sample_delta))
    /// is the physical model behind the runtime-detection telemetry taps.
    #[must_use]
    pub fn sensor_sites(&self) -> Vec<(usize, usize)> {
        self.banks
            .iter()
            .map(|p| (p.rect.x + p.rect.width / 2, p.rect.y + p.rect.height / 2))
            .collect()
    }

    /// The bank containing cell `(x, y)`, if any.
    #[must_use]
    pub fn bank_at(&self, x: usize, y: usize) -> Option<usize> {
        // Banks are disjoint; a direct arithmetic lookup avoids a scan.
        let stride_x = self.bank_width + self.gap;
        let stride_y = self.bank_height + self.gap;
        if x < self.gap || y < self.gap {
            return None;
        }
        let c = (x - self.gap) / stride_x;
        let r = (y - self.gap) / stride_y;
        if c >= self.cols || r >= self.rows {
            return None;
        }
        let bank = r * self.cols + c;
        if self.banks[bank].rect.contains(x, y) {
            Some(bank)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_contains_its_cells_only() {
        let r = Rect {
            x: 2,
            y: 3,
            width: 2,
            height: 2,
        };
        assert!(r.contains(2, 3) && r.contains(3, 4));
        assert!(!r.contains(1, 3) && !r.contains(4, 3) && !r.contains(2, 5));
    }

    #[test]
    fn rect_cells_enumerates_area() {
        let r = Rect {
            x: 1,
            y: 1,
            width: 3,
            height: 2,
        };
        let cells: Vec<_> = r.cells().collect();
        assert_eq!(cells.len(), r.area());
        assert_eq!(cells[0], (1, 1));
        assert_eq!(cells[5], (3, 2));
    }

    #[test]
    fn banks_are_disjoint_and_complete() {
        let plan = Floorplan::bank_grid(3, 4, 5, 6, 2).unwrap();
        assert_eq!(plan.banks().len(), 12);
        for (i, a) in plan.banks().iter().enumerate() {
            for b in plan.banks().iter().skip(i + 1) {
                for (x, y) in a.rect.cells() {
                    assert!(!b.rect.contains(x, y), "banks {i} and {} overlap", b.bank);
                }
            }
        }
    }

    #[test]
    fn bank_at_inverts_placement() {
        let plan = Floorplan::bank_grid(3, 3, 4, 4, 1).unwrap();
        for placement in plan.banks() {
            for (x, y) in placement.rect.cells() {
                assert_eq!(plan.bank_at(x, y), Some(placement.bank));
            }
        }
    }

    #[test]
    fn gaps_belong_to_no_bank() {
        let plan = Floorplan::bank_grid(2, 2, 4, 4, 2).unwrap();
        assert_eq!(plan.bank_at(0, 0), None);
        assert_eq!(plan.bank_at(6, 3), None); // vertical gap column
    }

    #[test]
    fn ring_cell_maps_into_bank_rect() {
        let plan = Floorplan::bank_grid(2, 2, 4, 4, 2).unwrap();
        let (x, y) = plan.ring_cell(3, 2, 1).unwrap();
        let rect = plan.bank(3).unwrap().rect;
        assert!(rect.contains(x, y));
        assert_eq!((x - rect.x, y - rect.y), (1, 2));
    }

    #[test]
    fn ring_cell_bounds_are_checked() {
        let plan = Floorplan::bank_grid(2, 2, 4, 4, 2).unwrap();
        assert!(plan.ring_cell(9, 0, 0).is_err());
        assert!(plan.ring_cell(0, 4, 0).is_err());
    }

    #[test]
    fn sensor_sites_sit_one_per_bank_centre() {
        let plan = Floorplan::bank_grid(2, 3, 5, 4, 2).unwrap();
        let sites = plan.sensor_sites();
        assert_eq!(sites.len(), plan.banks().len());
        for (site, placement) in sites.iter().zip(plan.banks()) {
            assert!(placement.rect.contains(site.0, site.1));
            assert_eq!(plan.bank_at(site.0, site.1), Some(placement.bank));
        }
    }

    #[test]
    fn zero_dimensions_are_rejected() {
        assert!(Floorplan::bank_grid(0, 1, 1, 1, 0).is_err());
        assert!(Floorplan::bank_grid(1, 1, 0, 1, 0).is_err());
    }
}

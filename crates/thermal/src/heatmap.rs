//! Renderable heatmaps of temperature fields (the paper's Fig. 6 artifact).

/// A 2-D scalar field with export helpers.
///
/// Produced from a [`TemperatureField`](crate::TemperatureField) via
/// [`to_heatmap`](crate::TemperatureField::to_heatmap); values are kelvin of
/// temperature rise over ambient.
///
/// # Example
///
/// ```
/// use safelight_thermal::Heatmap;
///
/// let map = Heatmap::from_values(2, 2, vec![0.0, 1.0, 2.0, 3.0]);
/// assert_eq!(map.max(), 3.0);
/// assert!(map.to_csv().lines().count() == 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Heatmap {
    width: usize,
    height: usize,
    values: Vec<f64>,
}

/// Glyph ramp used by the ASCII renderer, coldest to hottest.
const ASCII_RAMP: &[u8] = b" .:-=+*#%@";

impl Heatmap {
    /// Wraps a row-major buffer of `width × height` values.
    ///
    /// # Panics
    ///
    /// Panics when `values.len() != width * height`.
    #[must_use]
    pub fn from_values(width: usize, height: usize, values: Vec<f64>) -> Self {
        assert_eq!(
            values.len(),
            width * height,
            "heatmap buffer does not match dimensions"
        );
        Self {
            width,
            height,
            values,
        }
    }

    /// Width in cells.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in cells.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Smallest value in the map (0 for an empty map).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
            .min(f64::INFINITY)
    }

    /// Largest value in the map.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Raw values in row-major order.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Renders the map as comma-separated values, one row per line.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(self.values.len() * 8);
        for y in 0..self.height {
            for x in 0..self.width {
                if x > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{:.4}", self.values[y * self.width + x]));
            }
            out.push('\n');
        }
        out
    }

    /// Renders the map as a binary-free ASCII PGM (P2) grayscale image,
    /// hottest cells brightest — loadable by any image viewer.
    #[must_use]
    pub fn to_pgm(&self) -> String {
        let max = self.max().max(1e-12);
        let mut out = format!("P2\n{} {}\n255\n", self.width, self.height);
        for y in 0..self.height {
            let row: Vec<String> = (0..self.width)
                .map(|x| {
                    let v = (self.values[y * self.width + x] / max * 255.0).round();
                    format!("{}", (v.clamp(0.0, 255.0)) as u32)
                })
                .collect();
            out.push_str(&row.join(" "));
            out.push('\n');
        }
        out
    }

    /// Renders the map as ASCII art using a ten-step intensity ramp,
    /// hottest cells densest.
    #[must_use]
    pub fn to_ascii(&self) -> String {
        let max = self.max().max(1e-12);
        let mut out = String::with_capacity((self.width + 1) * self.height);
        for y in 0..self.height {
            for x in 0..self.width {
                let v = self.values[y * self.width + x] / max;
                let idx = ((v * (ASCII_RAMP.len() - 1) as f64).round() as usize)
                    .min(ASCII_RAMP.len() - 1);
                out.push(ASCII_RAMP[idx] as char);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Heatmap {
        Heatmap::from_values(3, 2, vec![0.0, 5.0, 10.0, 2.5, 7.5, 1.0])
    }

    #[test]
    fn min_max_are_correct() {
        let m = sample();
        assert_eq!(m.min(), 0.0);
        assert_eq!(m.max(), 10.0);
    }

    #[test]
    #[should_panic(expected = "does not match dimensions")]
    fn mismatched_buffer_panics() {
        let _ = Heatmap::from_values(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn csv_has_one_line_per_row() {
        let csv = sample().to_csv();
        assert_eq!(csv.lines().count(), 2);
        assert_eq!(csv.lines().next().unwrap().split(',').count(), 3);
    }

    #[test]
    fn pgm_header_and_scale() {
        let pgm = sample().to_pgm();
        let mut lines = pgm.lines();
        assert_eq!(lines.next(), Some("P2"));
        assert_eq!(lines.next(), Some("3 2"));
        assert_eq!(lines.next(), Some("255"));
        // The hottest cell maps to full white.
        assert!(pgm.contains("255"));
    }

    #[test]
    fn ascii_uses_dense_glyph_for_peak() {
        let art = sample().to_ascii();
        assert!(art.contains('@'));
        assert_eq!(art.lines().count(), 2);
    }

    #[test]
    fn ascii_rows_have_grid_width() {
        let art = sample().to_ascii();
        for line in art.lines() {
            assert_eq!(line.chars().count(), 3);
        }
    }
}

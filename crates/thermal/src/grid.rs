//! Thermal grid construction and power placement.

use crate::floorplan::Rect;
use crate::solver::{solve_steady_state, TemperatureField};
use crate::ThermalError;

/// Physical and numerical parameters of the thermal solve.
///
/// The defaults are tuned for a photonic-accelerator floorplan discretized
/// at one cell per microring: the lateral-to-sink conductance ratio gives a
/// hotspot decay length of about five cells, so a compromised heater heats
/// its own bank strongly and spills measurably into adjacent banks, matching
/// the behaviour of the paper's HotSpot-generated Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ThermalConfig {
    /// Ambient (heat-sink) temperature in kelvin.
    pub ambient_k: f64,
    /// Lateral conductance between adjacent cells, in W/K.
    pub lateral_conductance_w_per_k: f64,
    /// Vertical conductance from each cell to the sink, in W/K.
    pub sink_conductance_w_per_k: f64,
    /// Successive-over-relaxation factor in `(0, 2)`, or `0.0` to select
    /// the classical near-optimal factor `2 / (1 + sin(π/N))` from the grid
    /// size at solve time (`N = max(width, height)`), which converges
    /// several times faster than a fixed mid-range ω on the large grids the
    /// hotspot injector solves.
    pub sor_omega: f64,
    /// Convergence tolerance on the maximum per-iteration update, kelvin.
    pub tolerance_k: f64,
    /// Iteration cap before reporting [`ThermalError::NotConverged`].
    pub max_iterations: usize,
}

impl Default for ThermalConfig {
    fn default() -> Self {
        Self {
            ambient_k: 300.0,
            lateral_conductance_w_per_k: 6.0e-4,
            sink_conductance_w_per_k: 2.4e-5,
            sor_omega: 0.0,
            tolerance_k: 1e-6,
            max_iterations: 200_000,
        }
    }
}

impl ThermalConfig {
    /// The characteristic lateral decay length of a point hotspot, in cells:
    /// `sqrt(g_lat / g_sink)`.
    #[must_use]
    pub fn decay_length_cells(&self) -> f64 {
        (self.lateral_conductance_w_per_k / self.sink_conductance_w_per_k).sqrt()
    }

    pub(crate) fn validate(&self) -> Result<(), ThermalError> {
        let checks = [
            ("ambient_k", self.ambient_k, self.ambient_k > 0.0),
            (
                "lateral_conductance_w_per_k",
                self.lateral_conductance_w_per_k,
                self.lateral_conductance_w_per_k > 0.0,
            ),
            (
                "sink_conductance_w_per_k",
                self.sink_conductance_w_per_k,
                self.sink_conductance_w_per_k > 0.0,
            ),
            (
                "sor_omega",
                self.sor_omega,
                self.sor_omega >= 0.0 && self.sor_omega < 2.0,
            ),
            ("tolerance_k", self.tolerance_k, self.tolerance_k > 0.0),
        ];
        for (name, value, ok) in checks {
            if !value.is_finite() || !ok {
                return Err(ThermalError::InvalidParameter { name, value });
            }
        }
        if self.max_iterations == 0 {
            return Err(ThermalError::InvalidParameter {
                name: "max_iterations",
                value: 0.0,
            });
        }
        Ok(())
    }
}

/// A rectangular thermal grid with per-cell heat sources.
///
/// Build one per chip block, place heater powers (nominal tuning power plus
/// any trojan-forced excess), then [`solve`](Self::solve) for the
/// steady-state [`TemperatureField`].
///
/// # Example
///
/// ```
/// use safelight_thermal::{ThermalConfig, ThermalGrid};
///
/// # fn main() -> Result<(), safelight_thermal::ThermalError> {
/// let mut grid = ThermalGrid::new(16, 8, ThermalConfig::default())?;
/// grid.add_power(4, 4, 0.01)?;
/// let field = grid.solve()?;
/// assert!(field.max_delta() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalGrid {
    width: usize,
    height: usize,
    power_w: Vec<f64>,
    config: ThermalConfig,
}

impl ThermalGrid {
    /// Creates a `width × height` grid with no heat sources.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::EmptyGrid`] for zero dimensions and
    /// [`ThermalError::InvalidParameter`] for an unphysical configuration.
    pub fn new(width: usize, height: usize, config: ThermalConfig) -> Result<Self, ThermalError> {
        if width == 0 || height == 0 {
            return Err(ThermalError::EmptyGrid);
        }
        config.validate()?;
        Ok(Self {
            width,
            height,
            power_w: vec![0.0; width * height],
            config,
        })
    }

    /// Grid width in cells.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height in cells.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// The solver configuration.
    #[must_use]
    pub fn config(&self) -> &ThermalConfig {
        &self.config
    }

    /// Adds `watts` of dissipation to cell `(x, y)`.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::CellOutOfBounds`] for coordinates outside the
    /// grid and [`ThermalError::InvalidParameter`] for negative or
    /// non-finite powers.
    pub fn add_power(&mut self, x: usize, y: usize, watts: f64) -> Result<(), ThermalError> {
        if x >= self.width || y >= self.height {
            return Err(ThermalError::CellOutOfBounds {
                x,
                y,
                width: self.width,
                height: self.height,
            });
        }
        if !watts.is_finite() || watts < 0.0 {
            return Err(ThermalError::InvalidParameter {
                name: "watts",
                value: watts,
            });
        }
        self.power_w[y * self.width + x] += watts;
        Ok(())
    }

    /// Spreads `total_watts` uniformly over the cells of `rect`.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::RegionOutOfBounds`] when the rectangle does
    /// not fit the grid, and [`ThermalError::InvalidParameter`] for negative
    /// or non-finite powers.
    pub fn add_power_region(&mut self, rect: Rect, total_watts: f64) -> Result<(), ThermalError> {
        if !total_watts.is_finite() || total_watts < 0.0 {
            return Err(ThermalError::InvalidParameter {
                name: "total_watts",
                value: total_watts,
            });
        }
        if rect.x + rect.width > self.width || rect.y + rect.height > self.height {
            return Err(ThermalError::RegionOutOfBounds { index: 0 });
        }
        let cells = (rect.width * rect.height) as f64;
        if cells == 0.0 {
            return Ok(());
        }
        let per_cell = total_watts / cells;
        for y in rect.y..rect.y + rect.height {
            for x in rect.x..rect.x + rect.width {
                self.power_w[y * self.width + x] += per_cell;
            }
        }
        Ok(())
    }

    /// Total dissipated power currently placed on the grid, in watts.
    #[must_use]
    pub fn total_power_w(&self) -> f64 {
        self.power_w.iter().sum()
    }

    /// Power at cell `(x, y)` in watts.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::CellOutOfBounds`] for coordinates outside the
    /// grid.
    pub fn power_at(&self, x: usize, y: usize) -> Result<f64, ThermalError> {
        if x >= self.width || y >= self.height {
            return Err(ThermalError::CellOutOfBounds {
                x,
                y,
                width: self.width,
                height: self.height,
            });
        }
        Ok(self.power_w[y * self.width + x])
    }

    /// Clears all heat sources.
    pub fn clear_power(&mut self) {
        self.power_w.fill(0.0);
    }

    /// Solves for the steady-state temperature field.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::NotConverged`] when the SOR iteration fails
    /// to reach the configured tolerance within the iteration cap.
    pub fn solve(&self) -> Result<TemperatureField, ThermalError> {
        solve_steady_state(self.width, self.height, &self.power_w, &self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_sized_grid_is_rejected() {
        assert_eq!(
            ThermalGrid::new(0, 4, ThermalConfig::default()).unwrap_err(),
            ThermalError::EmptyGrid
        );
    }

    #[test]
    fn bad_config_is_rejected() {
        let cfg = ThermalConfig {
            sor_omega: 2.5,
            ..ThermalConfig::default()
        };
        assert!(matches!(
            ThermalGrid::new(4, 4, cfg),
            Err(ThermalError::InvalidParameter {
                name: "sor_omega",
                ..
            })
        ));
    }

    #[test]
    fn power_accumulates_per_cell() {
        let mut g = ThermalGrid::new(4, 4, ThermalConfig::default()).unwrap();
        g.add_power(1, 2, 0.5).unwrap();
        g.add_power(1, 2, 0.25).unwrap();
        assert!((g.power_at(1, 2).unwrap() - 0.75).abs() < 1e-12);
        assert!((g.total_power_w() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn region_power_is_spread_uniformly() {
        let mut g = ThermalGrid::new(8, 8, ThermalConfig::default()).unwrap();
        g.add_power_region(
            Rect {
                x: 2,
                y: 2,
                width: 2,
                height: 2,
            },
            1.0,
        )
        .unwrap();
        assert!((g.power_at(2, 2).unwrap() - 0.25).abs() < 1e-12);
        assert!((g.power_at(3, 3).unwrap() - 0.25).abs() < 1e-12);
        assert_eq!(g.power_at(4, 4).unwrap(), 0.0);
    }

    #[test]
    fn out_of_bounds_power_is_rejected() {
        let mut g = ThermalGrid::new(4, 4, ThermalConfig::default()).unwrap();
        assert!(g.add_power(4, 0, 0.1).is_err());
        assert!(g
            .add_power_region(
                Rect {
                    x: 3,
                    y: 3,
                    width: 2,
                    height: 1
                },
                0.1
            )
            .is_err());
    }

    #[test]
    fn negative_power_is_rejected() {
        let mut g = ThermalGrid::new(4, 4, ThermalConfig::default()).unwrap();
        assert!(g.add_power(0, 0, -1.0).is_err());
    }

    #[test]
    fn decay_length_matches_formula() {
        let cfg = ThermalConfig::default();
        let expected = (cfg.lateral_conductance_w_per_k / cfg.sink_conductance_w_per_k).sqrt();
        assert!((cfg.decay_length_cells() - expected).abs() < 1e-12);
        assert!((3.0..8.0).contains(&expected), "decay length {expected}");
    }
}

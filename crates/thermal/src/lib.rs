//! A HotSpot-style steady-state thermal simulator for photonic chip
//! floorplans.
//!
//! The SafeLight paper uses the HotSpot tool to produce the Fig. 6 heatmap
//! of a CONV microring-bank array under hotspot attacks. This crate is the
//! Rust stand-in: a 2-D finite-difference steady-state heat solver with a
//! lumped vertical heat-sink path, driven by per-cell heater powers placed
//! through a [`Floorplan`] of microring banks.
//!
//! The governing balance per cell is
//!
//! ```text
//! Σ_neighbours g_lat·(T_nb − T)  +  g_sink·(T_amb − T)  +  P_cell  =  0
//! ```
//!
//! which is the standard HotSpot RC-network steady state. The ratio
//! `g_lat/g_sink` sets the lateral spreading length of a hotspot — the
//! physical mechanism by which an attacked heater corrupts not only its own
//! microring bank but also neighbouring banks (paper §III.B.2).
//!
//! # Example
//!
//! ```
//! use safelight_thermal::{ThermalConfig, ThermalGrid};
//!
//! # fn main() -> Result<(), safelight_thermal::ThermalError> {
//! let mut grid = ThermalGrid::new(32, 32, ThermalConfig::default())?;
//! grid.add_power(16, 16, 0.02)?; // a 20 mW trojan-driven heater
//! let field = grid.solve()?;
//! // The hotspot peaks at the heater and decays with distance.
//! assert!(field.delta_at(16, 16)? > field.delta_at(24, 16)?);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod floorplan;
mod grid;
mod heatmap;
mod solver;

pub use error::ThermalError;
pub use floorplan::{BankPlacement, Floorplan, Rect};
pub use grid::{ThermalConfig, ThermalGrid};
pub use heatmap::Heatmap;
pub use solver::TemperatureField;

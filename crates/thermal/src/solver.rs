//! Steady-state finite-difference solver and the resulting temperature
//! field.

use crate::grid::ThermalConfig;
use crate::heatmap::Heatmap;
use crate::ThermalError;

/// A solved steady-state temperature field over a grid.
///
/// Produced by [`ThermalGrid::solve`](crate::ThermalGrid::solve). All
/// queries are in kelvin; `delta_*` methods report the rise over ambient,
/// which is the `ΔT` entering the paper's eq. (2) resonance-shift model.
#[derive(Debug, Clone, PartialEq)]
pub struct TemperatureField {
    width: usize,
    height: usize,
    ambient_k: f64,
    temperatures_k: Vec<f64>,
    iterations: usize,
}

impl TemperatureField {
    /// Grid width in cells.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height in cells.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Ambient temperature the field is referenced to, in kelvin.
    #[must_use]
    pub fn ambient_k(&self) -> f64 {
        self.ambient_k
    }

    /// Iterations the solver needed to converge.
    #[must_use]
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Absolute temperature at `(x, y)` in kelvin.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::CellOutOfBounds`] outside the grid.
    pub fn at(&self, x: usize, y: usize) -> Result<f64, ThermalError> {
        if x >= self.width || y >= self.height {
            return Err(ThermalError::CellOutOfBounds {
                x,
                y,
                width: self.width,
                height: self.height,
            });
        }
        Ok(self.temperatures_k[y * self.width + x])
    }

    /// Temperature rise over ambient at `(x, y)` in kelvin.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::CellOutOfBounds`] outside the grid.
    pub fn delta_at(&self, x: usize, y: usize) -> Result<f64, ThermalError> {
        Ok(self.at(x, y)? - self.ambient_k)
    }

    /// Largest temperature rise over ambient anywhere on the grid.
    #[must_use]
    pub fn max_delta(&self) -> f64 {
        self.temperatures_k
            .iter()
            .fold(f64::NEG_INFINITY, |a, &t| a.max(t))
            - self.ambient_k
    }

    /// Mean temperature rise over ambient, in kelvin.
    #[must_use]
    pub fn mean_delta(&self) -> f64 {
        let n = self.temperatures_k.len() as f64;
        self.temperatures_k.iter().sum::<f64>() / n - self.ambient_k
    }

    /// Mean temperature rise over the cells of a rectangle, in kelvin.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::RegionOutOfBounds`] when the rectangle does
    /// not fit the grid.
    pub fn mean_delta_in(&self, rect: crate::Rect) -> Result<f64, ThermalError> {
        if rect.x + rect.width > self.width || rect.y + rect.height > self.height {
            return Err(ThermalError::RegionOutOfBounds { index: 0 });
        }
        let mut sum = 0.0;
        let mut n = 0usize;
        for y in rect.y..rect.y + rect.height {
            for x in rect.x..rect.x + rect.width {
                sum += self.temperatures_k[y * self.width + x];
                n += 1;
            }
        }
        if n == 0 {
            return Ok(0.0);
        }
        Ok(sum / n as f64 - self.ambient_k)
    }

    /// Raw temperature buffer in row-major order (kelvin).
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.temperatures_k
    }

    /// Samples the temperature rise over ambient at a list of sensor
    /// `sites` (e.g. [`Floorplan::sensor_sites`](crate::Floorplan::sensor_sites)),
    /// in site order — one on-chip thermal-sensor readout frame.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::CellOutOfBounds`] when any site lies outside
    /// the grid.
    pub fn sample_delta(&self, sites: &[(usize, usize)]) -> Result<Vec<f64>, ThermalError> {
        sites.iter().map(|&(x, y)| self.delta_at(x, y)).collect()
    }

    /// Superposes per-source solutions of the (linear) steady-state
    /// operator: `ΔT = Σ_i scale_i · ΔT_i` over ambient.
    ///
    /// Because the heat balance is linear in the sources, the field of a
    /// multi-source layout equals the scaled sum of single-source fields;
    /// callers exploit this to cache unit-power solves and combine them
    /// instead of re-running the solver per source combination.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] when `fields` is empty,
    /// when `scales` has a different length, or when the fields disagree in
    /// shape or ambient temperature.
    pub fn superpose(
        fields: &[&TemperatureField],
        scales: &[f64],
    ) -> Result<TemperatureField, ThermalError> {
        let first = *fields.first().ok_or(ThermalError::InvalidParameter {
            name: "fields",
            value: 0.0,
        })?;
        if fields.len() != scales.len() {
            return Err(ThermalError::InvalidParameter {
                name: "scales",
                value: scales.len() as f64,
            });
        }
        let mut temperatures_k = vec![first.ambient_k; first.temperatures_k.len()];
        let mut iterations = 0;
        for (field, &scale) in fields.iter().zip(scales) {
            if field.width != first.width
                || field.height != first.height
                || (field.ambient_k - first.ambient_k).abs() > f64::EPSILON
            {
                return Err(ThermalError::InvalidParameter {
                    name: "fields (mismatched shape or ambient)",
                    value: field.width as f64,
                });
            }
            iterations = iterations.max(field.iterations);
            for (acc, &t) in temperatures_k.iter_mut().zip(&field.temperatures_k) {
                *acc += scale * (t - field.ambient_k);
            }
        }
        Ok(TemperatureField {
            width: first.width,
            height: first.height,
            ambient_k: first.ambient_k,
            temperatures_k,
            iterations,
        })
    }

    /// Converts the field into a renderable [`Heatmap`] of ΔT values.
    #[must_use]
    pub fn to_heatmap(&self) -> Heatmap {
        Heatmap::from_values(
            self.width,
            self.height,
            self.temperatures_k
                .iter()
                .map(|t| t - self.ambient_k)
                .collect(),
        )
    }
}

/// Gauss–Seidel/SOR solve of the steady-state balance
/// `Σ g_lat (T_nb − T) + g_sink (T_amb − T) + P = 0`.
pub(crate) fn solve_steady_state(
    width: usize,
    height: usize,
    power_w: &[f64],
    config: &ThermalConfig,
) -> Result<TemperatureField, ThermalError> {
    debug_assert_eq!(power_w.len(), width * height);
    let g_lat = config.lateral_conductance_w_per_k;
    let g_sink = config.sink_conductance_w_per_k;
    let omega = if config.sor_omega > 0.0 {
        config.sor_omega
    } else {
        // Classical near-optimal SOR factor for a Poisson-like stencil;
        // the sink term only shrinks the spectral radius further, so this
        // stays convergent (ω < 2 for the SPD system) while cutting
        // iteration counts by roughly the grid's linear size.
        let n = width.max(height).max(2) as f64;
        (2.0 / (1.0 + (std::f64::consts::PI / n).sin())).min(1.98)
    };
    let ambient = config.ambient_k;

    let mut t = vec![ambient; width * height];
    let mut iterations = 0;
    let mut residual = f64::INFINITY;

    while iterations < config.max_iterations {
        iterations += 1;
        let mut max_update: f64 = 0.0;
        for y in 0..height {
            for x in 0..width {
                let idx = y * width + x;
                let mut neighbour_sum = 0.0;
                let mut degree = 0.0;
                if x > 0 {
                    neighbour_sum += t[idx - 1];
                    degree += 1.0;
                }
                if x + 1 < width {
                    neighbour_sum += t[idx + 1];
                    degree += 1.0;
                }
                if y > 0 {
                    neighbour_sum += t[idx - width];
                    degree += 1.0;
                }
                if y + 1 < height {
                    neighbour_sum += t[idx + width];
                    degree += 1.0;
                }
                let diag = g_lat * degree + g_sink;
                let rhs = g_lat * neighbour_sum + g_sink * ambient + power_w[idx];
                let gauss_seidel = rhs / diag;
                let updated = t[idx] + omega * (gauss_seidel - t[idx]);
                max_update = max_update.max((updated - t[idx]).abs());
                t[idx] = updated;
            }
        }
        residual = max_update;
        if residual < config.tolerance_k {
            return Ok(TemperatureField {
                width,
                height,
                ambient_k: ambient,
                temperatures_k: t,
                iterations,
            });
        }
    }
    Err(ThermalError::NotConverged {
        iterations,
        residual_k: residual,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Rect, ThermalGrid};

    fn solve_point_source(size: usize, watts: f64) -> TemperatureField {
        let mut grid = ThermalGrid::new(size, size, ThermalConfig::default()).unwrap();
        grid.add_power(size / 2, size / 2, watts).unwrap();
        grid.solve().unwrap()
    }

    #[test]
    fn sample_delta_reads_sites_in_order() {
        let field = solve_point_source(16, 0.02);
        let sites = [(8, 8), (0, 0), (15, 15)];
        let samples = field.sample_delta(&sites).unwrap();
        assert_eq!(samples.len(), 3);
        for (s, &(x, y)) in samples.iter().zip(&sites) {
            assert_eq!(*s, field.delta_at(x, y).unwrap());
        }
        // The sensor at the heater reads hotter than the corner sensors.
        assert!(samples[0] > samples[1] && samples[0] > samples[2]);
        assert!(field.sample_delta(&[(16, 0)]).is_err());
    }

    #[test]
    fn zero_power_gives_ambient_everywhere() {
        let grid = ThermalGrid::new(12, 12, ThermalConfig::default()).unwrap();
        let field = grid.solve().unwrap();
        assert!(field.max_delta().abs() < 1e-6);
    }

    #[test]
    fn maximum_principle_holds() {
        // With non-negative sources, temperature never drops below ambient.
        let field = solve_point_source(24, 0.02);
        for &t in field.as_slice() {
            assert!(t >= field.ambient_k() - 1e-9);
        }
    }

    #[test]
    fn hotspot_peaks_at_the_source() {
        let field = solve_point_source(24, 0.02);
        let centre = field.delta_at(12, 12).unwrap();
        assert!((field.max_delta() - centre).abs() < 1e-9);
    }

    #[test]
    fn hotspot_decays_monotonically_along_a_ray() {
        let field = solve_point_source(32, 0.02);
        let mut last = f64::INFINITY;
        for x in 16..30 {
            let d = field.delta_at(x, 16).unwrap();
            assert!(d <= last + 1e-12, "ΔT increased away from source at x={x}");
            last = d;
        }
    }

    #[test]
    fn solution_is_linear_in_power() {
        let f1 = solve_point_source(16, 0.01);
        let f2 = solve_point_source(16, 0.02);
        let r = f2.delta_at(8, 8).unwrap() / f1.delta_at(8, 8).unwrap();
        assert!((r - 2.0).abs() < 1e-3, "ratio {r}");
    }

    #[test]
    fn global_energy_balance_holds() {
        // In steady state, all injected power leaves through the sink:
        // Σ g_sink (T − T_amb) = Σ P.
        let cfg = ThermalConfig::default();
        let mut grid = ThermalGrid::new(20, 20, cfg).unwrap();
        grid.add_power(5, 5, 0.01).unwrap();
        grid.add_power(14, 9, 0.03).unwrap();
        let field = grid.solve().unwrap();
        let sunk: f64 = field
            .as_slice()
            .iter()
            .map(|t| cfg.sink_conductance_w_per_k * (t - cfg.ambient_k))
            .sum();
        assert!((sunk - 0.04).abs() / 0.04 < 1e-3, "sunk {sunk} W");
    }

    #[test]
    fn twenty_milliwatt_heater_produces_double_digit_delta() {
        // Sanity-anchor the default conductances: a ~20 mW trojan heater
        // should push its ring past the ~15 K one-channel resonance slide.
        let field = solve_point_source(32, 0.02);
        let peak = field.max_delta();
        assert!((10.0..80.0).contains(&peak), "peak ΔT {peak} K");
    }

    #[test]
    fn mean_delta_in_region_brackets_extremes() {
        let field = solve_point_source(24, 0.02);
        let region = Rect {
            x: 8,
            y: 8,
            width: 8,
            height: 8,
        };
        let mean = field.mean_delta_in(region).unwrap();
        assert!(mean > 0.0 && mean <= field.max_delta());
    }

    #[test]
    fn unconverged_solve_is_reported() {
        let cfg = ThermalConfig {
            max_iterations: 2,
            ..ThermalConfig::default()
        };
        let mut grid = ThermalGrid::new(16, 16, cfg).unwrap();
        grid.add_power(8, 8, 0.02).unwrap();
        assert!(matches!(
            grid.solve(),
            Err(ThermalError::NotConverged { .. })
        ));
    }
}

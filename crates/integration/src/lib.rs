// placeholder

//! Workspace-level integration targets.
//!
//! This crate carries no library code. Its manifest wires the repository's
//! top-level `tests/` (cross-crate pipelines and properties) and
//! `examples/` (quickstart, susceptibility sweep, robust training, hotspot
//! heatmap) into cargo as explicit `[[test]]` and `[[example]]` targets, so
//! `cargo test` and `cargo build --examples` cover them from the workspace
//! root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

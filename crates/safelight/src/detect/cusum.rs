//! The EWMA-smoothed CUSUM change-point detector.

use safelight_onn::{BlockKind, TelemetryFrame};

use crate::detect::{require_frames, ChannelStat, Detector};
use crate::SafelightError;

/// Sequential change-point detection over the drop-port monitor stream.
///
/// Per frame, every bank's drop current is z-scored against its calibrated
/// baseline and the z-scores are averaged across all banks of both blocks —
/// averaging B banks shrinks the noise by √B, so shifts far below any
/// single bank's guard band become visible once they persist. The mean is
/// EWMA-smoothed,
///
/// ```text
/// s_t = λ·z̄_t + (1 − λ)·s_{t−1}
/// ```
///
/// and accumulated by a two-sided CUSUM with drift allowance `k`:
///
/// ```text
/// c⁺_t = max(0, c⁺_{t−1} + s_t − k)     c⁻_t = max(0, c⁻_{t−1} − s_t − k)
/// ```
///
/// The frame's score is `max(c⁺, c⁻)`. The trade-off against
/// [`GuardBandDetector`](crate::detect::GuardBandDetector) is latency for
/// sensitivity: a persistent 0.5 σ global shift is invisible per-frame but
/// accumulates here within a handful of frames.
#[derive(Debug, Clone)]
pub struct EwmaCusumDetector {
    /// EWMA smoothing factor λ in `(0, 1]` (1 disables smoothing).
    pub lambda: f64,
    /// CUSUM drift allowance `k` in σ units; shifts below it are absorbed.
    pub drift: f64,
    conv: Vec<ChannelStat>,
    fc: Vec<ChannelStat>,
    ewma: f64,
    cusum_up: f64,
    cusum_down: f64,
}

impl Default for EwmaCusumDetector {
    fn default() -> Self {
        Self {
            lambda: 0.4,
            drift: 0.25,
            conv: Vec::new(),
            fc: Vec::new(),
            ewma: 0.0,
            cusum_up: 0.0,
            cusum_down: 0.0,
        }
    }
}

impl EwmaCusumDetector {
    fn fit_block(frames: &[TelemetryFrame], kind: BlockKind) -> Vec<ChannelStat> {
        let banks = frames.first().map_or(0, |f| f.banks(kind).len());
        (0..banks)
            .map(|bank| {
                let values: Vec<f64> = frames
                    .iter()
                    .filter(|f| f.banks(kind).len() == banks)
                    .map(|f| f.banks(kind)[bank].drop_current)
                    .collect();
                ChannelStat::fit(&values)
            })
            .collect()
    }

    /// Cross-bank mean drop-current z-score of `frame`, over the banks with
    /// finite z only. A single NaN monitor reading would otherwise make the
    /// mean NaN, the EWMA NaN, and then `(cusum + NaN).max(0.0) = 0.0` —
    /// silently zeroing the detector for the rest of the stream.
    fn mean_z(&self, frame: &TelemetryFrame) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for (kind, stats) in [(BlockKind::Conv, &self.conv), (BlockKind::Fc, &self.fc)] {
            for (bank, stat) in stats.iter().enumerate().take(frame.banks(kind).len()) {
                let z = stat.z(frame.banks(kind)[bank].drop_current);
                if z.is_finite() {
                    sum += z;
                    n += 1;
                }
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}

impl Detector for EwmaCusumDetector {
    fn name(&self) -> &'static str {
        "ewma_cusum"
    }

    fn calibrate(&mut self, frames: &[TelemetryFrame]) -> Result<(), SafelightError> {
        require_frames(frames)?;
        self.conv = Self::fit_block(frames, BlockKind::Conv);
        self.fc = Self::fit_block(frames, BlockKind::Fc);
        self.reset();
        Ok(())
    }

    fn reset(&mut self) {
        self.ewma = 0.0;
        self.cusum_up = 0.0;
        self.cusum_down = 0.0;
    }

    fn score(&mut self, frame: &TelemetryFrame) -> f64 {
        if self.conv.is_empty() && self.fc.is_empty() {
            return 0.0;
        }
        let z = self.mean_z(frame);
        self.ewma = self.lambda * z + (1.0 - self.lambda) * self.ewma;
        self.cusum_up = (self.cusum_up + self.ewma - self.drift).max(0.0);
        self.cusum_down = (self.cusum_down - self.ewma - self.drift).max(0.0);
        self.cusum_up.max(self.cusum_down)
    }

    fn clone_box(&self) -> Box<dyn Detector> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::testutil::{frames, parked};
    use safelight_onn::ConditionMap;

    fn calibrated() -> EwmaCusumDetector {
        let mut d = EwmaCusumDetector::default();
        d.calibrate(&frames(&ConditionMap::new(), 32, 1)).unwrap();
        d
    }

    #[test]
    fn clean_streams_keep_the_cusum_low() {
        let mut d = calibrated();
        let max = frames(&ConditionMap::new(), 16, 42)
            .iter()
            .map(|f| d.score(f))
            .fold(0.0f64, f64::max);
        assert!(max < 3.0, "clean cusum peaked at {max}");
    }

    #[test]
    fn persistent_shift_accumulates_and_reset_clears_it() {
        let mut d = calibrated();
        let attacked = frames(&parked(2), 12, 7);
        let scores: Vec<f64> = attacked.iter().map(|f| d.score(f)).collect();
        // The statistic grows with exposure time…
        assert!(scores.last().unwrap() > &scores[1]);
        assert!(scores.last().unwrap() > &3.0, "final {:?}", scores.last());
        // …and reset clears the sequential state but not the calibration.
        d.reset();
        let fresh = d.score(&attacked[0]);
        assert!(fresh < *scores.last().unwrap());
    }

    #[test]
    fn uncalibrated_detector_scores_zero() {
        let mut d = EwmaCusumDetector::default();
        let f = frames(&ConditionMap::new(), 1, 0);
        assert_eq!(d.score(&f[0]), 0.0);
    }

    #[test]
    fn nan_reading_does_not_zero_the_cusum_forever() {
        use safelight_onn::{BlockKind, SensorChannel};
        // Regression for the non-finite poisoning bug: one NaN drop reading
        // used to turn the EWMA NaN, after which `(NaN).max(0.0)` pinned
        // both CUSUM arms to 0 for the rest of the stream — the attack
        // below would never alarm again.
        let mut poisoned = calibrated();
        let mut clean = calibrated();
        let attacked = frames(&parked(2), 12, 7);
        for (i, f) in attacked.iter().enumerate() {
            if i == 1 {
                let mut dead = f.clone();
                dead.set_channel(BlockKind::Fc, 1, SensorChannel::DropCurrent, f64::NAN);
                poisoned.score(&dead);
                clean.score(f);
                continue;
            }
            let p = poisoned.score(f);
            let c = clean.score(f);
            assert!(p.is_finite(), "frame {i}: score {p}");
            if i + 1 == attacked.len() {
                assert!(p > 3.0, "poisoned cusum never recovered: {p} (clean {c})");
            }
        }
    }
}

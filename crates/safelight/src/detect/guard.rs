//! The calibrated per-bank guard-band detector.

use safelight_onn::{BlockKind, TelemetryFrame};

use crate::detect::{require_frames, ChannelStat, Detector};
use crate::SafelightError;

/// Per-bank calibrated threshold (guard-band) detection.
///
/// During calibration every sensor field of every bank — drop-port monitor
/// current, thermal sensor, laser-rail readback and trim-DAC readback —
/// gets its own mean/σ. At run time the frame's score is the largest
/// absolute z-score across all banks and fields: the monitor fires when any
/// single reading leaves its guard band. Memoryless, so detection latency
/// is one frame whenever the shift clears the band.
#[derive(Debug, Clone, Default)]
pub struct GuardBandDetector {
    /// Calibrated stats per block: `banks[bank][field]`.
    conv: Vec<[ChannelStat; 4]>,
    fc: Vec<[ChannelStat; 4]>,
}

/// The four bank-level sensor fields, in calibration order.
fn fields(frame: &TelemetryFrame, kind: BlockKind, bank: usize) -> [f64; 4] {
    let b = &frame.banks(kind)[bank];
    [
        b.drop_current,
        b.delta_kelvin,
        b.rail_power,
        b.trim_offset_nm,
    ]
}

impl GuardBandDetector {
    fn fit_block(frames: &[TelemetryFrame], kind: BlockKind) -> Vec<[ChannelStat; 4]> {
        let banks = frames.first().map_or(0, |f| f.banks(kind).len());
        (0..banks)
            .map(|bank| {
                let mut stats = [ChannelStat::default(); 4];
                for (field, stat) in stats.iter_mut().enumerate() {
                    let values: Vec<f64> = frames
                        .iter()
                        .filter(|f| f.banks(kind).len() == banks)
                        .map(|f| fields(f, kind, bank)[field])
                        .collect();
                    *stat = ChannelStat::fit(&values);
                }
                stats
            })
            .collect()
    }

    fn block_score(&self, frame: &TelemetryFrame, kind: BlockKind) -> f64 {
        let stats = match kind {
            BlockKind::Conv => &self.conv,
            BlockKind::Fc => &self.fc,
        };
        let mut worst: f64 = 0.0;
        for (bank, bank_stats) in stats.iter().enumerate().take(frame.banks(kind).len()) {
            let values = fields(frame, kind, bank);
            for (value, stat) in values.iter().zip(bank_stats) {
                let z = stat.z(*value).abs();
                // A non-finite z (dead sensor reaching the detector) must
                // not poison the max — `f64::max` would silently drop a NaN
                // operand, and an ∞ would pin the score. The sensor-health
                // screen reports the channel; scoring skips it.
                if z.is_finite() {
                    worst = worst.max(z);
                }
            }
        }
        worst
    }

    /// Per-bank worst absolute z-scores of `frame` against the calibrated
    /// guard bands, as `(block, bank, score)` triples in block/bank order.
    ///
    /// This is the localization primitive of the closed-loop serving
    /// runtime: when the suite alarms, the banks whose excursion exceeds
    /// the implication threshold are the ones the response policy
    /// quarantines and remaps. Empty before calibration.
    #[must_use]
    pub fn bank_excursions(&self, frame: &TelemetryFrame) -> Vec<(BlockKind, usize, f64)> {
        let mut out = Vec::with_capacity(self.conv.len() + self.fc.len());
        for (kind, stats) in [(BlockKind::Conv, &self.conv), (BlockKind::Fc, &self.fc)] {
            for (bank, bank_stats) in stats.iter().enumerate().take(frame.banks(kind).len()) {
                let values = fields(frame, kind, bank);
                let worst = values
                    .iter()
                    .zip(bank_stats)
                    .map(|(value, stat)| stat.z(*value).abs())
                    .filter(|z| z.is_finite())
                    .fold(0.0f64, f64::max);
                out.push((kind, bank, worst));
            }
        }
        out
    }

    /// Per-bank absolute z-scores of every sensor field, as
    /// `(block, bank, [z_drop, z_temp, z_rail, z_trim])` in block/bank
    /// order (non-finite z reported as 0 — the health screen owns those
    /// channels). Where [`GuardBandDetector::bank_excursions`] answers
    /// *which bank*, this answers *which sensor of that bank* — the
    /// fault-vs-trojan discrimination primitive: a trojan moving the
    /// physics shows up on the compute-coupled drop channel (usually with
    /// a correlated thermal/rail/trim signature), while a single broken
    /// readback excurses on exactly one non-drop field.
    #[must_use]
    pub fn field_excursions(&self, frame: &TelemetryFrame) -> Vec<(BlockKind, usize, [f64; 4])> {
        let mut out = Vec::with_capacity(self.conv.len() + self.fc.len());
        for (kind, stats) in [(BlockKind::Conv, &self.conv), (BlockKind::Fc, &self.fc)] {
            for (bank, bank_stats) in stats.iter().enumerate().take(frame.banks(kind).len()) {
                let values = fields(frame, kind, bank);
                let mut zs = [0.0f64; 4];
                for (slot, (value, stat)) in values.iter().zip(bank_stats).enumerate() {
                    let z = stat.z(*value).abs();
                    if z.is_finite() {
                        zs[slot] = z;
                    }
                }
                out.push((kind, bank, zs));
            }
        }
        out
    }

    /// The coherent laser-rail shift of `frame`: for each block, the
    /// *smallest* absolute rail z-score across its banks, maximized over
    /// blocks. A supply-side transient (laser-rail glitch) darkens every
    /// bank of a block at once, so even the least-moved bank excurses;
    /// a trojan tapping a fraction of the rings leaves some bank near
    /// baseline and this statistic stays small. `0.0` before calibration.
    #[must_use]
    pub fn coherent_rail_shift(&self, frame: &TelemetryFrame) -> f64 {
        let mut worst_block = 0.0f64;
        for (kind, stats) in [(BlockKind::Conv, &self.conv), (BlockKind::Fc, &self.fc)] {
            let banks = stats.len().min(frame.banks(kind).len());
            if banks == 0 {
                continue;
            }
            let mut least = f64::INFINITY;
            for (bank, bank_stats) in stats.iter().enumerate().take(banks) {
                let z = bank_stats[2].z(fields(frame, kind, bank)[2]).abs();
                least = least.min(if z.is_finite() { z } else { 0.0 });
            }
            if least.is_finite() {
                worst_block = worst_block.max(least);
            }
        }
        worst_block
    }
}

impl Detector for GuardBandDetector {
    fn name(&self) -> &'static str {
        "guard_band"
    }

    fn calibrate(&mut self, frames: &[TelemetryFrame]) -> Result<(), SafelightError> {
        require_frames(frames)?;
        self.conv = Self::fit_block(frames, BlockKind::Conv);
        self.fc = Self::fit_block(frames, BlockKind::Fc);
        Ok(())
    }

    fn reset(&mut self) {
        // Memoryless: nothing to clear.
    }

    fn score(&mut self, frame: &TelemetryFrame) -> f64 {
        self.block_score(frame, BlockKind::Conv)
            .max(self.block_score(frame, BlockKind::Fc))
    }

    fn clone_box(&self) -> Box<dyn Detector> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::testutil::{frames, parked};
    use safelight_onn::ConditionMap;

    #[test]
    fn uncalibrated_detector_scores_zero() {
        let mut d = GuardBandDetector::default();
        let f = frames(&ConditionMap::new(), 1, 0);
        assert_eq!(d.score(&f[0]), 0.0);
    }

    #[test]
    fn clean_frames_stay_inside_the_band() {
        let mut d = GuardBandDetector::default();
        d.calibrate(&frames(&ConditionMap::new(), 24, 1)).unwrap();
        // Fresh noise seed, same clean distribution: scores stay modest.
        for f in frames(&ConditionMap::new(), 8, 99) {
            assert!(d.score(&f) < 6.0, "clean score {}", d.score(&f));
        }
    }

    #[test]
    fn parked_rings_blow_the_band_in_one_frame() {
        let mut d = GuardBandDetector::default();
        d.calibrate(&frames(&ConditionMap::new(), 24, 1)).unwrap();
        let clean_worst = frames(&ConditionMap::new(), 8, 99)
            .iter()
            .map(|f| d.score(f))
            .fold(0.0f64, f64::max);
        let attacked = frames(&parked(3), 1, 7);
        let s = d.score(&attacked[0]);
        assert!(
            s > 2.0 * clean_worst,
            "attack score {s} vs clean worst {clean_worst}"
        );
    }

    #[test]
    fn empty_calibration_is_rejected() {
        let mut d = GuardBandDetector::default();
        assert!(d.calibrate(&[]).is_err());
    }

    #[test]
    fn non_finite_reading_does_not_poison_the_score() {
        use safelight_onn::{BlockKind, SensorChannel};
        let mut d = GuardBandDetector::default();
        d.calibrate(&frames(&ConditionMap::new(), 24, 1)).unwrap();
        // A real attack plus one dead sensor: the attack must still score.
        let mut f = frames(&parked(3), 1, 7).remove(0);
        let with_attack = d.score(&f);
        assert!(with_attack > 6.0, "attack score {with_attack}");
        f.set_channel(BlockKind::Conv, 0, SensorChannel::DeltaKelvin, f64::NAN);
        f.set_channel(BlockKind::Conv, 1, SensorChannel::RailPower, f64::INFINITY);
        let s = d.score(&f);
        assert!(s.is_finite(), "NaN leaked into the score");
        assert_eq!(s, with_attack, "dead sensors changed the attack score");
        // Excursions stay finite too.
        for (_, _, z) in d.bank_excursions(&f) {
            assert!(z.is_finite());
        }
    }

    #[test]
    fn field_excursions_name_the_moved_sensor() {
        use safelight_onn::{BlockKind, SensorChannel};
        let mut d = GuardBandDetector::default();
        assert!(d
            .field_excursions(&frames(&ConditionMap::new(), 1, 0)[0])
            .is_empty());
        d.calibrate(&frames(&ConditionMap::new(), 24, 1)).unwrap();
        // Parked rings darken the drop channel of FC bank 0: the drop field
        // dominates its row.
        let attacked = frames(&parked(3), 1, 7);
        let rows = d.field_excursions(&attacked[0]);
        assert_eq!(rows.len(), 4);
        let (_, _, zs) = rows
            .iter()
            .find(|(k, b, _)| (*k, *b) == (BlockKind::Fc, 0))
            .unwrap();
        assert!(zs[0] > zs[1] && zs[0] > zs[2], "{zs:?}");
        // A lone trim-readback shift excurses only field 3 of its bank.
        let mut f = frames(&ConditionMap::new(), 1, 9).remove(0);
        f.set_channel(BlockKind::Fc, 1, SensorChannel::TrimOffsetNm, 0.4);
        let rows = d.field_excursions(&f);
        let (_, _, zs) = rows
            .iter()
            .find(|(k, b, _)| (*k, *b) == (BlockKind::Fc, 1))
            .unwrap();
        assert!(zs[3] > 50.0 && zs[0] < 8.0, "{zs:?}");
    }

    #[test]
    fn coherent_rail_shift_separates_glitches_from_taps() {
        use safelight_onn::{BlockKind, SensorChannel};
        let mut d = GuardBandDetector::default();
        assert_eq!(
            d.coherent_rail_shift(&frames(&ConditionMap::new(), 1, 0)[0]),
            0.0
        );
        d.calibrate(&frames(&ConditionMap::new(), 24, 1)).unwrap();
        // Clean frames: tiny coherent shift.
        let clean = frames(&ConditionMap::new(), 1, 99).remove(0);
        assert!(d.coherent_rail_shift(&clean) < 4.0);
        // A supply glitch drops the rail on EVERY bank of both blocks.
        let mut glitched = frames(&ConditionMap::new(), 1, 7).remove(0);
        for kind in [BlockKind::Conv, BlockKind::Fc] {
            for bank in 0..2 {
                let rail = glitched
                    .channel(kind, bank, SensorChannel::RailPower)
                    .unwrap();
                glitched.set_channel(kind, bank, SensorChannel::RailPower, rail - 0.3);
            }
        }
        assert!(d.coherent_rail_shift(&glitched) > 20.0);
        // A tap on one bank only is NOT coherent: the untouched bank keeps
        // the block minimum small.
        let mut tapped = frames(&ConditionMap::new(), 1, 7).remove(0);
        let rail = tapped
            .channel(BlockKind::Fc, 0, SensorChannel::RailPower)
            .unwrap();
        tapped.set_channel(BlockKind::Fc, 0, SensorChannel::RailPower, rail - 0.3);
        assert!(d.coherent_rail_shift(&tapped) < 4.0);
    }

    #[test]
    fn bank_excursions_localize_the_attacked_bank() {
        use safelight_onn::BlockKind;
        let mut d = GuardBandDetector::default();
        assert!(d
            .bank_excursions(&frames(&ConditionMap::new(), 1, 0)[0])
            .is_empty());
        d.calibrate(&frames(&ConditionMap::new(), 24, 1)).unwrap();
        // The fixture parks FC rings 0..3 — all in FC bank 0 (8 rings/bank).
        let attacked = frames(&parked(3), 1, 7);
        let excursions = d.bank_excursions(&attacked[0]);
        // One entry per bank of both blocks (2 + 2 in the fixture).
        assert_eq!(excursions.len(), 4);
        let worst = excursions
            .iter()
            .max_by(|a, b| a.2.partial_cmp(&b.2).unwrap())
            .unwrap();
        assert_eq!((worst.0, worst.1), (BlockKind::Fc, 0));
        // The frame score is exactly the worst excursion.
        let score = d.score(&attacked[0]);
        assert_eq!(score, worst.2);
    }
}

//! The calibrated per-bank guard-band detector.

use safelight_onn::{BlockKind, TelemetryFrame};

use crate::detect::{require_frames, ChannelStat, Detector};
use crate::SafelightError;

/// Per-bank calibrated threshold (guard-band) detection.
///
/// During calibration every sensor field of every bank — drop-port monitor
/// current, thermal sensor, laser-rail readback and trim-DAC readback —
/// gets its own mean/σ. At run time the frame's score is the largest
/// absolute z-score across all banks and fields: the monitor fires when any
/// single reading leaves its guard band. Memoryless, so detection latency
/// is one frame whenever the shift clears the band.
#[derive(Debug, Clone, Default)]
pub struct GuardBandDetector {
    /// Calibrated stats per block: `banks[bank][field]`.
    conv: Vec<[ChannelStat; 4]>,
    fc: Vec<[ChannelStat; 4]>,
}

/// The four bank-level sensor fields, in calibration order.
fn fields(frame: &TelemetryFrame, kind: BlockKind, bank: usize) -> [f64; 4] {
    let b = &frame.banks(kind)[bank];
    [
        b.drop_current,
        b.delta_kelvin,
        b.rail_power,
        b.trim_offset_nm,
    ]
}

impl GuardBandDetector {
    fn fit_block(frames: &[TelemetryFrame], kind: BlockKind) -> Vec<[ChannelStat; 4]> {
        let banks = frames.first().map_or(0, |f| f.banks(kind).len());
        (0..banks)
            .map(|bank| {
                let mut stats = [ChannelStat::default(); 4];
                for (field, stat) in stats.iter_mut().enumerate() {
                    let values: Vec<f64> = frames
                        .iter()
                        .filter(|f| f.banks(kind).len() == banks)
                        .map(|f| fields(f, kind, bank)[field])
                        .collect();
                    *stat = ChannelStat::fit(&values);
                }
                stats
            })
            .collect()
    }

    fn block_score(&self, frame: &TelemetryFrame, kind: BlockKind) -> f64 {
        let stats = match kind {
            BlockKind::Conv => &self.conv,
            BlockKind::Fc => &self.fc,
        };
        let mut worst: f64 = 0.0;
        for (bank, bank_stats) in stats.iter().enumerate().take(frame.banks(kind).len()) {
            let values = fields(frame, kind, bank);
            for (value, stat) in values.iter().zip(bank_stats) {
                worst = worst.max(stat.z(*value).abs());
            }
        }
        worst
    }

    /// Per-bank worst absolute z-scores of `frame` against the calibrated
    /// guard bands, as `(block, bank, score)` triples in block/bank order.
    ///
    /// This is the localization primitive of the closed-loop serving
    /// runtime: when the suite alarms, the banks whose excursion exceeds
    /// the implication threshold are the ones the response policy
    /// quarantines and remaps. Empty before calibration.
    #[must_use]
    pub fn bank_excursions(&self, frame: &TelemetryFrame) -> Vec<(BlockKind, usize, f64)> {
        let mut out = Vec::with_capacity(self.conv.len() + self.fc.len());
        for (kind, stats) in [(BlockKind::Conv, &self.conv), (BlockKind::Fc, &self.fc)] {
            for (bank, bank_stats) in stats.iter().enumerate().take(frame.banks(kind).len()) {
                let values = fields(frame, kind, bank);
                let worst = values
                    .iter()
                    .zip(bank_stats)
                    .map(|(value, stat)| stat.z(*value).abs())
                    .fold(0.0f64, f64::max);
                out.push((kind, bank, worst));
            }
        }
        out
    }
}

impl Detector for GuardBandDetector {
    fn name(&self) -> &'static str {
        "guard_band"
    }

    fn calibrate(&mut self, frames: &[TelemetryFrame]) -> Result<(), SafelightError> {
        require_frames(frames)?;
        self.conv = Self::fit_block(frames, BlockKind::Conv);
        self.fc = Self::fit_block(frames, BlockKind::Fc);
        Ok(())
    }

    fn reset(&mut self) {
        // Memoryless: nothing to clear.
    }

    fn score(&mut self, frame: &TelemetryFrame) -> f64 {
        self.block_score(frame, BlockKind::Conv)
            .max(self.block_score(frame, BlockKind::Fc))
    }

    fn clone_box(&self) -> Box<dyn Detector> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::testutil::{frames, parked};
    use safelight_onn::ConditionMap;

    #[test]
    fn uncalibrated_detector_scores_zero() {
        let mut d = GuardBandDetector::default();
        let f = frames(&ConditionMap::new(), 1, 0);
        assert_eq!(d.score(&f[0]), 0.0);
    }

    #[test]
    fn clean_frames_stay_inside_the_band() {
        let mut d = GuardBandDetector::default();
        d.calibrate(&frames(&ConditionMap::new(), 24, 1)).unwrap();
        // Fresh noise seed, same clean distribution: scores stay modest.
        for f in frames(&ConditionMap::new(), 8, 99) {
            assert!(d.score(&f) < 6.0, "clean score {}", d.score(&f));
        }
    }

    #[test]
    fn parked_rings_blow_the_band_in_one_frame() {
        let mut d = GuardBandDetector::default();
        d.calibrate(&frames(&ConditionMap::new(), 24, 1)).unwrap();
        let clean_worst = frames(&ConditionMap::new(), 8, 99)
            .iter()
            .map(|f| d.score(f))
            .fold(0.0f64, f64::max);
        let attacked = frames(&parked(3), 1, 7);
        let s = d.score(&attacked[0]);
        assert!(
            s > 2.0 * clean_worst,
            "attack score {s} vs clean worst {clean_worst}"
        );
    }

    #[test]
    fn empty_calibration_is_rejected() {
        let mut d = GuardBandDetector::default();
        assert!(d.calibrate(&[]).is_err());
    }

    #[test]
    fn bank_excursions_localize_the_attacked_bank() {
        use safelight_onn::BlockKind;
        let mut d = GuardBandDetector::default();
        assert!(d
            .bank_excursions(&frames(&ConditionMap::new(), 1, 0)[0])
            .is_empty());
        d.calibrate(&frames(&ConditionMap::new(), 24, 1)).unwrap();
        // The fixture parks FC rings 0..3 — all in FC bank 0 (8 rings/bank).
        let attacked = frames(&parked(3), 1, 7);
        let excursions = d.bank_excursions(&attacked[0]);
        // One entry per bank of both blocks (2 + 2 in the fixture).
        assert_eq!(excursions.len(), 4);
        let worst = excursions
            .iter()
            .max_by(|a, b| a.2.partial_cmp(&b.2).unwrap())
            .unwrap();
        assert_eq!((worst.0, worst.1), (BlockKind::Fc, 0));
        // The frame score is exactly the worst excursion.
        let score = d.score(&attacked[0]);
        assert_eq!(score, worst.2);
    }
}

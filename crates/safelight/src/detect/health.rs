//! Per-sensor health screening: the frame-validation layer in front of the
//! trojan detectors.
//!
//! A deployed accelerator's telemetry is not guaranteed trustworthy: a
//! drop-port monitor can die (non-finite readback), a thermal sensor can
//! latch its last value, a DAC readback can rail out of its physical
//! range. Feeding such readings straight into the detector suite either
//! poisons the scores (NaN propagates and compares false against every
//! threshold) or raises a *trojan* alarm for what is really a *maintenance*
//! event — and the closed-loop response would burn spare rings on a broken
//! sensor.
//!
//! [`SensorHealthScreen`] sits between the probe and the suite. It is
//! calibrated on the same attack-free frames as the detectors; at run time
//! [`SensorHealthScreen::screen`] classifies every channel of a frame
//! (healthy / non-finite / out-of-physical-range / stuck / operator-
//! quarantined) and [`SensorHealthScreen::sanitize`] replaces the masked
//! readings with their calibrated means so the detectors score on the
//! surviving channels only. The sensor-health verdict ([`FrameHealth`])
//! travels separately from the trojan verdict.

use safelight_onn::{BlockKind, SensorChannel, TelemetryFrame};

use crate::detect::{require_frames, ChannelStat, SIGMA_FLOOR};
use crate::SafelightError;

/// Why a channel was masked out of detector scoring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HealthReason {
    /// The reading is NaN or ±∞ — a dead or disconnected sensor.
    NonFinite,
    /// The reading is finite but outside the channel's physical range —
    /// a railed ADC or a wild readback.
    OutOfRange,
    /// The reading has repeated bit-exactly across consecutive frames on a
    /// channel whose calibrated noise makes exact repeats implausible — a
    /// latched sensor.
    Stuck,
    /// The channel was quarantined by the response policy after repeated
    /// single-sensor anomalies.
    Quarantined,
}

impl HealthReason {
    /// Stable short token used in reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::NonFinite => "non_finite",
            Self::OutOfRange => "out_of_range",
            Self::Stuck => "stuck",
            Self::Quarantined => "quarantined",
        }
    }
}

/// One masked sensor channel of a screened frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MaskedChannel {
    /// The block the sensor belongs to.
    pub block: BlockKind,
    /// Bank index for bank channels, plan index for sentinels.
    pub index: usize,
    /// Which sensor of that bank/plan slot.
    pub channel: SensorChannel,
    /// Why it was masked.
    pub reason: HealthReason,
}

/// The sensor-health verdict of one screened frame: which channels were
/// masked and why. Reported separately from the trojan verdict — a dead
/// sensor is a maintenance flag, not a quarantine.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FrameHealth {
    /// The masked channels, in fixed conv-banks/fc-banks/sentinels order.
    pub masked: Vec<MaskedChannel>,
}

impl FrameHealth {
    /// `true` when every channel passed screening.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.masked.is_empty()
    }
}

/// Physical plausibility range of a channel, generous enough that no
/// attack-induced excursion the trojan grid produces ever leaves it —
/// out-of-range means *broken sensor*, not *big anomaly*.
fn physical_range(channel: SensorChannel) -> (f64, f64) {
    match channel {
        SensorChannel::DropCurrent => (-0.25, 2.0),
        SensorChannel::DeltaKelvin => (-5.0, 500.0),
        SensorChannel::RailPower => (-0.25, 2.0),
        SensorChannel::TrimOffsetNm => (-1.0, 50.0),
        SensorChannel::Sentinel => (-0.5, 2.0),
    }
}

/// Consecutive bit-identical readings before a channel counts as stuck.
const STUCK_RUN_LEN: u32 = 3;

/// Per-channel run tracker for stuck-at detection.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct StuckRun {
    bits: u64,
    count: u32,
}

impl StuckRun {
    fn observe(&mut self, value: f64) -> u32 {
        let bits = value.to_bits();
        if self.count > 0 && bits == self.bits {
            self.count += 1;
        } else {
            self.bits = bits;
            self.count = 1;
        }
        self.count
    }
}

/// The four bank-level sensor channels, in calibration order.
const BANK_CHANNELS: [SensorChannel; 4] = [
    SensorChannel::DropCurrent,
    SensorChannel::DeltaKelvin,
    SensorChannel::RailPower,
    SensorChannel::TrimOffsetNm,
];

/// Calibrated per-channel statistics and stuck-run state of one block.
#[derive(Debug, Clone, Default, PartialEq)]
struct BlockScreen {
    banks: Vec<[ChannelStat; 4]>,
    sentinels: Vec<ChannelStat>,
    bank_runs: Vec<[StuckRun; 4]>,
    sentinel_runs: Vec<StuckRun>,
}

/// Frame validation and per-sensor health screening (see the module docs).
///
/// Lifecycle mirrors a [`Detector`](crate::detect::Detector): calibrate on
/// attack-free frames, [`SensorHealthScreen::screen`] each live frame in
/// batch order (stuck-at tracking is sequential), `reset` between runs.
/// Operator quarantines survive both `reset` and re-calibration.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SensorHealthScreen {
    conv: BlockScreen,
    fc: BlockScreen,
    /// Channels masked by policy, sorted for deterministic reports.
    quarantined: Vec<(BlockKind, usize, SensorChannel)>,
    calibrated: bool,
}

impl SensorHealthScreen {
    fn block(&self, kind: BlockKind) -> &BlockScreen {
        match kind {
            BlockKind::Conv => &self.conv,
            BlockKind::Fc => &self.fc,
        }
    }

    fn block_mut(&mut self, kind: BlockKind) -> &mut BlockScreen {
        match kind {
            BlockKind::Conv => &mut self.conv,
            BlockKind::Fc => &mut self.fc,
        }
    }

    /// Fits per-channel baselines on attack-free `frames` and clears the
    /// stuck-run state. Operator quarantines are kept — re-baselining a
    /// member does not un-break a sensor.
    ///
    /// # Errors
    ///
    /// Returns [`SafelightError::InvalidParameter`] when `frames` is empty.
    pub fn calibrate(&mut self, frames: &[TelemetryFrame]) -> Result<(), SafelightError> {
        require_frames(frames)?;
        for kind in [BlockKind::Conv, BlockKind::Fc] {
            let banks = frames.first().map_or(0, |f| f.banks(kind).len());
            let sentinels = frames.first().map_or(0, |f| f.sentinels(kind).len());
            let block = self.block_mut(kind);
            block.banks = (0..banks)
                .map(|bank| {
                    let mut stats = [ChannelStat::default(); 4];
                    for (field, stat) in stats.iter_mut().enumerate() {
                        let values: Vec<f64> = frames
                            .iter()
                            .filter_map(|f| f.channel(kind, bank, BANK_CHANNELS[field]))
                            .collect();
                        *stat = ChannelStat::fit(&values);
                    }
                    stats
                })
                .collect();
            block.sentinels = (0..sentinels)
                .map(|i| {
                    let values: Vec<f64> = frames
                        .iter()
                        .filter_map(|f| f.channel(kind, i, SensorChannel::Sentinel))
                        .collect();
                    ChannelStat::fit(&values)
                })
                .collect();
            block.bank_runs = vec![[StuckRun::default(); 4]; banks];
            block.sentinel_runs = vec![StuckRun::default(); sentinels];
        }
        self.calibrated = true;
        Ok(())
    }

    /// `true` once [`SensorHealthScreen::calibrate`] has run.
    #[must_use]
    pub fn is_calibrated(&self) -> bool {
        self.calibrated
    }

    /// Clears sequential (stuck-run) state, keeping calibration and
    /// quarantines.
    pub fn reset(&mut self) {
        for kind in [BlockKind::Conv, BlockKind::Fc] {
            let block = self.block_mut(kind);
            for runs in &mut block.bank_runs {
                *runs = [StuckRun::default(); 4];
            }
            for run in &mut block.sentinel_runs {
                *run = StuckRun::default();
            }
        }
    }

    /// Masks a channel by policy: every later screening reports it as
    /// [`HealthReason::Quarantined`] until the hardware is serviced.
    pub fn quarantine_channel(&mut self, block: BlockKind, index: usize, channel: SensorChannel) {
        let key = (block, index, channel);
        if let Err(at) = self.quarantined.binary_search(&key) {
            self.quarantined.insert(at, key);
        }
    }

    /// The channels currently quarantined by policy.
    #[must_use]
    pub fn quarantined_channels(&self) -> &[(BlockKind, usize, SensorChannel)] {
        &self.quarantined
    }

    fn classify(
        &mut self,
        kind: BlockKind,
        index: usize,
        channel: SensorChannel,
        value: f64,
        stat: ChannelStat,
    ) -> Option<HealthReason> {
        if self
            .quarantined
            .binary_search(&(kind, index, channel))
            .is_ok()
        {
            return Some(HealthReason::Quarantined);
        }
        if !value.is_finite() {
            // A non-finite reading never feeds the stuck tracker: the bit
            // pattern of a dead sensor is meaningless as a "run".
            return Some(HealthReason::NonFinite);
        }
        let (lo, hi) = physical_range(channel);
        if value < lo || value > hi {
            return Some(HealthReason::OutOfRange);
        }
        let block = self.block_mut(kind);
        let run = match channel {
            SensorChannel::Sentinel => block.sentinel_runs.get_mut(index)?,
            _ => {
                let field = BANK_CHANNELS.iter().position(|c| *c == channel)?;
                block.bank_runs.get_mut(index).map(|r| &mut r[field])?
            }
        };
        // Exact repeats only count as "stuck" on channels whose calibrated
        // noise makes them implausible; a genuinely constant channel (σ at
        // the floor) legitimately repeats.
        if run.observe(value) >= STUCK_RUN_LEN && stat.sigma > 10.0 * SIGMA_FLOOR {
            return Some(HealthReason::Stuck);
        }
        None
    }

    /// Screens every channel of `frame`, advancing the stuck-at trackers,
    /// and returns the frame's sensor-health verdict. Channels the screen
    /// was never calibrated for (frame wider than the baseline) are
    /// ignored. Call once per frame in batch order.
    pub fn screen(&mut self, frame: &TelemetryFrame) -> FrameHealth {
        let mut health = FrameHealth::default();
        if !self.calibrated {
            return health;
        }
        for kind in [BlockKind::Conv, BlockKind::Fc] {
            let banks = self.block(kind).banks.len().min(frame.banks(kind).len());
            for bank in 0..banks {
                for (field, channel) in BANK_CHANNELS.iter().enumerate() {
                    let value = frame.channel(kind, bank, *channel).unwrap_or(f64::NAN);
                    let stat = self.block(kind).banks[bank][field];
                    if let Some(reason) = self.classify(kind, bank, *channel, value, stat) {
                        health.masked.push(MaskedChannel {
                            block: kind,
                            index: bank,
                            channel: *channel,
                            reason,
                        });
                    }
                }
            }
            let sentinels = self
                .block(kind)
                .sentinels
                .len()
                .min(frame.sentinels(kind).len());
            for i in 0..sentinels {
                let value = frame
                    .channel(kind, i, SensorChannel::Sentinel)
                    .unwrap_or(f64::NAN);
                let stat = self.block(kind).sentinels[i];
                if let Some(reason) = self.classify(kind, i, SensorChannel::Sentinel, value, stat) {
                    health.masked.push(MaskedChannel {
                        block: kind,
                        index: i,
                        channel: SensorChannel::Sentinel,
                        reason,
                    });
                }
            }
        }
        health
    }

    /// The calibrated mean of one channel (0 when uncalibrated or the
    /// channel never produced a finite baseline sample).
    #[must_use]
    pub fn baseline_mean(&self, block: BlockKind, index: usize, channel: SensorChannel) -> f64 {
        let b = self.block(block);
        let stat = match channel {
            SensorChannel::Sentinel => b.sentinels.get(index).copied(),
            _ => BANK_CHANNELS
                .iter()
                .position(|c| *c == channel)
                .and_then(|field| b.banks.get(index).map(|s| s[field])),
        };
        match stat {
            Some(s) if s.mean.is_finite() => s.mean,
            _ => 0.0,
        }
    }

    /// Replaces every masked channel of `frame` with its calibrated mean,
    /// so detectors score ≈ 0 on the dead sensor and at full strength on
    /// the surviving channels. Returns the sanitized copy.
    #[must_use]
    pub fn sanitize(&self, frame: &TelemetryFrame, health: &FrameHealth) -> TelemetryFrame {
        let mut clean = frame.clone();
        for m in &health.masked {
            let mean = self.baseline_mean(m.block, m.index, m.channel);
            clean.set_channel(m.block, m.index, m.channel, mean);
        }
        clean
    }

    /// The channels of `frame` whose |z| against the calibrated baseline
    /// meets `z_threshold`, as `(block, index, channel, |z|)` in screen
    /// order. Non-finite readings are skipped (they are health events, not
    /// excursions). This is the single-sensor localization primitive the
    /// response policy uses to tell "one broken sensor" from "an attack
    /// moving the physics".
    #[must_use]
    pub fn excursions(
        &self,
        frame: &TelemetryFrame,
        z_threshold: f64,
    ) -> Vec<(BlockKind, usize, SensorChannel, f64)> {
        let mut out = Vec::new();
        for kind in [BlockKind::Conv, BlockKind::Fc] {
            let b = self.block(kind);
            let banks = b.banks.len().min(frame.banks(kind).len());
            for bank in 0..banks {
                for (field, channel) in BANK_CHANNELS.iter().enumerate() {
                    let Some(value) = frame.channel(kind, bank, *channel) else {
                        continue;
                    };
                    let z = b.banks[bank][field].z(value).abs();
                    if z.is_finite() && z >= z_threshold {
                        out.push((kind, bank, *channel, z));
                    }
                }
            }
            let sentinels = b.sentinels.len().min(frame.sentinels(kind).len());
            for i in 0..sentinels {
                let Some(value) = frame.channel(kind, i, SensorChannel::Sentinel) else {
                    continue;
                };
                let z = b.sentinels[i].z(value).abs();
                if z.is_finite() && z >= z_threshold {
                    out.push((kind, i, SensorChannel::Sentinel, z));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::testutil::frames;
    use safelight_onn::ConditionMap;

    fn calibrated() -> SensorHealthScreen {
        let mut screen = SensorHealthScreen::default();
        screen
            .calibrate(&frames(&ConditionMap::new(), 24, 1))
            .unwrap();
        screen
    }

    #[test]
    fn clean_frames_pass_screening() {
        let mut screen = calibrated();
        for f in frames(&ConditionMap::new(), 6, 99) {
            assert!(screen.screen(&f).is_clean());
        }
    }

    #[test]
    fn uncalibrated_screen_abstains() {
        let mut screen = SensorHealthScreen::default();
        let mut f = frames(&ConditionMap::new(), 1, 0).remove(0);
        f.set_channel(BlockKind::Fc, 0, SensorChannel::DropCurrent, f64::NAN);
        assert!(!screen.is_calibrated());
        assert!(screen.screen(&f).is_clean());
        assert!(screen.calibrate(&[]).is_err());
    }

    #[test]
    fn dead_sensor_is_masked_as_non_finite() {
        let mut screen = calibrated();
        let mut f = frames(&ConditionMap::new(), 1, 7).remove(0);
        f.set_channel(BlockKind::Fc, 0, SensorChannel::DropCurrent, f64::NAN);
        let health = screen.screen(&f);
        assert_eq!(
            health.masked,
            vec![MaskedChannel {
                block: BlockKind::Fc,
                index: 0,
                channel: SensorChannel::DropCurrent,
                reason: HealthReason::NonFinite,
            }]
        );
        // Sanitizing restores the calibrated mean, so a guard-band z on the
        // masked channel is ≈ 0.
        let clean = screen.sanitize(&f, &health);
        let restored = clean
            .channel(BlockKind::Fc, 0, SensorChannel::DropCurrent)
            .unwrap();
        assert!(restored.is_finite());
        assert!(
            (restored - screen.baseline_mean(BlockKind::Fc, 0, SensorChannel::DropCurrent)).abs()
                < 1e-12
        );
    }

    #[test]
    fn railed_sensor_is_masked_as_out_of_range() {
        let mut screen = calibrated();
        let mut f = frames(&ConditionMap::new(), 1, 7).remove(0);
        f.set_channel(BlockKind::Conv, 1, SensorChannel::DeltaKelvin, 1e6);
        let health = screen.screen(&f);
        assert_eq!(health.masked.len(), 1);
        assert_eq!(health.masked[0].reason, HealthReason::OutOfRange);
    }

    #[test]
    fn latched_sensor_is_masked_as_stuck_after_a_run() {
        let mut screen = calibrated();
        let stream = frames(&ConditionMap::new(), 6, 42);
        let latched = 0.512_345_678_9;
        let mut verdicts = Vec::new();
        for mut f in stream {
            f.set_channel(BlockKind::Fc, 1, SensorChannel::RailPower, latched);
            verdicts.push(screen.screen(&f));
        }
        // The first two repeats pass; from the third identical reading on,
        // the channel is stuck.
        assert!(verdicts[0].is_clean());
        assert!(verdicts[1].is_clean());
        for v in &verdicts[2..] {
            assert_eq!(v.masked.len(), 1, "{v:?}");
            assert_eq!(v.masked[0].reason, HealthReason::Stuck);
            assert_eq!(v.masked[0].channel, SensorChannel::RailPower);
        }
        // reset clears the run; the next repeat starts counting afresh.
        screen.reset();
        let mut f = frames(&ConditionMap::new(), 1, 43).remove(0);
        f.set_channel(BlockKind::Fc, 1, SensorChannel::RailPower, latched);
        assert!(screen.screen(&f).is_clean());
    }

    #[test]
    fn quarantined_channels_survive_reset_and_recalibration() {
        let mut screen = calibrated();
        screen.quarantine_channel(BlockKind::Conv, 0, SensorChannel::Sentinel);
        let f = frames(&ConditionMap::new(), 1, 5).remove(0);
        let health = screen.screen(&f);
        assert_eq!(health.masked.len(), 1);
        assert_eq!(health.masked[0].reason, HealthReason::Quarantined);
        screen.reset();
        screen
            .calibrate(&frames(&ConditionMap::new(), 8, 2))
            .unwrap();
        let health = screen.screen(&f);
        assert_eq!(health.masked.len(), 1);
        assert_eq!(health.masked[0].reason, HealthReason::Quarantined);
        assert_eq!(
            screen.quarantined_channels(),
            &[(BlockKind::Conv, 0, SensorChannel::Sentinel)]
        );
    }

    #[test]
    fn excursions_localize_single_channel_shifts() {
        let mut screen = calibrated();
        let mut f = frames(&ConditionMap::new(), 1, 7).remove(0);
        let base = screen.baseline_mean(BlockKind::Fc, 0, SensorChannel::TrimOffsetNm);
        f.set_channel(BlockKind::Fc, 0, SensorChannel::TrimOffsetNm, base + 0.5);
        let hits = screen.excursions(&f, 8.0);
        assert_eq!(hits.len(), 1, "{hits:?}");
        let (kind, bank, channel, z) = hits[0];
        assert_eq!(
            (kind, bank, channel),
            (BlockKind::Fc, 0, SensorChannel::TrimOffsetNm)
        );
        assert!(z >= 8.0);
        // Non-finite readings never appear as excursions.
        f.set_channel(BlockKind::Fc, 1, SensorChannel::DropCurrent, f64::NAN);
        let hits = screen.excursions(&f, 8.0);
        assert_eq!(hits.len(), 1);
        // The screen itself reports the dead channel.
        assert!(!screen.screen(&f).is_clean());
    }
}

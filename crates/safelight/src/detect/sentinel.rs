//! The sentinel-weight integrity detector.

use safelight_onn::{BlockKind, TelemetryFrame};

use crate::detect::{require_frames, ChannelStat, Detector};
use crate::SafelightError;

/// Integrity checking of sentinel probe weights on idle rings.
///
/// The controller imprints a known magnitude on rings the mapping leaves
/// idle in its final reuse round ([`safelight_onn::SentinelPlan`]) and the
/// telemetry layer reads each sentinel back through the same drop-port
/// physics the model weights use. Calibration fits each sentinel's
/// mean/σ; the frame score is the worst absolute z-score across all
/// sentinels of both blocks.
///
/// Coverage is exact but partial: a fault is seen if and only if it (or
/// its crosstalk/heat footprint) touches a sentinel ring, so the detection
/// rate tracks the attacked fraction of the idle region — the evaluation
/// report quantifies exactly that. On a block with no idle rings the
/// detector is blind (and says so by scoring 0).
#[derive(Debug, Clone, Default)]
pub struct SentinelDetector {
    conv: Vec<ChannelStat>,
    fc: Vec<ChannelStat>,
}

impl SentinelDetector {
    fn fit_block(frames: &[TelemetryFrame], kind: BlockKind) -> Vec<ChannelStat> {
        let count = frames.first().map_or(0, |f| f.sentinels(kind).len());
        (0..count)
            .map(|i| {
                let values: Vec<f64> = frames
                    .iter()
                    .filter(|f| f.sentinels(kind).len() == count)
                    .map(|f| f.sentinels(kind)[i])
                    .collect();
                ChannelStat::fit(&values)
            })
            .collect()
    }
}

impl Detector for SentinelDetector {
    fn name(&self) -> &'static str {
        "sentinel"
    }

    fn calibrate(&mut self, frames: &[TelemetryFrame]) -> Result<(), SafelightError> {
        require_frames(frames)?;
        self.conv = Self::fit_block(frames, BlockKind::Conv);
        self.fc = Self::fit_block(frames, BlockKind::Fc);
        Ok(())
    }

    fn reset(&mut self) {
        // Memoryless: nothing to clear.
    }

    fn score(&mut self, frame: &TelemetryFrame) -> f64 {
        let mut worst: f64 = 0.0;
        for (kind, stats) in [(BlockKind::Conv, &self.conv), (BlockKind::Fc, &self.fc)] {
            let readings = frame.sentinels(kind);
            for (stat, value) in stats.iter().zip(readings) {
                let z = stat.z(*value).abs();
                // Skip non-finite z (dead readback): the health screen owns
                // that channel; the surviving sentinels still score.
                if z.is_finite() {
                    worst = worst.max(z);
                }
            }
        }
        worst
    }

    fn clone_box(&self) -> Box<dyn Detector> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::testutil::{fixture, frames};
    use safelight_onn::{ConditionMap, MrCondition};

    #[test]
    fn attacked_sentinel_ring_is_flagged() {
        let (_, _, _, plan) = fixture();
        let mut d = SentinelDetector::default();
        d.calibrate(&frames(&ConditionMap::new(), 24, 1)).unwrap();
        let clean_worst = frames(&ConditionMap::new(), 8, 42)
            .iter()
            .map(|f| d.score(f))
            .fold(0.0f64, f64::max);
        // Park one sentinel ring of the idle CONV block.
        let site = plan.sites(BlockKind::Conv)[0];
        let mut attacked = ConditionMap::new();
        attacked.set(BlockKind::Conv, site, MrCondition::Parked);
        let s = d.score(&frames(&attacked, 1, 7)[0]);
        assert!(s > 10.0 * clean_worst.max(1.0), "sentinel score {s}");
    }

    #[test]
    fn faults_off_the_sentinels_are_invisible() {
        // Coverage honesty: a fault on a busy (non-sentinel) ring of the FC
        // block does not move the sentinel statistic beyond noise.
        let mut d = SentinelDetector::default();
        d.calibrate(&frames(&ConditionMap::new(), 24, 1)).unwrap();
        let mut attacked = ConditionMap::new();
        attacked.set(BlockKind::Fc, 5, MrCondition::Parked);
        let s = d.score(&frames(&attacked, 1, 7)[0]);
        assert!(s < 6.0, "off-sentinel fault scored {s}");
    }

    #[test]
    fn empty_calibration_is_rejected() {
        let mut d = SentinelDetector::default();
        assert!(d.calibrate(&[]).is_err());
    }
}

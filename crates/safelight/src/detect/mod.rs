//! Runtime trojan detectors over the accelerator's telemetry taps.
//!
//! The telemetry layer ([`safelight_onn::TelemetryProbe`]) emits one
//! [`TelemetryFrame`] per inference batch; a [`Detector`] turns a stream of
//! frames into a scalar anomaly score per frame. Scores are normalized so
//! that "larger = more anomalous"; an alarm is raised when the score
//! crosses a threshold calibrated from attack-free runs (the evaluation
//! pipeline in [`crate::eval`] sweeps that threshold to trace ROC curves).
//!
//! Three complementary detectors ship in-tree:
//!
//! * [`GuardBandDetector`] — a memoryless per-bank guard band: every sensor
//!   field of every bank is z-scored against its calibrated mean/σ, and the
//!   frame's score is the worst excursion. Catches strong localized shifts
//!   (clustered attacks, single hot banks) in one frame.
//! * [`EwmaCusumDetector`] — a sequential change-point detector: the
//!   cross-bank mean drop-current z-score is EWMA-smoothed and accumulated
//!   by a two-sided CUSUM. Catches small *persistent* global shifts (low
//!   attack fractions, laser taps spread across banks) at the cost of a few
//!   frames of latency.
//! * [`SentinelDetector`] — integrity checking of known probe weights
//!   mapped onto rings the model leaves idle
//!   ([`safelight_onn::SentinelPlan`]): any fault landing on a sentinel
//!   ring perturbs a readback whose exact value is known a priori.
//!
//! See `docs/detection.md` for the sensor model and the detector math.

mod cusum;
mod guard;
mod health;
mod sentinel;

pub use cusum::EwmaCusumDetector;
pub use guard::GuardBandDetector;
pub use health::{FrameHealth, HealthReason, MaskedChannel, SensorHealthScreen};
pub use sentinel::SentinelDetector;

use safelight_onn::TelemetryFrame;

use crate::SafelightError;

/// A pluggable runtime trojan detector.
///
/// Lifecycle: [`Detector::calibrate`] once on attack-free frames, then feed
/// frames through [`Detector::score`] in batch order; [`Detector::reset`]
/// clears any sequential state between runs while keeping the calibration.
pub trait Detector: Send + Sync {
    /// Stable identifier used in report tables and CSV columns.
    fn name(&self) -> &'static str;

    /// Fits the detector's baseline statistics to attack-free `frames`.
    ///
    /// # Errors
    ///
    /// Returns [`SafelightError::InvalidParameter`] when `frames` is empty.
    fn calibrate(&mut self, frames: &[TelemetryFrame]) -> Result<(), SafelightError>;

    /// Clears sequential state (scores already emitted do not change the
    /// calibration), so one calibrated detector can evaluate many runs.
    fn reset(&mut self);

    /// The anomaly score of `frame` (larger = more anomalous; `0.0` before
    /// calibration). Sequential detectors may update internal state.
    fn score(&mut self, frame: &TelemetryFrame) -> f64;

    /// Clones the detector — calibration and all — behind a fresh box, so
    /// evaluation sweeps can hand independent copies to parallel workers.
    fn clone_box(&self) -> Box<dyn Detector>;
}

impl Clone for Box<dyn Detector> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// The detection subsystem's stock detector suite with default knobs, in
/// report order.
#[must_use]
pub fn default_detectors() -> Vec<Box<dyn Detector>> {
    vec![
        Box::new(GuardBandDetector::default()),
        Box::new(EwmaCusumDetector::default()),
        Box::new(SentinelDetector::default()),
    ]
}

/// Mean and standard deviation of one calibrated sensor channel.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub(crate) struct ChannelStat {
    pub mean: f64,
    pub sigma: f64,
}

/// σ floor protecting z-scores against noiseless calibration channels.
pub(crate) const SIGMA_FLOOR: f64 = 1e-9;

impl ChannelStat {
    /// Fits mean/σ over the *finite* entries of `values` (population σ;
    /// calibration runs are the whole population of attack-free behaviour
    /// we get to see). A NaN or ±∞ in the calibration window — a sensor
    /// already faulted at baseline time — would otherwise poison the mean
    /// and make every later z-score NaN, which compares false against any
    /// threshold and silently suppresses alarms. A channel with no finite
    /// calibration sample at all gets `{mean: 0, sigma: ∞}`: it z-scores
    /// ≈ 0 for any finite reading, i.e. it abstains rather than alarms
    /// (the sensor-health screen reports it separately). σ is floored at
    /// [`SIGMA_FLOOR`] so a zero-variance channel still yields finite z.
    pub(crate) fn fit(values: &[f64]) -> Self {
        let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        if finite.is_empty() {
            return Self {
                mean: 0.0,
                sigma: f64::INFINITY,
            };
        }
        let n = finite.len() as f64;
        let mean = finite.iter().sum::<f64>() / n;
        let var = finite.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        Self {
            mean,
            sigma: var.sqrt().max(SIGMA_FLOOR),
        }
    }

    /// The z-score of `value` against this channel, with a σ floor.
    pub(crate) fn z(&self, value: f64) -> f64 {
        (value - self.mean) / self.sigma.max(SIGMA_FLOOR)
    }
}

/// Rejects an empty calibration set.
pub(crate) fn require_frames(frames: &[TelemetryFrame]) -> Result<(), SafelightError> {
    if frames.is_empty() {
        return Err(SafelightError::InvalidParameter {
            name: "calibration frames",
            value: 0.0,
        });
    }
    Ok(())
}

#[cfg(test)]
pub(crate) mod testutil {
    use safelight_neuro::{Flatten, Layer, Linear, Network, Tensor};
    use safelight_onn::{
        AcceleratorConfig, BlockConfig, BlockKind, ConditionMap, LayerSpec, SentinelPlan,
        TapConfig, TelemetryFrame, TelemetryProbe, WeightMapping,
    };

    /// A deterministic 16-weight FC setup with idle CONV rings hosting
    /// sentinels, mirroring the telemetry module's unit fixture.
    pub(crate) fn fixture() -> (Network, WeightMapping, AcceleratorConfig, SentinelPlan) {
        let mut net = Network::new();
        net.push(Flatten::new());
        let mut fc = Linear::new(4, 4, 3).unwrap();
        fc.params_mut()[0].value = Tensor::from_vec(
            vec![4, 4],
            (0..16).map(|i| 0.2 + (i as f32) / 32.0).collect(),
        )
        .unwrap();
        net.push(fc);
        let config = AcceleratorConfig::custom(
            BlockConfig {
                vdp_units: 2,
                bank_rows: 2,
                bank_cols: 4,
            },
            BlockConfig {
                vdp_units: 2,
                bank_rows: 2,
                bank_cols: 4,
            },
        )
        .unwrap();
        let mapping =
            WeightMapping::new(&config, &[LayerSpec::new("fc", BlockKind::Fc, 16)]).unwrap();
        let sentinels = SentinelPlan::new(&mapping, &config, 4, 0.7);
        (net, mapping, config, sentinels)
    }

    /// Noisy frames from the fixture under `conditions`.
    pub(crate) fn frames(
        conditions: &ConditionMap,
        count: usize,
        seed: u64,
    ) -> Vec<TelemetryFrame> {
        let (net, mapping, config, sentinels) = fixture();
        let probe = TelemetryProbe::new(
            &net,
            &mapping,
            conditions,
            &config,
            &sentinels,
            TapConfig::default(),
        )
        .unwrap();
        (0..count as u64).map(|b| probe.frame(b, seed)).collect()
    }

    /// A map parking `count` FC rings.
    pub(crate) fn parked(count: u64) -> ConditionMap {
        let mut map = ConditionMap::new();
        for mr in 0..count {
            map.set(BlockKind::Fc, mr, safelight_onn::MrCondition::Parked);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_stat_fits_mean_and_sigma() {
        let s = ChannelStat::fit(&[1.0, 3.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.sigma, 1.0);
        assert_eq!(s.z(4.0), 2.0);
        // Degenerate channels fall back to the σ floor instead of dividing
        // by zero.
        let flat = ChannelStat::fit(&[0.5, 0.5]);
        assert!(flat.z(0.5 + 1e-6).is_finite());
    }

    #[test]
    fn channel_stat_ignores_non_finite_calibration_samples() {
        // A NaN baseline sample must not poison the fit: the finite samples
        // alone define the channel.
        let s = ChannelStat::fit(&[1.0, f64::NAN, 3.0, f64::INFINITY]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.sigma, 1.0);
        assert_eq!(s.z(4.0), 2.0);
        // An all-non-finite channel abstains: z ≈ 0 for finite readings,
        // never NaN (a NaN z would compare false against every threshold
        // and silently suppress alarms).
        let dead = ChannelStat::fit(&[f64::NAN, f64::NAN]);
        assert_eq!(dead.z(123.0), 0.0);
        assert!(dead.z(0.0).is_finite());
    }

    #[test]
    fn zero_variance_calibration_yields_finite_z() {
        // Regression: a zero-variance baseline used to produce 0/0 = NaN
        // z-scores in degenerate paths; the σ floor guarantees finite z.
        let s = ChannelStat::fit(&[0.7; 16]);
        assert!(s.sigma >= SIGMA_FLOOR);
        let z = s.z(0.7);
        assert!(z.is_finite() && z.abs() < 1.0, "z {z}");
        assert!(s.z(0.7 + 1e-6).is_finite());
    }

    #[test]
    fn default_suite_has_three_distinct_detectors() {
        let suite = default_detectors();
        assert_eq!(suite.len(), 3);
        let names: Vec<&str> = suite.iter().map(|d| d.name()).collect();
        assert_eq!(names, vec!["guard_band", "ewma_cusum", "sentinel"]);
    }

    #[test]
    fn boxed_detectors_clone_with_calibration() {
        let frames = testutil::frames(&safelight_onn::ConditionMap::new(), 6, 1);
        let mut suite = default_detectors();
        for d in &mut suite {
            d.calibrate(&frames).unwrap();
        }
        let attacked = testutil::frames(&testutil::parked(4), 1, 2);
        for d in &mut suite {
            let mut copy = d.clone();
            copy.reset();
            assert_eq!(copy.name(), d.name());
            // The clone scores without re-calibration.
            let s = copy.score(&attacked[0]);
            assert!(s.is_finite());
        }
    }
}

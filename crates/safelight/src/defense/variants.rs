//! The model-variant taxonomy of the paper's Fig. 8.

/// A mitigation-trained model variant.
///
/// The paper trains, per CNN model: the unmodified baseline (`Original`),
/// an L2-regularized model (`L2_reg`), noise-aware models with Gaussian σ
/// from 0.1 to 0.9, and the combinations (`l2+n1` … `l2+n9`) that Fig. 8
/// compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VariantKind {
    /// No mitigation.
    Original,
    /// L2 regularization only (§V.A).
    L2Only,
    /// Gaussian noise-aware training only, with σ = level/10 (§V.B).
    NoiseOnly(u8),
    /// L2 plus noise-aware training with σ = level/10 — the combined
    /// technique Fig. 8 sweeps.
    L2Noise(u8),
}

impl VariantKind {
    /// Whether the variant trains with L2 weight decay.
    #[must_use]
    pub fn uses_l2(&self) -> bool {
        matches!(self, Self::L2Only | Self::L2Noise(_))
    }

    /// The Gaussian noise σ used during training (0 disables).
    #[must_use]
    pub fn noise_std(&self) -> f32 {
        match self {
            Self::Original | Self::L2Only => 0.0,
            Self::NoiseOnly(level) | Self::L2Noise(level) => f32::from(*level) / 10.0,
        }
    }

    /// The x-axis label used by the paper's Fig. 8.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            Self::Original => "Original".into(),
            Self::L2Only => "L2_reg".into(),
            Self::NoiseOnly(level) => format!("n{level}"),
            Self::L2Noise(level) => format!("l2+n{level}"),
        }
    }

    /// A filesystem-safe tag for model caching.
    #[must_use]
    pub fn file_tag(&self) -> String {
        match self {
            Self::Original => "original".into(),
            Self::L2Only => "l2".into(),
            Self::NoiseOnly(level) => format!("n{level}"),
            Self::L2Noise(level) => format!("l2n{level}"),
        }
    }
}

impl std::fmt::Display for VariantKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// The eleven variants on Fig. 8's x-axis:
/// `Original, L2_reg, l2+n1 … l2+n9`.
#[must_use]
pub fn fig8_variants() -> Vec<VariantKind> {
    let mut v = vec![VariantKind::Original, VariantKind::L2Only];
    v.extend((1..=9).map(VariantKind::L2Noise));
    v
}

/// The noise-only ablation sweep (`n1 … n9`), used by the §V discussion of
/// noise-aware training in isolation.
#[must_use]
pub fn noise_ablation_variants() -> Vec<VariantKind> {
    (1..=9).map(VariantKind::NoiseOnly).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_axis_has_eleven_entries() {
        let v = fig8_variants();
        assert_eq!(v.len(), 11);
        assert_eq!(v[0].label(), "Original");
        assert_eq!(v[1].label(), "L2_reg");
        assert_eq!(v[2].label(), "l2+n1");
        assert_eq!(v[10].label(), "l2+n9");
    }

    #[test]
    fn noise_levels_map_to_sigma() {
        assert_eq!(VariantKind::L2Noise(3).noise_std(), 0.3);
        assert_eq!(VariantKind::NoiseOnly(9).noise_std(), 0.9);
        assert_eq!(VariantKind::L2Only.noise_std(), 0.0);
    }

    #[test]
    fn l2_flag_is_correct() {
        assert!(VariantKind::L2Only.uses_l2());
        assert!(VariantKind::L2Noise(1).uses_l2());
        assert!(!VariantKind::Original.uses_l2());
        assert!(!VariantKind::NoiseOnly(1).uses_l2());
    }

    #[test]
    fn file_tags_are_unique() {
        let mut tags: Vec<String> = fig8_variants().iter().map(VariantKind::file_tag).collect();
        tags.extend(noise_ablation_variants().iter().map(VariantKind::file_tag));
        let before = tags.len();
        tags.sort();
        tags.dedup();
        assert_eq!(tags.len(), before);
    }
}

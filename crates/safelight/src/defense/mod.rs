//! Software-based HT-attack mitigation (paper §V): L2 regularization and
//! Gaussian noise-aware training, alone and combined.

mod variants;

pub use variants::{fig8_variants, noise_ablation_variants, VariantKind};

use std::path::{Path, PathBuf};

use safelight_datasets::SplitDataset;
use safelight_neuro::{
    load_network_params_stamped, save_network_params_stamped, Network, Trainer, TrainerConfig,
};

use crate::attack::{fold, mix64};
use crate::models::{build_model, ModelKind};
use crate::SafelightError;

/// How a model variant is trained: base hyper-parameters shared by every
/// variant of a model; the [`VariantKind`] then sets `weight_decay` and
/// `noise_std` on top.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingRecipe {
    /// Epochs per variant.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Initial learning rate.
    pub learning_rate: f32,
    /// L2 strength used by the `L2_reg` and `l2+nX` variants.
    pub l2_lambda: f32,
    /// Training seed (shared across variants so they differ only in the
    /// mitigation technique, as in the paper).
    pub seed: u64,
}

impl TrainingRecipe {
    /// A sensible default recipe for `kind` under the CPU budget
    /// (learning rates selected by a small grid search; see DESIGN.md).
    #[must_use]
    pub fn for_model(kind: ModelKind) -> Self {
        match kind {
            ModelKind::Cnn1 => Self {
                epochs: 12,
                batch_size: 32,
                learning_rate: 0.02,
                l2_lambda: 1e-4,
                seed: 17,
            },
            ModelKind::ResNet18s => Self {
                epochs: 8,
                batch_size: 32,
                learning_rate: 0.02,
                l2_lambda: 1e-4,
                seed: 18,
            },
            ModelKind::Vgg16s => Self {
                epochs: 10,
                batch_size: 32,
                learning_rate: 0.02,
                l2_lambda: 1e-4,
                seed: 19,
            },
        }
    }

    /// The trainer configuration for one variant.
    #[must_use]
    pub fn trainer_config(&self, variant: VariantKind) -> TrainerConfig {
        TrainerConfig {
            epochs: self.epochs,
            batch_size: self.batch_size,
            learning_rate: self.learning_rate,
            momentum: 0.9,
            weight_decay: if variant.uses_l2() {
                self.l2_lambda
            } else {
                0.0
            },
            noise_std: variant.noise_std(),
            lr_decay_epochs: (self.epochs / 2).max(1),
            lr_decay_factor: 0.3,
            seed: self.seed,
            verbose: false,
        }
    }
}

/// File name for a cached variant.
fn cache_file(
    dir: &Path,
    kind: ModelKind,
    variant: VariantKind,
    recipe: &TrainingRecipe,
) -> PathBuf {
    dir.join(format!(
        "{}-{}-e{}-s{}.slnn",
        kind.label().to_lowercase(),
        variant.file_tag(),
        recipe.epochs,
        recipe.seed
    ))
}

/// The cache-integrity stamp of one `(model, variant, recipe, layout)`
/// configuration: every training knob and the model's layer layout is
/// avalanche-mixed into a 64-bit hash recorded in the checkpoint header.
/// `bundle` is the freshly built (untrained) model whose layout the stamp
/// covers — passed in so the caller's existing build is reused.
///
/// The file *name* only encodes the epoch count and seed; the stamp covers
/// everything else — so a checkpoint trained under an older learning rate,
/// L2 strength, batch size or model architecture is rejected by
/// [`safelight_neuro::load_network_params_stamped`] instead of silently
/// loaded.
fn cache_stamp(
    kind: ModelKind,
    variant: VariantKind,
    recipe: &TrainingRecipe,
    bundle: &crate::models::ModelBundle,
) -> u64 {
    let mut h = 0x5AFE_CAC4_E5A1_7ED5_u64;
    for byte in kind.label().bytes() {
        h = fold(h, u64::from(byte));
    }
    for byte in variant.file_tag().bytes() {
        h = fold(h, u64::from(byte));
    }
    h = fold(h, recipe.epochs as u64);
    h = fold(h, recipe.batch_size as u64);
    h = fold(h, u64::from(recipe.learning_rate.to_bits()));
    h = fold(h, u64::from(recipe.l2_lambda.to_bits()));
    h = fold(h, recipe.seed);
    // Training numerics depend on the active GEMM kernel tier (each tier
    // sums in its own register-block order) and, within the SIMD tier, on
    // the detected ISA — so a checkpoint trained under one kernel must
    // not be silently reused under another.
    let tier = safelight_neuro::GemmImpl::active();
    for byte in tier.name().bytes().chain(tier.isa().bytes()) {
        h = fold(h, u64::from(byte));
    }
    // The model layout: shapes of every parameter tensor, so architecture
    // changes (new layers, resized blocks) invalidate old checkpoints even
    // when the total parameter count happens to line up.
    for spec in &bundle.layer_specs {
        h = fold(h, spec.weights as u64);
    }
    for p in bundle.network.params() {
        for &dim in p.value.shape() {
            h = fold(h, dim as u64);
        }
    }
    mix64(h)
}

/// Trains (or loads from `cache_dir`, if given) one mitigation variant of
/// `kind` on `data`, returning the trained network.
///
/// Variants share the model seed and training schedule; only the §V
/// mitigation knobs differ, mirroring the paper's methodology.
///
/// # Errors
///
/// Propagates model construction and training errors; cache I/O errors are
/// treated as cache misses, not failures.
pub fn train_variant(
    kind: ModelKind,
    variant: VariantKind,
    data: &SplitDataset,
    recipe: &TrainingRecipe,
    cache_dir: Option<&Path>,
) -> Result<Network, SafelightError> {
    let bundle = build_model(kind, recipe.seed)?;
    // Only computed when a cache participates; reuses the build above.
    let stamp = cache_dir.map(|_| cache_stamp(kind, variant, recipe, &bundle));
    let mut network = bundle.network;

    if let (Some(dir), Some(stamp)) = (cache_dir, stamp) {
        let path = cache_file(dir, kind, variant, recipe);
        // A stamp mismatch (older recipe/layout/format) is a cache miss:
        // the checkpoint is ignored and the variant retrained.
        if path.exists() && load_network_params_stamped(&mut network, &path, stamp).is_ok() {
            return Ok(network);
        }
    }

    let trainer = Trainer::new(recipe.trainer_config(variant));
    trainer.fit(&mut network, &data.train)?;

    if let (Some(dir), Some(stamp)) = (cache_dir, stamp) {
        if std::fs::create_dir_all(dir).is_ok() {
            let path = cache_file(dir, kind, variant, recipe);
            // Best-effort cache write; a failure only costs a retrain later.
            let _ = save_network_params_stamped(&network, path, stamp);
        }
    }
    Ok(network)
}

#[cfg(test)]
mod tests {
    use super::*;
    use safelight_datasets::{digits, SyntheticSpec};

    fn tiny_data() -> SplitDataset {
        digits(&SyntheticSpec {
            train: 60,
            test: 20,
            ..SyntheticSpec::default()
        })
        .unwrap()
    }

    fn tiny_recipe() -> TrainingRecipe {
        TrainingRecipe {
            epochs: 2,
            batch_size: 16,
            ..TrainingRecipe::for_model(ModelKind::Cnn1)
        }
    }

    #[test]
    fn variant_knobs_flow_into_trainer_config() {
        let recipe = TrainingRecipe::for_model(ModelKind::Cnn1);
        let orig = recipe.trainer_config(VariantKind::Original);
        assert_eq!(orig.weight_decay, 0.0);
        assert_eq!(orig.noise_std, 0.0);
        let l2n3 = recipe.trainer_config(VariantKind::L2Noise(3));
        assert!(l2n3.weight_decay > 0.0);
        assert!((l2n3.noise_std - 0.3).abs() < 1e-6);
    }

    #[test]
    fn training_produces_a_working_classifier() {
        let data = tiny_data();
        let net = train_variant(
            ModelKind::Cnn1,
            VariantKind::Original,
            &data,
            &tiny_recipe(),
            None,
        )
        .unwrap();
        assert!(net.parameter_count() > 10_000);
    }

    #[test]
    fn stale_cache_configurations_are_rejected() {
        // Regression for the silent-stale-load bug: the cache *file name*
        // only carries epochs and seed, so two recipes differing in (say)
        // the L2 strength collide on the same path. The header stamp must
        // force a retrain instead of silently loading the old weights.
        let dir = std::env::temp_dir().join(format!("safelight-stamp-test-{}", std::process::id()));
        let data = tiny_data();
        let recipe_a = tiny_recipe();
        let recipe_b = TrainingRecipe {
            l2_lambda: recipe_a.l2_lambda * 10.0,
            ..recipe_a
        };
        assert_eq!(
            cache_file(&dir, ModelKind::Cnn1, VariantKind::L2Only, &recipe_a),
            cache_file(&dir, ModelKind::Cnn1, VariantKind::L2Only, &recipe_b),
            "recipes must collide on the cache path for this test to bite"
        );
        let bundle = build_model(ModelKind::Cnn1, recipe_a.seed).unwrap();
        assert_ne!(
            cache_stamp(ModelKind::Cnn1, VariantKind::L2Only, &recipe_a, &bundle),
            cache_stamp(ModelKind::Cnn1, VariantKind::L2Only, &recipe_b, &bundle)
        );
        let a = train_variant(
            ModelKind::Cnn1,
            VariantKind::L2Only,
            &data,
            &recipe_a,
            Some(&dir),
        )
        .unwrap();
        // Same path, different stamp: must retrain (different L2 ⇒
        // different weights), then overwrite the checkpoint.
        let b = train_variant(
            ModelKind::Cnn1,
            VariantKind::L2Only,
            &data,
            &recipe_b,
            Some(&dir),
        )
        .unwrap();
        let differs = a
            .params()
            .iter()
            .zip(b.params().iter())
            .any(|(pa, pb)| pa.value.as_slice() != pb.value.as_slice());
        assert!(differs, "stale checkpoint was silently loaded");
        // And the overwritten cache now round-trips under recipe B.
        let c = train_variant(
            ModelKind::Cnn1,
            VariantKind::L2Only,
            &data,
            &recipe_b,
            Some(&dir),
        )
        .unwrap();
        for (pb, pc) in b.params().iter().zip(c.params().iter()) {
            assert_eq!(pb.value.as_slice(), pc.value.as_slice());
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn cache_round_trips_weights() {
        let dir = std::env::temp_dir().join(format!("safelight-cache-test-{}", std::process::id()));
        let data = tiny_data();
        let recipe = tiny_recipe();
        let a = train_variant(
            ModelKind::Cnn1,
            VariantKind::L2Only,
            &data,
            &recipe,
            Some(&dir),
        )
        .unwrap();
        // Second call must hit the cache and return identical weights.
        let b = train_variant(
            ModelKind::Cnn1,
            VariantKind::L2Only,
            &data,
            &recipe,
            Some(&dir),
        )
        .unwrap();
        for (pa, pb) in a.params().iter().zip(b.params().iter()) {
            assert_eq!(pa.value.as_slice(), pb.value.as_slice());
        }
        std::fs::remove_dir_all(dir).ok();
    }
}

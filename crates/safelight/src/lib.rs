//! SafeLight: hardware-trojan attacks and software mitigation for optical
//! CNN accelerators.
//!
//! This crate is the primary contribution of the reproduction of
//! *SafeLight: Enhancing Security in Optical Convolutional Neural Network
//! Accelerators* (DATE 2025). On top of the workspace substrates
//! ([`safelight_photonics`], [`safelight_thermal`], [`safelight_neuro`],
//! [`safelight_datasets`], [`safelight_onn`]) it provides:
//!
//! * [`models`] — the paper's three CNN workloads (Table I): the
//!   MNIST-style `CNN_1`, a ResNet-18-style residual network and a
//!   VGG16-variant, each paired with its weight-stationary layer map;
//! * [`attack`] — a composable attack-scenario engine. The paper's two HT
//!   vectors (§III: **actuation attacks** parking individual microrings
//!   off-resonance, **thermal hotspot attacks** driving bank heaters
//!   through a real thermal solve) plus **laser power-degradation** and
//!   **partial trim-drift** vectors, stackable into multi-vector scenarios,
//!   with uniform/clustered/magnitude-targeted site selection and the §IV
//!   scenario grid (1/5/10 % × CONV/FC/Both × trials);
//! * [`defense`] — the §V software mitigations: L2-regularized and
//!   Gaussian noise-aware trained model variants
//!   (`Original`, `L2_reg`, `l2+n1` … `l2+n9`), with a version-stamped
//!   disk cache;
//! * [`detect`] — the runtime trojan-detection subsystem: pluggable
//!   [`Detector`](detect::Detector)s (guard band, EWMA/CUSUM change-point,
//!   sentinel-weight integrity) over the accelerator's telemetry taps
//!   ([`safelight_onn::TelemetryProbe`]), fronted by a per-sensor health
//!   screen ([`detect::SensorHealthScreen`]) that masks broken channels so
//!   a dead sensor raises a maintenance flag instead of a trojan alarm;
//! * [`fault`] — the benign-fault model mirroring the attack engine:
//!   serializable [`FaultSpec`](fault::FaultSpec)s for dead/stuck/drifting
//!   sensors, transient laser-rail glitches and member crashes, replayable
//!   via the in-tree RNG for the chaos evaluation grid;
//! * [`eval`] — the evaluation pipelines behind Fig. 7 (susceptibility),
//!   Fig. 8 (variant robustness) and Fig. 9 (recovery), plus the
//!   detection ROC/latency pipeline ([`eval::detection`]);
//! * [`experiment`] — one driver per paper artifact, consumed by the
//!   `repro` binary in `safelight-bench`.
//!
//! # Example
//!
//! Inject a 5 % actuation attack into the CONV block and measure the
//! accuracy drop of a (tiny, demo-sized) CNN:
//!
//! ```
//! use safelight::attack::{inject, AttackTarget, ScenarioSpec, VectorSpec};
//! use safelight::models::{build_model, ModelKind};
//! use safelight_onn::{corrupt_network, AcceleratorConfig, WeightMapping};
//!
//! # fn main() -> Result<(), safelight::SafelightError> {
//! let config = AcceleratorConfig::scaled_experiment()?;
//! let bundle = build_model(ModelKind::Cnn1, 42)?;
//! let mapping = WeightMapping::new(&config, &bundle.layer_specs)?;
//!
//! let scenario = ScenarioSpec::new(VectorSpec::Actuation, AttackTarget::ConvBlock, 0.05, 0);
//! let conditions = inject(&scenario, &config, 7)?;
//! let attacked = corrupt_network(&bundle.network, &mapping, &conditions, &config)?;
//! assert_eq!(attacked.parameter_count(), bundle.network.parameter_count());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod defense;
pub mod detect;
mod error;
pub mod eval;
pub mod experiment;
pub mod fault;
pub mod models;

pub use error::SafelightError;

/// Convenient re-exports for downstream binaries and examples.
pub mod prelude {
    pub use crate::attack::{
        extended_scenario_grid, extended_stacks, inject, inject_full, scenario_grid,
        scenario_grid_for, stacked_pair, AttackTarget, HotspotOptions, Injection, RingSalience,
        ScenarioSpec, Selection, VectorSpec,
    };
    pub use crate::defense::{train_variant, TrainingRecipe, VariantKind};
    pub use crate::detect::{
        default_detectors, Detector, EwmaCusumDetector, FrameHealth, GuardBandDetector,
        HealthReason, MaskedChannel, SensorHealthScreen, SentinelDetector,
    };
    pub use crate::eval::{
        run_detection, run_mitigation, run_recovery, run_susceptibility, BoxStats,
        DetectionOptions, DetectionReport, MitigationReport, RecoveryReport, SusceptibilityReport,
    };
    pub use crate::experiment::{ExperimentOptions, Fidelity};
    pub use crate::fault::{
        inject_fault, FaultMode, FaultPlan, FaultSpec, FaultState, FaultVector, SensorFault,
    };
    pub use crate::models::{
        build_model, dataset_kind_for, matched_accelerator, table1, ModelBundle, ModelKind,
    };
    pub use crate::SafelightError;
    pub use safelight_onn::{
        corrupt_network, AcceleratorConfig, BlockKind, ConditionMap, MrCondition, WeightMapping,
    };
}

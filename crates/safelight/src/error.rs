//! Top-level error type.

use std::error::Error;
use std::fmt;

use safelight_neuro::NeuroError;
use safelight_onn::OnnError;
use safelight_photonics::PhotonicsError;
use safelight_thermal::ThermalError;

/// Errors produced by the SafeLight attack/defense framework.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SafelightError {
    /// An experiment or attack parameter was invalid.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Rejected value.
        value: f64,
    },
    /// A scenario/vector/selection specification string failed to parse.
    Parse(String),
    /// An accelerator-level error.
    Onn(OnnError),
    /// A neural-network error.
    Neuro(NeuroError),
    /// A photonic device error.
    Photonics(PhotonicsError),
    /// A thermal solver error.
    Thermal(ThermalError),
}

impl fmt::Display for SafelightError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidParameter { name, value } => {
                write!(f, "invalid value {value} for parameter `{name}`")
            }
            Self::Parse(context) => write!(f, "spec parse error: {context}"),
            Self::Onn(e) => write!(f, "accelerator: {e}"),
            Self::Neuro(e) => write!(f, "neural network: {e}"),
            Self::Photonics(e) => write!(f, "photonics: {e}"),
            Self::Thermal(e) => write!(f, "thermal: {e}"),
        }
    }
}

impl Error for SafelightError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Onn(e) => Some(e),
            Self::Neuro(e) => Some(e),
            Self::Photonics(e) => Some(e),
            Self::Thermal(e) => Some(e),
            Self::InvalidParameter { .. } | Self::Parse(_) => None,
        }
    }
}

impl From<OnnError> for SafelightError {
    fn from(e: OnnError) -> Self {
        Self::Onn(e)
    }
}

impl From<NeuroError> for SafelightError {
    fn from(e: NeuroError) -> Self {
        Self::Neuro(e)
    }
}

impl From<PhotonicsError> for SafelightError {
    fn from(e: PhotonicsError) -> Self {
        Self::Photonics(e)
    }
}

impl From<ThermalError> for SafelightError {
    fn from(e: ThermalError) -> Self {
        Self::Thermal(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SafelightError>();
    }

    #[test]
    fn conversions_preserve_sources() {
        let e = SafelightError::from(OnnError::InvalidConfig {
            name: "x",
            value: 0.0,
        });
        assert!(e.source().is_some());
    }
}

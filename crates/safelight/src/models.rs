//! The paper's three CNN workloads (Table I) and their accelerator maps.
//!
//! | Model | Paper | This reproduction |
//! |---|---|---|
//! | `CNN_1` | MNIST, 2 CONV + 3 FC, 44.2 K params | digits stand-in, same layer composition, ≈40 K params (full scale) |
//! | `ResNet18` | CIFAR-10, 17 CONV + 1 FC, 4.7 M params | tinted-shapes stand-in, same 17-convolution residual topology, widths ÷8 |
//! | `VGG16_v` | Imagenette, 6 CONV + 3 FC, 123.5 M params | textured-scenes stand-in, same 6 CONV + 3 FC composition, FC-dominated (>90 % of params) |
//!
//! The width scaling (forced by the 2-CPU-core budget) preserves the three
//! properties the paper's susceptibility analysis depends on: layer
//! composition (CONV/FC balance), depth, and — together with
//! [`AcceleratorConfig::scaled_experiment`] — the ordering of
//! parameter-to-capacity reuse rounds.
//!
//! [`AcceleratorConfig::scaled_experiment`]: safelight_onn::AcceleratorConfig::scaled_experiment

use safelight_datasets::SyntheticKind;
use safelight_neuro::{
    BatchNorm2d, Conv2d, Flatten, GlobalAvgPool2d, Layer, Linear, MaxPool2d, Network, Relu,
    ResidualBlock,
};
use safelight_onn::{AcceleratorConfig, BlockConfig, BlockKind, LayerSpec};

use crate::SafelightError;

/// Which of the paper's CNN models to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// The simple MNIST-style classifier (2 CONV + 3 FC).
    Cnn1,
    /// The ResNet-18-style residual network (17 CONV + 1 FC).
    ResNet18s,
    /// The VGG16 variant (6 CONV + 3 FC, FC-dominated).
    Vgg16s,
}

impl ModelKind {
    /// All three models in the paper's presentation order.
    #[must_use]
    pub fn all() -> [ModelKind; 3] {
        [Self::Cnn1, Self::ResNet18s, Self::Vgg16s]
    }

    /// The short display label used in figures and reports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Self::Cnn1 => "CNN_1",
            Self::ResNet18s => "ResNet18",
            Self::Vgg16s => "VGG16_v",
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// The synthetic dataset a model trains and evaluates on.
#[must_use]
pub fn dataset_kind_for(kind: ModelKind) -> SyntheticKind {
    match kind {
        ModelKind::Cnn1 => SyntheticKind::Digits,
        ModelKind::ResNet18s => SyntheticKind::TintedShapes,
        ModelKind::Vgg16s => SyntheticKind::TexturedScenes,
    }
}

/// A built network plus the layer specs that map its weight tensors onto
/// the accelerator (one spec per decayed parameter tensor, in order).
#[derive(Debug, Clone)]
pub struct ModelBundle {
    /// The freshly initialized network.
    pub network: Network,
    /// Weight-stationary mapping specs, aligned with the network's weight
    /// tensors.
    pub layer_specs: Vec<LayerSpec>,
    /// Which model this is.
    pub kind: ModelKind,
}

impl ModelBundle {
    /// Convolution-block parameter count (weights only).
    #[must_use]
    pub fn conv_weights(&self) -> usize {
        self.layer_specs
            .iter()
            .filter(|s| s.kind == BlockKind::Conv)
            .map(|s| s.weights)
            .sum()
    }

    /// FC-block parameter count (weights only).
    #[must_use]
    pub fn fc_weights(&self) -> usize {
        self.layer_specs
            .iter()
            .filter(|s| s.kind == BlockKind::Fc)
            .map(|s| s.weights)
            .sum()
    }
}

/// Helper that pushes a layer and records its mapping spec when it carries
/// mapped weights.
struct Builder {
    network: Network,
    specs: Vec<LayerSpec>,
    seed: u64,
}

impl Builder {
    fn new(seed: u64) -> Self {
        Self {
            network: Network::new(),
            specs: Vec::new(),
            seed,
        }
    }

    fn next_seed(&mut self) -> u64 {
        self.seed = self
            .seed
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1);
        self.seed
    }

    fn conv(
        &mut self,
        name: &str,
        in_c: usize,
        out_c: usize,
        k: usize,
    ) -> Result<(), SafelightError> {
        let seed = self.next_seed();
        let conv = Conv2d::new(in_c, out_c, k, seed)?;
        self.specs
            .push(LayerSpec::new(name, BlockKind::Conv, out_c * in_c * k * k));
        self.network.push(conv);
        Ok(())
    }

    fn residual(
        &mut self,
        name: &str,
        in_c: usize,
        out_c: usize,
        stride: usize,
    ) -> Result<(), SafelightError> {
        let seed = self.next_seed();
        let block = ResidualBlock::new(in_c, out_c, stride, seed)?;
        // Decayed-parameter order inside the block: conv1.w, conv2.w,
        // then the projection shortcut's weight when present.
        self.specs.push(LayerSpec::new(
            format!("{name}.conv1"),
            BlockKind::Conv,
            out_c * in_c * 9,
        ));
        self.specs.push(LayerSpec::new(
            format!("{name}.conv2"),
            BlockKind::Conv,
            out_c * out_c * 9,
        ));
        if stride != 1 || in_c != out_c {
            self.specs.push(LayerSpec::new(
                format!("{name}.proj"),
                BlockKind::Conv,
                out_c * in_c,
            ));
        }
        self.network.push(block);
        Ok(())
    }

    fn linear(&mut self, name: &str, in_f: usize, out_f: usize) -> Result<(), SafelightError> {
        let seed = self.next_seed();
        let fc = Linear::new(in_f, out_f, seed)?;
        self.specs
            .push(LayerSpec::new(name, BlockKind::Fc, out_f * in_f));
        self.network.push(fc);
        Ok(())
    }

    fn push<L: Layer + 'static>(&mut self, layer: L) {
        self.network.push(layer);
    }

    fn finish(self, kind: ModelKind) -> ModelBundle {
        ModelBundle {
            network: self.network,
            layer_specs: self.specs,
            kind,
        }
    }
}

/// Builds `CNN_1`: 2 CONV + 3 FC on 1×28×28 inputs, ≈40 K parameters.
fn build_cnn1(seed: u64) -> Result<ModelBundle, SafelightError> {
    let mut b = Builder::new(seed ^ 0xC991);
    b.conv("conv1", 1, 8, 5)?;
    b.push(Relu::new());
    b.push(MaxPool2d::new(2)?); // 28 → 14
    b.conv("conv2", 8, 16, 3)?;
    b.push(Relu::new());
    b.push(MaxPool2d::new(2)?); // 14 → 7
    b.push(Flatten::new()); // 16·7·7 = 784
    b.linear("fc1", 784, 48)?;
    b.push(Relu::new());
    b.linear("fc2", 48, 24)?;
    b.push(Relu::new());
    b.linear("fc3", 24, 10)?;
    Ok(b.finish(ModelKind::Cnn1))
}

/// Builds the ResNet-18-style network: stem + 8 basic blocks (16 block
/// convolutions) = 17 weight convolutions, widths `[8, 16, 24, 32]`, on
/// 3×32×32 inputs.
fn build_resnet18s(seed: u64) -> Result<ModelBundle, SafelightError> {
    let mut b = Builder::new(seed ^ 0x4E57);
    b.conv("stem", 3, 8, 3)?;
    b.push(BatchNorm2d::new(8)?);
    b.push(Relu::new());
    // layer1: 8 → 8, two identity blocks at 32×32.
    b.residual("layer1.0", 8, 8, 1)?;
    b.residual("layer1.1", 8, 8, 1)?;
    // layer2: 8 → 16, stride 2 (32 → 16).
    b.residual("layer2.0", 8, 16, 2)?;
    b.residual("layer2.1", 16, 16, 1)?;
    // layer3: 16 → 24, stride 2 (16 → 8).
    b.residual("layer3.0", 16, 24, 2)?;
    b.residual("layer3.1", 24, 24, 1)?;
    // layer4: 24 → 32, stride 2 (8 → 4).
    b.residual("layer4.0", 24, 32, 2)?;
    b.residual("layer4.1", 32, 32, 1)?;
    b.push(GlobalAvgPool2d::new());
    b.linear("fc", 32, 10)?;
    Ok(b.finish(ModelKind::ResNet18s))
}

/// Builds the VGG16 variant: 6 CONV + 3 FC on 3×64×64 inputs, with the FC
/// stack holding >90 % of the parameters as in the paper's 123.5 M-param
/// original.
///
/// Each convolution is followed by batch normalization: the width-scaled
/// plain-VGG stack does not train reliably at this size, and BN executes in
/// the electronic post-processing path (its parameters are not mapped to
/// microrings, so the attack surface is unchanged).
fn build_vgg16s(seed: u64) -> Result<ModelBundle, SafelightError> {
    let mut b = Builder::new(seed ^ 0x5997);
    b.conv("conv1", 3, 8, 3)?;
    b.push(BatchNorm2d::new(8)?);
    b.push(Relu::new());
    b.push(MaxPool2d::new(2)?); // 64 → 32
    b.conv("conv2", 8, 16, 3)?;
    b.push(BatchNorm2d::new(16)?);
    b.push(Relu::new());
    b.push(MaxPool2d::new(2)?); // 32 → 16
    b.conv("conv3", 16, 16, 3)?;
    b.push(BatchNorm2d::new(16)?);
    b.push(Relu::new());
    b.conv("conv4", 16, 32, 3)?;
    b.push(BatchNorm2d::new(32)?);
    b.push(Relu::new());
    b.push(MaxPool2d::new(2)?); // 16 → 8
    b.conv("conv5", 32, 32, 3)?;
    b.push(BatchNorm2d::new(32)?);
    b.push(Relu::new());
    b.conv("conv6", 32, 32, 3)?;
    b.push(BatchNorm2d::new(32)?);
    b.push(Relu::new());
    b.push(MaxPool2d::new(2)?); // 8 → 4
    b.push(Flatten::new()); // 32·4·4 = 512
    b.linear("fc1", 512, 384)?;
    b.push(Relu::new());
    b.linear("fc2", 384, 256)?;
    b.push(Relu::new());
    b.linear("fc3", 256, 10)?;
    Ok(b.finish(ModelKind::Vgg16s))
}

/// Builds a freshly initialized model of `kind`, seeded by `seed`.
///
/// # Errors
///
/// Propagates layer construction errors (none for valid built-in shapes).
///
/// # Example
///
/// ```
/// use safelight::models::{build_model, ModelKind};
///
/// # fn main() -> Result<(), safelight::SafelightError> {
/// let bundle = build_model(ModelKind::Cnn1, 1)?;
/// // 2 CONV + 3 FC weight tensors.
/// assert_eq!(bundle.layer_specs.len(), 5);
/// # Ok(())
/// # }
/// ```
pub fn build_model(kind: ModelKind, seed: u64) -> Result<ModelBundle, SafelightError> {
    match kind {
        ModelKind::Cnn1 => build_cnn1(seed),
        ModelKind::ResNet18s => build_resnet18s(seed),
        ModelKind::Vgg16s => build_vgg16s(seed),
    }
}

/// The accelerator profile whose *structural attack quantities* match the
/// paper's for `kind`.
///
/// The paper runs all three CNNs on one accelerator (CONV: 100 VDP units of
/// 20×20 MRs; FC: 60 of 150×150). Susceptibility is driven by three
/// structural ratios of model-to-accelerator:
///
/// 1. **block utilization** — what fraction of a block's rings carry
///    weights (low utilization shields a model: most attacked banks hit
///    unused rings, e.g. CNN_1's FC layers occupy only 3 % of the paper's
///    FC block);
/// 2. **reuse rounds** — how many parameters share one ring
///    (≈117× for ResNet18's CONV weights, ≈89× for VGG16_v's FC weights);
/// 3. **bank granularity** — hotspot attacks are bank-quantized, so the
///    bank count sets the minimum attack footprint.
///
/// Because this reproduction's models are width-scaled *non-uniformly*
/// (CNN_1 full scale, ResNet ÷8 widths, VGG ÷~20), no single scaled
/// accelerator preserves all three ratios for all three models. Instead,
/// each model gets a profile with the paper's bank counts (100 CONV / 60
/// FC) and bank sizes chosen so its utilization and reuse rounds match the
/// paper's:
///
/// | Model | CONV util/rounds (paper) | FC util/rounds (paper) |
/// |---|---|---|
/// | CNN_1 | 6.5 % util | 3.1 % util |
/// | ResNet18 | ≈109 rounds (117) | 0.4 % util |
/// | VGG16_v | ≈89 rounds (97) | ≈89 rounds (89) |
///
/// # Errors
///
/// Propagates configuration errors (none for the built-in shapes).
pub fn matched_accelerator(kind: ModelKind) -> Result<AcceleratorConfig, SafelightError> {
    let (conv, fc) = match kind {
        // CNN_1: conv 1 352 / 20 800 = 6.5 % util; fc 39 024 / 1.26 M = 3.1 %.
        ModelKind::Cnn1 => (
            BlockConfig {
                vdp_units: 100,
                bank_rows: 13,
                bank_cols: 16,
            },
            BlockConfig {
                vdp_units: 60,
                bank_rows: 140,
                bank_cols: 150,
            },
        ),
        // ResNet18s: conv 65 432 / 600 ≈ 109 rounds; fc 320 / 79 920 = 0.4 %.
        ModelKind::ResNet18s => (
            BlockConfig {
                vdp_units: 100,
                bank_rows: 2,
                bank_cols: 3,
            },
            BlockConfig {
                vdp_units: 60,
                bank_rows: 36,
                bank_cols: 37,
            },
        ),
        // VGG16s: conv 26 712 / 300 ≈ 89 rounds; fc 297 472 / 3 360 ≈ 89.
        ModelKind::Vgg16s => (
            BlockConfig {
                vdp_units: 100,
                bank_rows: 1,
                bank_cols: 3,
            },
            BlockConfig {
                vdp_units: 60,
                bank_rows: 7,
                bank_cols: 8,
            },
        ),
    };
    Ok(AcceleratorConfig::custom(conv, fc)?)
}

/// One row of Table I: the paper's reported values next to this
/// reproduction's.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Model label.
    pub model: &'static str,
    /// Dataset names: (paper, stand-in).
    pub dataset: (&'static str, String),
    /// CONV layer counts: (paper, ours).
    pub conv_layers: (usize, usize),
    /// CONV parameter counts: (paper, ours).
    pub conv_params: (usize, usize),
    /// FC layer counts: (paper, ours).
    pub fc_layers: (usize, usize),
    /// FC parameter counts: (paper, ours).
    pub fc_params: (usize, usize),
    /// Total parameter counts: (paper, ours).
    pub total_params: (usize, usize),
}

/// Regenerates Table I with paper-reported and reproduction values side by
/// side.
///
/// # Errors
///
/// Propagates model construction errors.
pub fn table1() -> Result<Vec<Table1Row>, SafelightError> {
    let paper: [(&str, &str, usize, usize, usize, usize, usize); 3] = [
        ("CNN_1", "MNIST", 2, 2_600, 3, 41_600, 44_200),
        ("ResNet18", "CIFAR10", 17, 4_700_000, 1, 5_100, 4_700_000),
        (
            "VGG16_v",
            "Imagenette",
            6,
            3_900_000,
            3,
            119_600_000,
            123_500_000,
        ),
    ];
    let mut rows = Vec::with_capacity(3);
    for (kind, p) in ModelKind::all().into_iter().zip(paper) {
        let bundle = build_model(kind, 0)?;
        // Count only primary convolutions (projection shortcuts are 1×1
        // mapping helpers, not counted by the paper's layer tally).
        let conv_layers_ours = bundle
            .layer_specs
            .iter()
            .filter(|s| s.kind == BlockKind::Conv && !s.name.ends_with(".proj"))
            .count();
        let fc_layers_ours = bundle
            .layer_specs
            .iter()
            .filter(|s| s.kind == BlockKind::Fc)
            .count();
        rows.push(Table1Row {
            model: p.0,
            dataset: (p.1, dataset_kind_for(kind).to_string()),
            conv_layers: (p.2, conv_layers_ours),
            conv_params: (p.3, bundle.conv_weights()),
            fc_layers: (p.4, fc_layers_ours),
            fc_params: (p.5, bundle.fc_weights()),
            total_params: (p.6, bundle.conv_weights() + bundle.fc_weights()),
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use safelight_neuro::Tensor;

    #[test]
    fn cnn1_has_two_conv_three_fc() {
        let b = build_model(ModelKind::Cnn1, 1).unwrap();
        let conv = b
            .layer_specs
            .iter()
            .filter(|s| s.kind == BlockKind::Conv)
            .count();
        let fc = b
            .layer_specs
            .iter()
            .filter(|s| s.kind == BlockKind::Fc)
            .count();
        assert_eq!((conv, fc), (2, 3));
    }

    #[test]
    fn resnet_has_seventeen_primary_convs_and_one_fc() {
        let b = build_model(ModelKind::ResNet18s, 1).unwrap();
        let primary = b
            .layer_specs
            .iter()
            .filter(|s| s.kind == BlockKind::Conv && !s.name.ends_with(".proj"))
            .count();
        let fc = b
            .layer_specs
            .iter()
            .filter(|s| s.kind == BlockKind::Fc)
            .count();
        assert_eq!((primary, fc), (17, 1));
    }

    #[test]
    fn vgg_is_fc_dominated() {
        let b = build_model(ModelKind::Vgg16s, 1).unwrap();
        let fc = b.fc_weights() as f64;
        let total = (b.fc_weights() + b.conv_weights()) as f64;
        assert!(fc / total > 0.9, "FC share {}", fc / total);
    }

    #[test]
    fn layer_specs_match_network_weight_tensors() {
        for kind in ModelKind::all() {
            let b = build_model(kind, 3).unwrap();
            let weight_lens: Vec<usize> = b
                .network
                .params()
                .iter()
                .filter(|p| p.decay)
                .map(|p| p.value.len())
                .collect();
            assert_eq!(weight_lens.len(), b.layer_specs.len(), "{kind}: spec count");
            for (len, spec) in weight_lens.iter().zip(&b.layer_specs) {
                assert_eq!(*len, spec.weights, "{kind}: layer `{}`", spec.name);
            }
        }
    }

    #[test]
    fn models_forward_on_their_dataset_shapes() {
        let shapes = [
            (ModelKind::Cnn1, vec![2, 1, 28, 28]),
            (ModelKind::ResNet18s, vec![2, 3, 32, 32]),
            (ModelKind::Vgg16s, vec![2, 3, 64, 64]),
        ];
        for (kind, shape) in shapes {
            let mut b = build_model(kind, 5).unwrap();
            let y = b.network.forward(&Tensor::zeros(shape), false).unwrap();
            assert_eq!(y.shape(), &[2, 10], "{kind} logits shape");
        }
    }

    #[test]
    fn table1_columns_are_consistent() {
        let rows = table1().unwrap();
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert_eq!(
                row.total_params.1,
                row.conv_params.1 + row.fc_params.1,
                "{}: totals",
                row.model
            );
            // Layer composition matches the paper exactly.
            assert_eq!(row.conv_layers.0, row.conv_layers.1, "{}", row.model);
            assert_eq!(row.fc_layers.0, row.fc_layers.1, "{}", row.model);
        }
    }

    #[test]
    fn cnn1_is_roughly_paper_scale() {
        let rows = table1().unwrap();
        let cnn1 = &rows[0];
        let ratio = cnn1.total_params.1 as f64 / cnn1.total_params.0 as f64;
        assert!((0.5..=1.5).contains(&ratio), "CNN_1 scale ratio {ratio}");
    }

    #[test]
    fn different_seeds_give_different_weights() {
        let a = build_model(ModelKind::Cnn1, 1).unwrap();
        let b = build_model(ModelKind::Cnn1, 2).unwrap();
        let wa = a.network.params()[0].value.as_slice().to_vec();
        let wb = b.network.params()[0].value.as_slice().to_vec();
        assert_ne!(wa, wb);
    }
}

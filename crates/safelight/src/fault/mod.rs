//! The benign-fault model: hardware going *wrong* rather than hardware
//! going *rogue*.
//!
//! The attack engine ([`crate::attack`]) perturbs the physics a trojan
//! controls; this module perturbs everything a trojan does **not** control
//! but production hardware still breaks — sensors and fleet members:
//!
//! * **dead sensors** — a drop-port monitor, thermal sensor, rail or
//!   trim-DAC readback returning NaN (disconnected / powered down);
//! * **stuck-at sensors** — a readback latching its value at fault onset;
//! * **drifting sensors** — a readback accumulating a per-batch bias plus
//!   extra noise (aging reference, leaking integrator);
//! * **transient laser-rail glitches** — a supply dip darkening every
//!   bank's rail readback *and* drop current for a bounded number of
//!   batches, then recovering;
//! * **member crashes** — a fleet member dying at a given tick and coming
//!   back through cache recovery.
//!
//! A [`FaultSpec`] mirrors [`ScenarioSpec`](crate::attack::ScenarioSpec):
//! it round-trips through a canonical string
//! (`vector/target/fraction/onset/trial`), and [`inject_fault`] expands it
//! into a concrete [`FaultPlan`] — which sensors break, in which mode —
//! deterministically from `(seed, spec)` via the same in-tree RNG stream
//! derivation the attack engine uses, so every chaos run is replayable
//! bit-for-bit at any thread count.
//!
//! The fault plan *corrupts telemetry frames*, not the optical physics:
//! a broken sensor lies about a healthy accelerator. Distinguishing that
//! lie from a real trojan is exactly what the fault-tolerant serving
//! policy (`safelight-serve`) is evaluated on.

use safelight_neuro::SimRng;
use safelight_onn::{AcceleratorConfig, BlockKind, SensorChannel, TelemetryFrame};

use crate::attack::{fold, target_token, AttackTarget};
use crate::SafelightError;

/// One benign-fault vector: what breaks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultVector {
    /// The selected sensors of `channel` read NaN from onset on.
    DeadSensor {
        /// Which sensor of each selected bank/sentinel slot dies.
        channel: SensorChannel,
    },
    /// The selected sensors latch their reading at fault onset.
    StuckSensor {
        /// Which sensor of each selected bank/sentinel slot latches.
        channel: SensorChannel,
    },
    /// The selected sensors accumulate a per-batch bias plus extra noise.
    DriftSensor {
        /// Which sensor of each selected bank/sentinel slot drifts.
        channel: SensorChannel,
        /// Additive bias per batch since onset (sensor units).
        per_batch: f64,
        /// Extra Gaussian read-noise σ on the drifting sensor.
        noise: f64,
    },
    /// A transient supply dip: for `duration` batches from onset, every
    /// selected bank's rail readback drops by `depth` and its drop-port
    /// current scales by `1 − depth`; afterwards the supply recovers.
    RailGlitch {
        /// Fractional launch-power dip in `(0, 1]`.
        depth: f64,
        /// Batches the glitch lasts (≥ 1).
        duration: u64,
    },
    /// The fleet member hosting this accelerator dies at the onset batch.
    Crash,
}

impl FaultVector {
    /// The sensor channel this vector corrupts (`None` for crashes).
    #[must_use]
    pub fn channel(&self) -> Option<SensorChannel> {
        match *self {
            Self::DeadSensor { channel }
            | Self::StuckSensor { channel }
            | Self::DriftSensor { channel, .. } => Some(channel),
            Self::RailGlitch { .. } => Some(SensorChannel::RailPower),
            Self::Crash => None,
        }
    }

    /// Compact label used in spec strings and CSV columns.
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            Self::DeadSensor { channel } => format!("dead:{}", channel.label()),
            Self::StuckSensor { channel } => format!("stuck:{}", channel.label()),
            Self::DriftSensor {
                channel,
                per_batch,
                noise,
            } => format!("drift:{}:{per_batch}:{noise}", channel.label()),
            Self::RailGlitch { depth, duration } => format!("glitch:{depth}:{duration}"),
            Self::Crash => "crash".into(),
        }
    }

    /// Words folded into the per-spec RNG stream key (full parameter bit
    /// patterns, so nearby parameter values never alias onto one stream).
    fn stream_words(&self) -> [u64; 3] {
        match *self {
            Self::DeadSensor { channel } => [0xDEAD, channel as u64, 0],
            Self::StuckSensor { channel } => [0x57CC, channel as u64, 0],
            Self::DriftSensor {
                channel,
                per_batch,
                noise,
            } => [
                0xD81F ^ (channel as u64) << 16,
                per_batch.to_bits(),
                noise.to_bits(),
            ],
            Self::RailGlitch { depth, duration } => [0x611C, depth.to_bits(), duration],
            Self::Crash => [0xC4A5, 0, 0],
        }
    }
}

impl std::fmt::Display for FaultVector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad(&self.label())
    }
}

impl std::str::FromStr for FaultVector {
    type Err = SafelightError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split(':').collect();
        let channel = |token: &str| {
            SensorChannel::from_label(token).ok_or_else(|| {
                SafelightError::Parse(format!(
                    "unknown sensor channel `{token}` (expected drop|temp|rail|trim|sentinel)"
                ))
            })
        };
        let num = |token: &str| {
            token
                .parse::<f64>()
                .map_err(|e| SafelightError::Parse(format!("`{token}`: {e}")))
        };
        match parts.as_slice() {
            ["dead", ch] => Ok(Self::DeadSensor {
                channel: channel(ch)?,
            }),
            ["stuck", ch] => Ok(Self::StuckSensor {
                channel: channel(ch)?,
            }),
            ["drift", ch, per_batch, noise] => Ok(Self::DriftSensor {
                channel: channel(ch)?,
                per_batch: num(per_batch)?,
                noise: num(noise)?,
            }),
            ["glitch", depth, duration] => Ok(Self::RailGlitch {
                depth: num(depth)?,
                duration: duration
                    .parse::<u64>()
                    .map_err(|e| SafelightError::Parse(format!("`{duration}`: {e}")))?,
            }),
            ["crash"] => Ok(Self::Crash),
            _ => Err(SafelightError::Parse(format!(
                "unknown fault vector `{s}` (expected dead:<ch>|stuck:<ch>|\
                 drift:<ch>:<per_batch>:<noise>|glitch:<depth>:<batches>|crash)"
            ))),
        }
    }
}

/// One benign-fault instance: a vector × target block(s) × affected
/// fraction × onset batch × trial index, round-tripping through the
/// canonical string `vector/target/fraction/onset/trial`.
///
/// # Example
///
/// ```
/// use safelight::fault::FaultSpec;
///
/// let spec: FaultSpec = "drift:temp:0.05:0.01/fc/0.25/8/2".parse().unwrap();
/// assert_eq!(spec.to_spec_string(), "drift:temp:0.05:0.01/fc/0.25/8/2");
/// assert_eq!(spec.onset_batch, 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// What breaks.
    pub vector: FaultVector,
    /// Which block(s) host the affected sensors.
    pub target: AttackTarget,
    /// Fraction of the candidate sensors that break, in `(0, 1]`
    /// (crashes ignore it; the grid writes 0).
    pub fraction: f64,
    /// Batch index the fault manifests at.
    pub onset_batch: u64,
    /// Trial index: distinct trials draw independent fault sites.
    pub trial: u64,
}

impl FaultSpec {
    /// A fault spec with trial 0.
    #[must_use]
    pub fn new(vector: FaultVector, target: AttackTarget, fraction: f64, onset_batch: u64) -> Self {
        Self {
            vector,
            target,
            fraction,
            onset_batch,
            trial: 0,
        }
    }

    /// The canonical machine-readable form
    /// (`vector/target/fraction/onset/trial`).
    #[must_use]
    pub fn to_spec_string(&self) -> String {
        format!(
            "{}/{}/{}/{}/{}",
            self.vector.label(),
            target_token(self.target),
            self.fraction,
            self.onset_batch,
            self.trial
        )
    }

    /// The RNG stream key of this spec: every field avalanche-mixed
    /// separately (same discipline as the attack engine's scenario keys,
    /// under a distinct seed constant so fault and attack streams can
    /// never alias).
    #[must_use]
    pub fn stream_key(&self) -> u64 {
        let mut h = 0xFA17_5EED_0DD5_EED1_u64;
        h = fold(h, self.trial);
        h = fold(h, self.target.stream_word());
        h = fold(h, self.fraction.to_bits());
        h = fold(h, self.onset_batch);
        for word in self.vector.stream_words() {
            h = fold(h, word);
        }
        h
    }
}

impl std::fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {}% on {} at batch {} (trial {})",
            self.vector,
            self.fraction * 100.0,
            self.target,
            self.onset_batch,
            self.trial
        )
    }
}

impl std::str::FromStr for FaultSpec {
    type Err = SafelightError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split('/').collect();
        let [vector, target, fraction, onset, trial] = parts.as_slice() else {
            return Err(SafelightError::Parse(format!(
                "`{s}`: expected vector/target/fraction/onset/trial"
            )));
        };
        Ok(Self {
            vector: vector.parse()?,
            target: target.parse()?,
            fraction: fraction
                .parse::<f64>()
                .map_err(|e| SafelightError::Parse(format!("fraction `{fraction}`: {e}")))?,
            onset_batch: onset
                .parse::<u64>()
                .map_err(|e| SafelightError::Parse(format!("onset `{onset}`: {e}")))?,
            trial: trial
                .parse::<u64>()
                .map_err(|e| SafelightError::Parse(format!("trial `{trial}`: {e}")))?,
        })
    }
}

/// How one selected sensor misbehaves at run time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultMode {
    /// Reads NaN.
    Dead,
    /// Latches the reading it has at onset.
    Stuck,
    /// Accumulates `per_batch` bias per batch plus `noise`-σ extra noise.
    Drift {
        /// Additive bias per batch since onset.
        per_batch: f64,
        /// Extra Gaussian read-noise σ.
        noise: f64,
    },
    /// Supply dip for `duration` batches: rail readings lose `depth`,
    /// drop currents scale by `1 − depth`.
    Glitch {
        /// Fractional dip.
        depth: f64,
        /// Batches the dip lasts.
        duration: u64,
    },
}

/// One concrete broken sensor of a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorFault {
    /// The block hosting the sensor.
    pub block: BlockKind,
    /// Bank index for bank channels, plan index for sentinels.
    pub index: usize,
    /// Which sensor breaks.
    pub channel: SensorChannel,
    /// How it misbehaves.
    pub mode: FaultMode,
}

/// Per-sensor mutable state a fault plan carries across batches (stuck-at
/// latches). One [`FaultState`] per served stream; replaying a stream with
/// a fresh state reproduces it exactly.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultState {
    latched: Vec<Option<f64>>,
}

impl FaultState {
    /// Fresh state sized for `plan`.
    #[must_use]
    pub fn for_plan(plan: &FaultPlan) -> Self {
        Self {
            latched: vec![None; plan.sensors.len()],
        }
    }
}

/// A fully expanded benign fault: which sensors break (and how), and
/// whether the member crashes. Produced by [`inject_fault`]; applied to
/// live telemetry by [`FaultPlan::corrupt`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Batch index the fault manifests at.
    pub onset_batch: u64,
    /// The broken sensors, in deterministic selection order.
    pub sensors: Vec<SensorFault>,
    /// Whether the hosting fleet member crashes at onset.
    pub crash: bool,
}

impl FaultPlan {
    /// Overwrites the readings of `frame` (batch index `batch`) with this
    /// plan's faulted values. No-op before the onset batch. Deterministic
    /// in `(seed, batch, sensor index)` — drift noise draws its own RNG
    /// stream per sensor per batch, independent of scheduling.
    pub fn corrupt(
        &self,
        frame: &mut TelemetryFrame,
        batch: u64,
        state: &mut FaultState,
        seed: u64,
    ) {
        if batch < self.onset_batch {
            return;
        }
        debug_assert_eq!(state.latched.len(), self.sensors.len());
        let rel = batch - self.onset_batch;
        for (i, s) in self.sensors.iter().enumerate() {
            let Some(current) = frame.channel(s.block, s.index, s.channel) else {
                continue;
            };
            let value = match s.mode {
                FaultMode::Dead => f64::NAN,
                FaultMode::Stuck => match state.latched.get_mut(i) {
                    Some(slot) => *slot.get_or_insert(current),
                    None => current,
                },
                FaultMode::Drift { per_batch, noise } => {
                    let mut rng =
                        SimRng::seed_from(seed).derive(fold(fold(0xD81F_7001, batch), i as u64));
                    current + per_batch * (rel + 1) as f64 + rng.gaussian_with(0.0, noise)
                }
                FaultMode::Glitch { depth, duration } => {
                    if rel < duration {
                        match s.channel {
                            SensorChannel::DropCurrent => current * (1.0 - depth),
                            _ => current - depth,
                        }
                    } else {
                        current // supply recovered
                    }
                }
            };
            frame.set_channel(s.block, s.index, s.channel, value);
        }
    }
}

/// Expands `spec` into a concrete [`FaultPlan`] on `config`'s sensor
/// population. `sentinel_counts` is `(conv, fc)` sentinel readbacks, since
/// the sentinel channel indexes the plan, not the banks. Site selection is
/// a deterministic function of `(seed, spec)`.
///
/// # Errors
///
/// Returns [`SafelightError::InvalidParameter`] when `fraction` is outside
/// `(0, 1]` for sensor faults, a glitch has non-positive depth/duration,
/// or the spec selects sentinels on a block that has none.
pub fn inject_fault(
    spec: &FaultSpec,
    config: &AcceleratorConfig,
    sentinel_counts: (usize, usize),
    seed: u64,
) -> Result<FaultPlan, SafelightError> {
    if let FaultVector::Crash = spec.vector {
        return Ok(FaultPlan {
            onset_batch: spec.onset_batch,
            sensors: Vec::new(),
            crash: true,
        });
    }
    if !(spec.fraction > 0.0 && spec.fraction <= 1.0) {
        return Err(SafelightError::InvalidParameter {
            name: "fault fraction",
            value: spec.fraction,
        });
    }
    if let FaultVector::RailGlitch { depth, duration } = spec.vector {
        if !(depth > 0.0 && depth <= 1.0) {
            return Err(SafelightError::InvalidParameter {
                name: "glitch depth",
                value: depth,
            });
        }
        if duration == 0 {
            return Err(SafelightError::InvalidParameter {
                name: "glitch duration",
                value: 0.0,
            });
        }
    }
    let channel = spec.vector.channel().expect("crash handled above");
    // Candidate sites: one per bank of each targeted block, or one per
    // sentinel slot for the sentinel channel.
    let mut candidates: Vec<(BlockKind, usize)> = Vec::new();
    for kind in spec.target.blocks() {
        let count = if channel == SensorChannel::Sentinel {
            match kind {
                BlockKind::Conv => sentinel_counts.0,
                BlockKind::Fc => sentinel_counts.1,
            }
        } else {
            config.block(kind).vdp_units
        };
        candidates.extend((0..count).map(|i| (kind, i)));
    }
    if candidates.is_empty() {
        return Err(SafelightError::InvalidParameter {
            name: "fault candidate sensors",
            value: 0.0,
        });
    }
    let mut rng = SimRng::seed_from(seed).derive(spec.stream_key());
    rng.shuffle(&mut candidates);
    let picked =
        ((spec.fraction * candidates.len() as f64).ceil() as usize).clamp(1, candidates.len());
    candidates.truncate(picked);
    // Deterministic report order independent of the shuffle.
    candidates.sort_unstable();

    let mode = match spec.vector {
        FaultVector::DeadSensor { .. } => FaultMode::Dead,
        FaultVector::StuckSensor { .. } => FaultMode::Stuck,
        FaultVector::DriftSensor {
            per_batch, noise, ..
        } => FaultMode::Drift { per_batch, noise },
        FaultVector::RailGlitch { depth, duration } => FaultMode::Glitch { depth, duration },
        FaultVector::Crash => unreachable!(),
    };
    let mut sensors = Vec::new();
    for (block, index) in candidates {
        if let FaultVector::RailGlitch { .. } = spec.vector {
            // A supply dip is visible on the rail readback AND the bank's
            // drop-port current (less light reaches the rings).
            sensors.push(SensorFault {
                block,
                index,
                channel: SensorChannel::DropCurrent,
                mode,
            });
            sensors.push(SensorFault {
                block,
                index,
                channel: SensorChannel::RailPower,
                mode,
            });
        } else {
            sensors.push(SensorFault {
                block,
                index,
                channel,
                mode,
            });
        }
    }
    Ok(FaultPlan {
        onset_batch: spec.onset_batch,
        sensors,
        crash: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use safelight_onn::BlockConfig;

    fn config() -> AcceleratorConfig {
        AcceleratorConfig::custom(
            BlockConfig {
                vdp_units: 4,
                bank_rows: 2,
                bank_cols: 4,
            },
            BlockConfig {
                vdp_units: 4,
                bank_rows: 2,
                bank_cols: 4,
            },
        )
        .unwrap()
    }

    fn frame() -> TelemetryFrame {
        TelemetryFrame {
            batch: 0,
            conv: vec![
                safelight_onn::BankTelemetry {
                    drop_current: 0.4,
                    delta_kelvin: 0.0,
                    rail_power: 1.0,
                    trim_offset_nm: 0.0,
                };
                4
            ],
            fc: vec![
                safelight_onn::BankTelemetry {
                    drop_current: 0.5,
                    delta_kelvin: 0.1,
                    rail_power: 1.0,
                    trim_offset_nm: 0.0,
                };
                4
            ],
            conv_sentinels: vec![0.7; 2],
            fc_sentinels: vec![],
        }
    }

    #[test]
    fn specs_round_trip_through_their_string_form() {
        for s in [
            "dead:drop/fc/0.5/8/0",
            "stuck:temp/conv/0.25/4/3",
            "drift:rail:-0.002:0.0005/both/0.5/6/1",
            "drift:temp:0.05:0.01/fc/0.25/8/2",
            "glitch:0.3:2/both/1/10/0",
            "crash/both/0/12/5",
        ] {
            let spec: FaultSpec = s.parse().unwrap();
            assert_eq!(spec.to_spec_string(), s, "round-trip broke for `{s}`");
        }
        for bad in [
            "",
            "dead/fc/0.5/8/0",
            "dead:volts/fc/0.5/8/0",
            "drift:rail:x:y/fc/0.5/8/0",
            "glitch:0.3/both/1/10/0",
            "crash/both/0/12",
            "melt:drop/fc/0.5/8/0",
        ] {
            assert!(bad.parse::<FaultSpec>().is_err(), "`{bad}` parsed");
        }
    }

    #[test]
    fn injection_is_deterministic_and_trial_dependent() {
        let spec: FaultSpec = "dead:drop/both/0.5/8/0".parse().unwrap();
        let a = inject_fault(&spec, &config(), (2, 0), 42).unwrap();
        let b = inject_fault(&spec, &config(), (2, 0), 42).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.sensors.len(), 4); // ceil(0.5 × 8 banks)
        assert!(!a.crash);
        assert_eq!(a.onset_batch, 8);
        // A different trial (or seed) reshuffles the site selection.
        let mut other = spec;
        other.trial = 1;
        let c = inject_fault(&other, &config(), (2, 0), 42).unwrap();
        assert_eq!(c.sensors.len(), 4);
        assert_ne!(a.sensors, c.sensors, "trials alias onto one stream");
        let d = inject_fault(&spec, &config(), (2, 0), 43).unwrap();
        assert_ne!(a.sensors, d.sensors, "seeds alias onto one stream");
    }

    #[test]
    fn invalid_fractions_and_glitches_are_rejected() {
        let cfg = config();
        for s in [
            "dead:drop/fc/0/8/0",
            "dead:drop/fc/1.5/8/0",
            "glitch:0:2/fc/1/8/0",
            "glitch:0.5:0/fc/1/8/0",
        ] {
            let spec: FaultSpec = s.parse().unwrap();
            assert!(
                inject_fault(&spec, &cfg, (2, 0), 1).is_err(),
                "`{s}` accepted"
            );
        }
        // Sentinels on a block that has none: no candidates.
        let spec: FaultSpec = "dead:sentinel/fc/0.5/8/0".parse().unwrap();
        assert!(inject_fault(&spec, &cfg, (2, 0), 1).is_err());
        // Crash ignores the fraction and selects no sensors.
        let crash: FaultSpec = "crash/both/0/12/0".parse().unwrap();
        let plan = inject_fault(&crash, &cfg, (2, 0), 1).unwrap();
        assert!(plan.crash && plan.sensors.is_empty());
    }

    #[test]
    fn corrupt_applies_each_mode_from_onset_only() {
        let cfg = config();
        // Dead: NaN from onset.
        let plan = inject_fault(&"dead:drop/fc/1/4/0".parse().unwrap(), &cfg, (2, 0), 7).unwrap();
        let mut state = FaultState::for_plan(&plan);
        let mut f = frame();
        plan.corrupt(&mut f, 3, &mut state, 7);
        assert_eq!(f, frame(), "fault fired before onset");
        plan.corrupt(&mut f, 4, &mut state, 7);
        for bank in 0..4 {
            assert!(f
                .channel(BlockKind::Fc, bank, SensorChannel::DropCurrent)
                .unwrap()
                .is_nan());
            // Other channels untouched.
            assert_eq!(
                f.channel(BlockKind::Fc, bank, SensorChannel::RailPower),
                Some(1.0)
            );
        }

        // Stuck: latches the onset reading across later batches.
        let plan = inject_fault(&"stuck:temp/fc/1/2/0".parse().unwrap(), &cfg, (2, 0), 7).unwrap();
        let mut state = FaultState::for_plan(&plan);
        let mut first = frame();
        plan.corrupt(&mut first, 2, &mut state, 7);
        let latched = first
            .channel(BlockKind::Fc, 0, SensorChannel::DeltaKelvin)
            .unwrap();
        let mut later = frame();
        later.set_channel(BlockKind::Fc, 0, SensorChannel::DeltaKelvin, 99.0);
        plan.corrupt(&mut later, 5, &mut state, 7);
        assert_eq!(
            later.channel(BlockKind::Fc, 0, SensorChannel::DeltaKelvin),
            Some(latched)
        );

        // Drift: bias grows with exposure, deterministically.
        let plan = inject_fault(
            &"drift:trim:0.1:0/conv/1/0/0".parse().unwrap(),
            &cfg,
            (2, 0),
            7,
        )
        .unwrap();
        let mut state = FaultState::for_plan(&plan);
        let mut early = frame();
        plan.corrupt(&mut early, 0, &mut state, 7);
        let mut late = frame();
        plan.corrupt(&mut late, 9, &mut state, 7);
        let e = early
            .channel(BlockKind::Conv, 0, SensorChannel::TrimOffsetNm)
            .unwrap();
        let l = late
            .channel(BlockKind::Conv, 0, SensorChannel::TrimOffsetNm)
            .unwrap();
        assert!((e - 0.1).abs() < 1e-12, "first-batch drift {e}");
        assert!((l - 1.0).abs() < 1e-12, "tenth-batch drift {l}");
        let mut replay = frame();
        plan.corrupt(&mut replay, 9, &mut FaultState::for_plan(&plan), 7);
        assert_eq!(replay, late, "drift replay diverged");

        // Glitch: rail and drop dip together, then recover.
        let plan =
            inject_fault(&"glitch:0.3:2/fc/1/4/0".parse().unwrap(), &cfg, (2, 0), 7).unwrap();
        let mut state = FaultState::for_plan(&plan);
        let mut dipped = frame();
        plan.corrupt(&mut dipped, 5, &mut state, 7);
        assert!(
            (dipped
                .channel(BlockKind::Fc, 0, SensorChannel::RailPower)
                .unwrap()
                - 0.7)
                .abs()
                < 1e-12
        );
        assert!(
            (dipped
                .channel(BlockKind::Fc, 0, SensorChannel::DropCurrent)
                .unwrap()
                - 0.35)
                .abs()
                < 1e-12
        );
        let mut recovered = frame();
        plan.corrupt(&mut recovered, 6, &mut state, 7);
        assert_eq!(recovered, frame(), "glitch outlived its duration");
    }
}

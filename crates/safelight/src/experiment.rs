//! One driver per paper artifact (Table I, Figs. 6–9), consumed by the
//! `repro` binary in `safelight-bench` and by the integration tests.

use std::path::PathBuf;

use safelight_datasets::{generate, SplitDataset, SyntheticSpec};
use safelight_neuro::{Network, SimRng};
use safelight_onn::{
    AcceleratorConfig, BackendKind, BlockKind, BlockLayout, InferenceBackend, WeightMapping,
};
use safelight_thermal::{Heatmap, ThermalConfig};

use crate::attack::{scenario_grid, scenario_grid_for, Selection, VectorSpec};
use crate::defense::{fig8_variants, train_variant, TrainingRecipe, VariantKind};
use crate::eval::{
    run_mitigation, run_recovery, run_susceptibility, MitigationReport, RecoveryReport,
    SusceptibilityReport,
};
use crate::models::{build_model, dataset_kind_for, ModelKind};
use crate::SafelightError;

/// How much compute an experiment run may spend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Small datasets, few epochs and trials — minutes on two cores.
    Quick,
    /// The full protocol: larger data, 10 trials for Fig. 7, the complete
    /// Fig. 8 variant sweep.
    Full,
}

/// Options shared by all experiment drivers.
#[derive(Debug, Clone)]
pub struct ExperimentOptions {
    /// Compute budget.
    pub fidelity: Fidelity,
    /// Master seed; every stochastic choice derives from it.
    pub seed: u64,
    /// Directory for trained-variant caching (`None` disables caching).
    pub cache_dir: Option<PathBuf>,
    /// Worker threads for trial evaluation.
    pub threads: usize,
    /// Vector stacks swept by the Fig. 7 susceptibility grid. Each entry is
    /// one scenario column: a single vector, or several stacked into one
    /// condition map. Defaults to the paper's pair.
    pub vectors: Vec<Vec<VectorSpec>>,
    /// Site-selection strategies swept by the Fig. 7 grid. Defaults to the
    /// paper's uniform placement.
    pub selections: Vec<Selection>,
    /// Which datapath backend evaluates every scenario (the `repro
    /// --backend` axis). Defaults to the fast analytic path.
    pub backend: BackendKind,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        Self {
            fidelity: Fidelity::Quick,
            seed: 2025,
            cache_dir: Some(PathBuf::from("target/safelight-models")),
            // Saturate the shared worker pool by default; trial results are
            // scenario-ordered and bitwise independent of this value.
            // (`configured_threads` reports the pool's size without
            // spawning it — constructing options stays side-effect free.)
            threads: safelight_neuro::parallel::configured_threads(),
            vectors: VectorSpec::paper_pair().map(|v| vec![v]).into(),
            selections: vec![Selection::Uniform],
            backend: BackendKind::Fast,
        }
    }
}

impl ExperimentOptions {
    /// Dataset size for `kind` at this fidelity.
    ///
    /// CNN_1 gets a larger corpus: the paper's MNIST baseline is trained on
    /// 60 k images and its robustness to weight corruption depends on that
    /// over-training, so the small model gets the most data.
    #[must_use]
    pub fn data_spec(&self, kind: ModelKind) -> SyntheticSpec {
        let (train, test) = match self.fidelity {
            Fidelity::Quick => (700, 200),
            Fidelity::Full => (1_500, 400),
        };
        let grow = match kind {
            ModelKind::Cnn1 => 2.0,
            ModelKind::ResNet18s => 0.8,
            ModelKind::Vgg16s => 0.7,
        };
        SyntheticSpec {
            train: (train as f64 * grow) as usize,
            test: (test as f64 * grow.min(1.0)) as usize,
            seed: self.seed ^ 0xDA7A,
            ..SyntheticSpec::default()
        }
    }

    /// Training recipe for `kind` at this fidelity.
    #[must_use]
    pub fn recipe(&self, kind: ModelKind) -> TrainingRecipe {
        let base = TrainingRecipe::for_model(kind);
        match self.fidelity {
            Fidelity::Quick => TrainingRecipe {
                epochs: (base.epochs / 2).max(4),
                ..base
            },
            Fidelity::Full => base,
        }
    }

    /// Attack trials per scenario cell for Fig. 7.
    #[must_use]
    pub fn fig7_trials(&self) -> u64 {
        match self.fidelity {
            Fidelity::Quick => 3,
            Fidelity::Full => 10,
        }
    }

    /// Attack trials per scenario cell for the Fig. 8 variant sweep (kept
    /// smaller than Fig. 7's because 11 variants multiply the cost).
    #[must_use]
    pub fn fig8_trials(&self) -> u64 {
        match self.fidelity {
            Fidelity::Quick => 2,
            Fidelity::Full => 3,
        }
    }

    /// Attack trials per scenario cell for the detection sweep (each trial
    /// is additionally replayed under several telemetry noise seeds, so
    /// fewer site draws already give a well-populated TPR estimate).
    #[must_use]
    pub fn detection_trials(&self) -> u64 {
        match self.fidelity {
            Fidelity::Quick => 2,
            Fidelity::Full => 3,
        }
    }

    /// The detection-evaluation knobs at this fidelity.
    #[must_use]
    pub fn detection_options(&self) -> crate::eval::DetectionOptions {
        let base = crate::eval::DetectionOptions::default();
        match self.fidelity {
            Fidelity::Quick => crate::eval::DetectionOptions {
                frames: 16,
                onset: 6,
                calibration_frames: 32,
                clean_runs: 24,
                attack_runs: 3,
                ..base
            },
            Fidelity::Full => base,
        }
    }

    /// The attack intensities of §IV.
    #[must_use]
    pub fn fractions(&self) -> Vec<f64> {
        vec![0.01, 0.05, 0.10]
    }

    /// The Fig. 7 scenario grid implied by these options: every configured
    /// vector stack × selection × target × fraction, with `trials` trials.
    ///
    /// (The dead `accelerator()` helper that used to live here returned
    /// `AcceleratorConfig::scaled_experiment`, silently diverging from the
    /// per-model `matched_accelerator` profile [`workbench`] actually uses;
    /// it has been removed rather than left as a trap.)
    #[must_use]
    pub fn fig7_grid(&self, trials: u64) -> Vec<crate::attack::ScenarioSpec> {
        scenario_grid_for(&self.vectors, &self.selections, &self.fractions(), trials)
    }
}

/// Everything the per-model experiments share: data, mapping and the
/// trained variant networks.
#[derive(Debug, Clone)]
pub struct ModelWorkbench {
    /// Which model this is.
    pub kind: ModelKind,
    /// Train/test data.
    pub data: SplitDataset,
    /// Accelerator profile.
    pub config: AcceleratorConfig,
    /// Weight-stationary mapping of the model.
    pub mapping: WeightMapping,
    /// The trained `Original` (no-mitigation) network.
    pub original: Network,
    /// The datapath backend the experiment evaluates through (resolved
    /// from [`ExperimentOptions::backend`] for this model's accelerator).
    pub backend: Box<dyn InferenceBackend>,
}

/// Builds the shared workbench for `kind`: generates data, trains the
/// original model (through the cache) and derives the mapping.
///
/// # Errors
///
/// Propagates generation, training and mapping errors.
pub fn workbench(
    kind: ModelKind,
    opts: &ExperimentOptions,
) -> Result<ModelWorkbench, SafelightError> {
    let data = generate(dataset_kind_for(kind), &opts.data_spec(kind))?;
    let config = crate::models::matched_accelerator(kind)?;
    let bundle = build_model(kind, opts.recipe(kind).seed)?;
    let mapping = WeightMapping::new(&config, &bundle.layer_specs)?;
    let original = train_variant(
        kind,
        VariantKind::Original,
        &data,
        &opts.recipe(kind),
        opts.cache_dir.as_deref(),
    )?;
    let backend = opts.backend.build(&config);
    Ok(ModelWorkbench {
        kind,
        data,
        config,
        mapping,
        original,
        backend,
    })
}

/// The Fig. 6 artifact: the CONV block's steady-state ΔT heatmap with two
/// hotspot-attacked banks.
#[derive(Debug, Clone)]
pub struct Fig6Artifact {
    /// ΔT heatmap over the CONV block floorplan (kelvin above ambient).
    pub heatmap: Heatmap,
    /// Which banks the trojan heaters inhabit.
    pub attacked_banks: Vec<usize>,
    /// Peak ΔT on the die.
    pub peak_delta_kelvin: f64,
    /// Mean ΔT over the *non-attacked* banks — the spill-over the paper
    /// highlights.
    pub neighbour_mean_delta_kelvin: f64,
}

/// Reproduces Fig. 6: heats two randomly chosen CONV banks with multiple
/// compromised heaters and solves the block's temperature field.
///
/// # Errors
///
/// Propagates layout and thermal-solver errors.
pub fn run_fig6(opts: &ExperimentOptions) -> Result<Fig6Artifact, SafelightError> {
    // Fig. 6 shows the paper's own CONV block (100 VDP banks of 20×20 MRs).
    // The full-resolution solve is affordable in release builds (`Full`);
    // the quick profile uses a reduced block so debug-mode tests stay fast.
    let config = match opts.fidelity {
        Fidelity::Full => AcceleratorConfig::paper()?,
        Fidelity::Quick => AcceleratorConfig::scaled_experiment()?,
    };
    let shape = *config.block(BlockKind::Conv);
    let layout = BlockLayout::new(shape, BlockKind::Conv, 1)?;
    let mut rng = SimRng::seed_from(opts.seed).derive(0xF16);
    let attacked_banks = rng.sample_distinct(shape.vdp_units, 2);

    let mut grid = layout.thermal_grid(ThermalConfig::default())?;
    for &bank in &attacked_banks {
        let rect = layout
            .floorplan()
            .bank(bank)
            .map_err(safelight_onn::OnnError::from)?
            .rect;
        // "Multiple compromised heaters": each attacked bank dissipates a
        // trojan-driven 60 mW spread over its heater array.
        grid.add_power_region(rect, 0.06)?;
    }
    let field = grid.solve()?;

    let mut neighbour_sum = 0.0;
    let mut neighbour_count = 0usize;
    for placement in layout.floorplan().banks() {
        if !attacked_banks.contains(&placement.bank) {
            neighbour_sum += field.mean_delta_in(placement.rect)?;
            neighbour_count += 1;
        }
    }
    Ok(Fig6Artifact {
        heatmap: field.to_heatmap(),
        attacked_banks,
        peak_delta_kelvin: field.max_delta(),
        neighbour_mean_delta_kelvin: neighbour_sum / neighbour_count.max(1) as f64,
    })
}

/// Reproduces one panel of Fig. 7: the susceptibility sweep of `kind`
/// across the full §IV scenario grid.
///
/// # Errors
///
/// Propagates workbench and sweep errors.
pub fn run_fig7(
    kind: ModelKind,
    opts: &ExperimentOptions,
) -> Result<(ModelWorkbench, SusceptibilityReport), SafelightError> {
    let bench = workbench(kind, opts)?;
    let scenarios = opts.fig7_grid(opts.fig7_trials());
    let report = run_susceptibility(
        &bench.original,
        &bench.mapping,
        bench.backend.as_ref(),
        &bench.data.test,
        &scenarios,
        opts.seed,
        opts.threads,
    )?;
    Ok((bench, report))
}

/// The full Fig. 8 artifact: the shared workbench, every trained variant
/// network, and the robustness report.
///
/// Carrying the trained networks out of [`run_fig8`] lets [`run_fig9`]
/// reuse the winning variant instead of retraining it (with
/// `cache_dir: None` the retrain used to double the most expensive step).
#[derive(Debug, Clone)]
pub struct Fig8Run {
    /// Data, mapping and the original network.
    pub workbench: ModelWorkbench,
    /// Every Fig. 8 variant with its trained network, in axis order.
    pub variants: Vec<(VariantKind, Network)>,
    /// The robustness summary per variant.
    pub report: MitigationReport,
}

impl Fig8Run {
    /// The trained network of `variant`, if it was on the Fig. 8 axis.
    #[must_use]
    pub fn trained(&self, variant: VariantKind) -> Option<&Network> {
        self.variants
            .iter()
            .find(|(v, _)| *v == variant)
            .map(|(_, network)| network)
    }
}

/// Runs the runtime-detection evaluation for `kind`: trains (or loads) the
/// original model, builds the scenario grid implied by the options'
/// vectors/selections with [`ExperimentOptions::detection_trials`] trials,
/// and measures the stock detector suite ([`crate::detect`]) against it.
///
/// # Errors
///
/// Propagates workbench and detection-evaluation errors.
pub fn run_detection_experiment(
    kind: ModelKind,
    opts: &ExperimentOptions,
) -> Result<(ModelWorkbench, crate::eval::DetectionReport), SafelightError> {
    let bench = workbench(kind, opts)?;
    let scenarios = opts.fig7_grid(opts.detection_trials());
    let report = crate::eval::run_detection(
        &bench.original,
        &bench.mapping,
        bench.backend.as_ref(),
        &scenarios,
        &crate::detect::default_detectors(),
        &opts.detection_options(),
        opts.seed,
        opts.threads,
    )?;
    Ok((bench, report))
}

/// Reproduces one panel of Fig. 8: trains every variant on the Fig. 8 axis
/// and summarizes each across the attack grid. The trained variants ride
/// along in the returned [`Fig8Run`] for downstream reuse.
///
/// # Errors
///
/// Propagates training and evaluation errors.
pub fn run_fig8(kind: ModelKind, opts: &ExperimentOptions) -> Result<Fig8Run, SafelightError> {
    let bench = workbench(kind, opts)?;
    let recipe = opts.recipe(kind);
    let mut variants = Vec::new();
    for variant in fig8_variants() {
        let network = train_variant(
            kind,
            variant,
            &bench.data,
            &recipe,
            opts.cache_dir.as_deref(),
        )?;
        variants.push((variant, network));
    }
    let scenarios = scenario_grid(&opts.fractions(), opts.fig8_trials());
    let report = run_mitigation(
        &variants,
        &bench.mapping,
        bench.backend.as_ref(),
        &bench.data.test,
        &scenarios,
        opts.seed,
        opts.threads,
    )?;
    Ok(Fig8Run {
        workbench: bench,
        variants,
        report,
    })
}

/// The Fig. 9 comparison for an already-computed Fig. 8 run: picks the most
/// robust variant *from the run's trained networks* and compares it against
/// the original model at every attack intensity.
///
/// This function takes no training inputs at all — it cannot retrain, which
/// is the point: the winner was just trained by [`run_fig8`].
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn run_fig9_from(
    fig8: &Fig8Run,
    opts: &ExperimentOptions,
) -> Result<(VariantKind, RecoveryReport), SafelightError> {
    let best = fig8
        .report
        .most_robust()
        .expect("fig8 axis is non-empty")
        .variant;
    let robust = fig8
        .trained(best)
        .expect("the most robust variant was trained in this run");
    let bench = &fig8.workbench;
    let report = run_recovery(
        &bench.original,
        robust,
        &bench.mapping,
        bench.backend.as_ref(),
        &bench.data.test,
        &opts.fractions(),
        opts.fig7_trials(),
        opts.seed,
        opts.threads,
    )?;
    Ok((best, report))
}

/// Reproduces one panel of Fig. 9: picks the most robust Fig. 8 variant
/// and compares it against the original model at every attack intensity.
///
/// Returns the chosen variant alongside the report.
///
/// # Errors
///
/// Propagates training and evaluation errors.
pub fn run_fig9(
    kind: ModelKind,
    opts: &ExperimentOptions,
) -> Result<(VariantKind, RecoveryReport), SafelightError> {
    let fig8 = run_fig8(kind, opts)?;
    run_fig9_from(&fig8, opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> ExperimentOptions {
        ExperimentOptions {
            fidelity: Fidelity::Quick,
            seed: 1,
            cache_dir: None,
            threads: 2,
            ..ExperimentOptions::default()
        }
    }

    #[test]
    fn fig6_heats_two_banks_and_their_neighbours() {
        let artifact = run_fig6(&tiny_opts()).unwrap();
        assert_eq!(artifact.attacked_banks.len(), 2);
        assert!(
            artifact.peak_delta_kelvin > 10.0,
            "peak {}",
            artifact.peak_delta_kelvin
        );
        assert!(
            artifact.neighbour_mean_delta_kelvin > 0.0,
            "no spill-over measured"
        );
        assert!(artifact.neighbour_mean_delta_kelvin < artifact.peak_delta_kelvin);
        // The heatmap covers the CONV floorplan.
        assert!(artifact.heatmap.width() > 10 && artifact.heatmap.height() > 10);
    }

    #[test]
    fn options_scale_with_fidelity() {
        let quick = tiny_opts();
        let full = ExperimentOptions {
            fidelity: Fidelity::Full,
            ..tiny_opts()
        };
        assert!(quick.fig7_trials() < full.fig7_trials());
        assert!(quick.data_spec(ModelKind::Cnn1).train < full.data_spec(ModelKind::Cnn1).train);
        assert!(quick.recipe(ModelKind::Cnn1).epochs < full.recipe(ModelKind::Cnn1).epochs);
    }

    #[test]
    fn fig7_grid_scales_with_configured_vectors_and_selections() {
        let opts = tiny_opts();
        // Paper default: 2 stacks × 1 selection × 3 targets × 3 fractions.
        assert_eq!(opts.fig7_grid(2).len(), 2 * 3 * 3 * 2);
        let extended = ExperimentOptions {
            vectors: vec![
                vec![VectorSpec::Actuation],
                vec![VectorSpec::laser_default()],
                vec![VectorSpec::Actuation, VectorSpec::Hotspot],
            ],
            selections: vec![Selection::Uniform, Selection::Targeted],
            ..tiny_opts()
        };
        let grid = extended.fig7_grid(1);
        assert_eq!(grid.len(), 3 * 2 * 3 * 3);
        assert!(grid.iter().any(|s| s.is_stacked()));
    }

    #[test]
    fn fig9_reuses_the_fig8_winner_without_retraining() {
        // Regression for the double-training bug: `run_fig9_from` has no
        // access to training inputs, so the recovery comparison *must* run
        // against the network trained during Fig. 8. Verify the lookup
        // plumbing hands back the exact stored network.
        use crate::defense::VariantKind;
        use crate::models::build_model;

        let data = safelight_datasets::generate(
            crate::models::dataset_kind_for(ModelKind::Cnn1),
            &SyntheticSpec {
                train: 40,
                test: 20,
                seed: 5,
                ..SyntheticSpec::default()
            },
        )
        .unwrap();
        let config = crate::models::matched_accelerator(ModelKind::Cnn1).unwrap();
        let bundle = build_model(ModelKind::Cnn1, 7).unwrap();
        let mapping = WeightMapping::new(&config, &bundle.layer_specs).unwrap();
        let original = bundle.network.clone();
        let better = build_model(ModelKind::Cnn1, 8).unwrap().network;
        let fig8 = Fig8Run {
            workbench: ModelWorkbench {
                kind: ModelKind::Cnn1,
                backend: safelight_onn::BackendKind::Fast.build(&config),
                data,
                config,
                mapping,
                original: original.clone(),
            },
            variants: vec![
                (VariantKind::Original, original.clone()),
                (VariantKind::L2Noise(3), better.clone()),
            ],
            report: MitigationReport {
                outcomes: vec![
                    crate::eval::VariantOutcome {
                        variant: VariantKind::Original,
                        baseline: 0.9,
                        stats: crate::eval::BoxStats::from_values(&[0.5]).unwrap(),
                    },
                    crate::eval::VariantOutcome {
                        variant: VariantKind::L2Noise(3),
                        baseline: 0.9,
                        stats: crate::eval::BoxStats::from_values(&[0.7]).unwrap(),
                    },
                ],
            },
        };
        // The stored winner network is handed back by identity of values.
        let stored = fig8.trained(VariantKind::L2Noise(3)).unwrap();
        for (a, b) in stored.params().iter().zip(better.params().iter()) {
            assert_eq!(a.value.as_slice(), b.value.as_slice());
        }
        // And the fig9 driver runs end-to-end against it.
        let opts = ExperimentOptions {
            threads: 1,
            ..tiny_opts()
        };
        let (best, report) = run_fig9_from(&fig8, &opts).unwrap();
        assert_eq!(best, VariantKind::L2Noise(3));
        assert_eq!(report.intervals.len(), 2 * opts.fractions().len());
    }
}

//! The composable hardware-trojan attack engine (paper §III, extended).
//!
//! The paper models exactly two trojan vectors; this module generalizes
//! them into a pluggable scenario engine:
//!
//! * a [`ScenarioSpec`] describes *what* is injected — one or more
//!   [`VectorSpec`] vectors (stacked into a single [`ConditionMap`]), a
//!   [`Selection`] strategy for *where* the trojans sit, the targeted
//!   block(s), the attack fraction and the trial index;
//! * every vector is implemented behind the [`Injector`] trait, so new
//!   vectors plug in without touching the sweep pipelines.
//!
//! Built-in vectors:
//!
//! * **Actuation** ([`inject_actuation`]) — HTs in the electro-optic
//!   signal-modulation circuits park individual microrings off-resonance
//!   (paper §III.B.1, Fig. 4).
//! * **Hotspot** ([`inject_hotspot`]) — HTs drive whole banks' thermo-optic
//!   heaters; a finite-difference thermal solve produces the temperature
//!   field, heating the attacked banks *and* their neighbours (paper
//!   §III.B.2, Figs. 5–6).
//! * **Laser power degradation** ([`inject_laser_degradation`]) — a trojan
//!   taps or throttles the optical power feeding the compromised rings'
//!   WDM channels, scaling their effective weights toward zero.
//! * **Partial trim drift** ([`inject_trim_drift`]) — the trojan pins the
//!   compromised rings' trim DACs a parameterized offset away from
//!   calibration: a graded detuning between `Healthy` and the binary
//!   `Parked` extreme.
//!
//! All of them produce a [`ConditionMap`] consumed by
//! [`safelight_onn::corrupt_network`].

mod actuation;
mod hotspot;
mod laser;
mod select;
mod trim;

pub use actuation::{inject_actuation, ActuationInjector};
pub use hotspot::{inject_hotspot, HotspotInjector, HotspotOptions};
pub use laser::{degradation_factor, inject_laser_degradation, LaserDegradationInjector};
pub use select::{select_banks, select_rings, RingSalience};
pub use trim::{inject_trim_drift, TrimDriftInjector};

use std::collections::BTreeSet;

use safelight_neuro::SimRng;
use safelight_onn::{AcceleratorConfig, BlockKind, ConditionMap};

use crate::SafelightError;

/// One attack vector with its physical parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VectorSpec {
    /// EO-modulation actuation attack parking individual microrings.
    Actuation,
    /// Thermo-optic hotspot attack on whole banks of microrings.
    Hotspot,
    /// Laser power-degradation attack throttling per-channel optical power.
    LaserDegradation {
        /// Parasitic insertion loss of the trojan tap, in dB (> 0).
        loss_db: f64,
    },
    /// Partial trim-drift attack pinning trim DACs off their set point.
    TrimDrift {
        /// Drift as a fraction of the WDM channel spacing (> 0).
        detune_rel: f64,
    },
}

impl VectorSpec {
    /// The default laser-degradation vector: a 3 dB tap (half the channel
    /// power survives).
    #[must_use]
    pub fn laser_default() -> Self {
        Self::LaserDegradation { loss_db: 3.0 }
    }

    /// The default trim-drift vector: 40 % of a channel spacing — enough to
    /// badly corrupt a weight without handing it to the neighbour channel.
    #[must_use]
    pub fn trim_default() -> Self {
        Self::TrimDrift { detune_rel: 0.4 }
    }

    /// The paper's two vectors, in presentation order.
    #[must_use]
    pub fn paper_pair() -> [Self; 2] {
        [Self::Actuation, Self::Hotspot]
    }

    /// Compact label used in spec strings and CSV columns.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            Self::Actuation => "actuation".into(),
            Self::Hotspot => "hotspot".into(),
            Self::LaserDegradation { loss_db } => format!("laser:{loss_db}"),
            Self::TrimDrift { detune_rel } => format!("trim:{detune_rel}"),
        }
    }

    /// The injector implementing this vector (with default options).
    #[must_use]
    pub fn injector(&self) -> Box<dyn Injector> {
        match *self {
            Self::Actuation => Box::new(ActuationInjector),
            Self::Hotspot => Box::new(HotspotInjector::default()),
            Self::LaserDegradation { loss_db } => Box::new(LaserDegradationInjector { loss_db }),
            Self::TrimDrift { detune_rel } => Box::new(TrimDriftInjector { detune_rel }),
        }
    }

    /// Words folded into the per-scenario RNG stream key: a vector tag plus
    /// the full bit patterns of its parameters, so nearby parameter values
    /// never alias onto one stream.
    fn stream_words(&self) -> [u64; 2] {
        match *self {
            Self::Actuation => [0x00AC, 0],
            Self::Hotspot => [0x0107, 0],
            Self::LaserDegradation { loss_db } => [0x1A5E, loss_db.to_bits()],
            Self::TrimDrift { detune_rel } => [0x7815, detune_rel.to_bits()],
        }
    }
}

impl std::fmt::Display for VectorSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad(&self.label())
    }
}

impl std::str::FromStr for VectorSpec {
    type Err = SafelightError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (head, param) = match s.split_once(':') {
            Some((head, param)) => (head, Some(param)),
            None => (s, None),
        };
        let parse_param = |name: &str| -> Result<f64, SafelightError> {
            param
                .ok_or_else(|| SafelightError::Parse(format!("`{s}`: missing {name} parameter")))?
                .parse::<f64>()
                .map_err(|e| SafelightError::Parse(format!("`{s}`: {e}")))
        };
        match head {
            "actuation" => Ok(Self::Actuation),
            "hotspot" => Ok(Self::Hotspot),
            "laser" => Ok(match param {
                None => Self::laser_default(),
                Some(_) => Self::LaserDegradation {
                    loss_db: parse_param("loss_db")?,
                },
            }),
            "trim" => Ok(match param {
                None => Self::trim_default(),
                Some(_) => Self::TrimDrift {
                    detune_rel: parse_param("detune_rel")?,
                },
            }),
            other => Err(SafelightError::Parse(format!(
                "unknown attack vector `{other}`"
            ))),
        }
    }
}

/// How attack sites are chosen within the targeted block(s).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Selection {
    /// Uniformly random sites (the paper's §IV placement).
    Uniform,
    /// One contiguous run of sites starting at a random position — a
    /// foundry-stage trojan dropped into one region of the die.
    Clustered,
    /// The sites carrying the largest |weights| — the worst-case,
    /// netlist-aware adversary. Needs a [`RingSalience`].
    Targeted,
}

impl Selection {
    /// All strategies, in severity order.
    #[must_use]
    pub fn all() -> [Self; 3] {
        [Self::Uniform, Self::Clustered, Self::Targeted]
    }

    /// Compact label used in spec strings and CSV columns.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Self::Uniform => "uniform",
            Self::Clustered => "clustered",
            Self::Targeted => "targeted",
        }
    }

    fn stream_word(self) -> u64 {
        match self {
            Self::Uniform => 0x51,
            Self::Clustered => 0x52,
            Self::Targeted => 0x53,
        }
    }
}

impl std::fmt::Display for Selection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad(self.label())
    }
}

impl std::str::FromStr for Selection {
    type Err = SafelightError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "uniform" => Ok(Self::Uniform),
            "clustered" => Ok(Self::Clustered),
            "targeted" => Ok(Self::Targeted),
            other => Err(SafelightError::Parse(format!(
                "unknown selection strategy `{other}`"
            ))),
        }
    }
}

/// Which accelerator block(s) the trojans inhabit (§IV's three cases).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackTarget {
    /// Only the CONV block.
    ConvBlock,
    /// Only the FC block.
    FcBlock,
    /// Both blocks (the paper's "CONV + FC" case).
    Both,
}

impl AttackTarget {
    /// The blocks this target covers.
    #[must_use]
    pub fn blocks(&self) -> Vec<BlockKind> {
        match self {
            Self::ConvBlock => vec![BlockKind::Conv],
            Self::FcBlock => vec![BlockKind::Fc],
            Self::Both => vec![BlockKind::Conv, BlockKind::Fc],
        }
    }

    /// Word folded into RNG stream keys (also by the benign-fault specs in
    /// [`crate::fault`], which share the attack engine's derivation
    /// discipline).
    pub(crate) fn stream_word(self) -> u64 {
        match self {
            Self::ConvBlock => 0x1000,
            Self::FcBlock => 0x2000,
            Self::Both => 0x3000,
        }
    }
}

impl std::fmt::Display for AttackTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ConvBlock => write!(f, "CONV"),
            Self::FcBlock => write!(f, "FC"),
            Self::Both => write!(f, "CONV+FC"),
        }
    }
}

impl std::str::FromStr for AttackTarget {
    type Err = SafelightError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "conv" => Ok(Self::ConvBlock),
            "fc" => Ok(Self::FcBlock),
            "both" => Ok(Self::Both),
            other => Err(SafelightError::Parse(format!(
                "unknown attack target `{other}` (expected conv|fc|both)"
            ))),
        }
    }
}

pub(crate) fn target_token(target: AttackTarget) -> &'static str {
    match target {
        AttackTarget::ConvBlock => "conv",
        AttackTarget::FcBlock => "fc",
        AttackTarget::Both => "both",
    }
}

/// One attack instance: a stack of vectors × site selection × target ×
/// intensity × trial index.
///
/// A spec round-trips through its canonical string form
/// (`vector[+vector…]/selection/target/fraction/trial`), so scenario grids
/// can be stored in configs, CSV columns and CLI flags:
///
/// ```
/// use safelight::attack::ScenarioSpec;
///
/// let spec: ScenarioSpec = "actuation+hotspot/targeted/both/0.05/3".parse().unwrap();
/// assert_eq!(spec.vectors.len(), 2);
/// assert_eq!(spec.to_spec_string().parse::<ScenarioSpec>().unwrap(), spec);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// The vectors stacked into this scenario, applied in order. Where
    /// site draws overlap, conditions merge per [`ConditionMap::stack`]
    /// (pinned resonance states dominate upstream power faults, heat
    /// carries and tap factors compose) and heat per
    /// [`ConditionMap::add_heat`].
    pub vectors: Vec<VectorSpec>,
    /// Site-selection strategy shared by every vector in the stack.
    pub selection: Selection,
    /// Which block(s) are compromised.
    pub target: AttackTarget,
    /// Fraction of the targeted blocks' microrings under attack
    /// (the paper sweeps 0.01, 0.05 and 0.10).
    pub fraction: f64,
    /// Trial index — the paper runs 10 uniformly distributed random
    /// combinations per case; the trial seeds the site sampling.
    pub trial: u64,
}

impl ScenarioSpec {
    /// A single-vector scenario with the paper's uniform site selection.
    #[must_use]
    pub fn new(vector: VectorSpec, target: AttackTarget, fraction: f64, trial: u64) -> Self {
        Self {
            vectors: vec![vector],
            selection: Selection::Uniform,
            target,
            fraction,
            trial,
        }
    }

    /// A stacked multi-vector scenario (vectors applied in order).
    #[must_use]
    pub fn stacked(
        vectors: Vec<VectorSpec>,
        target: AttackTarget,
        fraction: f64,
        trial: u64,
    ) -> Self {
        Self {
            vectors,
            selection: Selection::Uniform,
            target,
            fraction,
            trial,
        }
    }

    /// Replaces the site-selection strategy.
    #[must_use]
    pub fn with_selection(mut self, selection: Selection) -> Self {
        self.selection = selection;
        self
    }

    /// Whether more than one vector is stacked.
    #[must_use]
    pub fn is_stacked(&self) -> bool {
        self.vectors.len() > 1
    }

    /// The stack's compact label, e.g. `actuation+hotspot`.
    #[must_use]
    pub fn vector_label(&self) -> String {
        self.vectors
            .iter()
            .map(VectorSpec::label)
            .collect::<Vec<_>>()
            .join("+")
    }

    /// Whether the stack contains `vector`.
    #[must_use]
    pub fn has_vector(&self, vector: VectorSpec) -> bool {
        self.vectors.contains(&vector)
    }

    /// The canonical serialized form; parse it back with
    /// [`str::parse::<ScenarioSpec>()`](std::str::FromStr).
    #[must_use]
    pub fn to_spec_string(&self) -> String {
        format!(
            "{}/{}/{}/{}/{}",
            self.vector_label(),
            self.selection.label(),
            target_token(self.target),
            self.fraction,
            self.trial
        )
    }

    /// The RNG stream key of vector `index` in this scenario: every field
    /// is avalanche-mixed separately, so neighbouring trials, targets,
    /// fractions and stacked vectors can never alias onto one stream (the
    /// seed's additive tag mixing let `(trial t + 0x1000, Conv)` collide
    /// with `(trial t, Fc)`, and truncated fractions closer than 1e-4).
    fn stream_key(&self, index: usize) -> u64 {
        let mut h = 0x5AFE_11E7_0DD5_EED1_u64;
        h = fold(h, self.trial);
        h = fold(h, self.target.stream_word());
        h = fold(h, self.selection.stream_word());
        h = fold(h, self.fraction.to_bits());
        h = fold(h, index as u64);
        for word in self.vectors[index].stream_words() {
            h = fold(h, word);
        }
        h
    }
}

impl std::fmt::Display for ScenarioSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {}% on {} [{}] (trial {})",
            self.vector_label(),
            self.fraction * 100.0,
            self.target,
            self.selection,
            self.trial
        )
    }
}

impl std::str::FromStr for ScenarioSpec {
    type Err = SafelightError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split('/').collect();
        let [vectors, selection, target, fraction, trial] = parts.as_slice() else {
            return Err(SafelightError::Parse(format!(
                "`{s}`: expected vector[+vector…]/selection/target/fraction/trial"
            )));
        };
        // `split('+')` always yields at least one token, and an empty token
        // fails `VectorSpec::from_str`, so the stack is never empty here.
        let vectors = vectors
            .split('+')
            .map(str::parse)
            .collect::<Result<Vec<VectorSpec>, _>>()?;
        Ok(Self {
            vectors,
            selection: selection.parse()?,
            target: target.parse()?,
            fraction: fraction
                .parse::<f64>()
                .map_err(|e| SafelightError::Parse(format!("`{s}`: fraction: {e}")))?,
            trial: trial
                .parse::<u64>()
                .map_err(|e| SafelightError::Parse(format!("`{s}`: trial: {e}")))?,
        })
    }
}

/// SplitMix64 finalizer: a full-avalanche 64-bit mix.
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Folds one field into a stream key with full avalanche per field — the
/// workspace's shared discipline for deriving independent RNG streams
/// from scenario specs, trial indices and member salts (also used by the
/// serving runtime, so noise streams never alias across subsystems).
#[must_use]
pub fn fold(h: u64, field: u64) -> u64 {
    mix64(h.rotate_left(25) ^ field.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Site granularity of an attack vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Granularity {
    /// The vector compromises individual rings.
    Ring,
    /// The vector compromises whole VDP banks (e.g. shared bank heaters).
    Bank,
}

/// The sites a vector compromises in one block, at its granularity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Sites {
    /// Flat ring indices within the block.
    Rings(Vec<u64>),
    /// Bank (VDP unit) indices within the block.
    Banks(Vec<usize>),
}

/// A pluggable attack-vector injector: turns the selected sites of one
/// block into per-ring fault conditions merged into a [`ConditionMap`].
///
/// Implement this trait (plus a grid of [`ScenarioSpec`]s built around it)
/// to evaluate a new trojan vector through the existing sweep pipelines.
pub trait Injector {
    /// The site granularity this vector attacks at.
    fn granularity(&self) -> Granularity;

    /// Applies the vector to `sites` of `kind`'s block.
    ///
    /// # Errors
    ///
    /// Returns [`SafelightError::InvalidParameter`] for invalid vector
    /// parameters or mismatched site granularity, and propagates physical
    /// model errors (e.g. thermal solves).
    fn apply(
        &self,
        config: &AcceleratorConfig,
        kind: BlockKind,
        sites: &Sites,
        conditions: &mut ConditionMap,
    ) -> Result<(), SafelightError>;
}

/// The result of injecting one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Injection {
    /// Per-ring fault conditions for [`safelight_onn::corrupt_network`].
    pub conditions: ConditionMap,
    /// Fraction of the targeted blocks' rings under *direct trojan
    /// control*. Bank-granular vectors clamp to whole banks, so this is ≥
    /// the nominal fraction (a nominal 1 % hotspot on the scaled CONV block
    /// covers one full bank = 4 % of its rings); spill-over heating is not
    /// counted.
    pub effective_fraction: f64,
}

/// The paper's §IV scenario grid: the two paper vectors × every target ×
/// fraction × trial, with uniform site selection, in deterministic order.
///
/// # Example
///
/// ```
/// use safelight::attack::scenario_grid;
///
/// let grid = scenario_grid(&[0.01, 0.05, 0.10], 10);
/// // 2 vectors × 3 targets × 3 fractions × 10 trials.
/// assert_eq!(grid.len(), 180);
/// ```
#[must_use]
pub fn scenario_grid(fractions: &[f64], trials: u64) -> Vec<ScenarioSpec> {
    let stacks: Vec<Vec<VectorSpec>> = VectorSpec::paper_pair().map(|v| vec![v]).into();
    scenario_grid_for(&stacks, &[Selection::Uniform], fractions, trials)
}

/// A composable scenario grid: every stack × selection × target × fraction
/// × trial combination, in deterministic order.
///
/// [`Selection::Targeted`] placement is fully determined by the weights —
/// the trial RNG never enters it — so targeted cells collapse to a single
/// trial instead of evaluating `trials` identical injections.
#[must_use]
pub fn scenario_grid_for(
    stacks: &[Vec<VectorSpec>],
    selections: &[Selection],
    fractions: &[f64],
    trials: u64,
) -> Vec<ScenarioSpec> {
    let mut grid = Vec::new();
    for stack in stacks {
        for &selection in selections {
            let trials = match selection {
                Selection::Targeted => trials.min(1),
                Selection::Uniform | Selection::Clustered => trials,
            };
            for target in [
                AttackTarget::ConvBlock,
                AttackTarget::FcBlock,
                AttackTarget::Both,
            ] {
                for &fraction in fractions {
                    for trial in 0..trials {
                        grid.push(ScenarioSpec {
                            vectors: stack.clone(),
                            selection,
                            target,
                            fraction,
                            trial,
                        });
                    }
                }
            }
        }
    }
    grid
}

/// The extended threat model's vector stacks: the paper pair, both new
/// vectors and the stacked actuation+hotspot scenario. The single source
/// for what "extended" means — [`extended_scenario_grid`] and the `repro`
/// binary's `--vectors extended` both build from it.
#[must_use]
pub fn extended_stacks() -> Vec<Vec<VectorSpec>> {
    vec![
        vec![VectorSpec::Actuation],
        vec![VectorSpec::Hotspot],
        vec![VectorSpec::laser_default()],
        vec![VectorSpec::trim_default()],
        stacked_pair(),
    ]
}

/// The canonical stacked scenario: the paper's two vectors composed into
/// one condition map. The single definition behind `--vectors stacked`,
/// [`extended_stacks`] and the sweep bench.
#[must_use]
pub fn stacked_pair() -> Vec<VectorSpec> {
    vec![VectorSpec::Actuation, VectorSpec::Hotspot]
}

/// The extended threat-model grid: every [`extended_stacks`] stack under
/// every selection strategy.
#[must_use]
pub fn extended_scenario_grid(fractions: &[f64], trials: u64) -> Vec<ScenarioSpec> {
    scenario_grid_for(&extended_stacks(), &Selection::all(), fractions, trials)
}

/// Injects `spec` into an accelerator. `seed` is the experiment-level
/// seed; every spec field derives the per-trial RNG stream, so trials are
/// independent but reproducible, regardless of evaluation threading.
///
/// `salience` is required for [`Selection::Targeted`] scenarios (it
/// carries the weight magnitudes a netlist-aware adversary exploits); pass
/// `None` otherwise.
///
/// # Errors
///
/// Returns [`SafelightError::InvalidParameter`] for a fraction outside
/// `(0, 1]`, an empty vector stack, invalid vector parameters, or a
/// targeted scenario without salience; propagates thermal-solver errors
/// for hotspot vectors.
pub fn inject_full(
    spec: &ScenarioSpec,
    config: &AcceleratorConfig,
    salience: Option<&RingSalience>,
    seed: u64,
) -> Result<Injection, SafelightError> {
    if !(spec.fraction > 0.0 && spec.fraction <= 1.0) {
        return Err(SafelightError::InvalidParameter {
            name: "fraction",
            value: spec.fraction,
        });
    }
    if spec.vectors.is_empty() {
        return Err(SafelightError::InvalidParameter {
            name: "vectors",
            value: 0.0,
        });
    }
    let mut conditions = ConditionMap::new();
    // Keyed by (is-FC, ring) — `BlockKind` itself is not `Ord`.
    let mut controlled: BTreeSet<(bool, u64)> = BTreeSet::new();
    for (index, vector) in spec.vectors.iter().enumerate() {
        let mut rng = SimRng::seed_from(seed).derive(spec.stream_key(index));
        let injector = vector.injector();
        for kind in spec.target.blocks() {
            let sites = match injector.granularity() {
                Granularity::Ring => Sites::Rings(select_rings(
                    config,
                    kind,
                    spec.fraction,
                    spec.selection,
                    salience,
                    &mut rng,
                )?),
                Granularity::Bank => Sites::Banks(select_banks(
                    config,
                    kind,
                    spec.fraction,
                    spec.selection,
                    salience,
                    &mut rng,
                )?),
            };
            let is_fc = kind == BlockKind::Fc;
            match &sites {
                Sites::Rings(rings) => {
                    controlled.extend(rings.iter().map(|&mr| (is_fc, mr)));
                }
                Sites::Banks(banks) => {
                    let per_bank = config.block(kind).mrs_per_bank() as u64;
                    controlled.extend(banks.iter().flat_map(|&bank| {
                        let base = bank as u64 * per_bank;
                        (base..base + per_bank).map(move |mr| (is_fc, mr))
                    }));
                }
            }
            injector.apply(config, kind, &sites, &mut conditions)?;
        }
    }
    let targeted_rings: u64 = spec
        .target
        .blocks()
        .iter()
        .map(|&kind| config.block(kind).total_mrs())
        .sum();
    Ok(Injection {
        conditions,
        effective_fraction: controlled.len() as f64 / targeted_rings as f64,
    })
}

/// Convenience wrapper around [`inject_full`] for scenarios that need no
/// salience map, returning just the condition map.
///
/// # Errors
///
/// As [`inject_full`].
pub fn inject(
    spec: &ScenarioSpec,
    config: &AcceleratorConfig,
    seed: u64,
) -> Result<ConditionMap, SafelightError> {
    Ok(inject_full(spec, config, None, seed)?.conditions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use safelight_onn::MrCondition;

    #[test]
    fn grid_covers_the_paper_matrix() {
        let grid = scenario_grid(&[0.01, 0.05, 0.10], 10);
        assert_eq!(grid.len(), 180);
        let hotspot_conv_1pct = grid
            .iter()
            .filter(|s| {
                s.vectors == [VectorSpec::Hotspot]
                    && s.target == AttackTarget::ConvBlock
                    && (s.fraction - 0.01).abs() < 1e-12
            })
            .count();
        assert_eq!(hotspot_conv_1pct, 10);
        assert!(grid.iter().all(|s| s.selection == Selection::Uniform));
    }

    #[test]
    fn extended_grid_covers_every_stack_and_selection() {
        let grid = extended_scenario_grid(&[0.05], 2);
        // 5 stacks × 3 targets × 1 fraction × (2 + 2 + 1) trials: targeted
        // placement ignores the trial RNG, so its cells collapse to one
        // trial instead of sweeping identical injections.
        assert_eq!(grid.len(), 75);
        assert!(grid.iter().any(ScenarioSpec::is_stacked));
        for selection in Selection::all() {
            assert!(grid.iter().any(|s| s.selection == selection));
        }
        assert!(grid
            .iter()
            .all(|s| s.selection != Selection::Targeted || s.trial == 0));
    }

    #[test]
    fn inject_rejects_bad_fraction_and_empty_stack() {
        let config = AcceleratorConfig::scaled_experiment().unwrap();
        let bad = ScenarioSpec::new(VectorSpec::Actuation, AttackTarget::ConvBlock, 0.0, 0);
        assert!(inject(&bad, &config, 1).is_err());
        let empty = ScenarioSpec::stacked(vec![], AttackTarget::ConvBlock, 0.05, 0);
        assert!(inject(&empty, &config, 1).is_err());
    }

    #[test]
    fn trials_are_reproducible_and_distinct() {
        let config = AcceleratorConfig::scaled_experiment().unwrap();
        let mk =
            |trial| ScenarioSpec::new(VectorSpec::Actuation, AttackTarget::ConvBlock, 0.05, trial);
        let a = inject(&mk(0), &config, 9).unwrap();
        let b = inject(&mk(0), &config, 9).unwrap();
        let c = inject(&mk(1), &config, 9).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn rng_streams_do_not_alias_across_fields() {
        // The seed's additive tag made (trial t + 0x1000, Conv) collide
        // with (trial t, Fc). The hash-mixed key must keep them distinct.
        let config = AcceleratorConfig::scaled_experiment().unwrap();
        let mk = |trial, target| ScenarioSpec {
            vectors: vec![VectorSpec::Actuation],
            selection: Selection::Uniform,
            target,
            fraction: 0.05,
            trial,
        };
        for t in 0..4u64 {
            let shifted_conv = mk(t + 0x1000, AttackTarget::ConvBlock);
            let base_fc = mk(t, AttackTarget::FcBlock);
            assert_ne!(
                shifted_conv.stream_key(0),
                base_fc.stream_key(0),
                "trial/target stream aliasing at t = {t}"
            );
        }
        // Fractions closer than the seed's 1e-4 truncation resolution must
        // also derive distinct streams (and distinct site sets).
        let close_a = ScenarioSpec::new(VectorSpec::Actuation, AttackTarget::ConvBlock, 0.05, 0);
        let mut close_b = close_a.clone();
        close_b.fraction = 0.05 + 1e-6;
        assert_ne!(close_a.stream_key(0), close_b.stream_key(0));
        let a = inject(&close_a, &config, 9).unwrap();
        let b = inject(&close_b, &config, 9).unwrap();
        assert_ne!(a, b, "fraction truncation aliased the site streams");
        // Stacked vectors draw from per-vector streams.
        let stacked = ScenarioSpec::stacked(
            vec![VectorSpec::Actuation, VectorSpec::Actuation],
            AttackTarget::ConvBlock,
            0.05,
            0,
        );
        assert_ne!(stacked.stream_key(0), stacked.stream_key(1));
    }

    #[test]
    fn target_blocks_enumerate_correctly() {
        assert_eq!(AttackTarget::ConvBlock.blocks(), vec![BlockKind::Conv]);
        assert_eq!(AttackTarget::Both.blocks().len(), 2);
    }

    #[test]
    fn scenario_display_is_informative() {
        let s = ScenarioSpec::new(VectorSpec::Hotspot, AttackTarget::Both, 0.05, 3)
            .with_selection(Selection::Clustered);
        let text = s.to_string();
        assert!(
            text.contains("hotspot")
                && text.contains("5%")
                && text.contains("CONV+FC")
                && text.contains("clustered"),
            "{text}"
        );
    }

    #[test]
    fn spec_strings_round_trip() {
        let specs = [
            ScenarioSpec::new(VectorSpec::Actuation, AttackTarget::ConvBlock, 0.01, 0),
            ScenarioSpec::new(
                VectorSpec::LaserDegradation { loss_db: 2.5 },
                AttackTarget::FcBlock,
                0.05,
                7,
            )
            .with_selection(Selection::Targeted),
            ScenarioSpec::stacked(
                vec![VectorSpec::Actuation, VectorSpec::Hotspot],
                AttackTarget::Both,
                0.1,
                3,
            )
            .with_selection(Selection::Clustered),
            ScenarioSpec::new(
                VectorSpec::TrimDrift { detune_rel: 0.625 },
                AttackTarget::Both,
                0.05,
                1,
            ),
        ];
        for spec in specs {
            let text = spec.to_spec_string();
            let parsed: ScenarioSpec = text.parse().unwrap_or_else(|e| panic!("`{text}`: {e}"));
            assert_eq!(parsed, spec, "`{text}`");
        }
    }

    #[test]
    fn malformed_spec_strings_are_rejected() {
        for bad in [
            "",
            "actuation",
            "actuation/uniform/conv/0.05",
            "warp/uniform/conv/0.05/0",
            "actuation/random/conv/0.05/0",
            "actuation/uniform/gpu/0.05/0",
            "actuation/uniform/conv/lots/0",
            "laser:x/uniform/conv/0.05/0",
        ] {
            assert!(bad.parse::<ScenarioSpec>().is_err(), "`{bad}` parsed");
        }
    }

    #[test]
    fn stacked_injection_unions_both_vectors() {
        let config = AcceleratorConfig::scaled_experiment().unwrap();
        let stacked = ScenarioSpec::stacked(
            vec![VectorSpec::Actuation, VectorSpec::Hotspot],
            AttackTarget::ConvBlock,
            0.05,
            0,
        );
        let both = inject(&stacked, &config, 9).unwrap();
        let parked = both
            .iter(BlockKind::Conv)
            .filter(|(_, c)| matches!(c, MrCondition::Parked))
            .count();
        let heated = both
            .iter(BlockKind::Conv)
            .filter(|(_, c)| matches!(c, MrCondition::Heated { .. }))
            .count();
        assert!(parked > 0, "stack lost the actuation vector");
        assert!(heated > 0, "stack lost the hotspot vector");
        // The union touches at least as many rings as either vector alone.
        let single = inject(
            &ScenarioSpec::new(VectorSpec::Hotspot, AttackTarget::ConvBlock, 0.05, 0),
            &config,
            9,
        )
        .unwrap();
        assert!(both.faulty_count(BlockKind::Conv) >= single.faulty_count(BlockKind::Conv));
    }

    #[test]
    fn stacked_laser_tap_does_not_unpark_actuated_rings() {
        // A tap drawn onto a ring the actuation vector already parked must
        // not weaken it back to a factor-scaled live weight. Vector index 0
        // derives the same site stream whether or not more vectors follow,
        // so the single-vector injection identifies the parked set exactly.
        let config = AcceleratorConfig::scaled_experiment().unwrap();
        let parked_alone = inject(
            &ScenarioSpec::new(VectorSpec::Actuation, AttackTarget::ConvBlock, 0.5, 0),
            &config,
            9,
        )
        .unwrap();
        let stacked = inject(
            &ScenarioSpec::stacked(
                vec![VectorSpec::Actuation, VectorSpec::laser_default()],
                AttackTarget::ConvBlock,
                0.5,
                0,
            ),
            &config,
            9,
        )
        .unwrap();
        for (mr, cond) in parked_alone.iter(BlockKind::Conv) {
            assert_eq!(cond, MrCondition::Parked);
            assert_eq!(
                stacked.condition(BlockKind::Conv, mr),
                MrCondition::Parked,
                "ring {mr} was weakened by the stacked tap"
            );
        }
        // The draws must actually have overlapped for this to test
        // anything: two independent half-block draws cover fewer distinct
        // rings than their sum.
        let per_vector = parked_alone.faulty_count(BlockKind::Conv);
        assert!(
            stacked.faulty_count(BlockKind::Conv) < 2 * per_vector,
            "site draws never overlapped"
        );
    }

    #[test]
    fn stacked_laser_and_hotspot_keep_heat_on_attenuated_rings() {
        // The power fault lives upstream of the ring, so a ring that is both
        // tapped and inside/near a heated bank must carry its spill-over
        // detuning alongside the attenuation — in either stacking order.
        let config = AcceleratorConfig::scaled_experiment().unwrap();
        for vectors in [
            vec![VectorSpec::laser_default(), VectorSpec::Hotspot],
            vec![VectorSpec::Hotspot, VectorSpec::laser_default()],
        ] {
            let label = ScenarioSpec::stacked(vectors.clone(), AttackTarget::ConvBlock, 0.2, 0)
                .vector_label();
            let spec = ScenarioSpec::stacked(vectors, AttackTarget::ConvBlock, 0.2, 0);
            let map = inject(&spec, &config, 9).unwrap();
            let heated_attenuated = map
                .iter(BlockKind::Conv)
                .filter(|(_, c)| {
                    matches!(c, MrCondition::Attenuated { delta_kelvin, .. } if *delta_kelvin > 0.0)
                })
                .count();
            assert!(
                heated_attenuated > 0,
                "{label}: no ring carries both the tap and spill-over heat"
            );
        }
    }

    #[test]
    fn effective_fraction_reports_bank_clamping() {
        let config = AcceleratorConfig::scaled_experiment().unwrap();
        // Scaled CONV block: 25 banks of 100 rings. A nominal 1 % hotspot
        // clamps to one full bank = 4 % of the rings.
        let spec = ScenarioSpec::new(VectorSpec::Hotspot, AttackTarget::ConvBlock, 0.01, 0);
        let injection = inject_full(&spec, &config, None, 9).unwrap();
        assert!(
            (injection.effective_fraction - 0.04).abs() < 1e-12,
            "effective {}",
            injection.effective_fraction
        );
        // Ring-granular vectors track the nominal fraction.
        let spec = ScenarioSpec::new(VectorSpec::Actuation, AttackTarget::ConvBlock, 0.05, 0);
        let injection = inject_full(&spec, &config, None, 9).unwrap();
        assert!((injection.effective_fraction - 0.05).abs() < 1e-3);
    }

    #[test]
    fn new_vectors_inject_their_condition_kinds() {
        let config = AcceleratorConfig::scaled_experiment().unwrap();
        let laser = inject(
            &ScenarioSpec::new(
                VectorSpec::laser_default(),
                AttackTarget::ConvBlock,
                0.05,
                0,
            ),
            &config,
            9,
        )
        .unwrap();
        for (_, cond) in laser.iter(BlockKind::Conv) {
            assert!(matches!(cond, MrCondition::Attenuated { .. }), "{cond:?}");
        }
        let trim = inject(
            &ScenarioSpec::new(VectorSpec::trim_default(), AttackTarget::FcBlock, 0.05, 0),
            &config,
            9,
        )
        .unwrap();
        for (_, cond) in trim.iter(BlockKind::Fc) {
            assert!(matches!(cond, MrCondition::Detuned { .. }), "{cond:?}");
        }
    }
}

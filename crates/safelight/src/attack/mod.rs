//! Hardware-trojan attack injectors (paper §III).
//!
//! Two attack vectors are modeled, exactly as in the paper:
//!
//! * **Actuation attacks** ([`inject_actuation`]) — HTs in the electro-optic
//!   signal-modulation circuits of individual, uniformly random microrings
//!   park them off-resonance (§III.B.1, Fig. 4).
//! * **Thermal hotspot attacks** ([`inject_hotspot`]) — HTs drive the thermo-optic
//!   heaters of whole banks; a finite-difference thermal solve produces the
//!   resulting temperature field, which heats the attacked banks *and*
//!   spills into their neighbours (§III.B.2, Figs. 5–6).
//!
//! Both produce a [`ConditionMap`] consumed by
//! [`safelight_onn::corrupt_network`].

mod actuation;
mod hotspot;

pub use actuation::inject_actuation;
pub use hotspot::{inject_hotspot, HotspotOptions};

use safelight_neuro::SimRng;
use safelight_onn::{AcceleratorConfig, BlockKind, ConditionMap};

use crate::SafelightError;

/// The two HT attack vectors of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackVector {
    /// EO-modulation actuation attack on individual microrings.
    Actuation,
    /// Thermo-optic hotspot attack on banks of microrings.
    Hotspot,
}

impl std::fmt::Display for AttackVector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Actuation => write!(f, "actuation"),
            Self::Hotspot => write!(f, "hotspot"),
        }
    }
}

/// Which accelerator block(s) the trojans inhabit (§IV's three cases).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackTarget {
    /// Only the CONV block.
    ConvBlock,
    /// Only the FC block.
    FcBlock,
    /// Both blocks (the paper's "CONV + FC" case).
    Both,
}

impl AttackTarget {
    /// The blocks this target covers.
    #[must_use]
    pub fn blocks(&self) -> Vec<BlockKind> {
        match self {
            Self::ConvBlock => vec![BlockKind::Conv],
            Self::FcBlock => vec![BlockKind::Fc],
            Self::Both => vec![BlockKind::Conv, BlockKind::Fc],
        }
    }
}

impl std::fmt::Display for AttackTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ConvBlock => write!(f, "CONV"),
            Self::FcBlock => write!(f, "FC"),
            Self::Both => write!(f, "CONV+FC"),
        }
    }
}

/// One attack instance: vector × target × intensity × trial index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackScenario {
    /// Which attack vector the trojans implement.
    pub vector: AttackVector,
    /// Which block(s) are compromised.
    pub target: AttackTarget,
    /// Fraction of the targeted blocks' microrings under attack
    /// (the paper sweeps 0.01, 0.05 and 0.10).
    pub fraction: f64,
    /// Trial index — the paper runs 10 uniformly distributed random
    /// combinations per case; the trial seeds the site sampling.
    pub trial: u64,
}

impl std::fmt::Display for AttackScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {}% on {} (trial {})",
            self.vector,
            self.fraction * 100.0,
            self.target,
            self.trial
        )
    }
}

/// The paper's §IV scenario grid: every vector × target × fraction ×
/// trial combination, in deterministic order.
///
/// # Example
///
/// ```
/// use safelight::attack::scenario_grid;
///
/// let grid = scenario_grid(&[0.01, 0.05, 0.10], 10);
/// // 2 vectors × 3 targets × 3 fractions × 10 trials.
/// assert_eq!(grid.len(), 180);
/// ```
#[must_use]
pub fn scenario_grid(fractions: &[f64], trials: u64) -> Vec<AttackScenario> {
    let mut grid = Vec::new();
    for vector in [AttackVector::Actuation, AttackVector::Hotspot] {
        for target in [
            AttackTarget::ConvBlock,
            AttackTarget::FcBlock,
            AttackTarget::Both,
        ] {
            for &fraction in fractions {
                for trial in 0..trials {
                    grid.push(AttackScenario {
                        vector,
                        target,
                        fraction,
                        trial,
                    });
                }
            }
        }
    }
    grid
}

/// Injects `scenario` into an accelerator, returning the per-ring fault
/// conditions. `seed` is the experiment-level seed; the scenario's trial
/// index derives the per-trial stream, so trials are independent but
/// reproducible.
///
/// # Errors
///
/// Returns [`SafelightError::InvalidParameter`] for a fraction outside
/// `(0, 1]` and propagates thermal-solver errors for hotspot attacks.
pub fn inject(
    scenario: &AttackScenario,
    config: &AcceleratorConfig,
    seed: u64,
) -> Result<ConditionMap, SafelightError> {
    if !(scenario.fraction > 0.0 && scenario.fraction <= 1.0) {
        return Err(SafelightError::InvalidParameter {
            name: "fraction",
            value: scenario.fraction,
        });
    }
    let mut rng = SimRng::seed_from(seed).derive(scenario.trial.wrapping_add(
        match scenario.vector {
            AttackVector::Actuation => 0x00AC,
            AttackVector::Hotspot => 0x0107,
        } + match scenario.target {
            AttackTarget::ConvBlock => 0x1000,
            AttackTarget::FcBlock => 0x2000,
            AttackTarget::Both => 0x3000,
        } + (scenario.fraction * 1e4) as u64 * 0x10000,
    ));
    match scenario.vector {
        AttackVector::Actuation => {
            inject_actuation(config, scenario.target, scenario.fraction, &mut rng)
        }
        AttackVector::Hotspot => inject_hotspot(
            config,
            scenario.target,
            scenario.fraction,
            &HotspotOptions::default(),
            &mut rng,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_the_paper_matrix() {
        let grid = scenario_grid(&[0.01, 0.05, 0.10], 10);
        assert_eq!(grid.len(), 180);
        let hotspot_conv_1pct = grid
            .iter()
            .filter(|s| {
                s.vector == AttackVector::Hotspot
                    && s.target == AttackTarget::ConvBlock
                    && (s.fraction - 0.01).abs() < 1e-12
            })
            .count();
        assert_eq!(hotspot_conv_1pct, 10);
    }

    #[test]
    fn inject_rejects_bad_fraction() {
        let config = AcceleratorConfig::scaled_experiment().unwrap();
        let bad = AttackScenario {
            vector: AttackVector::Actuation,
            target: AttackTarget::ConvBlock,
            fraction: 0.0,
            trial: 0,
        };
        assert!(inject(&bad, &config, 1).is_err());
    }

    #[test]
    fn trials_are_reproducible_and_distinct() {
        let config = AcceleratorConfig::scaled_experiment().unwrap();
        let mk = |trial| AttackScenario {
            vector: AttackVector::Actuation,
            target: AttackTarget::ConvBlock,
            fraction: 0.05,
            trial,
        };
        let a = inject(&mk(0), &config, 9).unwrap();
        let b = inject(&mk(0), &config, 9).unwrap();
        let c = inject(&mk(1), &config, 9).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn target_blocks_enumerate_correctly() {
        assert_eq!(AttackTarget::ConvBlock.blocks(), vec![BlockKind::Conv]);
        assert_eq!(AttackTarget::Both.blocks().len(), 2);
    }

    #[test]
    fn scenario_display_is_informative() {
        let s = AttackScenario {
            vector: AttackVector::Hotspot,
            target: AttackTarget::Both,
            fraction: 0.05,
            trial: 3,
        };
        let text = s.to_string();
        assert!(text.contains("hotspot") && text.contains("5%") && text.contains("CONV+FC"));
    }
}

//! Partial trim-drift attacks: the trojan pins the compromised rings' trim
//! DACs a fixed offset away from their calibrated set point.
//!
//! Where an actuation attack (§III.B.1) slams the ring to its *maximum*
//! detuning, a trim-drift trojan is subtler: it biases the thermal/EO trim
//! loop by a parameterized fraction of the channel spacing. Small drifts
//! shave weight magnitude gradually; a drift of one full spacing reproduces
//! the paper's Fig. 5 wavelength slide through a completely different
//! (control-plane) mechanism. Graded drifts are much harder to catch with
//! the calibration-time screening that would flag a parked ring.

use safelight_neuro::SimRng;
use safelight_onn::{AcceleratorConfig, BlockKind, ConditionMap, MrCondition};

use crate::attack::{select_rings, AttackTarget, Granularity, Injector, Selection, Sites};
use crate::SafelightError;

/// The trim-drift injector: every compromised ring is detuned by
/// `detune_rel` channel spacings from its calibrated imprint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrimDriftInjector {
    /// Drift as a fraction of the WDM channel spacing (> 0).
    pub detune_rel: f64,
}

impl Injector for TrimDriftInjector {
    fn granularity(&self) -> Granularity {
        Granularity::Ring
    }

    fn apply(
        &self,
        config: &AcceleratorConfig,
        kind: BlockKind,
        sites: &Sites,
        conditions: &mut ConditionMap,
    ) -> Result<(), SafelightError> {
        let Sites::Rings(rings) = sites else {
            return Err(SafelightError::InvalidParameter {
                name: "sites (trim-drift attacks are ring-granular)",
                value: 0.0,
            });
        };
        if !self.detune_rel.is_finite() || self.detune_rel <= 0.0 {
            return Err(SafelightError::InvalidParameter {
                name: "detune_rel",
                value: self.detune_rel,
            });
        }
        let offset_nm = self.detune_rel * config.channel_spacing_nm;
        for &mr in rings {
            conditions.stack(
                kind,
                mr,
                MrCondition::Detuned {
                    offset_nm,
                    delta_kelvin: 0.0,
                },
            );
        }
        Ok(())
    }
}

/// Detunes a uniformly random `fraction` of the targeted blocks' microrings
/// by `detune_rel` channel spacings.
///
/// # Errors
///
/// Returns [`SafelightError::InvalidParameter`] for a fraction outside
/// `(0, 1]` or a non-positive `detune_rel`.
pub fn inject_trim_drift(
    config: &AcceleratorConfig,
    target: AttackTarget,
    fraction: f64,
    detune_rel: f64,
    rng: &mut SimRng,
) -> Result<ConditionMap, SafelightError> {
    let injector = TrimDriftInjector { detune_rel };
    let mut conditions = ConditionMap::new();
    for kind in target.blocks() {
        let rings = select_rings(config, kind, fraction, Selection::Uniform, None, rng)?;
        injector.apply(config, kind, &Sites::Rings(rings), &mut conditions)?;
    }
    Ok(conditions)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> AcceleratorConfig {
        AcceleratorConfig::scaled_experiment().unwrap()
    }

    #[test]
    fn drift_scales_with_channel_spacing() {
        let cfg = config();
        let mut rng = SimRng::seed_from(31);
        let map = inject_trim_drift(&cfg, AttackTarget::FcBlock, 0.05, 0.4, &mut rng).unwrap();
        let expected_offset = 0.4 * cfg.channel_spacing_nm;
        assert!(map.faulty_count(BlockKind::Fc) > 0);
        for (_, cond) in map.iter(BlockKind::Fc) {
            assert_eq!(
                cond,
                MrCondition::Detuned {
                    offset_nm: expected_offset,
                    delta_kelvin: 0.0
                }
            );
        }
    }

    #[test]
    fn non_positive_drift_is_rejected() {
        let cfg = config();
        let mut rng = SimRng::seed_from(32);
        assert!(inject_trim_drift(&cfg, AttackTarget::Both, 0.05, 0.0, &mut rng).is_err());
        assert!(inject_trim_drift(&cfg, AttackTarget::Both, 0.05, -0.5, &mut rng).is_err());
        assert!(inject_trim_drift(&cfg, AttackTarget::Both, 0.05, f64::NAN, &mut rng).is_err());
    }

    #[test]
    fn drift_respects_target_blocks() {
        let cfg = config();
        let mut rng = SimRng::seed_from(33);
        let map = inject_trim_drift(&cfg, AttackTarget::ConvBlock, 0.05, 0.4, &mut rng).unwrap();
        assert!(map.faulty_count(BlockKind::Conv) > 0);
        assert_eq!(map.faulty_count(BlockKind::Fc), 0);
    }
}

//! Site-selection strategies: which rings (or banks) the trojans inhabit.
//!
//! The paper places trojans at uniformly random sites (§IV). Real trojan
//! insertion is constrained differently: a foundry-stage adversary drops one
//! contiguous run of compromised peripherals ([`Selection::Clustered`]),
//! while a design-stage adversary with netlist knowledge goes straight for
//! the rings carrying the largest weight magnitudes
//! ([`Selection::Targeted`] — the worst-case adversary).

use safelight_neuro::{Network, SimRng};
use safelight_onn::{AcceleratorConfig, BlockKind, WeightMapping};

use crate::attack::Selection;
use crate::SafelightError;

/// Per-ring weight salience of a mapped network: for every microring, the
/// largest |weight| it carries across reuse rounds.
///
/// This is what a magnitude-targeted adversary is assumed to know. Built
/// once per sweep (from the model under evaluation) and shared by every
/// scenario injection, so targeted sweeps stay deterministic and
/// thread-count independent.
#[derive(Debug, Clone)]
pub struct RingSalience {
    conv: Vec<f64>,
    fc: Vec<f64>,
    /// Ring indices of each block sorted by descending salience
    /// (ties break toward the lower index).
    ranked_conv: Vec<u64>,
    ranked_fc: Vec<u64>,
}

impl RingSalience {
    /// Derives the salience map of `network` as laid out by `mapping` on
    /// `config`.
    ///
    /// # Errors
    ///
    /// Returns [`SafelightError::Onn`] when the network's weight tensors do
    /// not line up with the mapping.
    pub fn from_network(
        network: &Network,
        mapping: &WeightMapping,
        config: &AcceleratorConfig,
    ) -> Result<Self, SafelightError> {
        let mut conv = vec![0.0f64; config.conv.total_mrs() as usize];
        let mut fc = vec![0.0f64; config.fc.total_mrs() as usize];
        let weights: Vec<_> = network.params().into_iter().filter(|q| q.decay).collect();
        for (li, q) in weights.iter().enumerate() {
            for (off, w) in q.value.as_slice().iter().enumerate() {
                let home = mapping.locate(li, off)?;
                let slot = match home.block {
                    BlockKind::Conv => &mut conv[home.mr_index as usize],
                    BlockKind::Fc => &mut fc[home.mr_index as usize],
                };
                *slot = slot.max(f64::from(w.abs()));
            }
        }
        let ranked_conv = rank_desc(&conv);
        let ranked_fc = rank_desc(&fc);
        Ok(Self {
            conv,
            fc,
            ranked_conv,
            ranked_fc,
        })
    }

    /// The salience of every ring in `kind`'s block, by flat MR index.
    #[must_use]
    pub fn block(&self, kind: BlockKind) -> &[f64] {
        match kind {
            BlockKind::Conv => &self.conv,
            BlockKind::Fc => &self.fc,
        }
    }

    fn ranked(&self, kind: BlockKind) -> &[u64] {
        match kind {
            BlockKind::Conv => &self.ranked_conv,
            BlockKind::Fc => &self.ranked_fc,
        }
    }
}

/// Ring indices sorted by descending salience, ties toward lower indices —
/// a total order, so targeted selection is deterministic.
fn rank_desc(salience: &[f64]) -> Vec<u64> {
    let mut idx: Vec<u64> = (0..salience.len() as u64).collect();
    idx.sort_unstable_by(|&a, &b| {
        salience[b as usize]
            .partial_cmp(&salience[a as usize])
            .expect("salience values are finite")
            .then(a.cmp(&b))
    });
    idx
}

/// Number of ring sites covering `fraction` of `kind`'s block (≥ 1).
pub(crate) fn ring_count(config: &AcceleratorConfig, kind: BlockKind, fraction: f64) -> usize {
    let total = config.block(kind).total_mrs() as usize;
    let count = ((total as f64) * fraction).round().max(1.0) as usize;
    count.min(total)
}

/// Number of banks whose rings cover roughly `fraction` of `kind`'s block
/// (bank-granular vectors attack whole banks; ≥ 1).
pub(crate) fn bank_count(config: &AcceleratorConfig, kind: BlockKind, fraction: f64) -> usize {
    let shape = config.block(kind);
    let target_rings = shape.total_mrs() as f64 * fraction;
    let banks = (target_rings / shape.mrs_per_bank() as f64).round() as usize;
    banks.clamp(1, shape.vdp_units)
}

fn targeted_needs_salience<T>(salience: Option<T>) -> Result<T, SafelightError> {
    salience.ok_or(SafelightError::InvalidParameter {
        name: "selection (targeted selection needs a RingSalience)",
        value: 0.0,
    })
}

/// Selects the ring sites a ring-granular vector compromises in `kind`'s
/// block.
///
/// # Errors
///
/// Returns [`SafelightError::InvalidParameter`] when `fraction` is outside
/// `(0, 1]` or when [`Selection::Targeted`] is requested without a
/// salience map.
pub fn select_rings(
    config: &AcceleratorConfig,
    kind: BlockKind,
    fraction: f64,
    selection: Selection,
    salience: Option<&RingSalience>,
    rng: &mut SimRng,
) -> Result<Vec<u64>, SafelightError> {
    if !(fraction > 0.0 && fraction <= 1.0) {
        return Err(SafelightError::InvalidParameter {
            name: "fraction",
            value: fraction,
        });
    }
    let total = config.block(kind).total_mrs() as usize;
    let count = ring_count(config, kind, fraction);
    Ok(match selection {
        Selection::Uniform => rng
            .sample_distinct(total, count)
            .into_iter()
            .map(|i| i as u64)
            .collect(),
        Selection::Clustered => {
            let start = rng.index(total - count + 1) as u64;
            (start..start + count as u64).collect()
        }
        Selection::Targeted => targeted_needs_salience(salience)?.ranked(kind)[..count].to_vec(),
    })
}

/// Selects the banks a bank-granular vector compromises in `kind`'s block.
///
/// # Errors
///
/// Returns [`SafelightError::InvalidParameter`] when `fraction` is outside
/// `(0, 1]` or when [`Selection::Targeted`] is requested without a
/// salience map.
pub fn select_banks(
    config: &AcceleratorConfig,
    kind: BlockKind,
    fraction: f64,
    selection: Selection,
    salience: Option<&RingSalience>,
    rng: &mut SimRng,
) -> Result<Vec<usize>, SafelightError> {
    if !(fraction > 0.0 && fraction <= 1.0) {
        return Err(SafelightError::InvalidParameter {
            name: "fraction",
            value: fraction,
        });
    }
    let shape = config.block(kind);
    let n = bank_count(config, kind, fraction);
    Ok(match selection {
        Selection::Uniform => rng.sample_distinct(shape.vdp_units, n),
        Selection::Clustered => {
            let start = rng.index(shape.vdp_units - n + 1);
            (start..start + n).collect()
        }
        Selection::Targeted => {
            let salience = targeted_needs_salience(salience)?;
            let per_bank = shape.mrs_per_bank();
            let sums: Vec<f64> = salience
                .block(kind)
                .chunks(per_bank)
                .map(|bank| bank.iter().sum())
                .collect();
            let mut banks: Vec<usize> = (0..shape.vdp_units).collect();
            banks.sort_unstable_by(|&a, &b| {
                sums[b]
                    .partial_cmp(&sums[a])
                    .expect("salience sums are finite")
                    .then(a.cmp(&b))
            });
            banks.truncate(n);
            banks
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{build_model, ModelKind};

    fn setup() -> (AcceleratorConfig, WeightMapping, RingSalience) {
        let config = AcceleratorConfig::scaled_experiment().unwrap();
        let bundle = build_model(ModelKind::Cnn1, 3).unwrap();
        let mapping = WeightMapping::new(&config, &bundle.layer_specs).unwrap();
        let salience = RingSalience::from_network(&bundle.network, &mapping, &config).unwrap();
        (config, mapping, salience)
    }

    #[test]
    fn uniform_selection_is_distinct_and_bounded() {
        let (config, _, _) = setup();
        let mut rng = SimRng::seed_from(1);
        let rings = select_rings(
            &config,
            BlockKind::Conv,
            0.05,
            Selection::Uniform,
            None,
            &mut rng,
        )
        .unwrap();
        let expected = ring_count(&config, BlockKind::Conv, 0.05);
        assert_eq!(rings.len(), expected);
        let mut sorted = rings.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), expected);
        assert!(rings.iter().all(|&r| r < config.conv.total_mrs()));
    }

    #[test]
    fn clustered_selection_is_contiguous() {
        let (config, _, _) = setup();
        let mut rng = SimRng::seed_from(2);
        let rings = select_rings(
            &config,
            BlockKind::Fc,
            0.05,
            Selection::Clustered,
            None,
            &mut rng,
        )
        .unwrap();
        for pair in rings.windows(2) {
            assert_eq!(pair[1], pair[0] + 1);
        }
        let banks = select_banks(
            &config,
            BlockKind::Fc,
            0.20,
            Selection::Clustered,
            None,
            &mut rng,
        )
        .unwrap();
        for pair in banks.windows(2) {
            assert_eq!(pair[1], pair[0] + 1);
        }
    }

    #[test]
    fn targeted_selection_takes_the_heaviest_rings_first() {
        let (config, _, salience) = setup();
        let mut rng = SimRng::seed_from(3);
        let rings = select_rings(
            &config,
            BlockKind::Conv,
            0.01,
            Selection::Targeted,
            Some(&salience),
            &mut rng,
        )
        .unwrap();
        let block = salience.block(BlockKind::Conv);
        let picked_min = rings
            .iter()
            .map(|&r| block[r as usize])
            .fold(f64::INFINITY, f64::min);
        let unpicked_max = (0..block.len() as u64)
            .filter(|r| !rings.contains(r))
            .map(|r| block[r as usize])
            .fold(0.0f64, f64::max);
        assert!(
            picked_min >= unpicked_max,
            "picked min {picked_min} < unpicked max {unpicked_max}"
        );
    }

    #[test]
    fn targeted_selection_without_salience_is_rejected() {
        let (config, _, _) = setup();
        let mut rng = SimRng::seed_from(4);
        assert!(select_rings(
            &config,
            BlockKind::Conv,
            0.05,
            Selection::Targeted,
            None,
            &mut rng
        )
        .is_err());
        assert!(select_banks(
            &config,
            BlockKind::Conv,
            0.05,
            Selection::Targeted,
            None,
            &mut rng
        )
        .is_err());
    }

    #[test]
    fn targeted_selection_is_deterministic() {
        let (config, _, salience) = setup();
        let pick = || {
            let mut rng = SimRng::seed_from(5);
            select_banks(
                &config,
                BlockKind::Fc,
                0.10,
                Selection::Targeted,
                Some(&salience),
                &mut rng,
            )
            .unwrap()
        };
        assert_eq!(pick(), pick());
    }

    #[test]
    fn salience_covers_only_mapped_rings() {
        let (config, mapping, salience) = setup();
        // CNN_1 under-fills the scaled FC block, so the tail rings past the
        // used slots must carry zero salience.
        let used = mapping.used_slots(BlockKind::Fc);
        let cap = config.fc.total_mrs();
        if used < cap {
            let tail = &salience.block(BlockKind::Fc)[used as usize..];
            assert!(tail.iter().all(|&s| s == 0.0));
        }
        // And the mapped region must carry some weight.
        assert!(salience.block(BlockKind::Fc).iter().any(|&s| s > 0.0));
    }
}

//! Thermal hotspot attacks: HTs overdrive the thermo-optic heaters of
//! whole microring banks (paper §III.B.2, Figs. 5–6).

use safelight_neuro::SimRng;
use safelight_onn::{AcceleratorConfig, BlockKind, BlockLayout, ConditionMap};
use safelight_thermal::{TemperatureField, ThermalConfig};

use crate::attack::{select_banks, AttackTarget, Granularity, Injector, Selection, Sites};
use crate::SafelightError;

/// Tuning knobs for hotspot attack injection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotspotOptions {
    /// Mean temperature rise the compromised heaters drive the attacked
    /// banks to, in kelvin. `None` (the default) targets the *one-channel*
    /// resonance slide of the paper's Fig. 5 (≈14.6 K for the default
    /// devices): every ring in the heated core then responds to its
    /// neighbour's carrier, so the bank computes with a shifted weight
    /// vector; cooler bank edges and spill-over zones shift partially and
    /// lose their weights instead.
    pub target_delta_kelvin: Option<f64>,
    /// Rings *inside attacked banks* (whose tuning loops the trojan
    /// controls) receive a `Heated` condition when their rise exceeds this
    /// threshold. The default (3 K) is a little over one Lorentzian
    /// half-width of drift for the default devices.
    pub threshold_kelvin: f64,
    /// Rings *outside* the attacked banks keep a working closed-loop tuning
    /// circuit, which the paper notes "is usually designed to manage minor
    /// temperature fluctuations". Spill-over heat up to this range is
    /// compensated; only the residual beyond it shifts the resonance. The
    /// default (7 K) corresponds to the EO trim range of the default
    /// devices — close neighbours of an attacked bank still get corrupted
    /// (the Fig. 6 spill), distant banks survive.
    pub neighbour_compensation_kelvin: f64,
    /// Thermal solver configuration. The default lowers the vertical sink
    /// conductance relative to the general-purpose thermal default so the
    /// lateral decay length spans a bank: trojan-overdriven banks heat
    /// near-uniformly (the Fig. 5 condition) while neighbours get graded
    /// spill-over.
    pub thermal: ThermalConfig,
}

impl Default for HotspotOptions {
    fn default() -> Self {
        let thermal = ThermalConfig {
            sink_conductance_w_per_k: 6.0e-6,
            ..ThermalConfig::default()
        };
        Self {
            target_delta_kelvin: None,
            threshold_kelvin: 3.0,
            neighbour_compensation_kelvin: 7.0,
            thermal,
        }
    }
}

/// Thermal-grid resolution per block: FC banks are large, so they use
/// coarser cells to keep the solve cheap.
fn cell_size_for(config: &AcceleratorConfig, kind: BlockKind) -> usize {
    (config.block(kind).bank_cols / 16).max(1)
}

/// Cache key for one unit-power bank solve: the grid geometry, the heated
/// rectangle and every solver parameter that shapes the solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct UnitFieldKey {
    grid: (usize, usize),
    rect: (usize, usize, usize, usize),
    ambient_bits: u64,
    lateral_bits: u64,
    sink_bits: u64,
    omega_bits: u64,
    tolerance_bits: u64,
    max_iterations: usize,
}

impl UnitFieldKey {
    fn new(layout: &BlockLayout, rect: safelight_thermal::Rect, thermal: &ThermalConfig) -> Self {
        Self {
            grid: (
                layout.floorplan().grid_width(),
                layout.floorplan().grid_height(),
            ),
            rect: (rect.x, rect.y, rect.width, rect.height),
            ambient_bits: thermal.ambient_k.to_bits(),
            lateral_bits: thermal.lateral_conductance_w_per_k.to_bits(),
            sink_bits: thermal.sink_conductance_w_per_k.to_bits(),
            omega_bits: thermal.sor_omega.to_bits(),
            tolerance_bits: thermal.tolerance_k.to_bits(),
            max_iterations: thermal.max_iterations,
        }
    }
}

/// The unit-power field of one heated bank, solved once per
/// (geometry, solver-config) pair and shared process-wide. A susceptibility
/// sweep re-attacks the same banks across fractions and trials, so the
/// expensive SOR solves collapse to one per distinct bank.
fn unit_bank_field(
    layout: &BlockLayout,
    rect: safelight_thermal::Rect,
    thermal: &ThermalConfig,
) -> Result<std::sync::Arc<TemperatureField>, SafelightError> {
    use std::collections::HashMap;
    use std::sync::{Arc, Mutex, OnceLock};
    static CACHE: OnceLock<Mutex<HashMap<UnitFieldKey, Arc<TemperatureField>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let key = UnitFieldKey::new(layout, rect, thermal);
    if let Some(field) = cache.lock().expect("unit-field cache poisoned").get(&key) {
        return Ok(Arc::clone(field));
    }
    // Solve outside the lock; a racing duplicate solve is deterministic and
    // idempotent, so last-writer-wins insertion is harmless.
    let mut grid = layout.thermal_grid(*thermal)?;
    grid.add_power_region(rect, 1.0)?;
    let field = Arc::new(grid.solve()?);
    cache
        .lock()
        .expect("unit-field cache poisoned")
        .insert(key, Arc::clone(&field));
    Ok(field)
}

/// Solves the field produced by overdriving every heater of `banks`,
/// returning the field plus the scale factor that brings the attacked
/// banks' *mean* rise to `target_delta` kelvin.
///
/// The steady-state operator is linear, so the multi-bank field is the
/// exact superposition of cached per-bank unit solves, and one scale factor
/// brings the mean rise to the target — no iteration needed.
fn solve_attack_field(
    layout: &BlockLayout,
    banks: &[usize],
    options: &HotspotOptions,
    target_delta: f64,
) -> Result<(TemperatureField, f64), SafelightError> {
    let mut unit_fields = Vec::with_capacity(banks.len());
    for &bank in banks {
        let rect = layout
            .floorplan()
            .bank(bank)
            .map_err(safelight_onn::OnnError::from)?
            .rect;
        unit_fields.push(unit_bank_field(layout, rect, &options.thermal)?);
    }
    let refs: Vec<&TemperatureField> = unit_fields.iter().map(std::sync::Arc::as_ref).collect();
    let field = TemperatureField::superpose(&refs, &vec![1.0; refs.len()])?;
    let mut mean = 0.0;
    for &bank in banks {
        let rect = layout
            .floorplan()
            .bank(bank)
            .map_err(safelight_onn::OnnError::from)?
            .rect;
        mean += field.mean_delta_in(rect)?;
    }
    mean /= banks.len() as f64;
    Ok((field, target_delta / mean.max(1e-9)))
}

/// Injects a hotspot attack: picks enough random banks to cover
/// `fraction` of each targeted block's rings, drives their heaters, solves
/// the block's temperature field and heats every ring (attacked *and*
/// spill-over) above the threshold.
///
/// # Errors
///
/// Returns [`SafelightError::InvalidParameter`] for a fraction outside
/// `(0, 1]` and propagates thermal solver errors.
///
/// # Example
///
/// ```
/// use safelight::attack::{inject_hotspot, AttackTarget, HotspotOptions};
/// use safelight_neuro::SimRng;
/// use safelight_onn::{AcceleratorConfig, BlockKind};
///
/// # fn main() -> Result<(), safelight::SafelightError> {
/// let config = AcceleratorConfig::scaled_experiment()?;
/// let mut rng = SimRng::seed_from(2);
/// let map = inject_hotspot(
///     &config, AttackTarget::ConvBlock, 0.05, &HotspotOptions::default(), &mut rng,
/// )?;
/// // Bank-granular heating touches at least the attacked banks' rings.
/// assert!(map.faulty_count(BlockKind::Conv) >= config.conv.mrs_per_bank());
/// # Ok(())
/// # }
/// ```
pub fn inject_hotspot(
    config: &AcceleratorConfig,
    target: AttackTarget,
    fraction: f64,
    options: &HotspotOptions,
    rng: &mut SimRng,
) -> Result<ConditionMap, SafelightError> {
    let injector = HotspotInjector { options: *options };
    let mut conditions = ConditionMap::new();
    for kind in target.blocks() {
        let banks = select_banks(config, kind, fraction, Selection::Uniform, None, rng)?;
        injector.apply(config, kind, &Sites::Banks(banks), &mut conditions)?;
    }
    Ok(conditions)
}

/// The hotspot-attack injector: overdrives the heaters of the selected
/// banks, solves the block's temperature field and heats every ring
/// (attacked *and* spill-over) above the threshold.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HotspotInjector {
    /// Thermal tuning knobs.
    pub options: HotspotOptions,
}

impl Injector for HotspotInjector {
    fn granularity(&self) -> Granularity {
        Granularity::Bank
    }

    fn apply(
        &self,
        config: &AcceleratorConfig,
        kind: BlockKind,
        sites: &Sites,
        conditions: &mut ConditionMap,
    ) -> Result<(), SafelightError> {
        let Sites::Banks(banks) = sites else {
            return Err(SafelightError::InvalidParameter {
                name: "sites (hotspot attacks are bank-granular)",
                value: 0.0,
            });
        };
        let options = &self.options;
        let target_delta = options
            .target_delta_kelvin
            .unwrap_or_else(|| config.one_channel_delta_kelvin());
        if target_delta <= 0.0 {
            return Err(SafelightError::InvalidParameter {
                name: "target_delta_kelvin",
                value: target_delta,
            });
        }
        let shape = *config.block(kind);
        let layout = BlockLayout::new(shape, kind, cell_size_for(config, kind))?;
        let (field, scale) = solve_attack_field(&layout, banks, options, target_delta)?;
        // The trojan controls the tuning loops of the attacked banks, so
        // their rings take the full rise; every other ring's intact closed
        // loop compensates up to its range, leaving only the residual.
        let per_bank = shape.mrs_per_bank() as u64;
        for mr in 0..shape.total_mrs() {
            let (x, y) = layout.cell_of_mr(mr)?;
            let dt = field.delta_at(x, y)? * scale;
            let bank = (mr / per_bank) as usize;
            if banks.contains(&bank) {
                if dt > options.threshold_kelvin {
                    conditions.add_heat(kind, mr, dt);
                }
            } else {
                let residual = dt - options.neighbour_compensation_kelvin;
                if residual > options.threshold_kelvin {
                    conditions.add_heat(kind, mr, residual);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::select::bank_count;
    use safelight_onn::MrCondition;

    fn config() -> AcceleratorConfig {
        AcceleratorConfig::scaled_experiment().unwrap()
    }

    #[test]
    fn bank_count_tracks_fraction() {
        let cfg = config();
        // CONV: 25 banks of 100 rings = 2 500; 10 % → 250 rings ≈ 2.5 banks.
        let n = bank_count(&cfg, BlockKind::Conv, 0.10);
        assert!((2..=3).contains(&n), "banks {n}");
        assert_eq!(bank_count(&cfg, BlockKind::Conv, 1e-9), 1);
    }

    #[test]
    fn attacked_banks_reach_target_temperature() {
        let cfg = config();
        let mut rng = SimRng::seed_from(11);
        let opts = HotspotOptions::default();
        let target = cfg.one_channel_delta_kelvin();
        let map = inject_hotspot(&cfg, AttackTarget::ConvBlock, 0.05, &opts, &mut rng).unwrap();
        // The hottest rings should be near the (one-channel) target ΔT.
        let max_dt = map
            .iter(BlockKind::Conv)
            .filter_map(|(_, c)| match c {
                MrCondition::Heated { delta_kelvin } => Some(delta_kelvin),
                _ => None,
            })
            .fold(0.0f64, f64::max);
        assert!(
            (target * 0.5..target * 3.0).contains(&max_dt),
            "peak ΔT {max_dt} vs one-channel {target}"
        );
    }

    #[test]
    fn hotspots_spill_beyond_attacked_banks() {
        let cfg = config();
        let mut rng = SimRng::seed_from(12);
        let opts = HotspotOptions::default();
        let map = inject_hotspot(&cfg, AttackTarget::ConvBlock, 0.10, &opts, &mut rng).unwrap();
        let attacked_bank_rings = bank_count(&cfg, BlockKind::Conv, 0.10) * cfg.conv.mrs_per_bank();
        assert!(
            map.faulty_count(BlockKind::Conv) > attacked_bank_rings,
            "no spill-over: {} ≤ {attacked_bank_rings}",
            map.faulty_count(BlockKind::Conv)
        );
    }

    #[test]
    fn conditions_are_heated_not_parked() {
        let cfg = config();
        let mut rng = SimRng::seed_from(13);
        let map = inject_hotspot(
            &cfg,
            AttackTarget::FcBlock,
            0.05,
            &HotspotOptions::default(),
            &mut rng,
        )
        .unwrap();
        for (_, cond) in map.iter(BlockKind::Fc) {
            assert!(matches!(cond, MrCondition::Heated { .. }));
        }
    }

    #[test]
    fn invalid_options_are_rejected() {
        let cfg = config();
        let mut rng = SimRng::seed_from(14);
        let bad = HotspotOptions {
            target_delta_kelvin: Some(0.0),
            ..HotspotOptions::default()
        };
        assert!(inject_hotspot(&cfg, AttackTarget::ConvBlock, 0.05, &bad, &mut rng).is_err());
        assert!(inject_hotspot(
            &cfg,
            AttackTarget::ConvBlock,
            0.0,
            &HotspotOptions::default(),
            &mut rng
        )
        .is_err());
    }
}

//! Actuation attacks: HTs in the EO modulation circuits of individual
//! microrings park them off-resonance (paper §III.B.1).

use safelight_neuro::SimRng;
use safelight_onn::{AcceleratorConfig, BlockKind, ConditionMap, MrCondition};

use crate::attack::{select_rings, AttackTarget, Granularity, Injector, Selection, Sites};
use crate::SafelightError;

/// The actuation-attack injector: every compromised ring is parked at its
/// maximum detuning ("each HT circuit would interfere with a single MR,
/// causing it to enter an off-resonance state").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ActuationInjector;

impl Injector for ActuationInjector {
    fn granularity(&self) -> Granularity {
        Granularity::Ring
    }

    fn apply(
        &self,
        _config: &AcceleratorConfig,
        kind: BlockKind,
        sites: &Sites,
        conditions: &mut ConditionMap,
    ) -> Result<(), SafelightError> {
        let Sites::Rings(rings) = sites else {
            return Err(SafelightError::InvalidParameter {
                name: "sites (actuation attacks are ring-granular)",
                value: 0.0,
            });
        };
        for &mr in rings {
            conditions.stack(kind, mr, MrCondition::Parked);
        }
        Ok(())
    }
}

/// Parks a uniformly random `fraction` of the targeted blocks' microrings
/// off-resonance. Sites are sampled without replacement, independently per
/// block.
///
/// # Errors
///
/// Returns [`SafelightError::InvalidParameter`] for a fraction outside
/// `(0, 1]`.
///
/// # Example
///
/// ```
/// use safelight::attack::{inject_actuation, AttackTarget};
/// use safelight_neuro::SimRng;
/// use safelight_onn::{AcceleratorConfig, BlockKind};
///
/// # fn main() -> Result<(), safelight::SafelightError> {
/// let config = AcceleratorConfig::scaled_experiment()?;
/// let mut rng = SimRng::seed_from(1);
/// let map = inject_actuation(&config, AttackTarget::ConvBlock, 0.05, &mut rng)?;
/// let expected = (config.conv.total_mrs() as f64 * 0.05).round() as usize;
/// assert_eq!(map.faulty_count(BlockKind::Conv), expected);
/// # Ok(())
/// # }
/// ```
pub fn inject_actuation(
    config: &AcceleratorConfig,
    target: AttackTarget,
    fraction: f64,
    rng: &mut SimRng,
) -> Result<ConditionMap, SafelightError> {
    let mut conditions = ConditionMap::new();
    for kind in target.blocks() {
        let rings = select_rings(config, kind, fraction, Selection::Uniform, None, rng)?;
        ActuationInjector.apply(config, kind, &Sites::Rings(rings), &mut conditions)?;
    }
    Ok(conditions)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> AcceleratorConfig {
        AcceleratorConfig::scaled_experiment().unwrap()
    }

    #[test]
    fn fraction_translates_to_site_count() {
        let cfg = config();
        let mut rng = SimRng::seed_from(5);
        let map = inject_actuation(&cfg, AttackTarget::FcBlock, 0.10, &mut rng).unwrap();
        let expected = (cfg.fc.total_mrs() as f64 * 0.10).round() as usize;
        assert_eq!(map.faulty_count(BlockKind::Fc), expected);
        assert_eq!(map.faulty_count(BlockKind::Conv), 0);
    }

    #[test]
    fn both_targets_hit_both_blocks() {
        let cfg = config();
        let mut rng = SimRng::seed_from(5);
        let map = inject_actuation(&cfg, AttackTarget::Both, 0.01, &mut rng).unwrap();
        assert!(map.faulty_count(BlockKind::Conv) > 0);
        assert!(map.faulty_count(BlockKind::Fc) > 0);
    }

    #[test]
    fn all_conditions_are_parked() {
        let cfg = config();
        let mut rng = SimRng::seed_from(6);
        let map = inject_actuation(&cfg, AttackTarget::ConvBlock, 0.05, &mut rng).unwrap();
        for (_, cond) in map.iter(BlockKind::Conv) {
            assert_eq!(cond, MrCondition::Parked);
        }
    }

    #[test]
    fn sites_are_within_block_bounds() {
        let cfg = config();
        let mut rng = SimRng::seed_from(7);
        let map = inject_actuation(&cfg, AttackTarget::ConvBlock, 0.10, &mut rng).unwrap();
        let cap = cfg.conv.total_mrs();
        for (mr, _) in map.iter(BlockKind::Conv) {
            assert!(mr < cap);
        }
    }

    #[test]
    fn tiny_fraction_still_parks_at_least_one_ring() {
        let cfg = config();
        let mut rng = SimRng::seed_from(8);
        let map = inject_actuation(&cfg, AttackTarget::ConvBlock, 1e-6, &mut rng).unwrap();
        assert_eq!(map.faulty_count(BlockKind::Conv), 1);
    }

    #[test]
    fn invalid_fractions_are_rejected() {
        let cfg = config();
        let mut rng = SimRng::seed_from(9);
        assert!(inject_actuation(&cfg, AttackTarget::Both, 0.0, &mut rng).is_err());
        assert!(inject_actuation(&cfg, AttackTarget::Both, 1.5, &mut rng).is_err());
    }

    #[test]
    fn bank_sites_are_rejected() {
        let cfg = config();
        let mut conditions = ConditionMap::new();
        assert!(ActuationInjector
            .apply(
                &cfg,
                BlockKind::Conv,
                &Sites::Banks(vec![0]),
                &mut conditions
            )
            .is_err());
    }
}

//! Laser power-degradation attacks: a trojan taps or throttles the optical
//! power feeding the compromised rings' WDM channels.
//!
//! The trojan sits *upstream* of the microring — in the comb laser's
//! per-channel drivers or as a parasitic tap on the distribution
//! waveguide — so the ring's resonance stays calibrated and only the
//! channel power scales. The balanced-photodetector readout therefore sees
//! the weighted product shrink by the tap's transmission factor: effective
//! weights decay toward zero proportionally, a *graded* corruption unlike
//! the binary dropout of an actuation attack.

use safelight_neuro::SimRng;
use safelight_onn::{AcceleratorConfig, BlockKind, ConditionMap, MrCondition};
use safelight_photonics::{Laser, Waveguide, WdmGrid};

use crate::attack::{select_rings, AttackTarget, Granularity, Injector, Selection, Sites};
use crate::SafelightError;

/// Fraction of a channel's launch power that survives a parasitic tap of
/// `loss_db`, for the laser comb of `config`.
///
/// Modeled through the photonics substrate: a comb [`Laser`] launches
/// `config.laser_power_mw` per channel on the accelerator's WDM grid, and
/// the trojan tap is a zero-length [`Waveguide`] whose coupler eats
/// `loss_db` of it.
///
/// # Errors
///
/// Returns [`SafelightError::InvalidParameter`] for a non-positive or
/// non-finite `loss_db`, and [`SafelightError::Photonics`] for invalid
/// config-level laser parameters.
pub fn degradation_factor(config: &AcceleratorConfig, loss_db: f64) -> Result<f64, SafelightError> {
    if !loss_db.is_finite() || loss_db <= 0.0 {
        return Err(SafelightError::InvalidParameter {
            name: "loss_db",
            value: loss_db,
        });
    }
    // One representative channel of the accelerator's grid is enough: the
    // comb is flat and the tap is wavelength-agnostic.
    let grid = WdmGrid::new(config.grid_start_nm, config.channel_spacing_nm, 1)?;
    let laser = Laser::new(grid, config.laser_power_mw)?;
    let tap = Waveguide::new(0.0, 0.0)?.with_coupler_loss_db(loss_db)?;
    Ok(tap.transmit(laser.power_per_channel_mw()) / laser.power_per_channel_mw())
}

/// The laser power-degradation injector: every compromised ring's channel
/// keeps only the tapped fraction of its launch power.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaserDegradationInjector {
    /// Parasitic insertion loss of the trojan tap, in dB (> 0).
    pub loss_db: f64,
}

impl Injector for LaserDegradationInjector {
    fn granularity(&self) -> Granularity {
        Granularity::Ring
    }

    fn apply(
        &self,
        config: &AcceleratorConfig,
        kind: BlockKind,
        sites: &Sites,
        conditions: &mut ConditionMap,
    ) -> Result<(), SafelightError> {
        let Sites::Rings(rings) = sites else {
            return Err(SafelightError::InvalidParameter {
                name: "sites (laser-degradation attacks are ring-granular)",
                value: 0.0,
            });
        };
        let factor = degradation_factor(config, self.loss_db)?;
        for &mr in rings {
            // `stack` carries heat already injected at this ring forward
            // and refuses to un-park a hijacked control loop: the tap is
            // upstream of both.
            conditions.stack(
                kind,
                mr,
                MrCondition::Attenuated {
                    factor,
                    delta_kelvin: 0.0,
                },
            );
        }
        Ok(())
    }
}

/// Throttles the channel power of a uniformly random `fraction` of the
/// targeted blocks' microrings by `loss_db`.
///
/// # Errors
///
/// Returns [`SafelightError::InvalidParameter`] for a fraction outside
/// `(0, 1]` or a non-positive `loss_db`.
pub fn inject_laser_degradation(
    config: &AcceleratorConfig,
    target: AttackTarget,
    fraction: f64,
    loss_db: f64,
    rng: &mut SimRng,
) -> Result<ConditionMap, SafelightError> {
    let injector = LaserDegradationInjector { loss_db };
    let mut conditions = ConditionMap::new();
    for kind in target.blocks() {
        let rings = select_rings(config, kind, fraction, Selection::Uniform, None, rng)?;
        injector.apply(config, kind, &Sites::Rings(rings), &mut conditions)?;
    }
    Ok(conditions)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> AcceleratorConfig {
        AcceleratorConfig::scaled_experiment().unwrap()
    }

    #[test]
    fn three_db_halves_channel_power() {
        let f = degradation_factor(&config(), 3.0).unwrap();
        assert!((f - 0.501).abs() < 0.01, "factor {f}");
    }

    #[test]
    fn loss_must_be_positive_and_finite() {
        let cfg = config();
        assert!(degradation_factor(&cfg, 0.0).is_err());
        assert!(degradation_factor(&cfg, -1.0).is_err());
        assert!(degradation_factor(&cfg, f64::NAN).is_err());
    }

    #[test]
    fn all_conditions_are_attenuated_by_the_tap_factor() {
        let cfg = config();
        let mut rng = SimRng::seed_from(21);
        let map =
            inject_laser_degradation(&cfg, AttackTarget::ConvBlock, 0.05, 3.0, &mut rng).unwrap();
        let expected = (cfg.conv.total_mrs() as f64 * 0.05).round() as usize;
        assert_eq!(map.faulty_count(BlockKind::Conv), expected);
        assert_eq!(map.faulty_count(BlockKind::Fc), 0);
        let factor = degradation_factor(&cfg, 3.0).unwrap();
        for (_, cond) in map.iter(BlockKind::Conv) {
            assert_eq!(
                cond,
                MrCondition::Attenuated {
                    factor,
                    delta_kelvin: 0.0
                }
            );
        }
    }

    #[test]
    fn deeper_taps_attenuate_more() {
        let cfg = config();
        let mild = degradation_factor(&cfg, 1.0).unwrap();
        let deep = degradation_factor(&cfg, 10.0).unwrap();
        assert!(mild > deep);
        assert!(deep > 0.0 && mild < 1.0);
    }
}

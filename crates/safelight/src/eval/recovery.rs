//! The Fig. 9 analysis: accuracy intervals of the most robust variant
//! versus the original model at each attack intensity, and how much of the
//! attack-induced drop the robust model recovers.

use safelight_neuro::{accuracy, Dataset, Network};
use safelight_onn::{ConditionMap, InferenceBackend, WeightMapping};

use crate::attack::{AttackTarget, ScenarioSpec, VectorSpec};
use crate::eval::par_map;
use crate::eval::susceptibility::inject_all;
use crate::SafelightError;

/// Accuracy interval (across trials) of original vs robust model for one
/// `(vector, fraction)` cell of Fig. 9.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryInterval {
    /// Attack vector of this cell.
    pub vector: VectorSpec,
    /// Fraction of MRs attacked.
    pub fraction: f64,
    /// (min, mean, max) accuracy of the original model.
    pub original: (f64, f64, f64),
    /// (min, mean, max) accuracy of the robust model.
    pub robust: (f64, f64, f64),
}

impl RecoveryInterval {
    /// Accuracy recovered by the robust model in the worst trial —
    /// the paper's "recover up to X% of the accuracy drops" metric.
    #[must_use]
    pub fn worst_case_recovery(&self) -> f64 {
        self.robust.0 - self.original.0
    }

    /// Mean-accuracy recovery across trials.
    #[must_use]
    pub fn mean_recovery(&self) -> f64 {
        self.robust.1 - self.original.1
    }
}

/// The Fig. 9 artifact for one model.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Clean baseline accuracy of the original model (the dashed line).
    pub original_baseline: f64,
    /// Clean baseline accuracy of the robust variant.
    pub robust_baseline: f64,
    /// One interval per `(vector, fraction)` combination.
    pub intervals: Vec<RecoveryInterval>,
}

fn interval(values: &[f64]) -> (f64, f64, f64) {
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mean = values.iter().sum::<f64>() / values.len().max(1) as f64;
    (min, mean, max)
}

/// Compares `original` and `robust` networks under both attack vectors at
/// each `fraction`, attacking both blocks (the paper's Fig. 9 setting:
/// "attacks affecting X% of the total MRs in the ONN accelerator").
///
/// # Errors
///
/// Propagates sweep errors; returns [`SafelightError::InvalidParameter`]
/// for empty fractions or zero trials.
#[allow(clippy::too_many_arguments)]
pub fn run_recovery<D: Dataset + Sync + ?Sized>(
    original: &Network,
    robust: &Network,
    mapping: &WeightMapping,
    backend: &dyn InferenceBackend,
    test_data: &D,
    fractions: &[f64],
    trials: u64,
    seed: u64,
    threads: usize,
) -> Result<RecoveryReport, SafelightError> {
    if fractions.is_empty() {
        return Err(SafelightError::InvalidParameter {
            name: "fractions",
            value: 0.0,
        });
    }
    if trials == 0 {
        return Err(SafelightError::InvalidParameter {
            name: "trials",
            value: 0.0,
        });
    }
    let mut scenarios = Vec::new();
    for vector in VectorSpec::paper_pair() {
        for &fraction in fractions {
            for trial in 0..trials {
                scenarios.push(ScenarioSpec::new(
                    vector,
                    AttackTarget::Both,
                    fraction,
                    trial,
                ));
            }
        }
    }
    // Fault conditions depend only on (scenario, seed), so the expensive
    // injection pass — thermal solves included — is shared between the two
    // models instead of being recomputed per model as the seed did. The
    // Fig. 9 grid uses uniform site selection, so no salience map is
    // needed.
    let injected = inject_all(backend.config(), &scenarios, None, seed, threads)?;

    // Both clean baselines and both models' full trial sets are
    // independent work items; evaluate all of them in one flat fan-out
    // over the pool (2 baselines + 2·N trials) so no worker idles at a
    // cross-model barrier. Results come back in item order, so the split
    // below is deterministic.
    let networks = [original, robust];
    let n_scenarios = injected.len();
    let items: Vec<usize> = (0..2 + 2 * n_scenarios).collect();
    let outcomes = par_map(items, threads, |i| {
        if i < 2 {
            let mut clean = backend.derive_network(networks[i], mapping, &ConditionMap::new())?;
            let acc = accuracy(&mut clean, test_data, 32)?;
            return Ok::<f64, SafelightError>(acc);
        }
        let i = i - 2;
        let entry = &injected[i % n_scenarios];
        let mut attacked =
            backend.derive_network(networks[i / n_scenarios], mapping, &entry.conditions)?;
        Ok(accuracy(&mut attacked, test_data, 32)?)
    });
    let mut accuracies = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        accuracies.push(outcome?);
    }
    let original_baseline = accuracies[0];
    let robust_baseline = accuracies[1];
    let trial_of = |model: usize, i: usize| crate::eval::TrialResult {
        scenario: injected[i].scenario.clone(),
        accuracy: accuracies[2 + model * n_scenarios + i],
        effective_fraction: injected[i].effective_fraction,
    };
    let original_trials: Vec<_> = (0..n_scenarios).map(|i| trial_of(0, i)).collect();
    let robust_trials: Vec<_> = (0..n_scenarios).map(|i| trial_of(1, i)).collect();

    let mut intervals = Vec::new();
    for vector in VectorSpec::paper_pair() {
        for &fraction in fractions {
            let select = |t: &&crate::eval::TrialResult| {
                t.scenario.vectors == [vector] && (t.scenario.fraction - fraction).abs() < 1e-12
            };
            let orig: Vec<f64> = original_trials
                .iter()
                .filter(select)
                .map(|t| t.accuracy)
                .collect();
            let robu: Vec<f64> = robust_trials
                .iter()
                .filter(select)
                .map(|t| t.accuracy)
                .collect();
            intervals.push(RecoveryInterval {
                vector,
                fraction,
                original: interval(&orig),
                robust: interval(&robu),
            });
        }
    }
    Ok(RecoveryReport {
        original_baseline,
        robust_baseline,
        intervals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{build_model, ModelKind};
    use safelight_datasets::{digits, SyntheticSpec};
    use safelight_neuro::{Trainer, TrainerConfig};
    use safelight_onn::{AcceleratorConfig, AnalyticBackend};

    #[test]
    fn recovery_report_has_one_interval_per_cell() {
        let data = digits(&SyntheticSpec {
            train: 100,
            test: 40,
            ..SyntheticSpec::default()
        })
        .unwrap();
        let config = AcceleratorConfig::scaled_experiment().unwrap();
        let bundle = build_model(ModelKind::Cnn1, 3).unwrap();
        let mapping = WeightMapping::new(&config, &bundle.layer_specs).unwrap();

        let mut original = bundle.network.clone();
        let cfg = TrainerConfig {
            epochs: 2,
            batch_size: 20,
            ..TrainerConfig::default()
        };
        Trainer::new(cfg).fit(&mut original, &data.train).unwrap();
        let mut robust = bundle.network.clone();
        let cfg = TrainerConfig {
            noise_std: 0.3,
            ..cfg
        };
        Trainer::new(cfg).fit(&mut robust, &data.train).unwrap();

        let report = run_recovery(
            &original,
            &robust,
            &mapping,
            &AnalyticBackend::new(&config),
            &data.test,
            &[0.01, 0.10],
            2,
            5,
            2,
        )
        .unwrap();
        // 2 vectors × 2 fractions.
        assert_eq!(report.intervals.len(), 4);
        for i in &report.intervals {
            assert!(i.original.0 <= i.original.2);
            assert!(i.robust.0 <= i.robust.2);
        }
    }

    #[test]
    fn degenerate_inputs_are_rejected() {
        let data = digits(&SyntheticSpec {
            train: 20,
            test: 10,
            ..SyntheticSpec::default()
        })
        .unwrap();
        let config = AcceleratorConfig::scaled_experiment().unwrap();
        let bundle = build_model(ModelKind::Cnn1, 3).unwrap();
        let mapping = WeightMapping::new(&config, &bundle.layer_specs).unwrap();
        let net = bundle.network;
        assert!(run_recovery(
            &net,
            &net,
            &mapping,
            &AnalyticBackend::new(&config),
            &data.test,
            &[],
            2,
            1,
            1
        )
        .is_err());
        assert!(run_recovery(
            &net,
            &net,
            &mapping,
            &AnalyticBackend::new(&config),
            &data.test,
            &[0.01],
            0,
            1,
            1
        )
        .is_err());
    }
}

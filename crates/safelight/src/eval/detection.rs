//! The runtime-detection evaluation pipeline: every detector against every
//! attack scenario *and* attack-free runs, producing ROC points, detection
//! latency in frames and per-vector detectability summaries.
//!
//! Methodology (see `docs/detection.md` for the full write-up):
//!
//! 1. the analytic telemetry probe derives the noiseless sensor means of
//!    the clean accelerator and of every injected scenario once;
//! 2. detectors are calibrated on a dedicated attack-free frame stream;
//! 3. `clean_runs` further attack-free runs measure each detector's
//!    false-positive behaviour, `attack_runs` noise-seeded runs per
//!    scenario measure detection — each run plays `onset` clean frames
//!    followed by attacked frames, so sequential detectors are scored on a
//!    realistic mid-stream compromise;
//! 4. the threshold axis is swept over quantiles of the pooled max-score
//!    distribution (ROC), and a fixed operating threshold — the smallest
//!    with calibrated FPR below the target — yields detection latency.
//!
//! Every random draw derives from `(seed, scenario spec, run, batch)` by
//! avalanche mixing, so reports are bitwise independent of the worker
//! thread count.

use safelight_neuro::Network;
use safelight_onn::{
    ConditionMap, InferenceBackend, SentinelPlan, TapConfig, TelemetryFrame, TelemetryProbe,
    WeightMapping,
};

use crate::attack::{fold, RingSalience, ScenarioSpec};
use crate::detect::Detector;
use crate::eval::par_map;
use crate::eval::susceptibility::{inject_all, needs_salience};
use crate::SafelightError;

/// Tuning knobs of the detection evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionOptions {
    /// Frames per evaluation run.
    pub frames: usize,
    /// Frame index at which the attack switches on within a run (frames
    /// before it replay the clean accelerator).
    pub onset: usize,
    /// Attack-free frames the detectors are calibrated on.
    pub calibration_frames: usize,
    /// Attack-free runs measuring false-positive rates.
    pub clean_runs: usize,
    /// Noise-seeded runs per attack scenario.
    pub attack_runs: usize,
    /// Threshold samples on the ROC curve (plus the two degenerate ends).
    pub threshold_points: usize,
    /// Calibrated false-positive-rate target of the operating threshold.
    pub fpr_target: f64,
    /// Sensor tap configuration (read-noise levels).
    pub tap: TapConfig,
    /// Sentinel rings provisioned per block.
    pub sentinels_per_block: usize,
    /// Probe magnitude imprinted on sentinel rings.
    pub sentinel_magnitude: f64,
}

impl Default for DetectionOptions {
    fn default() -> Self {
        Self {
            frames: 24,
            onset: 8,
            calibration_frames: 48,
            clean_runs: 40,
            attack_runs: 4,
            threshold_points: 12,
            fpr_target: 0.05,
            tap: TapConfig::default(),
            sentinels_per_block: 32,
            sentinel_magnitude: 0.7,
        }
    }
}

/// One point of a detector's ROC curve for one scenario cell.
#[derive(Debug, Clone, PartialEq)]
pub struct RocPoint {
    /// Detector name.
    pub detector: String,
    /// Vector-stack label of the cell (e.g. `actuation+hotspot`).
    pub vector: String,
    /// Site-selection label of the cell.
    pub selection: String,
    /// Target label of the cell (CONV/FC/CONV+FC).
    pub target: String,
    /// Nominal attack fraction of the cell.
    pub fraction: f64,
    /// Score threshold this point was computed at.
    pub threshold: f64,
    /// True-positive rate across the cell's attack runs.
    pub tpr: f64,
    /// False-positive rate across the attack-free runs.
    pub fpr: f64,
}

/// A detector's operating point: the fixed threshold used for latency and
/// detectability summaries.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatingPoint {
    /// Detector name.
    pub detector: String,
    /// Chosen score threshold.
    pub threshold: f64,
    /// False-positive rate measured at that threshold.
    pub fpr: f64,
}

/// Detectability of one scenario cell by one detector, at the operating
/// threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSummary {
    /// Detector name.
    pub detector: String,
    /// Vector-stack label.
    pub vector: String,
    /// Site-selection label.
    pub selection: String,
    /// Target label.
    pub target: String,
    /// Nominal attack fraction.
    pub fraction: f64,
    /// Attack runs evaluated in the cell (trials × noise seeds).
    pub runs: usize,
    /// Fraction of runs detected at the operating threshold.
    pub tpr: f64,
    /// Area under the cell's ROC curve (trapezoidal).
    pub auc: f64,
    /// Mean frames from attack onset to the first alarm, across detected
    /// runs (`NaN` when nothing was detected).
    pub mean_latency_frames: f64,
    /// Runs in which the detector alarmed at all.
    pub detected_runs: usize,
}

/// The full detection-evaluation report.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionReport {
    /// Detector names, in suite order.
    pub detectors: Vec<String>,
    /// Attack-free runs behind every FPR figure.
    pub clean_runs: usize,
    /// ROC points, ordered by detector, then cell (scenario input order),
    /// then ascending threshold.
    pub roc: Vec<RocPoint>,
    /// The per-detector operating points.
    pub operating: Vec<OperatingPoint>,
    /// Per-cell detectability at the operating threshold, ordered by
    /// detector then cell.
    pub cells: Vec<CellSummary>,
}

impl DetectionReport {
    /// The cell summary of `detector` for the cell containing `spec`.
    #[must_use]
    pub fn cell(&self, detector: &str, spec: &ScenarioSpec) -> Option<&CellSummary> {
        self.cells.iter().find(|c| {
            c.detector == detector
                && c.vector == spec.vector_label()
                && c.selection == spec.selection.to_string()
                && c.target == spec.target.to_string()
                && c.fraction == spec.fraction
        })
    }

    /// The best (highest-TPR) detector summary for the cell containing
    /// `spec`.
    #[must_use]
    pub fn best_for(&self, spec: &ScenarioSpec) -> Option<&CellSummary> {
        self.detectors
            .iter()
            .filter_map(|d| self.cell(d, spec))
            .max_by(|a, b| a.tpr.partial_cmp(&b.tpr).expect("TPRs are finite"))
    }
}

/// Identity of one scenario cell (all trials of one grid point).
type CellKey = (String, String, String, u64);

fn cell_key(spec: &ScenarioSpec) -> CellKey {
    (
        spec.vector_label(),
        spec.selection.to_string(),
        spec.target.to_string(),
        spec.fraction.to_bits(),
    )
}

/// Per-run scores of every detector: `scores[detector][frame]`.
type RunScores = Vec<Vec<f64>>;

/// Plays one run of `frames` through an already-calibrated `suite`:
/// batches `0..onset` from `clean`, the rest from `attacked`.
///
/// The suite is [`Detector::reset`] at the start of every run, so one
/// calibrated clone serves an arbitrary number of runs without
/// reallocation — the same reuse discipline the serving loop applies to
/// its per-accelerator suites.
fn play_run(
    suite: &mut [Box<dyn Detector>],
    clean: &TelemetryProbe,
    attacked: Option<&TelemetryProbe>,
    opts: &DetectionOptions,
    run_seed: u64,
) -> RunScores {
    for d in suite.iter_mut() {
        d.reset();
    }
    let mut scores = vec![Vec::with_capacity(opts.frames); suite.len()];
    for batch in 0..opts.frames {
        let probe = match attacked {
            Some(probe) if batch >= opts.onset => probe,
            _ => clean,
        };
        let frame = probe.frame(batch as u64, run_seed);
        for (d, out) in suite.iter_mut().zip(&mut scores) {
            let _span = safelight_obs::profile_span_class("detector_score", d.name());
            out.push(d.score(&frame));
        }
    }
    scores
}

/// Maximum score over the post-onset frames of a run.
fn post_onset_max(scores: &[f64], onset: usize) -> f64 {
    scores[onset..].iter().fold(0.0f64, |a, &s| a.max(s))
}

/// Runs the full detection evaluation: calibrates the `detectors`
/// prototypes on attack-free telemetry, measures false-positive behaviour
/// on dedicated clean runs, then plays every scenario of `scenarios`
/// (each with [`DetectionOptions::attack_runs`] noise seeds) through the
/// calibrated suite.
///
/// Work fans out over `threads` workers of the shared pool; results are
/// ordered by the input scenario order and bitwise independent of
/// `threads`.
///
/// # Errors
///
/// Propagates attack-injection and telemetry errors, and rejects
/// degenerate options (zero frames/runs, onset beyond the run length).
#[allow(clippy::too_many_arguments)]
pub fn run_detection(
    network: &Network,
    mapping: &WeightMapping,
    backend: &dyn InferenceBackend,
    scenarios: &[ScenarioSpec],
    detectors: &[Box<dyn Detector>],
    opts: &DetectionOptions,
    seed: u64,
    threads: usize,
) -> Result<DetectionReport, SafelightError> {
    if opts.frames == 0 || opts.onset >= opts.frames {
        return Err(SafelightError::InvalidParameter {
            name: "frames/onset",
            value: opts.frames as f64,
        });
    }
    if opts.clean_runs == 0 || opts.attack_runs == 0 || opts.calibration_frames == 0 {
        return Err(SafelightError::InvalidParameter {
            name: "runs",
            value: 0.0,
        });
    }
    let config = backend.config();
    let sentinels = SentinelPlan::new(
        mapping,
        config,
        opts.sentinels_per_block,
        opts.sentinel_magnitude,
    );
    let clean_probe = backend
        .probe(network, mapping, &ConditionMap::new(), &sentinels, opts.tap)
        .map_err(SafelightError::from)?;

    // Calibrate the suite once on a dedicated attack-free stream.
    let cal_seed = fold(seed, 0xCA11_B8A7);
    let cal_frames: Vec<TelemetryFrame> = (0..opts.calibration_frames as u64)
        .map(|b| clean_probe.frame(b, cal_seed))
        .collect();
    let mut calibrated: Vec<Box<dyn Detector>> = detectors.iter().map(|d| d.clone_box()).collect();
    for d in &mut calibrated {
        d.calibrate(&cal_frames)?;
    }
    let names: Vec<String> = calibrated.iter().map(|d| d.name().to_string()).collect();

    // Attack-free runs: the false-positive population. Seeds are chunked so
    // each worker task clones the calibrated suite once and replays it via
    // `reset` across its runs; run results are independent of chunking
    // because every run starts from a reset suite.
    let clean_seeds: Vec<u64> = (0..opts.clean_runs as u64)
        .map(|r| fold(fold(seed, 0xC1EA_4095), r))
        .collect();
    let chunk = clean_seeds.len().div_ceil(threads.max(1)).max(1);
    let seed_chunks: Vec<Vec<u64>> = clean_seeds.chunks(chunk).map(<[u64]>::to_vec).collect();
    let clean_scores: Vec<RunScores> = par_map(seed_chunks, threads, |chunk_seeds| {
        let mut suite: Vec<Box<dyn Detector>> = calibrated.iter().map(|d| d.clone_box()).collect();
        chunk_seeds
            .into_iter()
            .map(|run_seed| play_run(&mut suite, &clean_probe, None, opts, run_seed))
            .collect::<Vec<RunScores>>()
    })
    .into_iter()
    .flatten()
    .collect();
    // Per detector: the max score of every clean run (full run length — a
    // false positive at any frame counts).
    let clean_max: Vec<Vec<f64>> = (0..calibrated.len())
        .map(|d| {
            clean_scores
                .iter()
                .map(|run| run[d].iter().fold(0.0f64, |a, &s| a.max(s)))
                .collect()
        })
        .collect();

    // Inject every scenario (sharing thermal solves and the salience map),
    // then play the attack runs.
    let salience = if needs_salience(scenarios) {
        Some(RingSalience::from_network(network, mapping, config)?)
    } else {
        None
    };
    let injected = inject_all(config, scenarios, salience.as_ref(), seed, threads)?;
    let per_scenario: Vec<Result<Vec<RunScores>, SafelightError>> =
        par_map(injected, threads, |entry| {
            let probe = backend
                .probe(network, mapping, &entry.conditions, &sentinels, opts.tap)
                .map_err(SafelightError::from)?;
            let spec_key = spec_stream_key(&entry.scenario);
            // One suite clone serves every run of this scenario via reset.
            let mut suite: Vec<Box<dyn Detector>> =
                calibrated.iter().map(|d| d.clone_box()).collect();
            Ok((0..opts.attack_runs as u64)
                .map(|run| {
                    let run_seed = fold(fold(seed, spec_key), run);
                    play_run(&mut suite, &clean_probe, Some(&probe), opts, run_seed)
                })
                .collect())
        });
    let per_scenario: Vec<Vec<RunScores>> = per_scenario.into_iter().collect::<Result<_, _>>()?;

    // Group scenario indices into cells, preserving input order.
    let mut cells: Vec<(CellKey, Vec<usize>)> = Vec::new();
    for (i, spec) in scenarios.iter().enumerate() {
        let key = cell_key(spec);
        match cells.iter_mut().find(|(k, _)| *k == key) {
            Some((_, idx)) => idx.push(i),
            None => cells.push((key, vec![i])),
        }
    }

    // Threshold axis and report assembly, serially (cheap).
    let mut roc = Vec::new();
    let mut operating = Vec::new();
    let mut summaries = Vec::new();
    for (d, name) in names.iter().enumerate() {
        // Candidate thresholds: quantiles of the pooled run maxima, plus a
        // catch-all above the global max (TPR = FPR = 0) and zero
        // (everything alarms).
        let mut pool: Vec<f64> = clean_max[d].clone();
        for runs in &per_scenario {
            for run in runs {
                pool.push(post_onset_max(&run[d], opts.onset));
            }
        }
        pool.sort_by(|a, b| a.partial_cmp(b).expect("scores are finite"));
        // −1 sits below every score (they are ≥ 0), pinning the (1, 1)
        // ROC endpoint even for detectors that emit exact zeros.
        let mut thresholds = vec![-1.0];
        for i in 0..opts.threshold_points {
            let pos = (i as f64 + 0.5) / opts.threshold_points as f64;
            thresholds.push(pool[((pos * pool.len() as f64) as usize).min(pool.len() - 1)]);
        }
        thresholds.push(pool[pool.len() - 1] + 1.0);
        thresholds.sort_by(|a, b| a.partial_cmp(b).expect("scores are finite"));
        thresholds.dedup();

        let fpr_at = |threshold: f64| -> f64 {
            clean_max[d].iter().filter(|&&s| s > threshold).count() as f64 / opts.clean_runs as f64
        };

        // Operating threshold: the k-th largest clean maximum, with k
        // chosen so the calibrated FPR stays strictly below the target.
        let mut sorted_clean = clean_max[d].clone();
        sorted_clean.sort_by(|a, b| b.partial_cmp(a).expect("scores are finite"));
        let k =
            ((opts.fpr_target * opts.clean_runs as f64).floor() as usize).clamp(1, opts.clean_runs);
        let op_threshold = sorted_clean[k - 1];
        operating.push(OperatingPoint {
            detector: name.clone(),
            threshold: op_threshold,
            fpr: fpr_at(op_threshold),
        });

        for (key, scenario_idx) in &cells {
            let run_maxima: Vec<f64> = scenario_idx
                .iter()
                .flat_map(|&i| {
                    per_scenario[i]
                        .iter()
                        .map(|run| post_onset_max(&run[d], opts.onset))
                })
                .collect();
            let tpr_at = |threshold: f64| -> f64 {
                run_maxima.iter().filter(|&&s| s > threshold).count() as f64
                    / run_maxima.len() as f64
            };
            let mut cell_points = Vec::with_capacity(thresholds.len());
            for &threshold in &thresholds {
                cell_points.push(RocPoint {
                    detector: name.clone(),
                    vector: key.0.clone(),
                    selection: key.1.clone(),
                    target: key.2.clone(),
                    fraction: f64::from_bits(key.3),
                    threshold,
                    tpr: tpr_at(threshold),
                    fpr: fpr_at(threshold),
                });
            }
            // Trapezoidal AUC over (fpr, tpr), swept from lax to strict.
            let mut auc = 0.0;
            for pair in cell_points.windows(2) {
                auc += (pair[0].fpr - pair[1].fpr) * (pair[0].tpr + pair[1].tpr) / 2.0;
            }
            // Latency at the operating threshold.
            let mut detected = 0usize;
            let mut latency_sum = 0.0;
            let mut runs = 0usize;
            for &i in scenario_idx {
                for run in &per_scenario[i] {
                    runs += 1;
                    if let Some(t) = (opts.onset..opts.frames).find(|&t| run[d][t] > op_threshold) {
                        detected += 1;
                        latency_sum += (t - opts.onset + 1) as f64;
                    }
                }
            }
            summaries.push(CellSummary {
                detector: name.clone(),
                vector: key.0.clone(),
                selection: key.1.clone(),
                target: key.2.clone(),
                fraction: f64::from_bits(key.3),
                runs,
                tpr: tpr_at(op_threshold),
                auc,
                mean_latency_frames: if detected > 0 {
                    latency_sum / detected as f64
                } else {
                    f64::NAN
                },
                detected_runs: detected,
            });
            roc.extend(cell_points);
        }
    }

    Ok(DetectionReport {
        detectors: names,
        clean_runs: opts.clean_runs,
        roc,
        operating,
        cells: summaries,
    })
}

/// A stable stream key of a scenario spec (all fields avalanche-mixed), so
/// attack-run noise seeds never alias across the grid.
fn spec_stream_key(spec: &ScenarioSpec) -> u64 {
    let mut h = fold(0xDE7E_C7ED, spec.trial);
    h = fold(h, spec.fraction.to_bits());
    for byte in spec.to_spec_string().bytes() {
        h = fold(h, u64::from(byte));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::{AttackTarget, Selection, VectorSpec};
    use crate::detect::default_detectors;
    use crate::models::{build_model, matched_accelerator, ModelKind};
    use safelight_onn::AnalyticBackend;

    fn setup() -> (Network, WeightMapping, AnalyticBackend) {
        let bundle = build_model(ModelKind::Cnn1, 7).unwrap();
        let config = matched_accelerator(ModelKind::Cnn1).unwrap();
        let mapping = WeightMapping::new(&config, &bundle.layer_specs).unwrap();
        (bundle.network, mapping, AnalyticBackend::new(&config))
    }

    fn quick_opts() -> DetectionOptions {
        DetectionOptions {
            frames: 12,
            onset: 4,
            calibration_frames: 16,
            clean_runs: 12,
            attack_runs: 2,
            threshold_points: 6,
            ..DetectionOptions::default()
        }
    }

    #[test]
    fn report_covers_every_cell_and_detector() {
        let (network, mapping, backend) = setup();
        let scenarios = vec![
            ScenarioSpec::new(VectorSpec::Actuation, AttackTarget::ConvBlock, 0.10, 0),
            ScenarioSpec::new(VectorSpec::Actuation, AttackTarget::ConvBlock, 0.10, 1),
            ScenarioSpec::new(VectorSpec::laser_default(), AttackTarget::FcBlock, 0.05, 0)
                .with_selection(Selection::Clustered),
        ];
        let report = run_detection(
            &network,
            &mapping,
            &backend,
            &scenarios,
            &default_detectors(),
            &quick_opts(),
            11,
            2,
        )
        .unwrap();
        assert_eq!(report.detectors.len(), 3);
        // Two cells (the two trials share one), three detectors.
        assert_eq!(report.cells.len(), 2 * 3);
        // The shared cell pooled both trials' runs.
        let pooled = report.cell("guard_band", &scenarios[0]).unwrap();
        assert_eq!(pooled.runs, 2 * quick_opts().attack_runs);
        // ROC endpoints behave: the laxest threshold catches everything,
        // the strictest nothing.
        for d in &report.detectors {
            let points: Vec<&RocPoint> = report.roc.iter().filter(|p| &p.detector == d).collect();
            assert!(points.iter().any(|p| p.tpr == 1.0 && p.fpr == 1.0));
            assert!(points.iter().any(|p| p.fpr == 0.0));
        }
        // Operating points respect the FPR target.
        for op in &report.operating {
            assert!(op.fpr < quick_opts().fpr_target + 1e-12, "{op:?}");
        }
    }

    #[test]
    fn strong_actuation_is_detected_with_low_latency() {
        let (network, mapping, backend) = setup();
        let spec = ScenarioSpec::new(VectorSpec::Actuation, AttackTarget::Both, 0.10, 0);
        let report = run_detection(
            &network,
            &mapping,
            &backend,
            std::slice::from_ref(&spec),
            &default_detectors(),
            &quick_opts(),
            11,
            1,
        )
        .unwrap();
        let best = report.best_for(&spec).unwrap();
        assert!(best.tpr > 0.9, "best TPR {}", best.tpr);
        // The guard band fires on the first attacked frame.
        let guard = report.cell("guard_band", &spec).unwrap();
        assert_eq!(guard.mean_latency_frames, 1.0);
    }

    #[test]
    fn results_are_identical_across_thread_counts() {
        let (network, mapping, backend) = setup();
        let scenarios = vec![
            ScenarioSpec::new(VectorSpec::Actuation, AttackTarget::ConvBlock, 0.05, 0),
            ScenarioSpec::new(VectorSpec::trim_default(), AttackTarget::Both, 0.05, 0),
        ];
        let run = |threads| {
            run_detection(
                &network,
                &mapping,
                &backend,
                &scenarios,
                &default_detectors(),
                &quick_opts(),
                3,
                threads,
            )
            .unwrap()
        };
        let a = run(1);
        let b = run(4);
        assert_eq!(a.roc, b.roc);
        assert_eq!(a.operating, b.operating);
        // NaN-bearing latency cells compare via their debug text.
        assert_eq!(format!("{:?}", a.cells), format!("{:?}", b.cells));
    }

    #[test]
    fn degenerate_options_are_rejected() {
        let (network, mapping, backend) = setup();
        let scenarios = [ScenarioSpec::new(
            VectorSpec::Actuation,
            AttackTarget::ConvBlock,
            0.05,
            0,
        )];
        for opts in [
            DetectionOptions {
                onset: 12,
                frames: 12,
                ..quick_opts()
            },
            DetectionOptions {
                clean_runs: 0,
                ..quick_opts()
            },
        ] {
            assert!(run_detection(
                &network,
                &mapping,
                &backend,
                &scenarios,
                &default_detectors(),
                &opts,
                1,
                1,
            )
            .is_err());
        }
    }
}

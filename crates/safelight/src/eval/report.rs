//! CSV and JSON renderers for the evaluation reports — the
//! machine-readable counterparts of the paper's figure data series. The
//! JSON emitters back `repro --json`, so downstream tooling reads
//! structured results instead of scraping tables.

use crate::eval::{DetectionReport, MitigationReport, RecoveryReport, SusceptibilityReport};

/// Renders a Fig. 7 susceptibility report as CSV:
/// `vector,selection,target,fraction,effective_fraction,trial,accuracy`
/// rows plus a baseline header row. Stacked vectors join with `+`;
/// `effective_fraction` records the coverage actually achieved (bank
/// granularity can clamp a nominal 1 % attack up to a whole bank).
///
/// # Example
///
/// ```
/// use safelight::eval::{susceptibility_csv, SusceptibilityReport};
///
/// let report = SusceptibilityReport { baseline: 0.97, trials: vec![] };
/// let csv = susceptibility_csv(&report);
/// assert!(csv.starts_with("# baseline,0.97"));
/// ```
#[must_use]
pub fn susceptibility_csv(report: &SusceptibilityReport) -> String {
    let mut out = format!("# baseline,{}\n", report.baseline);
    out.push_str("vector,selection,target,fraction,effective_fraction,trial,accuracy\n");
    for t in &report.trials {
        out.push_str(&format!(
            "{},{},{},{},{},{},{}\n",
            t.scenario.vector_label(),
            t.scenario.selection,
            t.scenario.target,
            t.scenario.fraction,
            t.effective_fraction,
            t.scenario.trial,
            t.accuracy
        ));
    }
    out
}

/// Renders a Fig. 8 mitigation report as CSV:
/// `variant,baseline,min,q1,median,q3,max` rows.
#[must_use]
pub fn mitigation_csv(report: &MitigationReport) -> String {
    let mut out = String::from("variant,baseline,min,q1,median,q3,max\n");
    for o in &report.outcomes {
        out.push_str(&format!(
            "{},{},{},{},{},{},{}\n",
            o.variant.label(),
            o.baseline,
            o.stats.min,
            o.stats.q1,
            o.stats.median,
            o.stats.q3,
            o.stats.max
        ));
    }
    out
}

/// Renders a Fig. 9 recovery report as CSV:
/// `vector,fraction,orig_min,orig_mean,orig_max,robust_min,robust_mean,robust_max,worst_case_recovery`.
#[must_use]
pub fn recovery_csv(report: &RecoveryReport) -> String {
    let mut out = format!(
        "# original_baseline,{}\n# robust_baseline,{}\n",
        report.original_baseline, report.robust_baseline
    );
    out.push_str(
        "vector,fraction,orig_min,orig_mean,orig_max,robust_min,robust_mean,robust_max,worst_case_recovery\n",
    );
    for i in &report.intervals {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{}\n",
            i.vector,
            i.fraction,
            i.original.0,
            i.original.1,
            i.original.2,
            i.robust.0,
            i.robust.1,
            i.robust.2,
            i.worst_case_recovery()
        ));
    }
    out
}

/// Renders the detection ROC table as CSV:
/// `detector,vector,selection,target,fraction,threshold,tpr,fpr` rows, one
/// per ROC point, preceded by a `# clean_runs` header. Covers every
/// scenario cell the evaluation ran — one curve per detector × cell.
#[must_use]
pub fn detection_roc_csv(report: &DetectionReport) -> String {
    let mut out = format!("# clean_runs,{}\n", report.clean_runs);
    out.push_str("detector,vector,selection,target,fraction,threshold,tpr,fpr\n");
    for p in &report.roc {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{}\n",
            p.detector, p.vector, p.selection, p.target, p.fraction, p.threshold, p.tpr, p.fpr
        ));
    }
    out
}

/// Renders the per-cell detectability/latency table as CSV:
/// `detector,vector,selection,target,fraction,runs,tpr,auc,detected_runs,mean_latency_frames`
/// rows at each detector's operating threshold (listed in `# operating`
/// header lines as `detector:threshold:fpr`). An undetected cell renders
/// its latency as the empty field.
#[must_use]
pub fn detection_summary_csv(report: &DetectionReport) -> String {
    let mut out = String::new();
    for op in &report.operating {
        out.push_str(&format!(
            "# operating,{},{},{}\n",
            op.detector, op.threshold, op.fpr
        ));
    }
    out.push_str(
        "detector,vector,selection,target,fraction,runs,tpr,auc,detected_runs,mean_latency_frames\n",
    );
    for c in &report.cells {
        let latency = if c.mean_latency_frames.is_finite() {
            format!("{}", c.mean_latency_frames)
        } else {
            String::new()
        };
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{latency}\n",
            c.detector,
            c.vector,
            c.selection,
            c.target,
            c.fraction,
            c.runs,
            c.tpr,
            c.auc,
            c.detected_runs
        ));
    }
    out
}

/// Escapes a string for a JSON literal.
///
/// Public (alongside [`json_num`]) so every hand-rolled JSON emitter in
/// the workspace — including the serving report in `safelight-serve` —
/// shares one escaping discipline instead of drifting copies.
#[must_use]
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A JSON number literal (`null` for non-finite values, which JSON cannot
/// represent). See [`json_str`] for why this is public.
#[must_use]
pub fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".into()
    }
}

/// Joins rendered JSON values into an array literal.
fn json_array(items: impl IntoIterator<Item = String>) -> String {
    let body: Vec<String> = items.into_iter().collect();
    format!("[{}]", body.join(","))
}

/// Renders a Fig. 7 susceptibility report as a JSON object with `baseline`
/// and a `trials` array mirroring [`susceptibility_csv`]'s columns.
#[must_use]
pub fn susceptibility_json(report: &SusceptibilityReport) -> String {
    let trials = json_array(report.trials.iter().map(|t| {
        format!(
            "{{\"vector\":{},\"selection\":{},\"target\":{},\"fraction\":{},\
             \"effective_fraction\":{},\"trial\":{},\"accuracy\":{}}}",
            json_str(&t.scenario.vector_label()),
            json_str(t.scenario.selection.label()),
            json_str(&t.scenario.target.to_string()),
            json_num(t.scenario.fraction),
            json_num(t.effective_fraction),
            t.scenario.trial,
            json_num(t.accuracy)
        )
    }));
    format!(
        "{{\"baseline\":{},\"trials\":{trials}}}",
        json_num(report.baseline)
    )
}

/// Renders a Fig. 8 mitigation report as a JSON array of per-variant
/// objects mirroring [`mitigation_csv`]'s columns.
#[must_use]
pub fn mitigation_json(report: &MitigationReport) -> String {
    let outcomes = json_array(report.outcomes.iter().map(|o| {
        format!(
            "{{\"variant\":{},\"baseline\":{},\"min\":{},\"q1\":{},\"median\":{},\
             \"q3\":{},\"max\":{}}}",
            json_str(&o.variant.label()),
            json_num(o.baseline),
            json_num(o.stats.min),
            json_num(o.stats.q1),
            json_num(o.stats.median),
            json_num(o.stats.q3),
            json_num(o.stats.max)
        )
    }));
    format!("{{\"outcomes\":{outcomes}}}")
}

/// Renders a Fig. 9 recovery report as a JSON object mirroring
/// [`recovery_csv`]'s columns.
#[must_use]
pub fn recovery_json(report: &RecoveryReport) -> String {
    let intervals = json_array(report.intervals.iter().map(|i| {
        format!(
            "{{\"vector\":{},\"fraction\":{},\"original\":[{},{},{}],\
             \"robust\":[{},{},{}],\"worst_case_recovery\":{}}}",
            json_str(&i.vector.label()),
            json_num(i.fraction),
            json_num(i.original.0),
            json_num(i.original.1),
            json_num(i.original.2),
            json_num(i.robust.0),
            json_num(i.robust.1),
            json_num(i.robust.2),
            json_num(i.worst_case_recovery())
        )
    }));
    format!(
        "{{\"original_baseline\":{},\"robust_baseline\":{},\"intervals\":{intervals}}}",
        json_num(report.original_baseline),
        json_num(report.robust_baseline)
    )
}

/// Renders a detection report as a JSON object with `operating`, `roc` and
/// `cells` arrays mirroring the two detection CSVs.
#[must_use]
pub fn detection_json(report: &DetectionReport) -> String {
    let operating = json_array(report.operating.iter().map(|o| {
        format!(
            "{{\"detector\":{},\"threshold\":{},\"fpr\":{}}}",
            json_str(&o.detector),
            json_num(o.threshold),
            json_num(o.fpr)
        )
    }));
    let roc = json_array(report.roc.iter().map(|p| {
        format!(
            "{{\"detector\":{},\"vector\":{},\"selection\":{},\"target\":{},\
             \"fraction\":{},\"threshold\":{},\"tpr\":{},\"fpr\":{}}}",
            json_str(&p.detector),
            json_str(&p.vector),
            json_str(&p.selection),
            json_str(&p.target),
            json_num(p.fraction),
            json_num(p.threshold),
            json_num(p.tpr),
            json_num(p.fpr)
        )
    }));
    let cells = json_array(report.cells.iter().map(|c| {
        format!(
            "{{\"detector\":{},\"vector\":{},\"selection\":{},\"target\":{},\
             \"fraction\":{},\"runs\":{},\"tpr\":{},\"auc\":{},\"detected_runs\":{},\
             \"mean_latency_frames\":{}}}",
            json_str(&c.detector),
            json_str(&c.vector),
            json_str(&c.selection),
            json_str(&c.target),
            json_num(c.fraction),
            c.runs,
            json_num(c.tpr),
            json_num(c.auc),
            c.detected_runs,
            json_num(c.mean_latency_frames)
        )
    }));
    format!(
        "{{\"clean_runs\":{},\"operating\":{operating},\"roc\":{roc},\"cells\":{cells}}}",
        report.clean_runs
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::{AttackTarget, ScenarioSpec, Selection, VectorSpec};
    use crate::defense::VariantKind;
    use crate::eval::{BoxStats, RecoveryInterval, TrialResult, VariantOutcome};

    fn scenario() -> ScenarioSpec {
        ScenarioSpec::new(VectorSpec::Hotspot, AttackTarget::Both, 0.05, 2)
    }

    #[test]
    fn susceptibility_csv_has_one_row_per_trial() {
        let report = SusceptibilityReport {
            baseline: 0.9,
            trials: vec![
                TrialResult {
                    scenario: scenario(),
                    accuracy: 0.5,
                    effective_fraction: 0.08,
                },
                TrialResult {
                    scenario: scenario().with_selection(Selection::Clustered),
                    accuracy: 0.6,
                    effective_fraction: 0.08,
                },
            ],
        };
        let csv = susceptibility_csv(&report);
        assert_eq!(csv.lines().count(), 4); // baseline + header + 2 rows
        assert!(csv.contains("hotspot,uniform,CONV+FC,0.05,0.08,2,0.5"));
        assert!(csv.contains("hotspot,clustered,CONV+FC,0.05,0.08,2,0.6"));
    }

    #[test]
    fn susceptibility_csv_labels_stacked_vectors() {
        let report = SusceptibilityReport {
            baseline: 0.9,
            trials: vec![TrialResult {
                scenario: ScenarioSpec::stacked(
                    vec![VectorSpec::Actuation, VectorSpec::Hotspot],
                    AttackTarget::ConvBlock,
                    0.01,
                    0,
                ),
                accuracy: 0.4,
                effective_fraction: 0.05,
            }],
        };
        let csv = susceptibility_csv(&report);
        assert!(csv.contains("actuation+hotspot,uniform,CONV,0.01,0.05,0,0.4"));
    }

    #[test]
    fn mitigation_csv_uses_variant_labels() {
        let report = MitigationReport {
            outcomes: vec![VariantOutcome {
                variant: VariantKind::L2Noise(3),
                baseline: 0.95,
                stats: BoxStats::from_values(&[0.7, 0.8, 0.9]).unwrap(),
            }],
        };
        let csv = mitigation_csv(&report);
        assert!(csv.contains("l2+n3,0.95,0.7,"));
    }

    fn tiny_detection_report() -> DetectionReport {
        use crate::eval::{CellSummary, OperatingPoint, RocPoint};
        DetectionReport {
            detectors: vec!["guard_band".into()],
            clean_runs: 8,
            roc: vec![RocPoint {
                detector: "guard_band".into(),
                vector: "actuation".into(),
                selection: "uniform".into(),
                target: "CONV".into(),
                fraction: 0.1,
                threshold: 4.5,
                tpr: 1.0,
                fpr: 0.0,
            }],
            operating: vec![OperatingPoint {
                detector: "guard_band".into(),
                threshold: 4.5,
                fpr: 0.0,
            }],
            cells: vec![CellSummary {
                detector: "guard_band".into(),
                vector: "actuation".into(),
                selection: "uniform".into(),
                target: "CONV".into(),
                fraction: 0.1,
                runs: 4,
                tpr: 1.0,
                auc: 0.99,
                mean_latency_frames: f64::NAN,
                detected_runs: 0,
            }],
        }
    }

    #[test]
    fn detection_csvs_render_rows_and_censored_latency() {
        let report = tiny_detection_report();
        let roc = detection_roc_csv(&report);
        assert!(roc.starts_with("# clean_runs,8\n"));
        assert!(roc.contains("guard_band,actuation,uniform,CONV,0.1,4.5,1,0"));
        let summary = detection_summary_csv(&report);
        assert!(summary.contains("# operating,guard_band,4.5,0"));
        // The NaN latency renders as an empty trailing field, not "NaN".
        assert!(summary.lines().last().unwrap().ends_with(",0,"));
    }

    #[test]
    fn json_emitters_produce_structured_output() {
        let report = SusceptibilityReport {
            baseline: 0.9,
            trials: vec![TrialResult {
                scenario: scenario(),
                accuracy: 0.5,
                effective_fraction: 0.08,
            }],
        };
        let json = susceptibility_json(&report);
        assert!(json.starts_with("{\"baseline\":0.9"));
        assert!(json.contains("\"vector\":\"hotspot\""));
        let detection = detection_json(&tiny_detection_report());
        // Non-finite latency becomes null, keeping the document valid JSON.
        assert!(detection.contains("\"mean_latency_frames\":null"));
        assert!(detection.contains("\"clean_runs\":8"));
        let mitigation = mitigation_json(&MitigationReport {
            outcomes: vec![VariantOutcome {
                variant: VariantKind::L2Noise(3),
                baseline: 0.95,
                stats: BoxStats::from_values(&[0.7, 0.8, 0.9]).unwrap(),
            }],
        });
        assert!(mitigation.contains("\"variant\":\"l2+n3\""));
        let recovery = recovery_json(&RecoveryReport {
            original_baseline: 0.9,
            robust_baseline: 0.92,
            intervals: vec![RecoveryInterval {
                vector: VectorSpec::Actuation,
                fraction: 0.1,
                original: (0.4, 0.5, 0.6),
                robust: (0.6, 0.7, 0.8),
            }],
        });
        assert!(recovery.contains("\"worst_case_recovery\":0.19999999999999996"));
    }

    #[test]
    fn json_strings_escape_special_characters() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_num(f64::INFINITY), "null");
    }

    #[test]
    fn recovery_csv_contains_recovery_column() {
        let report = RecoveryReport {
            original_baseline: 0.9,
            robust_baseline: 0.92,
            intervals: vec![RecoveryInterval {
                vector: VectorSpec::Actuation,
                fraction: 0.1,
                original: (0.4, 0.5, 0.6),
                robust: (0.6, 0.7, 0.8),
            }],
        };
        let csv = recovery_csv(&report);
        let last = csv.lines().last().unwrap();
        assert!(last.ends_with(&format!("{}", 0.6 - 0.4)));
    }
}

//! CSV renderers for the evaluation reports — the machine-readable
//! counterparts of the paper's figure data series.

use crate::eval::{MitigationReport, RecoveryReport, SusceptibilityReport};

/// Renders a Fig. 7 susceptibility report as CSV:
/// `vector,selection,target,fraction,effective_fraction,trial,accuracy`
/// rows plus a baseline header row. Stacked vectors join with `+`;
/// `effective_fraction` records the coverage actually achieved (bank
/// granularity can clamp a nominal 1 % attack up to a whole bank).
///
/// # Example
///
/// ```
/// use safelight::eval::{susceptibility_csv, SusceptibilityReport};
///
/// let report = SusceptibilityReport { baseline: 0.97, trials: vec![] };
/// let csv = susceptibility_csv(&report);
/// assert!(csv.starts_with("# baseline,0.97"));
/// ```
#[must_use]
pub fn susceptibility_csv(report: &SusceptibilityReport) -> String {
    let mut out = format!("# baseline,{}\n", report.baseline);
    out.push_str("vector,selection,target,fraction,effective_fraction,trial,accuracy\n");
    for t in &report.trials {
        out.push_str(&format!(
            "{},{},{},{},{},{},{}\n",
            t.scenario.vector_label(),
            t.scenario.selection,
            t.scenario.target,
            t.scenario.fraction,
            t.effective_fraction,
            t.scenario.trial,
            t.accuracy
        ));
    }
    out
}

/// Renders a Fig. 8 mitigation report as CSV:
/// `variant,baseline,min,q1,median,q3,max` rows.
#[must_use]
pub fn mitigation_csv(report: &MitigationReport) -> String {
    let mut out = String::from("variant,baseline,min,q1,median,q3,max\n");
    for o in &report.outcomes {
        out.push_str(&format!(
            "{},{},{},{},{},{},{}\n",
            o.variant.label(),
            o.baseline,
            o.stats.min,
            o.stats.q1,
            o.stats.median,
            o.stats.q3,
            o.stats.max
        ));
    }
    out
}

/// Renders a Fig. 9 recovery report as CSV:
/// `vector,fraction,orig_min,orig_mean,orig_max,robust_min,robust_mean,robust_max,worst_case_recovery`.
#[must_use]
pub fn recovery_csv(report: &RecoveryReport) -> String {
    let mut out = format!(
        "# original_baseline,{}\n# robust_baseline,{}\n",
        report.original_baseline, report.robust_baseline
    );
    out.push_str(
        "vector,fraction,orig_min,orig_mean,orig_max,robust_min,robust_mean,robust_max,worst_case_recovery\n",
    );
    for i in &report.intervals {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{}\n",
            i.vector,
            i.fraction,
            i.original.0,
            i.original.1,
            i.original.2,
            i.robust.0,
            i.robust.1,
            i.robust.2,
            i.worst_case_recovery()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::{AttackTarget, ScenarioSpec, Selection, VectorSpec};
    use crate::defense::VariantKind;
    use crate::eval::{BoxStats, RecoveryInterval, TrialResult, VariantOutcome};

    fn scenario() -> ScenarioSpec {
        ScenarioSpec::new(VectorSpec::Hotspot, AttackTarget::Both, 0.05, 2)
    }

    #[test]
    fn susceptibility_csv_has_one_row_per_trial() {
        let report = SusceptibilityReport {
            baseline: 0.9,
            trials: vec![
                TrialResult {
                    scenario: scenario(),
                    accuracy: 0.5,
                    effective_fraction: 0.08,
                },
                TrialResult {
                    scenario: scenario().with_selection(Selection::Clustered),
                    accuracy: 0.6,
                    effective_fraction: 0.08,
                },
            ],
        };
        let csv = susceptibility_csv(&report);
        assert_eq!(csv.lines().count(), 4); // baseline + header + 2 rows
        assert!(csv.contains("hotspot,uniform,CONV+FC,0.05,0.08,2,0.5"));
        assert!(csv.contains("hotspot,clustered,CONV+FC,0.05,0.08,2,0.6"));
    }

    #[test]
    fn susceptibility_csv_labels_stacked_vectors() {
        let report = SusceptibilityReport {
            baseline: 0.9,
            trials: vec![TrialResult {
                scenario: ScenarioSpec::stacked(
                    vec![VectorSpec::Actuation, VectorSpec::Hotspot],
                    AttackTarget::ConvBlock,
                    0.01,
                    0,
                ),
                accuracy: 0.4,
                effective_fraction: 0.05,
            }],
        };
        let csv = susceptibility_csv(&report);
        assert!(csv.contains("actuation+hotspot,uniform,CONV,0.01,0.05,0,0.4"));
    }

    #[test]
    fn mitigation_csv_uses_variant_labels() {
        let report = MitigationReport {
            outcomes: vec![VariantOutcome {
                variant: VariantKind::L2Noise(3),
                baseline: 0.95,
                stats: BoxStats::from_values(&[0.7, 0.8, 0.9]).unwrap(),
            }],
        };
        let csv = mitigation_csv(&report);
        assert!(csv.contains("l2+n3,0.95,0.7,"));
    }

    #[test]
    fn recovery_csv_contains_recovery_column() {
        let report = RecoveryReport {
            original_baseline: 0.9,
            robust_baseline: 0.92,
            intervals: vec![RecoveryInterval {
                vector: VectorSpec::Actuation,
                fraction: 0.1,
                original: (0.4, 0.5, 0.6),
                robust: (0.6, 0.7, 0.8),
            }],
        };
        let csv = recovery_csv(&report);
        let last = csv.lines().last().unwrap();
        assert!(last.ends_with(&format!("{}", 0.6 - 0.4)));
    }
}

//! The §VI mitigation analysis (Fig. 8): box-and-whisker robustness of
//! every trained variant across all attack scenarios.

use safelight_neuro::{Dataset, Network};
use safelight_onn::WeightMapping;

use safelight_neuro::accuracy;
use safelight_onn::{ConditionMap, InferenceBackend};

use crate::attack::{RingSalience, ScenarioSpec};
use crate::defense::VariantKind;
use crate::eval::susceptibility::{evaluate_with_conditions, inject_all, needs_salience};
use crate::eval::BoxStats;
use crate::SafelightError;

/// The robustness summary of one trained variant.
#[derive(Debug, Clone, PartialEq)]
pub struct VariantOutcome {
    /// Which variant this is.
    pub variant: VariantKind,
    /// Clean (attack-free) accelerator accuracy of this variant — the
    /// baseline line of Fig. 8.
    pub baseline: f64,
    /// Accuracy distribution across all attack scenarios.
    pub stats: BoxStats,
}

/// The Fig. 8 artifact for one model: one box per variant.
#[derive(Debug, Clone, PartialEq)]
pub struct MitigationReport {
    /// One outcome per variant, in input order.
    pub outcomes: Vec<VariantOutcome>,
}

impl MitigationReport {
    /// The variant with the highest median accuracy under attack — the
    /// "most robust configuration" the paper selects per model (§VI).
    ///
    /// Ties break toward the earlier variant on the Fig. 8 axis, so only a
    /// *strictly* higher median displaces the incumbent
    /// (`Iterator::max_by` would return the last maximal element instead).
    #[must_use]
    pub fn most_robust(&self) -> Option<&VariantOutcome> {
        self.outcomes.iter().reduce(|best, candidate| {
            if candidate.stats.median > best.stats.median {
                candidate
            } else {
                best
            }
        })
    }
}

/// Evaluates every `(variant, network)` pair across `scenarios` and
/// summarizes each as a box (the Fig. 8 pipeline).
///
/// The attack conditions are injected once (one thermal solve per hotspot
/// scenario) and shared across all variants, exactly as in the paper: every
/// variant faces the same trojans. For targeted scenarios the shared
/// salience map is derived from the *first* variant (conventionally
/// `Original` — the weights a netlist-stage adversary would have seen).
///
/// # Errors
///
/// Propagates susceptibility-sweep errors; returns
/// [`SafelightError::InvalidParameter`] for an empty scenario or variant
/// list.
pub fn run_mitigation<D: Dataset + Sync + ?Sized>(
    variants: &[(VariantKind, Network)],
    mapping: &WeightMapping,
    backend: &dyn InferenceBackend,
    test_data: &D,
    scenarios: &[ScenarioSpec],
    seed: u64,
    threads: usize,
) -> Result<MitigationReport, SafelightError> {
    if scenarios.is_empty() {
        return Err(SafelightError::InvalidParameter {
            name: "scenarios",
            value: 0.0,
        });
    }
    if variants.is_empty() {
        return Err(SafelightError::InvalidParameter {
            name: "variants",
            value: 0.0,
        });
    }
    let config = backend.config();
    let salience = if needs_salience(scenarios) {
        Some(RingSalience::from_network(&variants[0].1, mapping, config)?)
    } else {
        None
    };
    let injected = inject_all(config, scenarios, salience.as_ref(), seed, threads)?;
    let mut outcomes = Vec::with_capacity(variants.len());
    for (variant, network) in variants {
        let mut clean = backend.derive_network(network, mapping, &ConditionMap::new())?;
        let baseline = accuracy(&mut clean, test_data, 32)?;
        let trials =
            evaluate_with_conditions(network, mapping, backend, test_data, &injected, threads)?;
        let accuracies: Vec<f64> = trials.iter().map(|t| t.accuracy).collect();
        let stats = BoxStats::from_values(&accuracies)
            .expect("non-empty scenarios produce non-empty accuracies");
        outcomes.push(VariantOutcome {
            variant: *variant,
            baseline,
            stats,
        });
    }
    Ok(MitigationReport { outcomes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::{AttackTarget, VectorSpec};
    use crate::models::{build_model, ModelKind};
    use safelight_datasets::{digits, SyntheticSpec};
    use safelight_neuro::{Trainer, TrainerConfig};
    use safelight_onn::{AcceleratorConfig, AnalyticBackend};

    fn outcome(variant: VariantKind, median: f64) -> VariantOutcome {
        VariantOutcome {
            variant,
            baseline: 0.9,
            stats: BoxStats::from_values(&[median]).unwrap(),
        }
    }

    #[test]
    fn most_robust_breaks_ties_toward_the_earlier_variant() {
        // Regression: `Iterator::max_by` returns the *last* maximal
        // element, which silently flipped Fig. 9's selection whenever two
        // variants tied on median.
        let report = MitigationReport {
            outcomes: vec![
                outcome(VariantKind::Original, 0.6),
                outcome(VariantKind::L2Noise(3), 0.8),
                outcome(VariantKind::L2Noise(5), 0.8),
            ],
        };
        assert_eq!(
            report.most_robust().unwrap().variant,
            VariantKind::L2Noise(3),
            "tie must break toward the earlier Fig. 8 variant"
        );
        // A strictly better later variant still wins.
        let report = MitigationReport {
            outcomes: vec![
                outcome(VariantKind::Original, 0.6),
                outcome(VariantKind::L2Noise(3), 0.8),
                outcome(VariantKind::L2Noise(5), 0.81),
            ],
        };
        assert_eq!(
            report.most_robust().unwrap().variant,
            VariantKind::L2Noise(5)
        );
    }

    #[test]
    fn mitigation_report_summarizes_each_variant() {
        let data = digits(&SyntheticSpec {
            train: 100,
            test: 40,
            ..SyntheticSpec::default()
        })
        .unwrap();
        let config = AcceleratorConfig::scaled_experiment().unwrap();

        let mut variants = Vec::new();
        for (variant, noise) in [
            (VariantKind::Original, 0.0f32),
            (VariantKind::L2Noise(3), 0.3f32),
        ] {
            let bundle = build_model(ModelKind::Cnn1, 3).unwrap();
            let mut network = bundle.network;
            let cfg = TrainerConfig {
                epochs: 2,
                batch_size: 20,
                noise_std: noise,
                weight_decay: if variant.uses_l2() { 1e-4 } else { 0.0 },
                ..TrainerConfig::default()
            };
            Trainer::new(cfg).fit(&mut network, &data.train).unwrap();
            variants.push((variant, network));
        }
        let bundle = build_model(ModelKind::Cnn1, 3).unwrap();
        let mapping = WeightMapping::new(&config, &bundle.layer_specs).unwrap();

        let scenarios: Vec<ScenarioSpec> = (0..2)
            .map(|trial| ScenarioSpec::new(VectorSpec::Actuation, AttackTarget::Both, 0.05, trial))
            .collect();
        let report = run_mitigation(
            &variants,
            &mapping,
            &AnalyticBackend::new(&config),
            &data.test,
            &scenarios,
            11,
            2,
        )
        .unwrap();
        assert_eq!(report.outcomes.len(), 2);
        for o in &report.outcomes {
            assert!(o.stats.min <= o.stats.median && o.stats.median <= o.stats.max);
        }
        assert!(report.most_robust().is_some());
    }

    #[test]
    fn empty_scenarios_are_rejected() {
        let data = digits(&SyntheticSpec {
            train: 20,
            test: 10,
            ..SyntheticSpec::default()
        })
        .unwrap();
        let config = AcceleratorConfig::scaled_experiment().unwrap();
        let bundle = build_model(ModelKind::Cnn1, 3).unwrap();
        let mapping = WeightMapping::new(&config, &bundle.layer_specs).unwrap();
        let variants = vec![(VariantKind::Original, bundle.network.clone())];
        assert!(run_mitigation(
            &variants,
            &mapping,
            &AnalyticBackend::new(&config),
            &data.test,
            &[],
            1,
            1
        )
        .is_err());
    }
}

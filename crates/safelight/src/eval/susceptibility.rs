//! The §IV susceptibility analysis (Fig. 7): accuracy of a model under
//! every attack scenario.

use safelight_neuro::{accuracy, Dataset, Network};
use safelight_onn::{AcceleratorConfig, InferenceBackend, WeightMapping};

use crate::attack::{inject_full, RingSalience, ScenarioSpec, Selection};
use crate::eval::par_map;
use crate::SafelightError;

/// Accuracy of one attack trial.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialResult {
    /// The injected scenario.
    pub scenario: ScenarioSpec,
    /// Post-attack classification accuracy in `[0, 1]`.
    pub accuracy: f64,
    /// Fraction of the targeted blocks' rings under direct trojan control.
    /// Bank-granular vectors clamp upward (a nominal 1 % hotspot can cover
    /// a whole bank), so Fig. 7 data is labeled with what was *actually*
    /// attacked.
    pub effective_fraction: f64,
}

/// A full susceptibility sweep for one model.
#[derive(Debug, Clone, PartialEq)]
pub struct SusceptibilityReport {
    /// Clean (attack-free, but quantized) accelerator accuracy.
    pub baseline: f64,
    /// One result per scenario, in input order.
    pub trials: Vec<TrialResult>,
}

impl SusceptibilityReport {
    /// The worst (lowest) accuracy across all trials.
    #[must_use]
    pub fn worst_accuracy(&self) -> f64 {
        self.trials
            .iter()
            .map(|t| t.accuracy)
            .fold(f64::INFINITY, f64::min)
    }

    /// The largest accuracy drop from baseline, in accuracy points.
    #[must_use]
    pub fn worst_drop(&self) -> f64 {
        self.baseline - self.worst_accuracy()
    }

    /// Results filtered by a scenario predicate (e.g. one Fig. 7 panel
    /// group).
    pub fn filtered<F>(&self, predicate: F) -> Vec<&TrialResult>
    where
        F: Fn(&ScenarioSpec) -> bool,
    {
        self.trials
            .iter()
            .filter(|t| predicate(&t.scenario))
            .collect()
    }
}

/// One pre-injected scenario: the conditions plus the coverage actually
/// achieved.
#[derive(Debug, Clone, PartialEq)]
pub struct InjectedScenario {
    /// The scenario that was injected.
    pub scenario: ScenarioSpec,
    /// The resulting fault conditions.
    pub conditions: safelight_onn::ConditionMap,
    /// Fraction of the targeted blocks' rings under direct trojan control.
    pub effective_fraction: f64,
}

/// Whether any scenario in the slice needs a weight-salience map.
pub(crate) fn needs_salience(scenarios: &[ScenarioSpec]) -> bool {
    scenarios.iter().any(|s| s.selection == Selection::Targeted)
}

/// Pre-injects the fault conditions of every scenario (thermal solves for
/// hotspots happen here), so several model variants can be evaluated
/// against identical attacks without re-solving. `salience` is required
/// when any scenario uses [`Selection::Targeted`].
///
/// # Errors
///
/// Propagates attack-injection errors.
pub fn inject_all(
    config: &AcceleratorConfig,
    scenarios: &[ScenarioSpec],
    salience: Option<&RingSalience>,
    seed: u64,
    threads: usize,
) -> Result<Vec<InjectedScenario>, SafelightError> {
    let outcomes = par_map(scenarios.to_vec(), threads, |scenario| {
        let injection = inject_full(&scenario, config, salience, seed)?;
        Ok::<_, SafelightError>(InjectedScenario {
            scenario,
            conditions: injection.conditions,
            effective_fraction: injection.effective_fraction,
        })
    });
    outcomes.into_iter().collect()
}

/// Evaluates one network against pre-injected conditions, returning one
/// trial result per entry (input order preserved). The effective network
/// of every trial is derived through `backend`, so the same sweep runs
/// against the fast analytic path, the physical datapath or a quantized
/// converter budget unchanged.
///
/// # Errors
///
/// Propagates corruption and evaluation errors.
pub fn evaluate_with_conditions<D: Dataset + Sync + ?Sized>(
    network: &Network,
    mapping: &WeightMapping,
    backend: &dyn InferenceBackend,
    test_data: &D,
    injected: &[InjectedScenario],
    threads: usize,
) -> Result<Vec<TrialResult>, SafelightError> {
    let items: Vec<usize> = (0..injected.len()).collect();
    let outcomes = par_map(items, threads, |i| {
        let entry = &injected[i];
        let mut attacked = backend.derive_network(network, mapping, &entry.conditions)?;
        let acc = accuracy(&mut attacked, test_data, 32)?;
        Ok::<TrialResult, SafelightError>(TrialResult {
            scenario: entry.scenario.clone(),
            accuracy: acc,
            effective_fraction: entry.effective_fraction,
        })
    });
    outcomes.into_iter().collect()
}

/// Runs the susceptibility sweep: for each scenario, inject the attack,
/// derive the corrupted network through the accelerator model, and measure
/// accuracy on `test_data`.
///
/// Trials are independent, so they are distributed over `threads` OS
/// threads; results keep the input order and are bitwise independent of
/// the thread count. `seed` drives attack-site sampling; targeted
/// scenarios derive their salience map from `network` itself (the
/// worst-case adversary knows the deployed weights).
///
/// # Errors
///
/// Propagates attack-injection, corruption and evaluation errors.
pub fn run_susceptibility<D: Dataset + Sync + ?Sized>(
    network: &Network,
    mapping: &WeightMapping,
    backend: &dyn InferenceBackend,
    test_data: &D,
    scenarios: &[ScenarioSpec],
    seed: u64,
    threads: usize,
) -> Result<SusceptibilityReport, SafelightError> {
    let config = backend.config();
    // Baseline: clean accelerator (converter quantization only).
    let mut clean =
        backend.derive_network(network, mapping, &safelight_onn::ConditionMap::new())?;
    let baseline = accuracy(&mut clean, test_data, 32)?;
    // One salience pass feeds every targeted scenario, keeping the sweep
    // deterministic regardless of how trials are scheduled.
    let salience = if needs_salience(scenarios) {
        Some(RingSalience::from_network(network, mapping, config)?)
    } else {
        None
    };
    let injected = inject_all(config, scenarios, salience.as_ref(), seed, threads)?;
    let trials =
        evaluate_with_conditions(network, mapping, backend, test_data, &injected, threads)?;
    Ok(SusceptibilityReport { baseline, trials })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::{AttackTarget, VectorSpec};
    use crate::models::{build_model, ModelKind};
    use safelight_datasets::{digits, SyntheticSpec};
    use safelight_neuro::{Trainer, TrainerConfig};
    use safelight_onn::AnalyticBackend;

    /// A trained-enough CNN_1 plus its mapping on the scaled accelerator.
    fn trained_setup() -> (
        Network,
        WeightMapping,
        AcceleratorConfig,
        safelight_datasets::SplitDataset,
    ) {
        let data = digits(&SyntheticSpec {
            train: 120,
            test: 60,
            ..SyntheticSpec::default()
        })
        .unwrap();
        let bundle = build_model(ModelKind::Cnn1, 3).unwrap();
        let mut network = bundle.network;
        let cfg = TrainerConfig {
            epochs: 3,
            batch_size: 20,
            ..TrainerConfig::default()
        };
        Trainer::new(cfg).fit(&mut network, &data.train).unwrap();
        let config = AcceleratorConfig::scaled_experiment().unwrap();
        let mapping = WeightMapping::new(&config, &bundle.layer_specs).unwrap();
        (network, mapping, config, data)
    }

    #[test]
    fn sweep_produces_one_result_per_scenario() {
        let (network, mapping, config, data) = trained_setup();
        let scenarios = vec![
            ScenarioSpec::new(VectorSpec::Actuation, AttackTarget::ConvBlock, 0.05, 0),
            ScenarioSpec::new(VectorSpec::Actuation, AttackTarget::FcBlock, 0.05, 1),
        ];
        let report = run_susceptibility(
            &network,
            &mapping,
            &AnalyticBackend::new(&config),
            &data.test,
            &scenarios,
            7,
            2,
        )
        .unwrap();
        assert_eq!(report.trials.len(), 2);
        assert!(report.baseline > 0.3, "baseline {}", report.baseline);
        for t in &report.trials {
            assert!((0.0..=1.0).contains(&t.accuracy));
            assert!((0.0..=1.0).contains(&t.effective_fraction));
        }
    }

    #[test]
    fn attacks_do_not_raise_accuracy_above_sane_bounds() {
        let (network, mapping, config, data) = trained_setup();
        let scenarios = vec![ScenarioSpec::new(
            VectorSpec::Hotspot,
            AttackTarget::Both,
            0.10,
            0,
        )];
        let report = run_susceptibility(
            &network,
            &mapping,
            &AnalyticBackend::new(&config),
            &data.test,
            &scenarios,
            7,
            1,
        )
        .unwrap();
        assert!(report.worst_accuracy() <= report.baseline + 0.2);
        assert!(report.worst_drop() >= -0.2);
    }

    #[test]
    fn results_are_deterministic_across_thread_counts() {
        let (network, mapping, config, data) = trained_setup();
        // Mix the paper vectors with targeted/stacked scenarios: the whole
        // enlarged grid must stay scenario-ordered and thread-independent.
        let mut scenarios: Vec<ScenarioSpec> = (0..2)
            .map(|trial| {
                ScenarioSpec::new(VectorSpec::Actuation, AttackTarget::ConvBlock, 0.10, trial)
            })
            .collect();
        scenarios.push(
            ScenarioSpec::new(VectorSpec::laser_default(), AttackTarget::FcBlock, 0.05, 0)
                .with_selection(crate::attack::Selection::Targeted),
        );
        scenarios.push(ScenarioSpec::stacked(
            vec![VectorSpec::Actuation, VectorSpec::Hotspot],
            AttackTarget::Both,
            0.05,
            1,
        ));
        let a = run_susceptibility(
            &network,
            &mapping,
            &AnalyticBackend::new(&config),
            &data.test,
            &scenarios,
            7,
            1,
        )
        .unwrap();
        let b = run_susceptibility(
            &network,
            &mapping,
            &AnalyticBackend::new(&config),
            &data.test,
            &scenarios,
            7,
            2,
        )
        .unwrap();
        for (ta, tb) in a.trials.iter().zip(&b.trials) {
            assert_eq!(ta.accuracy, tb.accuracy);
            assert_eq!(ta.effective_fraction, tb.effective_fraction);
        }
    }

    #[test]
    fn hotspot_trials_report_bank_clamped_coverage() {
        let (network, mapping, config, data) = trained_setup();
        let scenarios = vec![ScenarioSpec::new(
            VectorSpec::Hotspot,
            AttackTarget::ConvBlock,
            0.01,
            0,
        )];
        let report = run_susceptibility(
            &network,
            &mapping,
            &AnalyticBackend::new(&config),
            &data.test,
            &scenarios,
            7,
            1,
        )
        .unwrap();
        // 1 % of the scaled CONV block rounds up to one whole bank (4 %).
        assert!(
            report.trials[0].effective_fraction > 0.03,
            "effective {}",
            report.trials[0].effective_fraction
        );
    }
}

//! Evaluation pipelines behind the paper's Figs. 7–9, plus the
//! runtime-detection ROC/latency pipeline ([`detection`]) that measures
//! the [`crate::detect`] subsystem against the extended threat model.

pub mod detection;
mod mitigation;
mod recovery;
mod report;
mod susceptibility;

pub use detection::{
    run_detection, CellSummary, DetectionOptions, DetectionReport, OperatingPoint, RocPoint,
};
pub use mitigation::{run_mitigation, MitigationReport, VariantOutcome};
pub use recovery::{run_recovery, RecoveryInterval, RecoveryReport};
pub use report::{
    detection_json, detection_roc_csv, detection_summary_csv, json_num, json_str, mitigation_csv,
    mitigation_json, recovery_csv, recovery_json, susceptibility_csv, susceptibility_json,
};
pub use susceptibility::{
    evaluate_with_conditions, inject_all, run_susceptibility, InjectedScenario,
    SusceptibilityReport, TrialResult,
};

/// Five-number summary of a set of accuracies (a box-and-whisker box, as
/// used by the paper's Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxStats {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

impl BoxStats {
    /// Computes the summary of `values`; returns `None` for an empty set.
    ///
    /// # Example
    ///
    /// ```
    /// use safelight::eval::BoxStats;
    ///
    /// let stats = BoxStats::from_values(&[0.1, 0.2, 0.3, 0.4, 0.5]).unwrap();
    /// assert_eq!(stats.median, 0.3);
    /// assert_eq!(stats.min, 0.1);
    /// assert_eq!(stats.max, 0.5);
    /// ```
    #[must_use]
    pub fn from_values(values: &[f64]) -> Option<Self> {
        if values.is_empty() {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("accuracies are finite"));
        let q = |p: f64| -> f64 {
            // Linear interpolation between closest ranks.
            let pos = p * (sorted.len() - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            let frac = pos - lo as f64;
            sorted[lo] * (1.0 - frac) + sorted[hi] * frac
        };
        Some(Self {
            min: sorted[0],
            q1: q(0.25),
            median: q(0.5),
            q3: q(0.75),
            max: sorted[sorted.len() - 1],
        })
    }

    /// Interquartile range.
    #[must_use]
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Maps `items` through `work` in input order, fanning out across the
/// workspace's shared worker pool (see [`safelight_neuro::parallel`]) when
/// `threads > 1`. The seed spawned scoped OS threads per call; the pool
/// amortizes thread creation across the whole sweep and lets trial-level
/// and batch-level parallelism share one set of cores without
/// oversubscription.
pub(crate) fn par_map<T, R, F>(items: Vec<T>, threads: usize, work: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    safelight_neuro::parallel::par_map(items, threads, work)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_stats_of_empty_is_none() {
        assert!(BoxStats::from_values(&[]).is_none());
    }

    #[test]
    fn box_stats_single_value_collapses() {
        let s = BoxStats::from_values(&[0.7]).unwrap();
        assert_eq!(s.min, 0.7);
        assert_eq!(s.max, 0.7);
        assert_eq!(s.median, 0.7);
        assert_eq!(s.iqr(), 0.0);
    }

    #[test]
    fn box_stats_orders_unsorted_input() {
        let s = BoxStats::from_values(&[0.9, 0.1, 0.5]).unwrap();
        assert_eq!(s.min, 0.1);
        assert_eq!(s.median, 0.5);
        assert_eq!(s.max, 0.9);
    }

    #[test]
    fn par_map_preserves_order() {
        let out = par_map((0..100).collect(), 4, |x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_single_thread_matches() {
        let a = par_map(vec![3, 1, 2], 1, |x: i32| x + 1);
        let b = par_map(vec![3, 1, 2], 3, |x: i32| x + 1);
        assert_eq!(a, b);
    }
}

//! Per-microring fault conditions and the sparse maps that hold them.

use std::collections::HashMap;

use crate::config::BlockKind;

/// The fault state of one microring's peripheral circuitry.
///
/// Attack injectors (the `safelight` crate) produce these; the accelerator
/// executor consumes them. `Healthy` is the implicit default for every MR
/// not present in a [`ConditionMap`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum MrCondition {
    /// Nominal operation.
    #[default]
    Healthy,
    /// Actuation attack: the modulation circuit is hijacked and the ring is
    /// parked at its maximum detuning (§III.B.1).
    Parked,
    /// Thermal attack or spill-over: the ring sits `delta_kelvin` above its
    /// calibrated temperature, red-shifting its resonance per eq. (2).
    Heated {
        /// Temperature rise over the calibrated operating point, kelvin.
        delta_kelvin: f64,
    },
    /// Laser power-degradation attack: a trojan throttles the optical power
    /// feeding this ring's WDM channel, so the collected response (and with
    /// it the effective weight magnitude) scales by `factor`. The fault
    /// lives upstream of the ring, so its resonance — and its intact
    /// thermal response — are untouched: spill-over heat from a stacked
    /// hotspot attack still detunes it, recorded in `delta_kelvin`.
    Attenuated {
        /// Fraction of the nominal channel power that survives, in `(0, 1)`.
        factor: f64,
        /// Temperature rise over the calibrated operating point, kelvin
        /// (0 when no heat reaches the ring).
        delta_kelvin: f64,
    },
    /// Partial trim-drift attack: the trojan pins the ring's trim DAC a
    /// fixed `offset_nm` away from its calibrated set point — a graded
    /// detuning between `Healthy` and the binary `Parked` extreme. The
    /// thermo-optic shift is independent of the pinned DAC, so spill-over
    /// heat from a stacked hotspot attack still applies (`delta_kelvin`).
    Detuned {
        /// Resonance offset added to the imprint detuning, nanometres.
        offset_nm: f64,
        /// Temperature rise over the calibrated operating point, kelvin
        /// (0 when no heat reaches the ring).
        delta_kelvin: f64,
    },
}

impl MrCondition {
    /// Whether the condition deviates from nominal operation.
    #[must_use]
    pub fn is_faulty(&self) -> bool {
        !matches!(self, Self::Healthy)
    }
}

/// A sparse map from flat MR index to fault condition, per block.
///
/// Blocks hold up to millions of MRs but attacks touch at most a few
/// percent, so a hash map keyed by index is the right density trade-off.
///
/// # Example
///
/// ```
/// use safelight_onn::{BlockKind, ConditionMap, MrCondition};
///
/// let mut map = ConditionMap::new();
/// map.set(BlockKind::Conv, 42, MrCondition::Parked);
/// assert!(map.condition(BlockKind::Conv, 42).is_faulty());
/// assert!(!map.condition(BlockKind::Conv, 43).is_faulty());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConditionMap {
    conv: HashMap<u64, MrCondition>,
    fc: HashMap<u64, MrCondition>,
}

impl ConditionMap {
    /// Creates an all-healthy map.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn block(&self, kind: BlockKind) -> &HashMap<u64, MrCondition> {
        match kind {
            BlockKind::Conv => &self.conv,
            BlockKind::Fc => &self.fc,
        }
    }

    fn block_mut(&mut self, kind: BlockKind) -> &mut HashMap<u64, MrCondition> {
        match kind {
            BlockKind::Conv => &mut self.conv,
            BlockKind::Fc => &mut self.fc,
        }
    }

    /// Sets the condition of MR `index` in `kind`'s block. `Healthy`
    /// removes any stored entry.
    pub fn set(&mut self, kind: BlockKind, index: u64, condition: MrCondition) {
        let map = self.block_mut(kind);
        if condition.is_faulty() {
            map.insert(index, condition);
        } else {
            map.remove(&index);
        }
    }

    /// Adds heating to MR `index`, combining with any existing condition:
    /// heat on heat sums; `Parked` dominates spill-over heat (the ring
    /// already sits at the modulator's maximum detuning); `Detuned` and
    /// `Attenuated` rings accumulate the heat alongside their fault —
    /// the thermo-optic shift is independent of a pinned trim DAC, and an
    /// upstream power fault leaves the ring's thermal response intact.
    pub fn add_heat(&mut self, kind: BlockKind, index: u64, delta_kelvin: f64) {
        if delta_kelvin <= 0.0 {
            return;
        }
        let map = self.block_mut(kind);
        let updated = match map.get(&index) {
            Some(MrCondition::Parked) => MrCondition::Parked,
            Some(MrCondition::Detuned {
                offset_nm,
                delta_kelvin: existing,
            }) => MrCondition::Detuned {
                offset_nm: *offset_nm,
                delta_kelvin: existing + delta_kelvin,
            },
            Some(MrCondition::Attenuated {
                factor,
                delta_kelvin: existing,
            }) => MrCondition::Attenuated {
                factor: *factor,
                delta_kelvin: existing + delta_kelvin,
            },
            Some(MrCondition::Heated {
                delta_kelvin: existing,
            }) => MrCondition::Heated {
                delta_kelvin: existing + delta_kelvin,
            },
            _ => MrCondition::Heated { delta_kelvin },
        };
        map.insert(index, updated);
    }

    /// Merges a trojan state into MR `index`, composing stacked attack
    /// vectors whose site draws overlap:
    ///
    /// * a power fault ([`MrCondition::Attenuated`]) never displaces a
    ///   pinned resonance state (`Parked`, `Detuned`) — the tap is upstream
    ///   and cannot undo the hijacked control loop. The tap's factor on the
    ///   pinned ring's residual reading is dropped: exact for `Parked` at
    ///   max detuning (reads ≈ 0 either way under drop-port encoding), a
    ///   known conservative approximation for a graded `Detuned` ring,
    ///   whose residual weight keeps full power (the enum cannot carry a
    ///   factor and an offset at once);
    /// * a power fault lands on a heated or already-tapped ring by carrying
    ///   the recorded heat forward and multiplying tap factors (two taps in
    ///   series compose);
    /// * `Parked` is never displaced: the EO-actuation circuit holds the
    ///   ring at *maximum* detuning, which a pinned trim DAC (a different
    ///   circuit) cannot move — stacking more vectors can never weaken a
    ///   parked ring, in any order;
    /// * any other incoming pinned resonance fault replaces what is there —
    ///   the trojan that owns the control loop wins, matching
    ///   [`ConditionMap::add_heat`]'s dominance rule.
    pub fn stack(&mut self, kind: BlockKind, index: u64, condition: MrCondition) {
        // Stacking "no fault" is the identity — it must never displace (or
        // clear) a recorded trojan state, so stacking an empty map is a
        // no-op and `stack_map` is idempotent on empty right-hand sides.
        if !condition.is_faulty() {
            return;
        }
        let existing = self.condition(kind, index);
        let merged = match (existing, condition) {
            (MrCondition::Parked, _) => MrCondition::Parked,
            (MrCondition::Detuned { .. }, MrCondition::Attenuated { .. }) => existing,
            (
                MrCondition::Heated { delta_kelvin },
                MrCondition::Attenuated {
                    factor,
                    delta_kelvin: added,
                },
            ) => MrCondition::Attenuated {
                factor,
                delta_kelvin: delta_kelvin + added,
            },
            (
                MrCondition::Attenuated {
                    factor,
                    delta_kelvin,
                },
                MrCondition::Attenuated {
                    factor: tap,
                    delta_kelvin: added,
                },
            ) => MrCondition::Attenuated {
                factor: factor * tap,
                delta_kelvin: delta_kelvin + added,
            },
            // A pinned trim drift landing on a heated or tapped ring keeps
            // the heat (thermal response stays intact); the tap factor is
            // dropped per the pinned-dominance approximation above.
            (
                MrCondition::Heated { delta_kelvin } | MrCondition::Attenuated { delta_kelvin, .. },
                MrCondition::Detuned {
                    offset_nm,
                    delta_kelvin: added,
                },
            ) => MrCondition::Detuned {
                offset_nm,
                delta_kelvin: delta_kelvin + added,
            },
            _ => condition,
        };
        self.set(kind, index, merged);
    }

    /// Stacks every entry of `other` into this map via
    /// [`ConditionMap::stack`], in ascending index order per block (the
    /// merge rules are order-sensitive only through `stack`'s own algebra,
    /// so a deterministic order keeps composed injections reproducible).
    /// Stacking an empty map is a no-op.
    pub fn stack_map(&mut self, other: &ConditionMap) {
        for kind in [BlockKind::Conv, BlockKind::Fc] {
            let mut entries: Vec<(u64, MrCondition)> = other.iter(kind).collect();
            entries.sort_unstable_by_key(|(index, _)| *index);
            for (index, condition) in entries {
                self.stack(kind, index, condition);
            }
        }
    }

    /// The condition of MR `index` (healthy when unset).
    #[must_use]
    pub fn condition(&self, kind: BlockKind, index: u64) -> MrCondition {
        self.block(kind).get(&index).copied().unwrap_or_default()
    }

    /// Number of faulty MRs recorded for `kind`'s block.
    #[must_use]
    pub fn faulty_count(&self, kind: BlockKind) -> usize {
        self.block(kind).len()
    }

    /// Whether the whole map is empty (no attack present).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.conv.is_empty() && self.fc.is_empty()
    }

    /// Iterates over the faulty MRs of `kind`'s block.
    pub fn iter(&self, kind: BlockKind) -> impl Iterator<Item = (u64, MrCondition)> + '_ {
        self.block(kind).iter().map(|(&i, &c)| (i, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_healthy() {
        let map = ConditionMap::new();
        assert_eq!(map.condition(BlockKind::Fc, 7), MrCondition::Healthy);
        assert!(map.is_empty());
    }

    #[test]
    fn setting_healthy_clears_the_entry() {
        let mut map = ConditionMap::new();
        map.set(BlockKind::Conv, 1, MrCondition::Parked);
        assert_eq!(map.faulty_count(BlockKind::Conv), 1);
        map.set(BlockKind::Conv, 1, MrCondition::Healthy);
        assert!(map.is_empty());
    }

    #[test]
    fn heat_accumulates() {
        let mut map = ConditionMap::new();
        map.add_heat(BlockKind::Fc, 3, 10.0);
        map.add_heat(BlockKind::Fc, 3, 5.0);
        assert_eq!(
            map.condition(BlockKind::Fc, 3),
            MrCondition::Heated { delta_kelvin: 15.0 }
        );
    }

    #[test]
    fn heat_does_not_unpark() {
        let mut map = ConditionMap::new();
        map.set(BlockKind::Conv, 9, MrCondition::Parked);
        map.add_heat(BlockKind::Conv, 9, 30.0);
        assert_eq!(map.condition(BlockKind::Conv, 9), MrCondition::Parked);
    }

    #[test]
    fn heat_does_not_displace_pinned_trojan_states() {
        let mut map = ConditionMap::new();
        map.set(
            BlockKind::Conv,
            1,
            MrCondition::Detuned {
                offset_nm: 0.2,
                delta_kelvin: 0.0,
            },
        );
        map.add_heat(BlockKind::Conv, 1, 30.0);
        // The pinned DAC keeps its offset; the thermo-optic shift rides on
        // top of it.
        assert_eq!(
            map.condition(BlockKind::Conv, 1),
            MrCondition::Detuned {
                offset_nm: 0.2,
                delta_kelvin: 30.0
            }
        );
    }

    #[test]
    fn heat_accumulates_on_attenuated_rings() {
        // Stacked laser+hotspot regression: the power fault lives upstream,
        // so the ring's own thermal response still applies — spill-over
        // heat must be carried, not dropped.
        let mut map = ConditionMap::new();
        map.set(
            BlockKind::Conv,
            2,
            MrCondition::Attenuated {
                factor: 0.5,
                delta_kelvin: 0.0,
            },
        );
        map.add_heat(BlockKind::Conv, 2, 30.0);
        map.add_heat(BlockKind::Conv, 2, 5.0);
        assert_eq!(
            map.condition(BlockKind::Conv, 2),
            MrCondition::Attenuated {
                factor: 0.5,
                delta_kelvin: 35.0
            }
        );
    }

    #[test]
    fn stacking_a_tap_does_not_unpark_pinned_rings() {
        // Stacked actuation+laser / trim+laser regression: the tap sits
        // upstream and cannot undo a hijacked control loop.
        let mut map = ConditionMap::new();
        map.set(BlockKind::Conv, 1, MrCondition::Parked);
        map.set(
            BlockKind::Conv,
            2,
            MrCondition::Detuned {
                offset_nm: 0.2,
                delta_kelvin: 3.0,
            },
        );
        let tap = MrCondition::Attenuated {
            factor: 0.5,
            delta_kelvin: 0.0,
        };
        map.stack(BlockKind::Conv, 1, tap);
        map.stack(BlockKind::Conv, 2, tap);
        assert_eq!(map.condition(BlockKind::Conv, 1), MrCondition::Parked);
        assert_eq!(
            map.condition(BlockKind::Conv, 2),
            MrCondition::Detuned {
                offset_nm: 0.2,
                delta_kelvin: 3.0
            }
        );
    }

    #[test]
    fn stacking_carries_heat_and_composes_taps() {
        let mut map = ConditionMap::new();
        map.add_heat(BlockKind::Conv, 3, 10.0);
        let tap = |factor| MrCondition::Attenuated {
            factor,
            delta_kelvin: 0.0,
        };
        map.stack(BlockKind::Conv, 3, tap(0.5));
        assert_eq!(
            map.condition(BlockKind::Conv, 3),
            MrCondition::Attenuated {
                factor: 0.5,
                delta_kelvin: 10.0
            }
        );
        // A second tap in series composes multiplicatively, keeping heat.
        map.stack(BlockKind::Conv, 3, tap(0.5));
        assert_eq!(
            map.condition(BlockKind::Conv, 3),
            MrCondition::Attenuated {
                factor: 0.25,
                delta_kelvin: 10.0
            }
        );
    }

    #[test]
    fn stacking_never_weakens_a_parked_ring() {
        // Stacked actuation+trim regression: the trim DAC is a different
        // circuit and cannot move a ring the actuation trojan holds at
        // maximum detuning — in either stacking order.
        let drift = MrCondition::Detuned {
            offset_nm: 0.2,
            delta_kelvin: 0.0,
        };
        let mut map = ConditionMap::new();
        map.stack(BlockKind::Conv, 1, MrCondition::Parked);
        map.stack(BlockKind::Conv, 1, drift);
        assert_eq!(map.condition(BlockKind::Conv, 1), MrCondition::Parked);
        let mut map = ConditionMap::new();
        map.stack(BlockKind::Conv, 1, drift);
        map.stack(BlockKind::Conv, 1, MrCondition::Parked);
        assert_eq!(map.condition(BlockKind::Conv, 1), MrCondition::Parked);
    }

    #[test]
    fn stacking_a_pinned_state_replaces_weaker_faults() {
        let mut map = ConditionMap::new();
        map.set(
            BlockKind::Conv,
            4,
            MrCondition::Attenuated {
                factor: 0.5,
                delta_kelvin: 5.0,
            },
        );
        map.stack(BlockKind::Conv, 4, MrCondition::Parked);
        assert_eq!(map.condition(BlockKind::Conv, 4), MrCondition::Parked);
        // Onto a clean ring, stack is just set.
        map.stack(BlockKind::Conv, 5, MrCondition::Parked);
        assert_eq!(map.condition(BlockKind::Conv, 5), MrCondition::Parked);
    }

    #[test]
    fn stacking_healthy_is_a_no_op() {
        let mut map = ConditionMap::new();
        map.add_heat(BlockKind::Conv, 3, 12.0);
        map.stack(BlockKind::Conv, 3, MrCondition::Healthy);
        assert_eq!(
            map.condition(BlockKind::Conv, 3),
            MrCondition::Heated { delta_kelvin: 12.0 }
        );
        map.stack(BlockKind::Fc, 9, MrCondition::Healthy);
        assert_eq!(map.condition(BlockKind::Fc, 9), MrCondition::Healthy);
    }

    #[test]
    fn stack_map_composes_whole_maps() {
        let mut base = ConditionMap::new();
        base.set(BlockKind::Conv, 1, MrCondition::Parked);
        base.add_heat(BlockKind::Fc, 2, 5.0);
        let mut incoming = ConditionMap::new();
        incoming.set(
            BlockKind::Conv,
            1,
            MrCondition::Attenuated {
                factor: 0.5,
                delta_kelvin: 0.0,
            },
        );
        incoming.set(BlockKind::Fc, 7, MrCondition::Parked);
        base.stack_map(&incoming);
        // Per-site algebra applies: the tap cannot unpark ring 1.
        assert_eq!(base.condition(BlockKind::Conv, 1), MrCondition::Parked);
        assert_eq!(base.condition(BlockKind::Fc, 7), MrCondition::Parked);
        assert_eq!(
            base.condition(BlockKind::Fc, 2),
            MrCondition::Heated { delta_kelvin: 5.0 }
        );
        // Stacking an empty map changes nothing.
        let before = base.clone();
        base.stack_map(&ConditionMap::new());
        assert_eq!(base, before);
    }

    #[test]
    fn non_positive_heat_is_ignored() {
        let mut map = ConditionMap::new();
        map.add_heat(BlockKind::Conv, 2, 0.0);
        map.add_heat(BlockKind::Conv, 2, -4.0);
        assert!(map.is_empty());
    }

    #[test]
    fn blocks_are_independent() {
        let mut map = ConditionMap::new();
        map.set(BlockKind::Conv, 5, MrCondition::Parked);
        assert_eq!(map.condition(BlockKind::Fc, 5), MrCondition::Healthy);
    }
}

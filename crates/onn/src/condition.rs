//! Per-microring fault conditions and the sparse maps that hold them.

use std::collections::HashMap;

use crate::config::BlockKind;

/// The fault state of one microring's peripheral circuitry.
///
/// Attack injectors (the `safelight` crate) produce these; the accelerator
/// executor consumes them. `Healthy` is the implicit default for every MR
/// not present in a [`ConditionMap`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum MrCondition {
    /// Nominal operation.
    #[default]
    Healthy,
    /// Actuation attack: the modulation circuit is hijacked and the ring is
    /// parked at its maximum detuning (§III.B.1).
    Parked,
    /// Thermal attack or spill-over: the ring sits `delta_kelvin` above its
    /// calibrated temperature, red-shifting its resonance per eq. (2).
    Heated {
        /// Temperature rise over the calibrated operating point, kelvin.
        delta_kelvin: f64,
    },
}

impl MrCondition {
    /// Whether the condition deviates from nominal operation.
    #[must_use]
    pub fn is_faulty(&self) -> bool {
        !matches!(self, Self::Healthy)
    }
}

/// A sparse map from flat MR index to fault condition, per block.
///
/// Blocks hold up to millions of MRs but attacks touch at most a few
/// percent, so a hash map keyed by index is the right density trade-off.
///
/// # Example
///
/// ```
/// use safelight_onn::{BlockKind, ConditionMap, MrCondition};
///
/// let mut map = ConditionMap::new();
/// map.set(BlockKind::Conv, 42, MrCondition::Parked);
/// assert!(map.condition(BlockKind::Conv, 42).is_faulty());
/// assert!(!map.condition(BlockKind::Conv, 43).is_faulty());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConditionMap {
    conv: HashMap<u64, MrCondition>,
    fc: HashMap<u64, MrCondition>,
}

impl ConditionMap {
    /// Creates an all-healthy map.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn block(&self, kind: BlockKind) -> &HashMap<u64, MrCondition> {
        match kind {
            BlockKind::Conv => &self.conv,
            BlockKind::Fc => &self.fc,
        }
    }

    fn block_mut(&mut self, kind: BlockKind) -> &mut HashMap<u64, MrCondition> {
        match kind {
            BlockKind::Conv => &mut self.conv,
            BlockKind::Fc => &mut self.fc,
        }
    }

    /// Sets the condition of MR `index` in `kind`'s block. `Healthy`
    /// removes any stored entry.
    pub fn set(&mut self, kind: BlockKind, index: u64, condition: MrCondition) {
        let map = self.block_mut(kind);
        if condition.is_faulty() {
            map.insert(index, condition);
        } else {
            map.remove(&index);
        }
    }

    /// Adds heating to MR `index`, combining with any existing condition:
    /// heat on top of `Parked` keeps the ring parked; heat on heat sums.
    pub fn add_heat(&mut self, kind: BlockKind, index: u64, delta_kelvin: f64) {
        if delta_kelvin <= 0.0 {
            return;
        }
        let map = self.block_mut(kind);
        let updated = match map.get(&index) {
            Some(MrCondition::Parked) => MrCondition::Parked,
            Some(MrCondition::Heated {
                delta_kelvin: existing,
            }) => MrCondition::Heated {
                delta_kelvin: existing + delta_kelvin,
            },
            _ => MrCondition::Heated { delta_kelvin },
        };
        map.insert(index, updated);
    }

    /// The condition of MR `index` (healthy when unset).
    #[must_use]
    pub fn condition(&self, kind: BlockKind, index: u64) -> MrCondition {
        self.block(kind).get(&index).copied().unwrap_or_default()
    }

    /// Number of faulty MRs recorded for `kind`'s block.
    #[must_use]
    pub fn faulty_count(&self, kind: BlockKind) -> usize {
        self.block(kind).len()
    }

    /// Whether the whole map is empty (no attack present).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.conv.is_empty() && self.fc.is_empty()
    }

    /// Iterates over the faulty MRs of `kind`'s block.
    pub fn iter(&self, kind: BlockKind) -> impl Iterator<Item = (u64, MrCondition)> + '_ {
        self.block(kind).iter().map(|(&i, &c)| (i, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_healthy() {
        let map = ConditionMap::new();
        assert_eq!(map.condition(BlockKind::Fc, 7), MrCondition::Healthy);
        assert!(map.is_empty());
    }

    #[test]
    fn setting_healthy_clears_the_entry() {
        let mut map = ConditionMap::new();
        map.set(BlockKind::Conv, 1, MrCondition::Parked);
        assert_eq!(map.faulty_count(BlockKind::Conv), 1);
        map.set(BlockKind::Conv, 1, MrCondition::Healthy);
        assert!(map.is_empty());
    }

    #[test]
    fn heat_accumulates() {
        let mut map = ConditionMap::new();
        map.add_heat(BlockKind::Fc, 3, 10.0);
        map.add_heat(BlockKind::Fc, 3, 5.0);
        assert_eq!(
            map.condition(BlockKind::Fc, 3),
            MrCondition::Heated { delta_kelvin: 15.0 }
        );
    }

    #[test]
    fn heat_does_not_unpark() {
        let mut map = ConditionMap::new();
        map.set(BlockKind::Conv, 9, MrCondition::Parked);
        map.add_heat(BlockKind::Conv, 9, 30.0);
        assert_eq!(map.condition(BlockKind::Conv, 9), MrCondition::Parked);
    }

    #[test]
    fn non_positive_heat_is_ignored() {
        let mut map = ConditionMap::new();
        map.add_heat(BlockKind::Conv, 2, 0.0);
        map.add_heat(BlockKind::Conv, 2, -4.0);
        assert!(map.is_empty());
    }

    #[test]
    fn blocks_are_independent() {
        let mut map = ConditionMap::new();
        map.set(BlockKind::Conv, 5, MrCondition::Parked);
        assert_eq!(map.condition(BlockKind::Fc, 5), MrCondition::Healthy);
    }
}

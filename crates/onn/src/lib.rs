//! A CrossLight-style non-coherent optical neural-network (ONN) accelerator
//! simulator.
//!
//! This crate models the accelerator of the SafeLight paper's Fig. 3: a
//! photonic substrate of vector-dot-product (VDP) units built from microring
//! (MR) banks, split into a CONV block and an FC block, with DAC-driven
//! tuning, photodetector summation and ADC readout. It provides:
//!
//! * [`AcceleratorConfig`] — block dimensions (the paper's CONV block of
//!   100 VDP units × 20×20 MRs and FC block of 60 × 150×150, plus scaled
//!   profiles for CPU-budget experiments), converter resolutions, and the
//!   device models from [`safelight_photonics`];
//! * [`WeightMapping`] — the weight-stationary mapper that pins every model
//!   parameter to an MR coordinate, wrapping around in *reuse rounds* when a
//!   model exceeds the block's MR capacity (the mechanism behind the paper's
//!   insight that larger models degrade faster under attack);
//! * [`MrCondition`] / [`ConditionMap`] — the per-device fault state that
//!   attack injectors produce (healthy, actuation-parked, or heated by ΔT);
//! * [`DropResponseModel`] — the *single* drop-response/condition physics
//!   core every datapath implementation consumes;
//! * [`backend`] — the [`InferenceBackend`] abstraction unifying the
//!   three datapaths (fast analytic, slow physical, finite-bit-depth
//!   quantized) behind one trait the attack, detection and serving
//!   layers consume;
//! * [`corrupt_network`] — the fast evaluation path: derive the *effective*
//!   weights a faulty accelerator applies (including thermal channel-slide
//!   crosstalk) and bake them into a [`safelight_neuro::Network`] clone;
//! * [`OpticalVdp`] — the slow, fully physical dot-product datapath
//!   (laser → imprint banks → balanced photodetector → ADC), usable
//!   end-to-end via [`backend::PhysicalBackend`] and for micro-benchmarks;
//! * [`BlockLayout`] — physical placement of VDP banks on a thermal grid;
//! * [`PowerModel`] — laser/tuning/converter energy and latency estimates;
//! * [`TelemetryFrame`] / [`TelemetryProbe`] — the runtime-detection sensor
//!   taps: per-bank drop-port monitor photocurrents, thermal sensors,
//!   laser-rail and trim-DAC readback, plus sentinel probe weights on idle
//!   rings, emitted as one serializable frame per inference batch.
//!
//! # Example
//!
//! ```
//! use safelight_onn::{AcceleratorConfig, BlockKind, LayerSpec, WeightMapping};
//!
//! # fn main() -> Result<(), safelight_onn::OnnError> {
//! let config = AcceleratorConfig::scaled_experiment()?;
//! let layers = vec![
//!     LayerSpec::new("conv1", BlockKind::Conv, 1_000),
//!     LayerSpec::new("fc1", BlockKind::Fc, 30_000),
//! ];
//! let mapping = WeightMapping::new(&config, &layers)?;
//! // Every parameter has a home MR; reuse rounds appear when a block
//! // holds more parameters than it has microrings.
//! assert!(mapping.rounds(BlockKind::Conv) >= 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
mod condition;
mod config;
mod datapath;
mod error;
mod executor;
mod layout;
mod mapping;
mod power;
mod response;
mod telemetry;

pub use backend::{
    AnalyticBackend, BackendKind, InferenceBackend, PhysicalBackend, QuantizedBackend,
};
pub use condition::{ConditionMap, MrCondition};
pub use config::{AcceleratorConfig, BlockConfig, BlockKind, WeightEncoding};
pub use datapath::{OpticalVdp, RowTap};
pub use error::OnnError;
pub use executor::{
    corrupt_network, corrupt_network_with, effective_weight_row, AnalyticRows, RowEvaluator,
};
pub use layout::BlockLayout;
pub use mapping::{LayerSpec, MappedParam, RemapOutcome, WeightMapping};
pub use power::{PowerBreakdown, PowerModel};
pub use response::{channel_power_factor, DropResponseModel};
pub use telemetry::{
    BankTelemetry, SensorChannel, SentinelPlan, TapConfig, TelemetryFrame, TelemetryProbe,
};

//! The datapath abstraction: one [`InferenceBackend`] trait, three
//! implementations, zero duplicated physics.
//!
//! Every layer above the accelerator substrate — the attack engine, the
//! detection/serving evaluations, the fleet runtime, the `repro` drivers —
//! needs the same three answers from a datapath:
//!
//! 1. **derive** — what *effective* network does a (possibly faulty)
//!    accelerator compute with, given the clean weights, a
//!    [`WeightMapping`] and a [`ConditionMap`]?
//! 2. **forward** — batched class predictions through that derived
//!    network;
//! 3. **telemetry** — what do the monitor taps read, as a
//!    [`TelemetryProbe`] that stamps out per-batch [`TelemetryFrame`]s?
//!
//! [`InferenceBackend`] is that contract. All implementations consume the
//! single shared physics core ([`DropResponseModel`]) — they differ only in
//! *how* they evaluate it:
//!
//! * [`AnalyticBackend`] — the fast closed-form path (the figure-scale
//!   default): per-channel effective weights via the executor's row
//!   algebra, analytic telemetry means.
//! * [`PhysicalBackend`] — the slow device-level path: every affected
//!   channel is read back through the full [`OpticalVdp`] simulation
//!   (laser → imprint rings → balanced detection → ADC), and telemetry
//!   slots are sampled from physically simulated microrings. Usable
//!   end-to-end in the evaluation pipelines, not just in unit comparisons.
//! * [`QuantizedBackend`] — finite-resolution converters on the analytic
//!   physics: a coarser weight DAC and a finite-bit photocurrent readout,
//!   for studying how converter budgets interact with the threat model.
//!
//! [`TelemetryFrame`]: crate::TelemetryFrame
//!
//! # Example
//!
//! ```
//! use safelight_onn::backend::{BackendKind, InferenceBackend};
//! use safelight_onn::{AcceleratorConfig, ConditionMap};
//!
//! # fn main() -> Result<(), safelight_onn::OnnError> {
//! let config = AcceleratorConfig::scaled_experiment()?;
//! let backend = BackendKind::Fast.build(&config);
//! assert_eq!(backend.name(), "fast");
//! assert_eq!(backend.config().conv, config.conv);
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;

use safelight_neuro::{Network, Tensor};

use crate::condition::{ConditionMap, MrCondition};
use crate::config::AcceleratorConfig;
use crate::datapath::OpticalVdp;
use crate::executor::{corrupt_network_with, AnalyticRows, RowEvaluator};
use crate::mapping::WeightMapping;
use crate::response::{channel_power_factor, DropResponseModel};
use crate::telemetry::{SentinelPlan, TapConfig, TelemetryProbe};
use crate::OnnError;

/// A datapath implementation: how clean weights, a mapping and fault
/// conditions become an effective network, predictions and telemetry.
///
/// Implementations must be cheap to clone (via
/// [`InferenceBackend::clone_box`]) and hold no per-derivation state, so
/// evaluation sweeps can share one backend across parallel workers and
/// fleets can box one per member.
pub trait InferenceBackend: Send + Sync + std::fmt::Debug {
    /// Stable identifier used in CLI flags, report labels and CSV stems.
    fn name(&self) -> &'static str;

    /// The accelerator profile this backend simulates.
    fn config(&self) -> &AcceleratorConfig;

    /// The shared physics model the backend evaluates. Exactly one
    /// drop-response implementation exists ([`DropResponseModel`]); this
    /// accessor is how callers (and tests) verify a backend's constants.
    fn model(&self) -> &DropResponseModel;

    /// Clones the backend behind a fresh box.
    fn clone_box(&self) -> Box<dyn InferenceBackend>;

    /// Derives the *effective* network the accelerator computes with under
    /// `conditions` (an empty map reduces to converter quantization alone —
    /// the clean baseline).
    ///
    /// # Errors
    ///
    /// Returns [`OnnError::MappingMismatch`] when the network's weight
    /// tensors do not line up with the mapping, and propagates device
    /// errors from physical evaluation.
    fn derive_network(
        &self,
        clean: &Network,
        mapping: &WeightMapping,
        conditions: &ConditionMap,
    ) -> Result<Network, OnnError>;

    /// Builds the telemetry probe of `(clean, mapping, conditions)`: the
    /// noiseless per-bank sensor means under this backend's physics, ready
    /// to stamp out noisy per-batch frames.
    ///
    /// # Errors
    ///
    /// Returns [`OnnError::MappingMismatch`] / [`OnnError::MrOutOfRange`]
    /// for inconsistent inputs and propagates device errors.
    fn probe(
        &self,
        clean: &Network,
        mapping: &WeightMapping,
        conditions: &ConditionMap,
        sentinels: &SentinelPlan,
        tap: TapConfig,
    ) -> Result<TelemetryProbe, OnnError>;

    /// Batched forward through a previously derived network → class
    /// predictions, one per input.
    ///
    /// The default runs the derived network's batched electronic forward
    /// pass: every backend bakes its datapath effects into
    /// [`InferenceBackend::derive_network`], so the forward itself is
    /// backend-independent.
    ///
    /// # Errors
    ///
    /// Propagates forward-pass errors.
    fn predict_batch(
        &self,
        effective: &mut Network,
        inputs: &[&Tensor],
    ) -> Result<Vec<usize>, OnnError> {
        effective
            .predict_many(inputs.iter().copied())
            .map_err(OnnError::from)
    }
}

impl Clone for Box<dyn InferenceBackend> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// The fast closed-form backend: today's figure-scale default path.
#[derive(Debug, Clone)]
pub struct AnalyticBackend {
    config: AcceleratorConfig,
    model: DropResponseModel,
}

impl AnalyticBackend {
    /// Builds the analytic backend for `config`.
    #[must_use]
    pub fn new(config: &AcceleratorConfig) -> Self {
        Self {
            config: config.clone(),
            model: DropResponseModel::from_config(config),
        }
    }
}

impl InferenceBackend for AnalyticBackend {
    fn name(&self) -> &'static str {
        "fast"
    }

    fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    fn model(&self) -> &DropResponseModel {
        &self.model
    }

    fn clone_box(&self) -> Box<dyn InferenceBackend> {
        Box::new(self.clone())
    }

    fn derive_network(
        &self,
        clean: &Network,
        mapping: &WeightMapping,
        conditions: &ConditionMap,
    ) -> Result<Network, OnnError> {
        corrupt_network_with(
            clean,
            mapping,
            conditions,
            &self.config,
            &self.model,
            &mut AnalyticRows::new(&self.model),
        )
    }

    fn probe(
        &self,
        clean: &Network,
        mapping: &WeightMapping,
        conditions: &ConditionMap,
        sentinels: &SentinelPlan,
        tap: TapConfig,
    ) -> Result<TelemetryProbe, OnnError> {
        TelemetryProbe::new_with(
            clean,
            mapping,
            conditions,
            &self.config,
            sentinels,
            tap,
            &self.model,
            None,
        )
    }
}

/// Row evaluator reading every affected channel back through the simulated
/// optical datapath (one-hot dot products per channel).
struct PhysicalRows<'a> {
    config: &'a AcceleratorConfig,
    /// One simulated VDP row per distinct row width (CONV and FC banks
    /// differ), constructed lazily and reused across rows.
    vdps: HashMap<usize, OpticalVdp>,
}

impl RowEvaluator for PhysicalRows<'_> {
    fn effective_channel(
        &mut self,
        col: usize,
        weights: &[f64],
        conditions: &[MrCondition],
    ) -> Result<f64, OnnError> {
        let vdp = match self.vdps.entry(weights.len()) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(OpticalVdp::new(self.config, weights.len())?)
            }
        };
        vdp.effective_weight_at(col, weights, conditions)
    }
}

/// The slow device-level backend: effective weights and telemetry read
/// through physically simulated microrings, photodetectors and ADCs.
///
/// Orders of magnitude slower than [`AnalyticBackend`] — every affected
/// channel costs a full optical dot product — but it exercises the entire
/// device stack, which is exactly its point: evaluation pipelines can now
/// run end-to-end against the physical model instead of trusting the
/// closed form, and the cross-backend equivalence tests quantify the gap.
#[derive(Debug, Clone)]
pub struct PhysicalBackend {
    config: AcceleratorConfig,
    model: DropResponseModel,
}

impl PhysicalBackend {
    /// Builds the physical backend for `config`.
    #[must_use]
    pub fn new(config: &AcceleratorConfig) -> Self {
        Self {
            config: config.clone(),
            model: DropResponseModel::from_config(config),
        }
    }
}

impl InferenceBackend for PhysicalBackend {
    fn name(&self) -> &'static str {
        "optical"
    }

    fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    fn model(&self) -> &DropResponseModel {
        &self.model
    }

    fn clone_box(&self) -> Box<dyn InferenceBackend> {
        Box::new(self.clone())
    }

    fn derive_network(
        &self,
        clean: &Network,
        mapping: &WeightMapping,
        conditions: &ConditionMap,
    ) -> Result<Network, OnnError> {
        let mut rows = PhysicalRows {
            config: &self.config,
            vdps: HashMap::new(),
        };
        corrupt_network_with(
            clean,
            mapping,
            conditions,
            &self.config,
            &self.model,
            &mut rows,
        )
    }

    fn probe(
        &self,
        clean: &Network,
        mapping: &WeightMapping,
        conditions: &ConditionMap,
        sentinels: &SentinelPlan,
        tap: TapConfig,
    ) -> Result<TelemetryProbe, OnnError> {
        // One single-channel VDP row provides the physically simulated
        // per-slot monitor response; the probe sweep drives it per slot.
        // Responses depend only on the (DAC-quantized) magnitude and the
        // fault condition, and both repeat heavily across a block's slots
        // (healthy rings at a few hundred DAC levels dominate), so memoize
        // on the exact bit patterns — this is what keeps paper-scale
        // optical probes (millions of slots) tractable.
        let vdp = OpticalVdp::new(&self.config, 1)?;
        let mut memo: HashMap<(u64, ConditionKey), f64> = HashMap::new();
        let mut response = |m: f64, cond: MrCondition| -> Result<f64, OnnError> {
            let key = (m.to_bits(), condition_key(cond));
            if let Some(&cached) = memo.get(&key) {
                return Ok(cached);
            }
            let value = vdp.slot_monitor_response(m, cond)?;
            memo.insert(key, value);
            Ok(value)
        };
        TelemetryProbe::new_with(
            clean,
            mapping,
            conditions,
            &self.config,
            sentinels,
            tap,
            &self.model,
            Some(&mut response),
        )
    }
}

/// Bit-exact hash key of an [`MrCondition`] (discriminant + parameter bit
/// patterns), for memoizing per-slot device simulations.
type ConditionKey = (u8, u64, u64);

fn condition_key(cond: MrCondition) -> ConditionKey {
    match cond {
        MrCondition::Healthy => (0, 0, 0),
        MrCondition::Parked => (1, 0, 0),
        MrCondition::Heated { delta_kelvin } => (2, delta_kelvin.to_bits(), 0),
        MrCondition::Attenuated {
            factor,
            delta_kelvin,
        } => (3, factor.to_bits(), delta_kelvin.to_bits()),
        MrCondition::Detuned {
            offset_nm,
            delta_kelvin,
        } => (4, offset_nm.to_bits(), delta_kelvin.to_bits()),
    }
}

/// Row evaluator adding finite-resolution readout on top of the analytic
/// closed form.
struct QuantizedRows<'a> {
    inner: AnalyticRows<'a>,
    readout_steps: u32,
}

impl RowEvaluator for QuantizedRows<'_> {
    fn effective_channel(
        &mut self,
        col: usize,
        weights: &[f64],
        conditions: &[MrCondition],
    ) -> Result<f64, OnnError> {
        let w = self.inner.effective_channel(col, weights, conditions)?;
        Ok(DropResponseModel::snap_signed(w, self.readout_steps))
    }
}

/// The finite-bit-depth backend: analytic physics behind a coarser weight
/// DAC and a finite-resolution photocurrent readout.
///
/// `weight_bits` replaces the configuration's DAC resolution for weight
/// imprinting; `readout_bits` quantizes every decoded effective weight and
/// every monitor-tap sample to `2^bits − 1` uniform levels. With both at
/// the configuration's native resolutions this backend converges to
/// [`AnalyticBackend`]; dropping either models a cheaper converter budget.
#[derive(Debug, Clone)]
pub struct QuantizedBackend {
    config: AcceleratorConfig,
    model: DropResponseModel,
    readout_steps: u32,
}

impl QuantizedBackend {
    /// Builds the quantized backend with explicit converter bit depths.
    #[must_use]
    pub fn new(config: &AcceleratorConfig, weight_bits: u8, readout_bits: u8) -> Self {
        Self {
            config: config.clone(),
            model: DropResponseModel::with_dac_bits(config, weight_bits),
            readout_steps: DropResponseModel::steps_from_bits(readout_bits),
        }
    }
}

impl InferenceBackend for QuantizedBackend {
    fn name(&self) -> &'static str {
        "quantized"
    }

    fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    fn model(&self) -> &DropResponseModel {
        &self.model
    }

    fn clone_box(&self) -> Box<dyn InferenceBackend> {
        Box::new(self.clone())
    }

    fn derive_network(
        &self,
        clean: &Network,
        mapping: &WeightMapping,
        conditions: &ConditionMap,
    ) -> Result<Network, OnnError> {
        let mut rows = QuantizedRows {
            inner: AnalyticRows::new(&self.model),
            readout_steps: self.readout_steps,
        };
        let mut net = corrupt_network_with(
            clean,
            mapping,
            conditions,
            &self.config,
            &self.model,
            &mut rows,
        )?;
        // With finite converters on both operands the forward pass itself
        // can run as exact integer MACs: activations on the *input*-DAC
        // grid (the configuration's native resolution — `weight_bits`
        // only overrides the weight-imprinting DAC), weights on the
        // readout grid the derivation above already snapped them to, one
        // dequantize on store. `bits == 0` means "converter disabled" in
        // the response model, so either depth at 0 keeps the float path —
        // preserving the native-depth ≡ analytic equivalence.
        let spec = safelight_neuro::IntSpec {
            act_steps: DropResponseModel::steps_from_bits(self.config.dac_bits),
            weight_steps: self.readout_steps,
        };
        if spec.is_valid() {
            net.set_int_mode(Some(spec));
        }
        Ok(net)
    }

    fn probe(
        &self,
        clean: &Network,
        mapping: &WeightMapping,
        conditions: &ConditionMap,
        sentinels: &SentinelPlan,
        tap: TapConfig,
    ) -> Result<TelemetryProbe, OnnError> {
        let model = self.model;
        let steps = self.readout_steps;
        // The monitor ADC samples each slot at finite resolution.
        let mut response = |m: f64, cond: MrCondition| -> Result<f64, OnnError> {
            let analytic =
                channel_power_factor(cond) * model.drop_response(model.offset_under(m, cond));
            Ok(DropResponseModel::snap_unit(analytic, steps))
        };
        TelemetryProbe::new_with(
            clean,
            mapping,
            conditions,
            &self.config,
            sentinels,
            tap,
            &self.model,
            Some(&mut response),
        )
    }
}

/// A serializable backend selector: what `repro --backend` and the
/// experiment options carry, resolved into a boxed [`InferenceBackend`]
/// per accelerator profile via [`BackendKind::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// [`AnalyticBackend`] — the fast closed-form path.
    Fast,
    /// [`PhysicalBackend`] — the slow device-level path.
    Optical,
    /// [`QuantizedBackend`] with the given converter bit depths.
    Quantized {
        /// Weight-DAC resolution in bits.
        weight_bits: u8,
        /// Photocurrent-readout resolution in bits.
        readout_bits: u8,
    },
}

impl BackendKind {
    /// Default weight-DAC bit depth of `--backend quantized`.
    pub const DEFAULT_WEIGHT_BITS: u8 = 5;
    /// Default readout bit depth of `--backend quantized`.
    pub const DEFAULT_READOUT_BITS: u8 = 6;

    /// The quantized selector at its default bit depths.
    #[must_use]
    pub fn quantized_default() -> Self {
        Self::Quantized {
            weight_bits: Self::DEFAULT_WEIGHT_BITS,
            readout_bits: Self::DEFAULT_READOUT_BITS,
        }
    }

    /// Every selector at its defaults, in CLI order.
    #[must_use]
    pub fn all() -> [Self; 3] {
        [Self::Fast, Self::Optical, Self::quantized_default()]
    }

    /// Resolves the selector into a backend for `config`.
    #[must_use]
    pub fn build(&self, config: &AcceleratorConfig) -> Box<dyn InferenceBackend> {
        match *self {
            Self::Fast => Box::new(AnalyticBackend::new(config)),
            Self::Optical => Box::new(PhysicalBackend::new(config)),
            Self::Quantized {
                weight_bits,
                readout_bits,
            } => Box::new(QuantizedBackend::new(config, weight_bits, readout_bits)),
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Self::Fast => write!(f, "fast"),
            Self::Optical => write!(f, "optical"),
            Self::Quantized {
                weight_bits,
                readout_bits,
            } => write!(f, "quantized:{weight_bits}:{readout_bits}"),
        }
    }
}

impl std::str::FromStr for BackendKind {
    type Err = String;

    /// Parses `fast`, `optical`, `quantized`, `quantized:W` or
    /// `quantized:W:R` (W = weight bits, R = readout bits).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "fast" | "analytic" => return Ok(Self::Fast),
            "optical" | "physical" => return Ok(Self::Optical),
            "quantized" => return Ok(Self::quantized_default()),
            _ => {}
        }
        if let Some(rest) = s.strip_prefix("quantized:") {
            let mut parts = rest.split(':');
            let bits = |p: Option<&str>, fallback: u8| -> Result<u8, String> {
                match p {
                    None => Ok(fallback),
                    Some(v) => v
                        .parse::<u8>()
                        .map_err(|e| format!("bad bit depth `{v}`: {e}")),
                }
            };
            let weight_bits = bits(parts.next(), Self::DEFAULT_WEIGHT_BITS)?;
            let readout_bits = bits(parts.next(), Self::DEFAULT_READOUT_BITS)?;
            if parts.next().is_some() {
                return Err(format!("too many `:` fields in `{s}`"));
            }
            return Ok(Self::Quantized {
                weight_bits,
                readout_bits,
            });
        }
        Err(format!(
            "unknown backend `{s}` (expected fast, optical or quantized[:WBITS[:RBITS]])"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BlockConfig, BlockKind};
    use crate::mapping::LayerSpec;
    use safelight_neuro::{Flatten, Layer, Linear, Tensor};

    fn fixture() -> (Network, WeightMapping, AcceleratorConfig) {
        let mut net = Network::new();
        net.push(Flatten::new());
        let mut fc = Linear::new(4, 4, 3).unwrap();
        fc.params_mut()[0].value = Tensor::from_vec(
            vec![4, 4],
            (0..16).map(|i| (i as f32 - 8.0) / 8.0).collect(),
        )
        .unwrap();
        net.push(fc);
        let config = AcceleratorConfig::custom(
            BlockConfig {
                vdp_units: 2,
                bank_rows: 2,
                bank_cols: 4,
            },
            BlockConfig {
                vdp_units: 2,
                bank_rows: 2,
                bank_cols: 4,
            },
        )
        .unwrap();
        let mapping =
            WeightMapping::new(&config, &[LayerSpec::new("fc", BlockKind::Fc, 16)]).unwrap();
        (net, mapping, config)
    }

    fn weight_vec(net: &Network) -> Vec<f32> {
        net.params()
            .iter()
            .filter(|p| p.decay)
            .flat_map(|p| p.value.as_slice().to_vec())
            .collect()
    }

    fn attack() -> ConditionMap {
        let mut conditions = ConditionMap::new();
        conditions.set(BlockKind::Fc, 1, MrCondition::Parked);
        conditions.set(BlockKind::Fc, 6, MrCondition::Heated { delta_kelvin: 8.0 });
        conditions
    }

    #[test]
    fn analytic_backend_matches_corrupt_network_bitwise() {
        let (net, mapping, config) = fixture();
        let backend = AnalyticBackend::new(&config);
        let conditions = attack();
        let via_backend = backend.derive_network(&net, &mapping, &conditions).unwrap();
        let direct =
            crate::executor::corrupt_network(&net, &mapping, &conditions, &config).unwrap();
        assert_eq!(weight_vec(&via_backend), weight_vec(&direct));
    }

    #[test]
    fn physical_backend_agrees_with_analytic_within_tolerance() {
        let (net, mapping, config) = fixture();
        let conditions = attack();
        let analytic = AnalyticBackend::new(&config)
            .derive_network(&net, &mapping, &conditions)
            .unwrap();
        let physical = PhysicalBackend::new(&config)
            .derive_network(&net, &mapping, &conditions)
            .unwrap();
        // The residual gap concentrates on rings whose response falls below
        // the drop floor: the analytic per-rail decode clamps there (ADC
        // saturation per rail), while the physical balanced detector sees
        // the full unclamped swing. That bounds the disagreement at
        // ~drop_floor/(1 − drop_floor) ≈ 0.13; everything else agrees to
        // DAC/ADC precision.
        for (i, (a, p)) in weight_vec(&analytic)
            .iter()
            .zip(&weight_vec(&physical))
            .enumerate()
        {
            assert!(
                (a - p).abs() < 0.13,
                "weight {i}: analytic {a} vs physical {p}"
            );
        }
    }

    #[test]
    fn physical_probe_agrees_with_analytic_within_tolerance() {
        let (net, mapping, config) = fixture();
        let sentinels = SentinelPlan::new(&mapping, &config, 4, 0.7);
        let conditions = attack();
        let probe = |backend: &dyn InferenceBackend| {
            backend
                .probe(
                    &net,
                    &mapping,
                    &conditions,
                    &sentinels,
                    TapConfig::default(),
                )
                .unwrap()
                .noiseless(0)
        };
        let a = probe(&AnalyticBackend::new(&config));
        let p = probe(&PhysicalBackend::new(&config));
        for kind in [BlockKind::Conv, BlockKind::Fc] {
            for (i, (ba, bp)) in a.banks(kind).iter().zip(p.banks(kind)).enumerate() {
                assert!(
                    (ba.drop_current - bp.drop_current).abs() < 0.02,
                    "{kind} bank {i}: {} vs {}",
                    ba.drop_current,
                    bp.drop_current
                );
                assert_eq!(ba.delta_kelvin, bp.delta_kelvin);
                assert_eq!(ba.rail_power, bp.rail_power);
                assert_eq!(ba.trim_offset_nm, bp.trim_offset_nm);
            }
            for (sa, sp) in a.sentinels(kind).iter().zip(p.sentinels(kind)) {
                assert!((sa - sp).abs() < 0.02, "sentinel {sa} vs {sp}");
            }
        }
    }

    #[test]
    fn quantized_backend_snaps_weights_to_the_coarse_grid() {
        let (net, mapping, config) = fixture();
        let backend = QuantizedBackend::new(&config, 2, 8);
        let clean = backend
            .derive_network(&net, &mapping, &ConditionMap::new())
            .unwrap();
        // A 2-bit DAC leaves 3 magnitude steps: every normalized weight
        // lands on k/3 of the layer's full scale.
        let weights = weight_vec(&clean);
        let scale = weights.iter().fold(0.0f32, |a, w| a.max(w.abs()));
        for w in &weights {
            let m = (w / scale).abs();
            let snapped = (m * 3.0).round() / 3.0;
            assert!(
                (m - snapped).abs() < 1e-6,
                "weight {w} (m {m}) off the 2-bit grid"
            );
        }
    }

    #[test]
    fn quantized_backend_at_native_depth_matches_analytic() {
        let (net, mapping, config) = fixture();
        let conditions = attack();
        // Native weight DAC and effectively-continuous readout.
        let quantized = QuantizedBackend::new(&config, config.dac_bits, 0)
            .derive_network(&net, &mapping, &conditions)
            .unwrap();
        let analytic = AnalyticBackend::new(&config)
            .derive_network(&net, &mapping, &conditions)
            .unwrap();
        assert_eq!(weight_vec(&quantized), weight_vec(&analytic));
    }

    #[test]
    fn backend_kind_round_trips_and_builds() {
        let config = AcceleratorConfig::scaled_experiment().unwrap();
        for (text, name) in [
            ("fast", "fast"),
            ("analytic", "fast"),
            ("optical", "optical"),
            ("physical", "optical"),
            ("quantized", "quantized"),
            ("quantized:4", "quantized"),
            ("quantized:4:8", "quantized"),
        ] {
            let kind: BackendKind = text.parse().unwrap();
            assert_eq!(kind.build(&config).name(), name, "`{text}`");
        }
        assert_eq!(
            "quantized:3:9".parse::<BackendKind>().unwrap(),
            BackendKind::Quantized {
                weight_bits: 3,
                readout_bits: 9
            }
        );
        assert!("gpu".parse::<BackendKind>().is_err());
        assert!("quantized:x".parse::<BackendKind>().is_err());
        assert!("quantized:1:2:3".parse::<BackendKind>().is_err());
    }

    #[test]
    fn boxed_backends_clone() {
        let config = AcceleratorConfig::scaled_experiment().unwrap();
        for kind in BackendKind::all() {
            let b = kind.build(&config);
            let c = b.clone();
            assert_eq!(b.name(), c.name());
            assert_eq!(b.model(), c.model());
        }
    }

    #[test]
    fn predict_batch_runs_the_derived_network() {
        let (net, mapping, config) = fixture();
        let backend = AnalyticBackend::new(&config);
        let mut effective = backend
            .derive_network(&net, &mapping, &ConditionMap::new())
            .unwrap();
        let inputs: Vec<Tensor> = (0..3)
            .map(|i| {
                let mut data = vec![0.0f32; 4];
                data[i] = 1.0;
                Tensor::from_vec(vec![1, 2, 2], data).unwrap()
            })
            .collect();
        let refs: Vec<&Tensor> = inputs.iter().collect();
        let out = backend.predict_batch(&mut effective, &refs).unwrap();
        assert_eq!(out.len(), 3);
    }
}

//! Physical placement of a block's VDP banks on a thermal grid.

use safelight_thermal::{Floorplan, TemperatureField, ThermalConfig, ThermalGrid};

use crate::condition::ConditionMap;
use crate::config::{BlockConfig, BlockKind};
use crate::OnnError;

/// Maps a block's microrings onto a [`safelight_thermal`] floorplan so
/// hotspot attacks can heat banks and read back per-ring temperature rises.
///
/// `cell_size_mrs` controls thermal resolution: each thermal cell covers a
/// `cell_size_mrs × cell_size_mrs` patch of microrings. The paper's CONV
/// banks (20×20) resolve well at 1–2 MRs per cell; the FC block's 150×150
/// banks use coarser cells to keep the solve cheap.
///
/// # Example
///
/// ```
/// use safelight_onn::{AcceleratorConfig, BlockKind, BlockLayout};
///
/// # fn main() -> Result<(), safelight_onn::OnnError> {
/// let config = AcceleratorConfig::scaled_experiment()?;
/// let layout = BlockLayout::new(*config.block(BlockKind::Conv), BlockKind::Conv, 1)?;
/// assert_eq!(layout.bank_count(), 25);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BlockLayout {
    kind: BlockKind,
    shape: BlockConfig,
    cell_size_mrs: usize,
    floorplan: Floorplan,
}

/// Gap (in thermal cells) between adjacent banks and around the border.
const BANK_GAP_CELLS: usize = 2;

impl BlockLayout {
    /// Arranges `shape`'s VDP banks in a near-square grid.
    ///
    /// # Errors
    ///
    /// Returns [`OnnError::InvalidConfig`] when `cell_size_mrs` is zero, and
    /// propagates floorplan construction errors.
    pub fn new(
        shape: BlockConfig,
        kind: BlockKind,
        cell_size_mrs: usize,
    ) -> Result<Self, OnnError> {
        if cell_size_mrs == 0 {
            return Err(OnnError::InvalidConfig {
                name: "cell_size_mrs",
                value: 0.0,
            });
        }
        let grid_cols = (shape.vdp_units as f64).sqrt().ceil() as usize;
        let grid_rows = shape.vdp_units.div_ceil(grid_cols);
        let bank_w = shape.bank_cols.div_ceil(cell_size_mrs);
        let bank_h = shape.bank_rows.div_ceil(cell_size_mrs);
        let floorplan = Floorplan::bank_grid(grid_rows, grid_cols, bank_w, bank_h, BANK_GAP_CELLS)?;
        Ok(Self {
            kind,
            shape,
            cell_size_mrs,
            floorplan,
        })
    }

    /// The block this layout covers.
    #[must_use]
    pub fn kind(&self) -> BlockKind {
        self.kind
    }

    /// Number of banks (VDP units) placed.
    #[must_use]
    pub fn bank_count(&self) -> usize {
        self.shape.vdp_units
    }

    /// The underlying floorplan.
    #[must_use]
    pub fn floorplan(&self) -> &Floorplan {
        &self.floorplan
    }

    /// Creates a thermal grid sized to the floorplan.
    ///
    /// # Errors
    ///
    /// Propagates thermal-grid construction errors.
    pub fn thermal_grid(&self, config: ThermalConfig) -> Result<ThermalGrid, OnnError> {
        Ok(ThermalGrid::new(
            self.floorplan.grid_width(),
            self.floorplan.grid_height(),
            config,
        )?)
    }

    /// Thermal cell of microring `mr_index`.
    ///
    /// # Errors
    ///
    /// Returns [`OnnError::MrOutOfRange`] outside the block.
    pub fn cell_of_mr(&self, mr_index: u64) -> Result<(usize, usize), OnnError> {
        if mr_index >= self.shape.total_mrs() {
            return Err(OnnError::MrOutOfRange {
                index: mr_index,
                capacity: self.shape.total_mrs(),
            });
        }
        let per_bank = self.shape.mrs_per_bank() as u64;
        let vdp = (mr_index / per_bank) as usize;
        let within = (mr_index % per_bank) as usize;
        let row = within / self.shape.bank_cols;
        let col = within % self.shape.bank_cols;
        Ok(self
            .floorplan
            .ring_cell(vdp, row / self.cell_size_mrs, col / self.cell_size_mrs)?)
    }

    /// Flat MR indices of bank `vdp`.
    ///
    /// # Errors
    ///
    /// Returns [`OnnError::MrOutOfRange`] for an unknown bank.
    pub fn mrs_in_bank(&self, vdp: usize) -> Result<std::ops::Range<u64>, OnnError> {
        if vdp >= self.shape.vdp_units {
            return Err(OnnError::MrOutOfRange {
                index: vdp as u64,
                capacity: self.shape.vdp_units as u64,
            });
        }
        let per_bank = self.shape.mrs_per_bank() as u64;
        Ok(vdp as u64 * per_bank..(vdp as u64 + 1) * per_bank)
    }

    /// Folds a solved temperature field into `conditions`: every microring
    /// whose cell rose more than `threshold_kelvin` above ambient gains a
    /// [`Heated`](crate::MrCondition::Heated) entry (on top of any existing
    /// condition), capturing both attacked banks and neighbour spill-over.
    ///
    /// # Errors
    ///
    /// Returns [`OnnError::Thermal`] when the field does not cover the
    /// floorplan.
    pub fn apply_field(
        &self,
        field: &TemperatureField,
        conditions: &mut ConditionMap,
        threshold_kelvin: f64,
    ) -> Result<(), OnnError> {
        for mr in 0..self.shape.total_mrs() {
            let (x, y) = self.cell_of_mr(mr)?;
            let dt = field.delta_at(x, y)?;
            if dt > threshold_kelvin {
                conditions.add_heat(self.kind, mr, dt);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safelight_thermal::Rect;

    fn layout() -> BlockLayout {
        BlockLayout::new(
            BlockConfig {
                vdp_units: 6,
                bank_rows: 8,
                bank_cols: 8,
            },
            BlockKind::Conv,
            2,
        )
        .unwrap()
    }

    #[test]
    fn banks_form_a_near_square_grid() {
        let l = layout();
        // 6 banks → 3 columns × 2 rows.
        assert_eq!(l.floorplan().cols(), 3);
        assert_eq!(l.floorplan().rows(), 2);
        assert_eq!(l.bank_count(), 6);
    }

    #[test]
    fn cell_of_mr_lands_inside_its_bank() {
        let l = layout();
        for vdp in 0..6 {
            let rect = l.floorplan().bank(vdp).unwrap().rect;
            for mr in l.mrs_in_bank(vdp).unwrap() {
                let (x, y) = l.cell_of_mr(mr).unwrap();
                assert!(
                    rect.contains(x, y),
                    "MR {mr} at ({x},{y}) outside bank {vdp}"
                );
            }
        }
    }

    #[test]
    fn cell_size_divides_bank_resolution() {
        let l = layout();
        // 8×8 MRs at 2 MRs/cell → 4×4 cells per bank.
        let rect: Rect = l.floorplan().bank(0).unwrap().rect;
        assert_eq!(rect.width, 4);
        assert_eq!(rect.height, 4);
    }

    #[test]
    fn out_of_range_queries_error() {
        let l = layout();
        assert!(l.cell_of_mr(6 * 64).is_err());
        assert!(l.mrs_in_bank(6).is_err());
    }

    #[test]
    fn heated_bank_heats_its_rings_and_spills_to_neighbours() {
        let l = layout();
        let mut grid = l.thermal_grid(ThermalConfig::default()).unwrap();
        let target = l.floorplan().bank(0).unwrap().rect;
        grid.add_power_region(target, 0.08).unwrap();
        let field = grid.solve().unwrap();
        let mut conditions = ConditionMap::new();
        l.apply_field(&field, &mut conditions, 0.5).unwrap();
        // Every ring of the attacked bank is heated.
        for mr in l.mrs_in_bank(0).unwrap() {
            assert!(
                conditions.condition(BlockKind::Conv, mr).is_faulty(),
                "ring {mr} of attacked bank not heated"
            );
        }
        // And some rings outside the attacked bank caught spill-over.
        let spill = conditions.faulty_count(BlockKind::Conv) as u64
            - l.mrs_in_bank(0).unwrap().count() as u64;
        assert!(spill > 0, "no spill-over into neighbouring banks");
    }
}

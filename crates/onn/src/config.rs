//! Accelerator configuration: block shapes and device parameters.

use safelight_photonics::MicroringGeometry;

use crate::OnnError;

/// Which photonic block of the accelerator a resource belongs to.
///
/// The paper's accelerator (Fig. 3) splits the substrate into a CONV block
/// for convolution layers and an FC block for fully connected layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum BlockKind {
    /// The convolution block.
    Conv,
    /// The fully connected block.
    Fc,
}

impl std::fmt::Display for BlockKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Conv => write!(f, "CONV"),
            Self::Fc => write!(f, "FC"),
        }
    }
}

/// How a weight magnitude is encoded on a microring.
///
/// The choice decides what an attacked ring *reads as*, which drives the
/// whole susceptibility analysis:
///
/// * [`DropPort`](Self::DropPort) — the weighted product is collected from
///   the ring's drop port; on-resonance = full weight, detuned = zero. An
///   off-resonance (attacked) ring's term never reaches the photodetector,
///   so corruption pulls weights toward **zero** (dropout-like). This
///   matches the paper's observed attack severity (e.g. only a 7.49 % drop
///   for the MNIST model at 10 % hotspot intensity) and is the default.
/// * [`ThroughPort`](Self::ThroughPort) — the product stays on the bus and
///   detuning *increases* transmission; an off-resonance ring reads as
///   **full scale**. Kept as an ablation: it makes every attack far more
///   destructive (see EXPERIMENTS.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum WeightEncoding {
    /// Drop-port collection: attacked weights decay toward zero.
    #[default]
    DropPort,
    /// Through-port modulation: attacked weights saturate to full scale.
    ThroughPort,
}

/// Shape of one photonic block: a set of identical VDP units whose MR banks
/// are `bank_rows × bank_cols` (one wavelength per column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BlockConfig {
    /// Number of vector-dot-product units in the block.
    pub vdp_units: usize,
    /// MR rows per bank.
    pub bank_rows: usize,
    /// MR columns per bank — equals the WDM channel count of the bank's
    /// waveguide.
    pub bank_cols: usize,
}

impl BlockConfig {
    /// Total number of weight-bearing microrings in the block.
    #[must_use]
    pub fn total_mrs(&self) -> u64 {
        self.vdp_units as u64 * self.bank_rows as u64 * self.bank_cols as u64
    }

    /// Microrings per VDP bank.
    #[must_use]
    pub fn mrs_per_bank(&self) -> usize {
        self.bank_rows * self.bank_cols
    }

    fn validate(&self, name: &'static str) -> Result<(), OnnError> {
        if self.vdp_units == 0 || self.bank_rows == 0 || self.bank_cols == 0 {
            return Err(OnnError::InvalidConfig { name, value: 0.0 });
        }
        Ok(())
    }
}

/// Full accelerator configuration.
///
/// # Example
///
/// ```
/// use safelight_onn::{AcceleratorConfig, BlockKind};
///
/// # fn main() -> Result<(), safelight_onn::OnnError> {
/// let paper = AcceleratorConfig::paper()?;
/// assert_eq!(paper.block(BlockKind::Conv).total_mrs(), 40_000);
/// assert_eq!(paper.block(BlockKind::Fc).total_mrs(), 1_350_000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AcceleratorConfig {
    /// CONV block shape.
    pub conv: BlockConfig,
    /// FC block shape.
    pub fc: BlockConfig,
    /// DAC resolution for weight imprinting, in bits.
    pub dac_bits: u8,
    /// ADC resolution for partial-sum readout, in bits.
    pub adc_bits: u8,
    /// Microring geometry shared by all banks.
    pub geometry: MicroringGeometry,
    /// WDM channel spacing in nanometres.
    pub channel_spacing_nm: f64,
    /// First carrier wavelength in nanometres.
    pub grid_start_nm: f64,
    /// Laser power per channel in milliwatts.
    pub laser_power_mw: f64,
    /// Photodetector responsivity in A/W.
    pub pd_responsivity: f64,
    /// Weight encoding convention (see [`WeightEncoding`]).
    pub encoding: WeightEncoding,
}

impl AcceleratorConfig {
    /// The paper's exact dimensions (§IV): CONV block of `m = 100` VDP
    /// units of 20×20 MRs; FC block of `n = 60` VDP units of 150×150 MRs.
    ///
    /// # Errors
    ///
    /// Infallible for the built-in values; kept fallible for parity with
    /// [`Self::custom`].
    pub fn paper() -> Result<Self, OnnError> {
        Self::custom(
            BlockConfig {
                vdp_units: 100,
                bank_rows: 20,
                bank_cols: 20,
            },
            BlockConfig {
                vdp_units: 60,
                bank_rows: 150,
                bank_cols: 150,
            },
        )
    }

    /// A width-scaled profile matched to the CPU-budget models of this
    /// reproduction (see DESIGN.md §4): the parameter-to-capacity ratios of
    /// the three evaluated models keep the paper's ordering (CNN_1 fits in
    /// one round; the ResNet variant reuses CONV MRs tens of times; the VGG
    /// variant reuses both blocks heavily).
    ///
    /// # Errors
    ///
    /// Infallible for the built-in values; kept fallible for parity with
    /// [`Self::custom`].
    pub fn scaled_experiment() -> Result<Self, OnnError> {
        Self::custom(
            BlockConfig {
                vdp_units: 25,
                bank_rows: 10,
                bank_cols: 10,
            },
            BlockConfig {
                vdp_units: 15,
                bank_rows: 60,
                bank_cols: 60,
            },
        )
    }

    /// Builds a configuration with explicit block shapes and default device
    /// parameters (10 µm rings, 0.8 nm spacing, 8-bit DACs, 12-bit ADCs).
    ///
    /// # Errors
    ///
    /// Returns [`OnnError::InvalidConfig`] when a block dimension is zero.
    pub fn custom(conv: BlockConfig, fc: BlockConfig) -> Result<Self, OnnError> {
        conv.validate("conv")?;
        fc.validate("fc")?;
        Ok(Self {
            conv,
            fc,
            dac_bits: 8,
            adc_bits: 12,
            geometry: MicroringGeometry::default(),
            channel_spacing_nm: 0.8,
            grid_start_nm: 1546.0,
            laser_power_mw: 1.0,
            pd_responsivity: 1.0,
            encoding: WeightEncoding::DropPort,
        })
    }

    /// The configuration of `kind`'s block.
    #[must_use]
    pub fn block(&self, kind: BlockKind) -> &BlockConfig {
        match kind {
            BlockKind::Conv => &self.conv,
            BlockKind::Fc => &self.fc,
        }
    }

    /// Temperature rise that slides an MR resonance by exactly one channel
    /// spacing (the paper's Fig. 5 condition), in kelvin.
    #[must_use]
    pub fn one_channel_delta_kelvin(&self) -> f64 {
        let slope = self
            .geometry
            .silicon
            .resonance_shift_per_kelvin_nm(self.grid_start_nm);
        self.channel_spacing_nm / slope
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dimensions_match_section_iv() {
        let c = AcceleratorConfig::paper().unwrap();
        assert_eq!(c.conv.vdp_units, 100);
        assert_eq!(c.conv.mrs_per_bank(), 400);
        assert_eq!(c.fc.vdp_units, 60);
        assert_eq!(c.fc.mrs_per_bank(), 22_500);
    }

    #[test]
    fn zero_dimension_is_rejected() {
        let bad = BlockConfig {
            vdp_units: 0,
            bank_rows: 1,
            bank_cols: 1,
        };
        let ok = BlockConfig {
            vdp_units: 1,
            bank_rows: 1,
            bank_cols: 1,
        };
        assert!(AcceleratorConfig::custom(bad, ok).is_err());
        assert!(AcceleratorConfig::custom(ok, bad).is_err());
    }

    #[test]
    fn one_channel_shift_is_about_fifteen_kelvin() {
        let c = AcceleratorConfig::paper().unwrap();
        let dt = c.one_channel_delta_kelvin();
        assert!((10.0..20.0).contains(&dt), "ΔT {dt}");
    }

    #[test]
    fn block_lookup_selects_the_right_shape() {
        let c = AcceleratorConfig::paper().unwrap();
        assert_eq!(c.block(BlockKind::Conv).bank_cols, 20);
        assert_eq!(c.block(BlockKind::Fc).bank_cols, 150);
    }
}

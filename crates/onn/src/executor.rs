//! The fast attack-evaluation path: derive the *effective* weights a
//! faulty accelerator applies and bake them into a network clone.
//!
//! # Physical model
//!
//! Signed weights use differential rails: `|w|` is imprinted on the ring of
//! the rail matching `sign(w)`, the other rail's ring is calibrated to
//! zero, and a balanced photodetector subtracts the rails. A fault applies
//! to the ring that actually carries the weight (the active rail).
//!
//! All device physics (Lorentzian responses, encoding conventions, fault
//! offsets, DAC steps) lives in the shared
//! [`DropResponseModel`](crate::DropResponseModel) core; this module owns
//! only the *row algebra* — how per-ring responses combine into effective
//! channel weights — and the mapping-aware scaffolding that bakes them
//! into a network clone.
//!
//! Two encoding conventions are modeled (see
//! [`WeightEncoding`](crate::WeightEncoding)):
//!
//! * **Drop port** (default): ring `r` *drops* its channel's power onto the
//!   detector bus; on-resonance = full weight, detuned = zero. Per rail the
//!   collected power at channel `c` is additive across rings,
//!
//!   ```text
//!   P(c) = D_c(λ_c | cond_c) + Σ_{r≠c, r faulty} [D_r(λ_c | fault) − D_r(λ_c | healthy)]
//!   ```
//!
//!   so an actuation-parked or strongly heated ring contributes ≈ 0
//!   (dropout-like corruption), while a ring red-shifted by one channel
//!   spacing *hands its weight to the next channel* — the wavelength slide
//!   of the paper's Fig. 5.
//! * **Through port** (ablation): the product stays on the bus and
//!   detuning increases transmission, so attacked weights *saturate to
//!   full scale*; channel corruption is the multiplicative deviation
//!   product of the faulty rings' transmissions.
//!
//! Decoded magnitudes clamp to the accelerator's `[0, 1]` full scale per
//! rail, exactly as the ADC saturates.
//!
//! The row-level evaluation is pluggable: [`corrupt_network`] uses the
//! closed-form analytic evaluator, while [`corrupt_network_with`] accepts
//! any [`RowEvaluator`] — the hook through which the physical and
//! quantized backends ([`crate::backend`]) reuse the same mapping-aware
//! scaffolding with a different per-channel physics evaluation.

use safelight_neuro::Network;

use crate::condition::{ConditionMap, MrCondition};
use crate::config::{AcceleratorConfig, BlockKind, WeightEncoding};
use crate::mapping::WeightMapping;
use crate::response::{channel_power_factor, DropResponseModel};
use crate::OnnError;

/// How many channels away a faulty ring can still meaningfully perturb a
/// carrier (the Lorentzian tail is negligible beyond this).
pub(crate) const CROSSTALK_WINDOW: isize = 2;

/// Evaluates the effective signed weight of one channel of a bank row.
///
/// `weights` and `conditions` describe the whole row (DAC-quantized signed
/// normalized weights and active-rail fault states); implementations may
/// read any channel but only the value at `col` is requested. The analytic
/// evaluator computes the closed form; the physical evaluator reads the
/// channel back through the simulated optical datapath; the quantized
/// evaluator adds finite-resolution readout on top of the analytic form.
pub trait RowEvaluator {
    /// Effective signed weight on channel `col` of the row.
    ///
    /// # Errors
    ///
    /// Propagates device-construction or datapath errors (the analytic
    /// evaluator is infallible).
    fn effective_channel(
        &mut self,
        col: usize,
        weights: &[f64],
        conditions: &[MrCondition],
    ) -> Result<f64, OnnError>;
}

/// The closed-form analytic row evaluator (the fast path).
#[derive(Debug, Clone, Copy)]
pub struct AnalyticRows<'a> {
    model: &'a DropResponseModel,
}

impl<'a> AnalyticRows<'a> {
    /// Wraps a shared physics model.
    #[must_use]
    pub fn new(model: &'a DropResponseModel) -> Self {
        Self { model }
    }
}

impl RowEvaluator for AnalyticRows<'_> {
    fn effective_channel(
        &mut self,
        col: usize,
        weights: &[f64],
        conditions: &[MrCondition],
    ) -> Result<f64, OnnError> {
        Ok(effective_channel(col, weights, conditions, self.model))
    }
}

/// Effective *signed* weight on channel `c` of one bank row.
///
/// `weights[r]` is the DAC-quantized signed normalized weight of ring `r`
/// in this row/round; `conditions[r]` its active-rail fault state.
fn effective_channel(
    c: usize,
    weights: &[f64],
    conditions: &[MrCondition],
    p: &DropResponseModel,
) -> f64 {
    match p.encoding {
        WeightEncoding::ThroughPort => effective_channel_through(c, weights, conditions, p),
        WeightEncoding::DropPort => effective_channel_drop(c, weights, conditions, p),
    }
}

fn effective_channel_through(
    c: usize,
    weights: &[f64],
    conditions: &[MrCondition],
    p: &DropResponseModel,
) -> f64 {
    let m_c = weights[c].abs();
    let sign = if weights[c] < 0.0 { -1.0 } else { 1.0 };
    let mut t =
        channel_power_factor(conditions[c]) * p.transmission(p.offset_under(m_c, conditions[c]));
    for dr in -CROSSTALK_WINDOW..=CROSSTALK_WINDOW {
        if dr == 0 {
            continue;
        }
        let r = c as isize + dr;
        if r < 0 || r as usize >= weights.len() {
            continue;
        }
        let r = r as usize;
        if !conditions[r].is_faulty() {
            continue;
        }
        // Ring r's resonance sits at λ_c + dr·spacing + offset; its
        // deviation from the calibrated transmission at λ_c corrupts this
        // channel multiplicatively.
        let m_r = weights[r].abs();
        let healthy = dr as f64 * p.spacing_nm + p.detuning_for_magnitude(m_r);
        let faulty = dr as f64 * p.spacing_nm + p.offset_under(m_r, conditions[r]);
        t *= p.transmission(faulty) / p.transmission(healthy);
    }
    sign * p.decode(t)
}

fn effective_channel_drop(
    c: usize,
    weights: &[f64],
    conditions: &[MrCondition],
    p: &DropResponseModel,
) -> f64 {
    // Per-rail additive collection. The active rail of ring r is chosen by
    // sign(w_r); the inactive rail ring idles at zero imprint (maximum
    // detuning) and is unaffected by the fault model (active-rail faults).
    // An upstream power fault throttles *all* λ_c light before it reaches
    // the row, so every term collected at this carrier — both rails' own
    // responses and neighbour crosstalk alike — scales by the same factor,
    // exactly as the slow optical datapath scales the channel's launch
    // power.
    let power_c = channel_power_factor(conditions[c]);
    let mut pos;
    let mut neg;
    {
        let m_c = weights[c].abs();
        let own = power_c * p.drop_response(p.offset_under(m_c, conditions[c]));
        let idle = power_c * p.drop_floor;
        if weights[c] >= 0.0 {
            pos = own;
            neg = idle;
        } else {
            pos = idle;
            neg = own;
        }
    }
    for dr in -CROSSTALK_WINDOW..=CROSSTALK_WINDOW {
        if dr == 0 {
            continue;
        }
        let r = c as isize + dr;
        if r < 0 || r as usize >= weights.len() {
            continue;
        }
        let r = r as usize;
        if !conditions[r].is_faulty() {
            continue;
        }
        // Deviation of ring r's drop response at λ_c from calibration,
        // landed on ring r's active rail.
        let m_r = weights[r].abs();
        let healthy = p.drop_response(dr as f64 * p.spacing_nm + p.detuning_for_magnitude(m_r));
        let faulty = p.drop_response(dr as f64 * p.spacing_nm + p.offset_under(m_r, conditions[r]));
        let dev = power_c * (faulty - healthy);
        if weights[r] >= 0.0 {
            pos += dev;
        } else {
            neg += dev;
        }
    }
    p.decode(pos) - p.decode(neg)
}

/// Effective signed weights of a whole bank row under fault conditions.
///
/// This is the row-level primitive shared by [`corrupt_network`] and the
/// slow physical datapath; exposed for tests and benchmarks. Inputs are
/// normalized signed weights in `[−1, 1]`.
///
/// # Panics
///
/// Panics when `weights` and `conditions` differ in length.
///
/// # Example
///
/// ```
/// use safelight_onn::{
///     AcceleratorConfig, effective_weight_row, DropResponseModel, MrCondition,
/// };
///
/// # fn main() -> Result<(), safelight_onn::OnnError> {
/// let p = DropResponseModel::from_config(&AcceleratorConfig::paper()?);
/// let clean = [0.25, -0.5, 0.75];
/// let healthy = [MrCondition::Healthy; 3];
/// let out = effective_weight_row(&clean, &healthy, &p);
/// // Healthy rows read back their imprinted weights (sign included).
/// for (a, b) in out.iter().zip(&clean) {
///     assert!((a - b).abs() < 1e-6);
/// }
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn effective_weight_row(
    weights: &[f64],
    conditions: &[MrCondition],
    params: &DropResponseModel,
) -> Vec<f64> {
    assert_eq!(
        weights.len(),
        conditions.len(),
        "weights and conditions must be parallel"
    );
    (0..weights.len())
        .map(|c| effective_channel(c, weights, conditions, params))
        .collect()
}

/// Produces a clone of `network` whose weights are the *effective* values a
/// faulty accelerator computes with, per the module-level physical model,
/// using the closed-form analytic row evaluation.
///
/// The i-th decayed (weight) parameter tensor of the network must
/// correspond to the i-th [`LayerSpec`](crate::LayerSpec) of `mapping`.
/// With an empty `conditions` map this reduces to DAC quantization alone —
/// the accelerator's clean baseline.
///
/// # Errors
///
/// Returns [`OnnError::MappingMismatch`] when the network's weight tensors
/// do not line up with the mapping.
pub fn corrupt_network(
    network: &Network,
    mapping: &WeightMapping,
    conditions: &ConditionMap,
    config: &AcceleratorConfig,
) -> Result<Network, OnnError> {
    let model = DropResponseModel::from_config(config);
    corrupt_network_with(
        network,
        mapping,
        conditions,
        config,
        &model,
        &mut AnalyticRows::new(&model),
    )
}

/// As [`corrupt_network`], but with an explicit physics `model` (whose DAC
/// steps quantize the imprinted weights) and a pluggable [`RowEvaluator`]
/// deciding how each affected channel's effective weight is computed.
///
/// This is the scaffolding every [`InferenceBackend`](crate::backend)
/// shares: mapping validation, per-layer calibration scales, in-place DAC
/// quantization and the batched per-row gathering of affected sites are
/// identical across backends; only the per-channel evaluation differs.
///
/// # Errors
///
/// Returns [`OnnError::MappingMismatch`] when the network's weight tensors
/// do not line up with the mapping, and propagates evaluator errors.
pub fn corrupt_network_with(
    network: &Network,
    mapping: &WeightMapping,
    conditions: &ConditionMap,
    config: &AcceleratorConfig,
    p: &DropResponseModel,
    rows_eval: &mut dyn RowEvaluator,
) -> Result<Network, OnnError> {
    let _span = safelight_obs::profile_span("derive_network");
    let mut out = network.clone();

    // Validate that the weight tensors line up with the mapping.
    let specs = mapping.layer_specs();
    {
        let weight_lens: Vec<usize> = out
            .params()
            .iter()
            .filter(|q| q.decay)
            .map(|q| q.value.len())
            .collect();
        if weight_lens.len() != specs.len() {
            return Err(OnnError::MappingMismatch {
                context: format!(
                    "network has {} weight tensors, mapping has {} layers",
                    weight_lens.len(),
                    specs.len()
                ),
            });
        }
        for (i, (len, spec)) in weight_lens.iter().zip(&specs).enumerate() {
            if *len != spec.weights {
                return Err(OnnError::MappingMismatch {
                    context: format!(
                        "layer {i} (`{}`): tensor has {len} weights, spec says {}",
                        spec.name, spec.weights
                    ),
                });
            }
        }
    }

    // Per-layer calibration scales, then in-place DAC quantization.
    let mut scales = Vec::with_capacity(specs.len());
    {
        let mut weights: Vec<_> = out.params_mut().into_iter().filter(|q| q.decay).collect();
        for q in &mut weights {
            let scale = q.value.max_abs();
            scales.push(scale);
            if scale > 0.0 && p.dac_steps > 0 {
                for w in q.value.as_mut_slice() {
                    let m = p.quantize(f64::from(w.abs() / scale));
                    *w = w.signum() * (m as f32) * scale;
                }
            }
        }
    }

    if conditions.is_empty() {
        return Ok(out);
    }

    // Snapshot of clean (quantized) signed normalized weights per layer.
    let snapshot: Vec<Vec<f32>> = out
        .params()
        .iter()
        .filter(|q| q.decay)
        .zip(&scales)
        .map(|(q, &scale)| {
            if scale > 0.0 {
                q.value.as_slice().iter().map(|w| w / scale).collect()
            } else {
                vec![0.0; q.value.len()]
            }
        })
        .collect();

    // Signed normalized weight at a linear slot (0 when the slot is beyond
    // the used range — the ring is calibrated to zero in that round).
    let weight_at_slot = |kind: BlockKind, slot: u64| -> f64 {
        mapping
            .param_at_slot(kind, slot)
            .map_or(0.0, |(li, off)| f64::from(snapshot[li][off]))
    };

    let mut weights: Vec<_> = out.params_mut().into_iter().filter(|q| q.decay).collect();

    for kind in [BlockKind::Conv, BlockKind::Fc] {
        let shape = *config.block(kind);
        let cols = shape.bank_cols as i64;
        // Affected rings: every faulty ring plus same-row neighbours within
        // the crosstalk window.
        let mut affected: Vec<u64> = Vec::new();
        for (mr, _) in conditions.iter(kind) {
            if mr >= shape.total_mrs() {
                return Err(OnnError::MrOutOfRange {
                    index: mr,
                    capacity: shape.total_mrs(),
                });
            }
            let col = (mr as i64) % cols;
            for d in -(CROSSTALK_WINDOW as i64)..=(CROSSTALK_WINDOW as i64) {
                let nc = col + d;
                if nc >= 0 && nc < cols {
                    affected.push((mr as i64 + d) as u64);
                }
            }
        }
        affected.sort_unstable();
        affected.dedup();

        let cap = shape.total_mrs();

        // Batched per-row derivation: group the affected parameter sites by
        // (reuse round, bank row), gather each row's weights and conditions
        // exactly once, and evaluate every affected channel against that
        // shared row view. The seed re-gathered a ±CROSSTALK_WINDOW window
        // through the mapping for every single site, so a fully-attacked
        // row cost ~(2W+1)× more mapping lookups than this path; the
        // per-channel physics (and its numerics) are unchanged, since
        // crosstalk beyond the window never contributes.
        // Keyed by (reuse round, bank-row base ring); each site is
        // (column, layer index, offset).
        type RowSites = Vec<(usize, usize, usize)>;
        let mut rows: std::collections::BTreeMap<(u64, u64), RowSites> =
            std::collections::BTreeMap::new();
        for &mr in &affected {
            let col = (mr % cols as u64) as usize;
            let row_base = mr - col as u64;
            for (li, off) in mapping.params_on_mr(kind, mr)? {
                // The round of this parameter's slot identifies which pass
                // over the bank the weight is applied in.
                let home = mapping.locate(li, off)?;
                rows.entry((home.round, row_base))
                    .or_default()
                    .push((col, li, off));
            }
        }
        let row_len = cols as usize;
        let mut row_weights = vec![0.0f64; row_len];
        let mut conds = vec![MrCondition::Healthy; row_len];
        let mut needed = vec![false; row_len];
        for ((round, row_base), sites) in rows {
            // Only columns within the crosstalk window of some affected
            // site are ever read by the analytic evaluator; gather exactly
            // that union once (≤ one lookup per column, versus one per
            // site-window entry before). Columns outside the union are
            // reset to zero/healthy so evaluators that read the whole row
            // (the physical datapath read-back) never see a stale gather
            // from the previous row.
            needed.fill(false);
            for &(col, _, _) in &sites {
                let lo = col.saturating_sub(CROSSTALK_WINDOW as usize);
                let hi = (col + CROSSTALK_WINDOW as usize).min(row_len - 1);
                needed[lo..=hi].fill(true);
            }
            for (c, &want) in needed.iter().enumerate() {
                if want {
                    let ring = row_base + c as u64;
                    let w = weight_at_slot(kind, round * cap + ring);
                    row_weights[c] = w.signum() * p.quantize(w.abs());
                    conds[c] = conditions.condition(kind, ring);
                } else {
                    row_weights[c] = 0.0;
                    conds[c] = MrCondition::Healthy;
                }
            }
            for (col, li, off) in sites {
                let w_eff = rows_eval.effective_channel(col, &row_weights, &conds)? as f32;
                let scale = scales[li];
                if scale > 0.0 {
                    weights[li].value.as_mut_slice()[off] = w_eff * scale;
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BlockConfig;
    use crate::mapping::LayerSpec;
    use safelight_neuro::{Flatten, Layer, Linear, Network, Tensor};

    fn params_for(encoding: WeightEncoding) -> DropResponseModel {
        let mut config = AcceleratorConfig::paper().unwrap();
        config.encoding = encoding;
        DropResponseModel::from_config(&config)
    }

    fn params() -> DropResponseModel {
        params_for(WeightEncoding::DropPort)
    }

    #[test]
    fn healthy_row_round_trips_both_encodings() {
        for encoding in [WeightEncoding::DropPort, WeightEncoding::ThroughPort] {
            let p = params_for(encoding);
            let w = [0.0, 0.1, -0.33, 0.66, -1.0];
            let conds = [MrCondition::Healthy; 5];
            let out = effective_weight_row(&w, &conds, &p);
            for (o, expect) in out.iter().zip(&w) {
                assert!(
                    (o - expect).abs() < 1e-9,
                    "{encoding:?}: w {expect} read back {o}"
                );
            }
        }
    }

    #[test]
    fn parked_ring_drops_its_weight_to_zero() {
        let p = params();
        let w = [0.6, -0.6, 0.6];
        let conds = [
            MrCondition::Healthy,
            MrCondition::Parked,
            MrCondition::Healthy,
        ];
        let out = effective_weight_row(&w, &conds, &p);
        assert!(out[1].abs() < 1e-9, "parked weight reads {}", out[1]);
        // Neighbours barely perturbed.
        assert!((out[0] - 0.6).abs() < 0.05);
        assert!((out[2] - 0.6).abs() < 0.05);
    }

    #[test]
    fn parked_ring_saturates_under_through_port_encoding() {
        let p = params_for(WeightEncoding::ThroughPort);
        let w = [0.2, -0.2, 0.2];
        let conds = [
            MrCondition::Healthy,
            MrCondition::Parked,
            MrCondition::Healthy,
        ];
        let out = effective_weight_row(&w, &conds, &p);
        assert!(
            (out[1] + 1.0).abs() < 1e-9,
            "through-port parked reads {}",
            out[1]
        );
    }

    #[test]
    fn one_spacing_heat_slides_weights_onto_neighbours() {
        let p = params();
        let cfg = AcceleratorConfig::paper().unwrap();
        let dt = cfg.one_channel_delta_kelvin();
        // All three rings heated by one channel: Fig. 5.
        let w = [0.9, 0.1, -0.5];
        let heated = MrCondition::Heated { delta_kelvin: dt };
        let out = effective_weight_row(&w, &[heated; 3], &p);
        // Channel 1 now reads ring 0's weight (sign included), channel 2
        // reads ring 1's.
        assert!(
            (out[1] - 0.9).abs() < 0.15,
            "channel 1 should read ring 0's weight, got {}",
            out[1]
        );
        assert!(
            (out[2] - 0.1).abs() < 0.15,
            "channel 2 should read ring 1's weight, got {}",
            out[2]
        );
        // Channel 0 lost its ring entirely → reads ≈ 0 (unsupported λ).
        assert!(
            out[0].abs() < 0.1,
            "channel 0 should drop out, got {}",
            out[0]
        );
    }

    #[test]
    fn partial_heat_attenuates_gradually() {
        let p = params();
        let cfg = AcceleratorConfig::paper().unwrap();
        let slight = cfg.one_channel_delta_kelvin() / 16.0;
        let w = [0.5, 0.5, 0.5];
        let conds = [
            MrCondition::Healthy,
            MrCondition::Heated {
                delta_kelvin: slight,
            },
            MrCondition::Healthy,
        ];
        let out = effective_weight_row(&w, &conds, &p);
        // Drop-port heating detunes the ring away from resonance, so the
        // weight shrinks — partially for slight heat.
        assert!(out[1] > 0.0 && out[1] < 0.5, "slight heat gave {}", out[1]);
        // A half-channel shift effectively erases the weight.
        let strong = MrCondition::Heated {
            delta_kelvin: cfg.one_channel_delta_kelvin() / 2.0,
        };
        let conds = [MrCondition::Healthy, strong, MrCondition::Healthy];
        let out = effective_weight_row(&w, &conds, &p);
        assert!(out[1].abs() < 0.05, "half-channel heat gave {}", out[1]);
    }

    #[test]
    fn attenuation_scales_the_weight_without_touching_neighbours() {
        let p = params();
        let w = [0.6, 0.6, 0.6];
        let conds = [
            MrCondition::Healthy,
            MrCondition::Attenuated {
                factor: 0.5,
                delta_kelvin: 0.0,
            },
            MrCondition::Healthy,
        ];
        let out = effective_weight_row(&w, &conds, &p);
        // The throttled channel reads roughly half its weight (exactly half
        // of the collected power, slightly less after the drop-floor
        // subtraction in decode).
        assert!(
            out[1] > 0.2 && out[1] < 0.35,
            "attenuated weight reads {}",
            out[1]
        );
        // An upstream power fault has no Lorentzian tail: neighbours are
        // bit-exact.
        let clean = effective_weight_row(&w, &[MrCondition::Healthy; 3], &p);
        assert_eq!(out[0], clean[0]);
        assert_eq!(out[2], clean[2]);
    }

    #[test]
    fn attenuation_scales_neighbour_crosstalk_too() {
        // Stacked-scenario regression: an upstream power fault darkens the
        // whole carrier, so a parked neighbour's crosstalk deviation at λ_c
        // must scale by the same factor as the own-ring response (the slow
        // datapath scales the channel's launch power before every ring). A
        // fully dark channel therefore reads exactly zero even with a
        // deviating neighbour.
        let p = params();
        let w = [0.9, 0.6, 0.9];
        let conds = [
            MrCondition::Parked,
            MrCondition::Attenuated {
                factor: 0.0,
                delta_kelvin: 0.0,
            },
            MrCondition::Healthy,
        ];
        let out = effective_weight_row(&w, &conds, &p);
        assert!(
            out[1].abs() < 1e-12,
            "dark channel leaked neighbour crosstalk: {}",
            out[1]
        );
        // At a partial tap, the attacked channel's reading (own + crosstalk)
        // is the factor-scaled version of the unattenuated stacked reading.
        let factor = 0.5;
        let conds_half = [
            MrCondition::Parked,
            MrCondition::Attenuated {
                factor,
                delta_kelvin: 0.0,
            },
            MrCondition::Healthy,
        ];
        let conds_full_power = [
            MrCondition::Parked,
            MrCondition::Healthy,
            MrCondition::Healthy,
        ];
        let half = effective_weight_row(&w, &conds_half, &p);
        let full = effective_weight_row(&w, &conds_full_power, &p);
        // Undo the decode's affine floor subtraction to compare raw rails:
        // response = decode⁻¹, and the λ_1 rails must scale exactly.
        let raw = |v: f64| v * (1.0 - p.drop_floor) + p.drop_floor;
        assert!(
            (raw(half[1]) - factor * raw(full[1])).abs() < 1e-12,
            "half-power reading {} vs scaled full-power {}",
            raw(half[1]),
            factor * raw(full[1])
        );
    }

    #[test]
    fn attenuated_rings_still_respond_to_heat() {
        // Stacked laser+hotspot regression: the tap is upstream, so
        // spill-over heat recorded on an Attenuated condition must detune
        // the ring exactly as it would a merely Heated one.
        let p = params();
        let cfg = AcceleratorConfig::paper().unwrap();
        let half = cfg.one_channel_delta_kelvin() / 2.0;
        let w = [0.5, 0.5, 0.5];
        let cold = effective_weight_row(
            &w,
            &[
                MrCondition::Healthy,
                MrCondition::Attenuated {
                    factor: 0.5,
                    delta_kelvin: 0.0,
                },
                MrCondition::Healthy,
            ],
            &p,
        );
        let hot = effective_weight_row(
            &w,
            &[
                MrCondition::Healthy,
                MrCondition::Attenuated {
                    factor: 0.5,
                    delta_kelvin: half,
                },
                MrCondition::Healthy,
            ],
            &p,
        );
        // A half-channel slide erases the weight on top of the power loss.
        assert!(hot[1].abs() < 0.05, "heated tap still reads {}", hot[1]);
        // Half power on a 0.5 weight reads ≈ 0.19 after the drop-floor
        // subtraction in decode.
        assert!(cold[1] > 0.15, "cold tap reads {}", cold[1]);
    }

    #[test]
    fn full_attenuation_zeroes_the_weight() {
        let p = params();
        let out = effective_weight_row(
            &[0.8],
            &[MrCondition::Attenuated {
                factor: 0.0,
                delta_kelvin: 0.0,
            }],
            &p,
        );
        assert!(out[0].abs() < 1e-9, "dark channel reads {}", out[0]);
    }

    #[test]
    fn trim_drift_interpolates_between_healthy_and_parked() {
        let p = params();
        let w = [0.5, 0.5, 0.5];
        let slight = MrCondition::Detuned {
            offset_nm: p.fwhm_nm / 4.0,
            delta_kelvin: 0.0,
        };
        let out = effective_weight_row(
            &w,
            &[MrCondition::Healthy, slight, MrCondition::Healthy],
            &p,
        );
        assert!(
            out[1] > 0.0 && out[1] < 0.5,
            "slight trim drift gave {}",
            out[1]
        );
        // A drift past the modulator's full range behaves like Parked.
        let severe = MrCondition::Detuned {
            offset_nm: p.max_detuning_nm * 2.0,
            delta_kelvin: 0.0,
        };
        let out = effective_weight_row(
            &w,
            &[MrCondition::Healthy, severe, MrCondition::Healthy],
            &p,
        );
        let parked = effective_weight_row(
            &w,
            &[
                MrCondition::Healthy,
                MrCondition::Parked,
                MrCondition::Healthy,
            ],
            &p,
        );
        assert!(
            (out[1] - parked[1]).abs() < 0.05,
            "severe drift {} vs parked {}",
            out[1],
            parked[1]
        );
    }

    #[test]
    fn trim_drift_of_one_spacing_hands_the_weight_to_the_neighbour() {
        let p = params();
        let drift = MrCondition::Detuned {
            offset_nm: p.spacing_nm,
            delta_kelvin: 0.0,
        };
        let w = [0.9, 0.1, -0.5];
        let out = effective_weight_row(&w, &[drift; 3], &p);
        // Same wavelength-slide mechanism as one-channel heating (Fig. 5).
        assert!((out[1] - 0.9).abs() < 0.15, "channel 1 read {}", out[1]);
        assert!(out[0].abs() < 0.1, "channel 0 read {}", out[0]);
    }

    #[test]
    fn quantize_respects_dac_steps() {
        let mut p = params();
        p.dac_steps = 3; // 2-bit DAC: levels 0, 1/3, 2/3, 1
        assert!((p.quantize(0.4) - 1.0 / 3.0).abs() < 1e-12);
        assert!((p.quantize(0.95) - 1.0).abs() < 1e-12);
        p.dac_steps = 0;
        assert_eq!(p.quantize(0.4), 0.4);
    }

    fn tiny_setup() -> (Network, WeightMapping, AcceleratorConfig) {
        // One linear layer of 4×4 = 16 weights mapped to the FC block.
        let mut net = Network::new();
        net.push(Flatten::new());
        let mut fc = Linear::new(4, 4, 3).unwrap();
        // Deterministic, distinctive weights.
        fc.params_mut()[0].value = Tensor::from_vec(
            vec![4, 4],
            (0..16).map(|i| (i as f32 - 8.0) / 8.0).collect(),
        )
        .unwrap();
        net.push(fc);
        let config = AcceleratorConfig::custom(
            BlockConfig {
                vdp_units: 1,
                bank_rows: 2,
                bank_cols: 4,
            },
            BlockConfig {
                vdp_units: 2,
                bank_rows: 2,
                bank_cols: 4,
            }, // 16 MRs
        )
        .unwrap();
        let mapping =
            WeightMapping::new(&config, &[LayerSpec::new("fc", BlockKind::Fc, 16)]).unwrap();
        (net, mapping, config)
    }

    #[test]
    fn clean_corruption_is_just_quantization() {
        let (net, mapping, config) = tiny_setup();
        let out = corrupt_network(&net, &mapping, &ConditionMap::new(), &config).unwrap();
        let orig: Vec<f32> = net
            .params()
            .iter()
            .filter(|p| p.decay)
            .flat_map(|p| p.value.as_slice().to_vec())
            .collect();
        let got: Vec<f32> = out
            .params()
            .iter()
            .filter(|p| p.decay)
            .flat_map(|p| p.value.as_slice().to_vec())
            .collect();
        let lsb = 1.0 / 255.0;
        for (a, b) in orig.iter().zip(&got) {
            assert!((a - b).abs() <= lsb + 1e-6, "quantization moved {a} to {b}");
        }
    }

    #[test]
    fn parked_mr_zeroes_its_weight() {
        let (net, mapping, config) = tiny_setup();
        let mut conditions = ConditionMap::new();
        // Ring 5 carries weight (5−8)/8 = −0.375.
        conditions.set(BlockKind::Fc, 5, MrCondition::Parked);
        let out = corrupt_network(&net, &mapping, &conditions, &config).unwrap();
        let weights: Vec<f32> = out
            .params()
            .iter()
            .filter(|p| p.decay)
            .flat_map(|p| p.value.as_slice().to_vec())
            .collect();
        assert!(
            weights[5].abs() < 1e-5,
            "parked weight not zeroed: {}",
            weights[5]
        );
    }

    #[test]
    fn mismatched_network_is_rejected() {
        let (net, _, config) = tiny_setup();
        let bad_mapping =
            WeightMapping::new(&config, &[LayerSpec::new("fc", BlockKind::Fc, 99)]).unwrap();
        assert!(matches!(
            corrupt_network(&net, &bad_mapping, &ConditionMap::new(), &config),
            Err(OnnError::MappingMismatch { .. })
        ));
    }

    #[test]
    fn corruption_only_touches_affected_rings() {
        let (net, mapping, config) = tiny_setup();
        let mut conditions = ConditionMap::new();
        // Ring 1 carries weight (1−8)/8 = −0.875.
        conditions.set(BlockKind::Fc, 1, MrCondition::Parked);
        let out = corrupt_network(&net, &mapping, &conditions, &config).unwrap();
        let clean = corrupt_network(&net, &mapping, &ConditionMap::new(), &config).unwrap();
        let a: Vec<f32> = out
            .params()
            .iter()
            .filter(|p| p.decay)
            .flat_map(|p| p.value.as_slice().to_vec())
            .collect();
        let b: Vec<f32> = clean
            .params()
            .iter()
            .filter(|p| p.decay)
            .flat_map(|p| p.value.as_slice().to_vec())
            .collect();
        // Ring 1 sits in row 0 (cols 0..4); rings in the other rows (weights
        // 4..8 are row 1 of bank 0, etc.) must be untouched.
        for i in 4..8 {
            assert_eq!(a[i], b[i], "weight {i} in another row changed");
        }
        assert_ne!(a[1], b[1], "attacked weight unchanged");
        assert!(a[1].abs() < 1e-5, "parked weight not zeroed: {}", a[1]);
    }

    #[test]
    fn remap_restores_a_quarantined_weight() {
        // The closed-loop response primitive: park an attacked ring, remap
        // its parameter onto a spare, and the re-derived effective network
        // reads the weight back cleanly.
        let (_, _, config) = tiny_setup();
        // A 12-weight layer on the 16-ring FC block: rings 12..16 are spare.
        let mut net12 = Network::new();
        net12.push(Flatten::new());
        let mut fc = Linear::new(4, 3, 3).unwrap();
        fc.params_mut()[0].value = Tensor::from_vec(
            vec![3, 4],
            (0..12).map(|i| (i as f32 + 1.0) / 16.0).collect(),
        )
        .unwrap();
        net12.push(fc);
        let mut mapping =
            WeightMapping::new(&config, &[LayerSpec::new("fc", BlockKind::Fc, 12)]).unwrap();
        let mut conditions = ConditionMap::new();
        conditions.set(BlockKind::Fc, 5, MrCondition::Parked);
        let attacked = corrupt_network(&net12, &mapping, &conditions, &config).unwrap();
        let w_attacked: Vec<f32> = attacked
            .params()
            .iter()
            .filter(|p| p.decay)
            .flat_map(|p| p.value.as_slice().to_vec())
            .collect();
        assert!(w_attacked[5].abs() < 1e-5, "attack did not land");
        // Respond: quarantine ring 5 and remap its parameter to a spare.
        let outcome = mapping.remap_params(BlockKind::Fc, &[5]).unwrap();
        assert!(outcome.fully_placed());
        let recovered = corrupt_network(&net12, &mapping, &conditions, &config).unwrap();
        let w_rec: Vec<f32> = recovered
            .params()
            .iter()
            .filter(|p| p.decay)
            .flat_map(|p| p.value.as_slice().to_vec())
            .collect();
        let clean = corrupt_network(&net12, &mapping, &ConditionMap::new(), &config).unwrap();
        let w_clean: Vec<f32> = clean
            .params()
            .iter()
            .filter(|p| p.decay)
            .flat_map(|p| p.value.as_slice().to_vec())
            .collect();
        // The remapped weight reads back its clean (quantized) value again.
        assert!(
            (w_rec[5] - w_clean[5]).abs() < 1e-6,
            "remapped weight reads {} vs clean {}",
            w_rec[5],
            w_clean[5]
        );
        assert!(w_rec[5].abs() > 0.1, "weight still zeroed after remap");
    }

    #[test]
    fn reuse_rounds_inherit_corruption() {
        // 16 weights on an 8-MR FC block ⇒ 2 rounds; parking MR 2 corrupts
        // weights 2 and 10.
        let mut net = Network::new();
        net.push(Flatten::new());
        let mut fc = Linear::new(4, 4, 3).unwrap();
        fc.params_mut()[0].value = Tensor::from_vec(
            vec![4, 4],
            (0..16).map(|i| 0.4 + (i as f32) / 40.0).collect(),
        )
        .unwrap();
        net.push(fc);
        let config = AcceleratorConfig::custom(
            BlockConfig {
                vdp_units: 1,
                bank_rows: 1,
                bank_cols: 4,
            },
            BlockConfig {
                vdp_units: 1,
                bank_rows: 2,
                bank_cols: 4,
            }, // 8 MRs
        )
        .unwrap();
        let mapping =
            WeightMapping::new(&config, &[LayerSpec::new("fc", BlockKind::Fc, 16)]).unwrap();
        let mut conditions = ConditionMap::new();
        conditions.set(BlockKind::Fc, 2, MrCondition::Parked);
        let out = corrupt_network(&net, &mapping, &conditions, &config).unwrap();
        let w: Vec<f32> = out
            .params()
            .iter()
            .filter(|p| p.decay)
            .flat_map(|p| p.value.as_slice().to_vec())
            .collect();
        assert!(w[2].abs() < 1e-5, "round-0 weight survived: {}", w[2]);
        assert!(w[10].abs() < 1e-5, "round-1 weight survived: {}", w[10]);
        // A weight on another ring is untouched.
        assert!(w[5].abs() > 0.1);
    }
}

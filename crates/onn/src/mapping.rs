//! Weight-stationary mapping of model parameters onto microrings.
//!
//! All layers are mapped "using a weight-stationary approach" (paper §IV):
//! convolution-layer parameters fill the CONV block's MRs in order, FC-layer
//! parameters fill the FC block, and when a block runs out of rings the
//! mapping wraps around into another *reuse round*. A single microring at
//! flat index `m` in a block of capacity `C` therefore carries parameter
//! slots `{m, m + C, m + 2C, …}` — which is why one compromised ring
//! corrupts `⌈used/C⌉` parameters of a large model but at most one
//! parameter of a model that fits in a single round.

use std::collections::{BTreeMap, BTreeSet};

use crate::config::{AcceleratorConfig, BlockConfig, BlockKind};
use crate::OnnError;

/// One mapped layer: which block it lives in and how many weight scalars it
/// contributes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LayerSpec {
    /// Human-readable layer name (diagnostics only).
    pub name: String,
    /// Block the layer executes on (conv layers → CONV, dense → FC).
    pub kind: BlockKind,
    /// Number of weight scalars (biases stay electronic and are not
    /// mapped).
    pub weights: usize,
}

impl LayerSpec {
    /// Creates a layer spec.
    #[must_use]
    pub fn new(name: impl Into<String>, kind: BlockKind, weights: usize) -> Self {
        Self {
            name: name.into(),
            kind,
            weights,
        }
    }
}

/// Where one parameter lives on the photonic substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MappedParam {
    /// Block holding the parameter.
    pub block: BlockKind,
    /// Flat MR index within the block.
    pub mr_index: u64,
    /// Reuse round (0 = first pass over the block's rings).
    pub round: u64,
    /// VDP unit of the MR.
    pub vdp: usize,
    /// Bank row of the MR.
    pub row: usize,
    /// Bank column of the MR — also its WDM channel.
    pub col: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
struct MappedLayer {
    spec: LayerSpec,
    /// First slot (linear position in the block's slot space) of the layer.
    start_slot: u64,
}

/// The weight-stationary mapping of a whole network.
///
/// # Example
///
/// ```
/// use safelight_onn::{AcceleratorConfig, BlockKind, LayerSpec, WeightMapping};
///
/// # fn main() -> Result<(), safelight_onn::OnnError> {
/// let config = AcceleratorConfig::scaled_experiment()?;
/// let mapping = WeightMapping::new(&config, &[
///     LayerSpec::new("conv1", BlockKind::Conv, 5_000),
/// ])?;
/// let home = mapping.locate(0, 4_999)?;
/// assert_eq!(home.block, BlockKind::Conv);
/// // 5 000 weights on 2 500 CONV rings ⇒ two reuse rounds.
/// assert_eq!(mapping.rounds(BlockKind::Conv), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WeightMapping {
    conv_shape: BlockConfig,
    fc_shape: BlockConfig,
    layers: Vec<MappedLayer>,
    used_slots_conv: u64,
    used_slots_fc: u64,
    /// Ring relocation table per block, stored as a symmetric involution:
    /// pairing `(l, s)` inserts both `l → s` and `s → l`, meaning logical
    /// ring `l`'s parameter slots are physically imprinted on ring `s`
    /// while `s`'s (idle) slot range moves onto `l`. Empty = identity.
    reloc_conv: BTreeMap<u64, u64>,
    reloc_fc: BTreeMap<u64, u64>,
    /// Rings taken out of service by [`WeightMapping::remap_params`]; never
    /// offered as spare capacity again.
    retired_conv: BTreeSet<u64>,
    retired_fc: BTreeSet<u64>,
}

/// The result of one [`WeightMapping::remap_params`] call.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RemapOutcome {
    /// `(quarantined ring, spare ring)` pairs whose parameter slots were
    /// relocated, in ascending quarantined-ring order.
    pub remapped: Vec<(u64, u64)>,
    /// Quarantined rings that carry parameters but could not be relocated
    /// because the spare pool ran dry — the caller's cue to fail the shard
    /// over to a healthy accelerator.
    pub unplaced: Vec<u64>,
    /// Rings newly retired from service by this call (parameter-carrying or
    /// not), ascending.
    pub retired: Vec<u64>,
}

impl RemapOutcome {
    /// Whether every parameter-carrying quarantined ring found a spare.
    #[must_use]
    pub fn fully_placed(&self) -> bool {
        self.unplaced.is_empty()
    }
}

impl WeightMapping {
    /// Maps `layers` (in order) onto the blocks of `config`.
    ///
    /// # Errors
    ///
    /// Returns [`OnnError::MappingMismatch`] for an empty layer list or a
    /// zero-weight layer.
    pub fn new(config: &AcceleratorConfig, layers: &[LayerSpec]) -> Result<Self, OnnError> {
        if layers.is_empty() {
            return Err(OnnError::MappingMismatch {
                context: "no layers to map".into(),
            });
        }
        let mut used_conv = 0u64;
        let mut used_fc = 0u64;
        let mut mapped = Vec::with_capacity(layers.len());
        for spec in layers {
            if spec.weights == 0 {
                return Err(OnnError::MappingMismatch {
                    context: format!("layer `{}` has zero weights", spec.name),
                });
            }
            let cursor = match spec.kind {
                BlockKind::Conv => &mut used_conv,
                BlockKind::Fc => &mut used_fc,
            };
            mapped.push(MappedLayer {
                spec: spec.clone(),
                start_slot: *cursor,
            });
            *cursor += spec.weights as u64;
        }
        Ok(Self {
            conv_shape: config.conv,
            fc_shape: config.fc,
            layers: mapped,
            used_slots_conv: used_conv,
            used_slots_fc: used_fc,
            reloc_conv: BTreeMap::new(),
            reloc_fc: BTreeMap::new(),
            retired_conv: BTreeSet::new(),
            retired_fc: BTreeSet::new(),
        })
    }

    fn shape(&self, kind: BlockKind) -> &BlockConfig {
        match kind {
            BlockKind::Conv => &self.conv_shape,
            BlockKind::Fc => &self.fc_shape,
        }
    }

    fn reloc(&self, kind: BlockKind) -> &BTreeMap<u64, u64> {
        match kind {
            BlockKind::Conv => &self.reloc_conv,
            BlockKind::Fc => &self.reloc_fc,
        }
    }

    fn reloc_mut(&mut self, kind: BlockKind) -> &mut BTreeMap<u64, u64> {
        match kind {
            BlockKind::Conv => &mut self.reloc_conv,
            BlockKind::Fc => &mut self.reloc_fc,
        }
    }

    fn retired(&self, kind: BlockKind) -> &BTreeSet<u64> {
        match kind {
            BlockKind::Conv => &self.retired_conv,
            BlockKind::Fc => &self.retired_fc,
        }
    }

    /// Whether any ring of `kind`'s block has been relocated — lets hot
    /// paths skip the per-ring indirection lookup on pristine mappings.
    #[must_use]
    pub fn has_remaps(&self, kind: BlockKind) -> bool {
        !self.reloc(kind).is_empty()
    }

    /// Whether physical ring `ring` was retired from service by
    /// [`WeightMapping::remap_params`].
    #[must_use]
    pub fn is_retired(&self, kind: BlockKind, ring: u64) -> bool {
        self.retired(kind).contains(&ring)
    }

    /// The physical ring realizing logical ring `ring` of `kind`'s block
    /// (identity until [`WeightMapping::remap_params`] relocates it).
    ///
    /// The relocation table is a symmetric involution (relocations swap a
    /// parameter ring with a spare), so the same lookup also answers the
    /// inverse question — which logical ring physical ring `ring` carries.
    #[must_use]
    pub fn physical_ring(&self, kind: BlockKind, ring: u64) -> u64 {
        self.reloc(kind).get(&ring).copied().unwrap_or(ring)
    }

    /// The logical ring whose parameter slots physical ring `ring`
    /// currently carries (the inverse of [`WeightMapping::physical_ring`];
    /// identical lookup because relocations are pairwise swaps).
    fn logical_ring(&self, kind: BlockKind, ring: u64) -> u64 {
        self.physical_ring(kind, ring)
    }

    /// The physical rings of `kind`'s block currently carrying no parameter
    /// in any reuse round and not retired — the spare capacity
    /// [`WeightMapping::remap_params`] can relocate onto. Empty whenever the
    /// block wraps into more than one reuse round (every ring then carries
    /// a round-0 parameter).
    #[must_use]
    pub fn idle_slots(&self, kind: BlockKind) -> Vec<u64> {
        let cap = self.shape(kind).total_mrs();
        let used = self.used_slots(kind);
        if used >= cap {
            return Vec::new();
        }
        (used..cap)
            .map(|l| self.physical_ring(kind, l))
            .filter(|p| !self.retired(kind).contains(p))
            .collect()
    }

    /// Retires the `quarantined` physical rings of `kind`'s block and
    /// relocates every parameter slot they carry onto the block's spare
    /// (idle, un-retired) rings, allocating spares from the top of the idle
    /// region downward — away from the low-index idle rings where sentinel
    /// plans place their probe weights.
    ///
    /// Quarantined rings that carry no parameters are simply retired.
    /// Parameter-carrying rings the spare pool cannot absorb are reported
    /// in [`RemapOutcome::unplaced`] with their placement left unchanged,
    /// so the caller can fall back to failing the whole accelerator over.
    /// Re-quarantining a spare that absorbed an earlier relocation chains
    /// correctly: the displaced parameters move again to a fresh spare.
    ///
    /// After a remap, [`WeightMapping::locate`] reports physical homes
    /// through the relocation, and [`WeightMapping::params_on_mr`] /
    /// [`WeightMapping::param_at_slot`] answer for physical rings — the
    /// executor and telemetry probe re-derive correctly from the same
    /// mapping object.
    ///
    /// # Errors
    ///
    /// Returns [`OnnError::MrOutOfRange`] when a quarantined index exceeds
    /// the block's capacity; the mapping is untouched in that case.
    pub fn remap_params(
        &mut self,
        kind: BlockKind,
        quarantined: &[u64],
    ) -> Result<RemapOutcome, OnnError> {
        let cap = self.shape(kind).total_mrs();
        for &q in quarantined {
            if q >= cap {
                return Err(OnnError::MrOutOfRange {
                    index: q,
                    capacity: cap,
                });
            }
        }
        let used = self.used_slots(kind);
        let qset: BTreeSet<u64> = quarantined.iter().copied().collect();
        // Spares available to this call: idle, never retired, and not
        // themselves in the incoming quarantine set.
        let mut spares: Vec<u64> = self
            .idle_slots(kind)
            .into_iter()
            .filter(|s| !qset.contains(s))
            .collect();
        let mut out = RemapOutcome::default();
        for &q in &qset {
            let newly_retired = match kind {
                BlockKind::Conv => self.retired_conv.insert(q),
                BlockKind::Fc => self.retired_fc.insert(q),
            };
            if newly_retired {
                out.retired.push(q);
            }
            let l = self.logical_ring(kind, q);
            if l >= used {
                continue; // the ring carries nothing — retiring suffices
            }
            let Some(s) = spares.pop() else {
                out.unplaced.push(q);
                continue;
            };
            // Undo any existing pairing involving q before re-pairing l
            // with the fresh spare (q keeps identity and, being retired
            // with an idle logical range, carries nothing afterwards).
            if let Some(partner) = self.reloc_mut(kind).remove(&q) {
                self.reloc_mut(kind).remove(&partner);
            }
            self.reloc_mut(kind).insert(l, s);
            self.reloc_mut(kind).insert(s, l);
            out.remapped.push((q, s));
        }
        Ok(out)
    }

    /// Number of layers mapped.
    #[must_use]
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// The layer specs, in mapping order.
    #[must_use]
    pub fn layer_specs(&self) -> Vec<&LayerSpec> {
        self.layers.iter().map(|l| &l.spec).collect()
    }

    /// Total parameter slots consumed in `kind`'s block.
    #[must_use]
    pub fn used_slots(&self, kind: BlockKind) -> u64 {
        match kind {
            BlockKind::Conv => self.used_slots_conv,
            BlockKind::Fc => self.used_slots_fc,
        }
    }

    /// Number of reuse rounds `kind`'s block needs for this network
    /// (`⌈used / capacity⌉`, minimum 1 when the block is used at all).
    #[must_use]
    pub fn rounds(&self, kind: BlockKind) -> u64 {
        let used = self.used_slots(kind);
        let cap = self.shape(kind).total_mrs();
        used.div_ceil(cap).max(u64::from(used > 0))
    }

    /// Fraction of `kind`'s rings that carry at least one parameter.
    #[must_use]
    pub fn utilization(&self, kind: BlockKind) -> f64 {
        let cap = self.shape(kind).total_mrs();
        let used = self.used_slots(kind).min(cap);
        used as f64 / cap as f64
    }

    /// Physical home of parameter `offset` within mapped layer
    /// `layer_index`, after any relocations applied by
    /// [`WeightMapping::remap_params`].
    ///
    /// # Errors
    ///
    /// Returns [`OnnError::MappingMismatch`] for an unknown layer or an
    /// offset beyond the layer's weight count.
    pub fn locate(&self, layer_index: usize, offset: usize) -> Result<MappedParam, OnnError> {
        let layer = self
            .layers
            .get(layer_index)
            .ok_or_else(|| OnnError::MappingMismatch {
                context: format!("layer index {layer_index} out of range"),
            })?;
        if offset >= layer.spec.weights {
            return Err(OnnError::MappingMismatch {
                context: format!(
                    "offset {offset} beyond layer `{}` ({} weights)",
                    layer.spec.name, layer.spec.weights
                ),
            });
        }
        let slot = layer.start_slot + offset as u64;
        let shape = self.shape(layer.spec.kind);
        let cap = shape.total_mrs();
        let mr_index = self.physical_ring(layer.spec.kind, slot % cap);
        let round = slot / cap;
        let per_bank = shape.mrs_per_bank() as u64;
        let vdp = (mr_index / per_bank) as usize;
        let within = (mr_index % per_bank) as usize;
        Ok(MappedParam {
            block: layer.spec.kind,
            mr_index,
            round,
            vdp,
            row: within / shape.bank_cols,
            col: within % shape.bank_cols,
        })
    }

    /// All `(layer_index, offset)` parameter slots carried by *physical*
    /// MR `mr_index` of `kind`'s block — the set an attack on that ring
    /// corrupts. After [`WeightMapping::remap_params`], a retired ring
    /// answers with an empty set (its parameters moved to a spare) and the
    /// spare answers with the relocated parameters.
    ///
    /// # Errors
    ///
    /// Returns [`OnnError::MrOutOfRange`] when `mr_index` exceeds the
    /// block's capacity.
    pub fn params_on_mr(
        &self,
        kind: BlockKind,
        mr_index: u64,
    ) -> Result<Vec<(usize, usize)>, OnnError> {
        let cap = self.shape(kind).total_mrs();
        if mr_index >= cap {
            return Err(OnnError::MrOutOfRange {
                index: mr_index,
                capacity: cap,
            });
        }
        let mut hits = Vec::new();
        let used = self.used_slots(kind);
        let mut slot = self.logical_ring(kind, mr_index);
        while slot < used {
            // Find the layer owning this slot (layers are sorted by start).
            if let Some((li, layer)) = self
                .layers
                .iter()
                .enumerate()
                .filter(|(_, l)| l.spec.kind == kind)
                .take_while(|(_, l)| l.start_slot <= slot)
                .last()
            {
                let offset = (slot - layer.start_slot) as usize;
                if offset < layer.spec.weights {
                    hits.push((li, offset));
                }
            }
            slot += cap;
        }
        Ok(hits)
    }

    /// The `(layer_index, offset)` of the parameter occupying *physical*
    /// linear slot `slot` (round × capacity + physical ring) of `kind`'s
    /// block, or `None` when the slot carries nothing (idle round range, or
    /// a ring whose parameters were relocated away by
    /// [`WeightMapping::remap_params`]).
    #[must_use]
    pub fn param_at_slot(&self, kind: BlockKind, slot: u64) -> Option<(usize, usize)> {
        let cap = self.shape(kind).total_mrs();
        let slot = if self.has_remaps(kind) {
            (slot / cap) * cap + self.logical_ring(kind, slot % cap)
        } else {
            slot
        };
        if slot >= self.used_slots(kind) {
            return None;
        }
        let (li, layer) = self
            .layers
            .iter()
            .enumerate()
            .filter(|(_, l)| l.spec.kind == kind)
            .take_while(|(_, l)| l.start_slot <= slot)
            .last()?;
        let offset = (slot - layer.start_slot) as usize;
        (offset < layer.spec.weights).then_some((li, offset))
    }

    /// The flat MR index of bank position `(vdp, row, col)` in `kind`'s
    /// block.
    ///
    /// # Errors
    ///
    /// Returns [`OnnError::MrOutOfRange`] when the coordinates exceed the
    /// block shape.
    pub fn mr_index_of(
        &self,
        kind: BlockKind,
        vdp: usize,
        row: usize,
        col: usize,
    ) -> Result<u64, OnnError> {
        let shape = self.shape(kind);
        if vdp >= shape.vdp_units || row >= shape.bank_rows || col >= shape.bank_cols {
            return Err(OnnError::MrOutOfRange {
                index: u64::MAX,
                capacity: shape.total_mrs(),
            });
        }
        Ok((vdp * shape.mrs_per_bank() + row * shape.bank_cols + col) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> AcceleratorConfig {
        AcceleratorConfig::custom(
            BlockConfig {
                vdp_units: 2,
                bank_rows: 3,
                bank_cols: 4,
            }, // 24 MRs
            BlockConfig {
                vdp_units: 2,
                bank_rows: 5,
                bank_cols: 5,
            }, // 50 MRs
        )
        .unwrap()
    }

    fn layers() -> Vec<LayerSpec> {
        vec![
            LayerSpec::new("conv1", BlockKind::Conv, 10),
            LayerSpec::new("conv2", BlockKind::Conv, 40), // wraps: 50 > 24
            LayerSpec::new("fc1", BlockKind::Fc, 30),
        ]
    }

    #[test]
    fn locate_round_trips_with_params_on_mr() {
        let mapping = WeightMapping::new(&small_config(), &layers()).unwrap();
        for li in 0..3 {
            let weights = mapping.layer_specs()[li].weights;
            for off in 0..weights {
                let home = mapping.locate(li, off).unwrap();
                let back = mapping.params_on_mr(home.block, home.mr_index).unwrap();
                assert!(
                    back.contains(&(li, off)),
                    "param ({li}, {off}) missing from MR {}",
                    home.mr_index
                );
            }
        }
    }

    #[test]
    fn rounds_reflect_wraparound() {
        let mapping = WeightMapping::new(&small_config(), &layers()).unwrap();
        // CONV: 50 weights on 24 rings ⇒ 3 rounds; FC: 30 on 50 ⇒ 1.
        assert_eq!(mapping.rounds(BlockKind::Conv), 3);
        assert_eq!(mapping.rounds(BlockKind::Fc), 1);
    }

    #[test]
    fn utilization_is_capped_at_one() {
        let mapping = WeightMapping::new(&small_config(), &layers()).unwrap();
        assert!((mapping.utilization(BlockKind::Conv) - 1.0).abs() < 1e-12);
        assert!((mapping.utilization(BlockKind::Fc) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn coordinates_decompose_consistently() {
        let mapping = WeightMapping::new(&small_config(), &layers()).unwrap();
        let home = mapping.locate(1, 30).unwrap(); // slot 40 → wraps to 16
        assert_eq!(home.mr_index, 16);
        assert_eq!(home.round, 1);
        let recomposed = mapping
            .mr_index_of(home.block, home.vdp, home.row, home.col)
            .unwrap();
        assert_eq!(recomposed, home.mr_index);
    }

    #[test]
    fn params_on_shared_mr_span_multiple_layers() {
        let mapping = WeightMapping::new(&small_config(), &layers()).unwrap();
        // CONV slot space: conv1 occupies 0..10, conv2 10..50.
        // MR 2 carries slots {2, 26, 50} → conv1 offset 2, conv2 offset 16.
        let hits = mapping.params_on_mr(BlockKind::Conv, 2).unwrap();
        assert_eq!(hits, vec![(0, 2), (1, 16)]);
    }

    #[test]
    fn out_of_range_queries_error() {
        let mapping = WeightMapping::new(&small_config(), &layers()).unwrap();
        assert!(mapping.params_on_mr(BlockKind::Conv, 24).is_err());
        assert!(mapping.locate(0, 10).is_err());
        assert!(mapping.locate(9, 0).is_err());
        assert!(mapping.mr_index_of(BlockKind::Conv, 2, 0, 0).is_err());
    }

    #[test]
    fn empty_and_zero_weight_layers_are_rejected() {
        let cfg = small_config();
        assert!(WeightMapping::new(&cfg, &[]).is_err());
        assert!(WeightMapping::new(&cfg, &[LayerSpec::new("bad", BlockKind::Conv, 0)]).is_err());
    }

    /// 30 FC weights on a 50-ring block: rings 30..50 are spare.
    fn spare_mapping() -> WeightMapping {
        WeightMapping::new(&small_config(), &layers()).unwrap()
    }

    #[test]
    fn idle_slots_cover_the_unused_tail() {
        let mapping = spare_mapping();
        // CONV wraps (3 rounds) ⇒ no spare capacity at all.
        assert!(mapping.idle_slots(BlockKind::Conv).is_empty());
        assert_eq!(
            mapping.idle_slots(BlockKind::Fc),
            (30..50).collect::<Vec<u64>>()
        );
    }

    #[test]
    fn remap_moves_params_to_spares_and_updates_queries() {
        let mut mapping = spare_mapping();
        // FC ring 7 carries fc1 offset 7 (single round).
        let before = mapping.locate(2, 7).unwrap();
        assert_eq!(before.mr_index, 7);
        let outcome = mapping.remap_params(BlockKind::Fc, &[7]).unwrap();
        assert!(outcome.fully_placed());
        // Spares allocate from the top of the idle region downward.
        assert_eq!(outcome.remapped, vec![(7, 49)]);
        assert_eq!(outcome.retired, vec![7]);
        // locate reports the physical home…
        let after = mapping.locate(2, 7).unwrap();
        assert_eq!(after.mr_index, 49);
        assert_eq!(after.round, 0);
        // …and the physical-ring queries agree: the retired ring carries
        // nothing, the spare carries the relocated parameter.
        assert!(mapping.params_on_mr(BlockKind::Fc, 7).unwrap().is_empty());
        assert_eq!(
            mapping.params_on_mr(BlockKind::Fc, 49).unwrap(),
            vec![(2, 7)]
        );
        assert_eq!(mapping.param_at_slot(BlockKind::Fc, 49), Some((2, 7)));
        assert_eq!(mapping.param_at_slot(BlockKind::Fc, 7), None);
        // The consumed spare and the retired ring both left the idle pool.
        let idle = mapping.idle_slots(BlockKind::Fc);
        assert!(!idle.contains(&49));
        assert!(!idle.contains(&7));
        assert_eq!(idle.len(), 19);
    }

    #[test]
    fn locate_and_params_on_mr_round_trip_after_remap() {
        let mut mapping = spare_mapping();
        mapping.remap_params(BlockKind::Fc, &[0, 3, 11]).unwrap();
        for off in 0..30 {
            let home = mapping.locate(2, off).unwrap();
            let back = mapping.params_on_mr(BlockKind::Fc, home.mr_index).unwrap();
            assert!(back.contains(&(2, off)), "offset {off} lost in remap");
            let recomposed = mapping
                .mr_index_of(home.block, home.vdp, home.row, home.col)
                .unwrap();
            assert_eq!(recomposed, home.mr_index);
        }
    }

    #[test]
    fn remap_exhaustion_reports_unplaced() {
        let mut mapping = spare_mapping();
        // 20 spares, quarantine 25 parameter-carrying rings.
        let quarantined: Vec<u64> = (0..25).collect();
        let outcome = mapping.remap_params(BlockKind::Fc, &quarantined).unwrap();
        assert_eq!(outcome.remapped.len(), 20);
        assert_eq!(outcome.unplaced.len(), 5);
        assert!(!outcome.fully_placed());
        assert!(mapping.idle_slots(BlockKind::Fc).is_empty());
        // An unplaced ring still carries its parameter — it was not lost.
        let q = outcome.unplaced[0];
        assert!(!mapping.params_on_mr(BlockKind::Fc, q).unwrap().is_empty());
    }

    #[test]
    fn multi_round_blocks_have_no_spares_to_remap_onto() {
        let mut mapping = spare_mapping();
        let outcome = mapping.remap_params(BlockKind::Conv, &[2]).unwrap();
        assert_eq!(outcome.unplaced, vec![2]);
        assert!(outcome.remapped.is_empty());
    }

    #[test]
    fn requarantining_a_spare_chains_the_relocation() {
        let mut mapping = spare_mapping();
        let first = mapping.remap_params(BlockKind::Fc, &[5]).unwrap();
        assert_eq!(first.remapped, vec![(5, 49)]);
        // The spare that absorbed ring 5's parameter fails next.
        let second = mapping.remap_params(BlockKind::Fc, &[49]).unwrap();
        assert_eq!(second.remapped, vec![(49, 48)]);
        let home = mapping.locate(2, 5).unwrap();
        assert_eq!(home.mr_index, 48);
        assert!(mapping.params_on_mr(BlockKind::Fc, 49).unwrap().is_empty());
        assert!(mapping.params_on_mr(BlockKind::Fc, 5).unwrap().is_empty());
        // Retired rings never return to the pool.
        let idle = mapping.idle_slots(BlockKind::Fc);
        assert!(!idle.contains(&49) && !idle.contains(&5) && !idle.contains(&48));
    }

    #[test]
    fn quarantining_an_idle_ring_just_retires_it() {
        let mut mapping = spare_mapping();
        let outcome = mapping.remap_params(BlockKind::Fc, &[40]).unwrap();
        assert!(outcome.remapped.is_empty());
        assert!(outcome.unplaced.is_empty());
        assert_eq!(outcome.retired, vec![40]);
        assert!(!mapping.idle_slots(BlockKind::Fc).contains(&40));
    }

    #[test]
    fn out_of_range_quarantine_is_rejected_atomically() {
        let mut mapping = spare_mapping();
        let before = mapping.clone();
        assert!(mapping.remap_params(BlockKind::Fc, &[1, 50]).is_err());
        assert_eq!(mapping, before);
    }
}

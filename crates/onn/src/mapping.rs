//! Weight-stationary mapping of model parameters onto microrings.
//!
//! All layers are mapped "using a weight-stationary approach" (paper §IV):
//! convolution-layer parameters fill the CONV block's MRs in order, FC-layer
//! parameters fill the FC block, and when a block runs out of rings the
//! mapping wraps around into another *reuse round*. A single microring at
//! flat index `m` in a block of capacity `C` therefore carries parameter
//! slots `{m, m + C, m + 2C, …}` — which is why one compromised ring
//! corrupts `⌈used/C⌉` parameters of a large model but at most one
//! parameter of a model that fits in a single round.

use crate::config::{AcceleratorConfig, BlockConfig, BlockKind};
use crate::OnnError;

/// One mapped layer: which block it lives in and how many weight scalars it
/// contributes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LayerSpec {
    /// Human-readable layer name (diagnostics only).
    pub name: String,
    /// Block the layer executes on (conv layers → CONV, dense → FC).
    pub kind: BlockKind,
    /// Number of weight scalars (biases stay electronic and are not
    /// mapped).
    pub weights: usize,
}

impl LayerSpec {
    /// Creates a layer spec.
    #[must_use]
    pub fn new(name: impl Into<String>, kind: BlockKind, weights: usize) -> Self {
        Self {
            name: name.into(),
            kind,
            weights,
        }
    }
}

/// Where one parameter lives on the photonic substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MappedParam {
    /// Block holding the parameter.
    pub block: BlockKind,
    /// Flat MR index within the block.
    pub mr_index: u64,
    /// Reuse round (0 = first pass over the block's rings).
    pub round: u64,
    /// VDP unit of the MR.
    pub vdp: usize,
    /// Bank row of the MR.
    pub row: usize,
    /// Bank column of the MR — also its WDM channel.
    pub col: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
struct MappedLayer {
    spec: LayerSpec,
    /// First slot (linear position in the block's slot space) of the layer.
    start_slot: u64,
}

/// The weight-stationary mapping of a whole network.
///
/// # Example
///
/// ```
/// use safelight_onn::{AcceleratorConfig, BlockKind, LayerSpec, WeightMapping};
///
/// # fn main() -> Result<(), safelight_onn::OnnError> {
/// let config = AcceleratorConfig::scaled_experiment()?;
/// let mapping = WeightMapping::new(&config, &[
///     LayerSpec::new("conv1", BlockKind::Conv, 5_000),
/// ])?;
/// let home = mapping.locate(0, 4_999)?;
/// assert_eq!(home.block, BlockKind::Conv);
/// // 5 000 weights on 2 500 CONV rings ⇒ two reuse rounds.
/// assert_eq!(mapping.rounds(BlockKind::Conv), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WeightMapping {
    conv_shape: BlockConfig,
    fc_shape: BlockConfig,
    layers: Vec<MappedLayer>,
    used_slots_conv: u64,
    used_slots_fc: u64,
}

impl WeightMapping {
    /// Maps `layers` (in order) onto the blocks of `config`.
    ///
    /// # Errors
    ///
    /// Returns [`OnnError::MappingMismatch`] for an empty layer list or a
    /// zero-weight layer.
    pub fn new(config: &AcceleratorConfig, layers: &[LayerSpec]) -> Result<Self, OnnError> {
        if layers.is_empty() {
            return Err(OnnError::MappingMismatch {
                context: "no layers to map".into(),
            });
        }
        let mut used_conv = 0u64;
        let mut used_fc = 0u64;
        let mut mapped = Vec::with_capacity(layers.len());
        for spec in layers {
            if spec.weights == 0 {
                return Err(OnnError::MappingMismatch {
                    context: format!("layer `{}` has zero weights", spec.name),
                });
            }
            let cursor = match spec.kind {
                BlockKind::Conv => &mut used_conv,
                BlockKind::Fc => &mut used_fc,
            };
            mapped.push(MappedLayer {
                spec: spec.clone(),
                start_slot: *cursor,
            });
            *cursor += spec.weights as u64;
        }
        Ok(Self {
            conv_shape: config.conv,
            fc_shape: config.fc,
            layers: mapped,
            used_slots_conv: used_conv,
            used_slots_fc: used_fc,
        })
    }

    fn shape(&self, kind: BlockKind) -> &BlockConfig {
        match kind {
            BlockKind::Conv => &self.conv_shape,
            BlockKind::Fc => &self.fc_shape,
        }
    }

    /// Number of layers mapped.
    #[must_use]
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// The layer specs, in mapping order.
    #[must_use]
    pub fn layer_specs(&self) -> Vec<&LayerSpec> {
        self.layers.iter().map(|l| &l.spec).collect()
    }

    /// Total parameter slots consumed in `kind`'s block.
    #[must_use]
    pub fn used_slots(&self, kind: BlockKind) -> u64 {
        match kind {
            BlockKind::Conv => self.used_slots_conv,
            BlockKind::Fc => self.used_slots_fc,
        }
    }

    /// Number of reuse rounds `kind`'s block needs for this network
    /// (`⌈used / capacity⌉`, minimum 1 when the block is used at all).
    #[must_use]
    pub fn rounds(&self, kind: BlockKind) -> u64 {
        let used = self.used_slots(kind);
        let cap = self.shape(kind).total_mrs();
        used.div_ceil(cap).max(u64::from(used > 0))
    }

    /// Fraction of `kind`'s rings that carry at least one parameter.
    #[must_use]
    pub fn utilization(&self, kind: BlockKind) -> f64 {
        let cap = self.shape(kind).total_mrs();
        let used = self.used_slots(kind).min(cap);
        used as f64 / cap as f64
    }

    /// Physical home of parameter `offset` within mapped layer
    /// `layer_index`.
    ///
    /// # Errors
    ///
    /// Returns [`OnnError::MappingMismatch`] for an unknown layer or an
    /// offset beyond the layer's weight count.
    pub fn locate(&self, layer_index: usize, offset: usize) -> Result<MappedParam, OnnError> {
        let layer = self
            .layers
            .get(layer_index)
            .ok_or_else(|| OnnError::MappingMismatch {
                context: format!("layer index {layer_index} out of range"),
            })?;
        if offset >= layer.spec.weights {
            return Err(OnnError::MappingMismatch {
                context: format!(
                    "offset {offset} beyond layer `{}` ({} weights)",
                    layer.spec.name, layer.spec.weights
                ),
            });
        }
        let slot = layer.start_slot + offset as u64;
        let shape = self.shape(layer.spec.kind);
        let cap = shape.total_mrs();
        let mr_index = slot % cap;
        let round = slot / cap;
        let per_bank = shape.mrs_per_bank() as u64;
        let vdp = (mr_index / per_bank) as usize;
        let within = (mr_index % per_bank) as usize;
        Ok(MappedParam {
            block: layer.spec.kind,
            mr_index,
            round,
            vdp,
            row: within / shape.bank_cols,
            col: within % shape.bank_cols,
        })
    }

    /// All `(layer_index, offset)` parameter slots carried by MR
    /// `mr_index` of `kind`'s block — the set an attack on that ring
    /// corrupts.
    ///
    /// # Errors
    ///
    /// Returns [`OnnError::MrOutOfRange`] when `mr_index` exceeds the
    /// block's capacity.
    pub fn params_on_mr(
        &self,
        kind: BlockKind,
        mr_index: u64,
    ) -> Result<Vec<(usize, usize)>, OnnError> {
        let cap = self.shape(kind).total_mrs();
        if mr_index >= cap {
            return Err(OnnError::MrOutOfRange {
                index: mr_index,
                capacity: cap,
            });
        }
        let mut hits = Vec::new();
        let used = self.used_slots(kind);
        let mut slot = mr_index;
        while slot < used {
            // Find the layer owning this slot (layers are sorted by start).
            if let Some((li, layer)) = self
                .layers
                .iter()
                .enumerate()
                .filter(|(_, l)| l.spec.kind == kind)
                .take_while(|(_, l)| l.start_slot <= slot)
                .last()
            {
                let offset = (slot - layer.start_slot) as usize;
                if offset < layer.spec.weights {
                    hits.push((li, offset));
                }
            }
            slot += cap;
        }
        Ok(hits)
    }

    /// The `(layer_index, offset)` of the parameter occupying linear slot
    /// `slot` of `kind`'s block, or `None` when the slot is beyond the used
    /// range (the ring is calibrated to zero in that round).
    #[must_use]
    pub fn param_at_slot(&self, kind: BlockKind, slot: u64) -> Option<(usize, usize)> {
        if slot >= self.used_slots(kind) {
            return None;
        }
        let (li, layer) = self
            .layers
            .iter()
            .enumerate()
            .filter(|(_, l)| l.spec.kind == kind)
            .take_while(|(_, l)| l.start_slot <= slot)
            .last()?;
        let offset = (slot - layer.start_slot) as usize;
        (offset < layer.spec.weights).then_some((li, offset))
    }

    /// The flat MR index of bank position `(vdp, row, col)` in `kind`'s
    /// block.
    ///
    /// # Errors
    ///
    /// Returns [`OnnError::MrOutOfRange`] when the coordinates exceed the
    /// block shape.
    pub fn mr_index_of(
        &self,
        kind: BlockKind,
        vdp: usize,
        row: usize,
        col: usize,
    ) -> Result<u64, OnnError> {
        let shape = self.shape(kind);
        if vdp >= shape.vdp_units || row >= shape.bank_rows || col >= shape.bank_cols {
            return Err(OnnError::MrOutOfRange {
                index: u64::MAX,
                capacity: shape.total_mrs(),
            });
        }
        Ok((vdp * shape.mrs_per_bank() + row * shape.bank_cols + col) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> AcceleratorConfig {
        AcceleratorConfig::custom(
            BlockConfig {
                vdp_units: 2,
                bank_rows: 3,
                bank_cols: 4,
            }, // 24 MRs
            BlockConfig {
                vdp_units: 2,
                bank_rows: 5,
                bank_cols: 5,
            }, // 50 MRs
        )
        .unwrap()
    }

    fn layers() -> Vec<LayerSpec> {
        vec![
            LayerSpec::new("conv1", BlockKind::Conv, 10),
            LayerSpec::new("conv2", BlockKind::Conv, 40), // wraps: 50 > 24
            LayerSpec::new("fc1", BlockKind::Fc, 30),
        ]
    }

    #[test]
    fn locate_round_trips_with_params_on_mr() {
        let mapping = WeightMapping::new(&small_config(), &layers()).unwrap();
        for li in 0..3 {
            let weights = mapping.layer_specs()[li].weights;
            for off in 0..weights {
                let home = mapping.locate(li, off).unwrap();
                let back = mapping.params_on_mr(home.block, home.mr_index).unwrap();
                assert!(
                    back.contains(&(li, off)),
                    "param ({li}, {off}) missing from MR {}",
                    home.mr_index
                );
            }
        }
    }

    #[test]
    fn rounds_reflect_wraparound() {
        let mapping = WeightMapping::new(&small_config(), &layers()).unwrap();
        // CONV: 50 weights on 24 rings ⇒ 3 rounds; FC: 30 on 50 ⇒ 1.
        assert_eq!(mapping.rounds(BlockKind::Conv), 3);
        assert_eq!(mapping.rounds(BlockKind::Fc), 1);
    }

    #[test]
    fn utilization_is_capped_at_one() {
        let mapping = WeightMapping::new(&small_config(), &layers()).unwrap();
        assert!((mapping.utilization(BlockKind::Conv) - 1.0).abs() < 1e-12);
        assert!((mapping.utilization(BlockKind::Fc) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn coordinates_decompose_consistently() {
        let mapping = WeightMapping::new(&small_config(), &layers()).unwrap();
        let home = mapping.locate(1, 30).unwrap(); // slot 40 → wraps to 16
        assert_eq!(home.mr_index, 16);
        assert_eq!(home.round, 1);
        let recomposed = mapping
            .mr_index_of(home.block, home.vdp, home.row, home.col)
            .unwrap();
        assert_eq!(recomposed, home.mr_index);
    }

    #[test]
    fn params_on_shared_mr_span_multiple_layers() {
        let mapping = WeightMapping::new(&small_config(), &layers()).unwrap();
        // CONV slot space: conv1 occupies 0..10, conv2 10..50.
        // MR 2 carries slots {2, 26, 50} → conv1 offset 2, conv2 offset 16.
        let hits = mapping.params_on_mr(BlockKind::Conv, 2).unwrap();
        assert_eq!(hits, vec![(0, 2), (1, 16)]);
    }

    #[test]
    fn out_of_range_queries_error() {
        let mapping = WeightMapping::new(&small_config(), &layers()).unwrap();
        assert!(mapping.params_on_mr(BlockKind::Conv, 24).is_err());
        assert!(mapping.locate(0, 10).is_err());
        assert!(mapping.locate(9, 0).is_err());
        assert!(mapping.mr_index_of(BlockKind::Conv, 2, 0, 0).is_err());
    }

    #[test]
    fn empty_and_zero_weight_layers_are_rejected() {
        let cfg = small_config();
        assert!(WeightMapping::new(&cfg, &[]).is_err());
        assert!(WeightMapping::new(&cfg, &[LayerSpec::new("bad", BlockKind::Conv, 0)]).is_err());
    }
}

//! The slow, fully physical optical vector-dot-product datapath.
//!
//! [`OpticalVdp`] builds real [`Microring`] device objects for one bank row
//! (input-imprint array plus differential weight rails), runs light through
//! every transfer function including *all* crosstalk terms, detects with a
//! balanced photodetector and digitizes with the ADC. It exists to validate
//! the fast effective-weight path in `executor` and to benchmark the device
//! stack; figure-scale experiments use the fast path.

use safelight_photonics::{Adc, BalancedPhotodetector, Laser, Microring, MicroringState, WdmGrid};

use crate::condition::MrCondition;
use crate::config::AcceleratorConfig;
use crate::response::DropResponseModel;
use crate::OnnError;

/// A physically simulated vector-dot-product row.
///
/// # Example
///
/// ```
/// use safelight_onn::{AcceleratorConfig, MrCondition, OpticalVdp};
///
/// # fn main() -> Result<(), safelight_onn::OnnError> {
/// let config = AcceleratorConfig::paper()?;
/// let mut vdp = OpticalVdp::new(&config, 4)?;
/// let healthy = vec![MrCondition::Healthy; 4];
/// let dot = vdp.dot(&[0.5, 1.0, 0.25, 0.0], &[0.5, -0.5, 1.0, 0.75], &healthy)?;
/// let exact = 0.25 - 0.5 + 0.25 + 0.0;
/// assert!((dot - exact).abs() < 0.05, "dot {dot} vs {exact}");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct OpticalVdp {
    grid: WdmGrid,
    laser: Laser,
    pd: BalancedPhotodetector,
    adc: Adc,
    params: DropResponseModel,
    channels: usize,
    responsivity: f64,
}

impl OpticalVdp {
    /// Builds a VDP row with `channels` WDM channels from `config`.
    ///
    /// # Errors
    ///
    /// Propagates photonic device construction errors.
    pub fn new(config: &AcceleratorConfig, channels: usize) -> Result<Self, OnnError> {
        let grid = WdmGrid::new(config.grid_start_nm, config.channel_spacing_nm, channels)?;
        let laser = Laser::new(grid.clone(), config.laser_power_mw)?;
        let pd = BalancedPhotodetector::new(config.pd_responsivity)?;
        // The ADC digitizes the balanced photocurrent; full scale covers
        // ±(all channels at full power).
        let full_scale = config.pd_responsivity * config.laser_power_mw * channels as f64;
        let adc = Adc::new(config.adc_bits, -full_scale, full_scale)?;
        Ok(Self {
            grid,
            laser,
            pd,
            adc,
            params: DropResponseModel::from_config(config),
            channels,
            responsivity: config.pd_responsivity,
        })
    }

    /// The shared physics model this datapath was built from.
    #[must_use]
    pub fn model(&self) -> &DropResponseModel {
        &self.params
    }

    /// Number of WDM channels (row length).
    #[must_use]
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Through-port transmission that encodes magnitude `m` under the
    /// configured weight encoding.
    fn imprint_through_for(&self, m: f64) -> f64 {
        let p = &self.params;
        let m = p.quantize(m);
        match p.encoding {
            crate::WeightEncoding::ThroughPort => p.t_min + m * (p.t_max - p.t_min),
            // Drop-port: m = 1 means on-resonance (minimum through).
            crate::WeightEncoding::DropPort => {
                1.0 - (1.0 - p.t_min) * (p.drop_floor + m * (1.0 - p.drop_floor))
            }
        }
    }

    /// Builds one bank of rings imprinted with `magnitudes`, applying
    /// `conditions` (thermal shifts and parking).
    fn build_bank(
        &self,
        magnitudes: &[f64],
        conditions: &[MrCondition],
    ) -> Result<Vec<Microring>, OnnError> {
        let mut bank = Vec::with_capacity(self.channels);
        for (c, (&m, &cond)) in magnitudes.iter().zip(conditions).enumerate() {
            let mut ring = Microring::with_geometry(
                safelight_photonics::MicroringGeometry::default(),
                &self.grid,
                c,
            )?;
            let t = self.imprint_through_for(m);
            ring.imprint_transmission(t.clamp(ring.min_transmission(), ring.max_transmission()))?;
            apply_condition(&mut ring, cond, &self.params);
            bank.push(ring);
        }
        Ok(bank)
    }

    /// Input-imprint transmission for an activation `a ∈ [0, 1]` (the input
    /// array always modulates the through port).
    fn input_through_for(&self, a: f64) -> f64 {
        let p = &self.params;
        p.t_min + p.quantize(a) * (p.t_max - p.t_min)
    }

    /// Per-channel through transmission of a bank (all crosstalk terms).
    fn bank_transmissions(&self, bank: &[Microring]) -> Vec<f64> {
        (0..self.channels)
            .map(|c| {
                let lambda = self.grid.channel_wavelength(c).expect("channel in range");
                bank.iter()
                    .map(|r| r.through_transmission(lambda))
                    .product()
            })
            .collect()
    }

    /// Per-channel *collected drop* response of a bank: the power fraction
    /// of channel `c` routed onto the detector bus by all rings.
    fn bank_drop_collection(&self, bank: &[Microring]) -> Vec<f64> {
        (0..self.channels)
            .map(|c| {
                let lambda = self.grid.channel_wavelength(c).expect("channel in range");
                bank.iter().map(|r| r.drop_transmission(lambda)).sum()
            })
            .collect()
    }

    /// Computes `Σ inputs[c]·weights[c]` optically.
    ///
    /// `inputs` are activation magnitudes in `[0, 1]`; `weights` are signed
    /// values in `[−1, 1]` encoded on differential positive/negative rails;
    /// `conditions` are the fault states of the *weight* rings (the
    /// weight-stationary attack surface).
    ///
    /// # Errors
    ///
    /// Returns [`OnnError::MappingMismatch`] when slice lengths differ from
    /// the row width.
    pub fn dot(
        &mut self,
        inputs: &[f64],
        weights: &[f64],
        conditions: &[MrCondition],
    ) -> Result<f64, OnnError> {
        Ok(self.dot_with_tap(inputs, weights, conditions)?.0)
    }

    /// As [`OpticalVdp::dot`], but additionally reads the row's monitor
    /// photocurrents off the detector bus — the physical counterpart of the
    /// analytic [`TelemetryProbe`](crate::TelemetryProbe) drop-port taps.
    /// The returned [`RowTap`] carries the per-rail summed photocurrents
    /// the balanced detector subtracts, which a cheap monitor ADC can
    /// sample without touching the inference datapath.
    ///
    /// # Errors
    ///
    /// Returns [`OnnError::MappingMismatch`] when slice lengths differ from
    /// the row width.
    pub fn dot_with_tap(
        &mut self,
        inputs: &[f64],
        weights: &[f64],
        conditions: &[MrCondition],
    ) -> Result<(f64, RowTap), OnnError> {
        if inputs.len() != self.channels
            || weights.len() != self.channels
            || conditions.len() != self.channels
        {
            return Err(OnnError::MappingMismatch {
                context: format!(
                    "expected {} inputs/weights/conditions, got {}/{}/{}",
                    self.channels,
                    inputs.len(),
                    weights.len(),
                    conditions.len()
                ),
            });
        }
        // The input array imprints activations on the through port.
        let input_bank: Vec<Microring> = {
            let mut bank = Vec::with_capacity(self.channels);
            for (c, &a) in inputs.iter().enumerate() {
                let mut ring = Microring::with_geometry(
                    safelight_photonics::MicroringGeometry::default(),
                    &self.grid,
                    c,
                )?;
                let t = self.input_through_for(a);
                ring.imprint_transmission(
                    t.clamp(ring.min_transmission(), ring.max_transmission()),
                )?;
                bank.push(ring);
            }
            bank
        };
        let t_in = self.bank_transmissions(&input_bank);

        // Differential weight encoding: |w| on the rail matching sign(w),
        // zero on the other rail. A fault applies to the *active* rail —
        // the ring that actually carries the weight — matching the fast
        // effective-weight path (see executor module docs).
        let pos: Vec<f64> = weights.iter().map(|&w| w.max(0.0)).collect();
        let neg: Vec<f64> = weights.iter().map(|&w| (-w).max(0.0)).collect();
        let pos_conds: Vec<MrCondition> = weights
            .iter()
            .zip(conditions)
            .map(|(&w, &c)| if w >= 0.0 { c } else { MrCondition::Healthy })
            .collect();
        let neg_conds: Vec<MrCondition> = weights
            .iter()
            .zip(conditions)
            .map(|(&w, &c)| if w < 0.0 { c } else { MrCondition::Healthy })
            .collect();
        let pos_bank = self.build_bank(&pos, &pos_conds)?;
        let neg_bank = self.build_bank(&neg, &neg_conds)?;

        let p = &self.params;
        let p0 = self.laser.power_per_channel_mw();
        // Laser power-degradation faults throttle a channel's launch power
        // upstream of both rails; everything measured at λ_c scales.
        let launch: Vec<f64> = conditions
            .iter()
            .map(|&cond| match cond {
                MrCondition::Attenuated { factor, .. } => p0 * factor.clamp(0.0, 1.0),
                _ => p0,
            })
            .collect();
        let delta_in = p.t_max - p.t_min;
        let signed_weight_sum: f64 = weights
            .iter()
            .map(|&w| p.quantize(w.abs()) * w.signum())
            .sum();

        let (pos_powers, neg_powers): (Vec<f64>, Vec<f64>) = match p.encoding {
            crate::WeightEncoding::ThroughPort => {
                let t_pos = self.bank_transmissions(&pos_bank);
                let t_neg = self.bank_transmissions(&neg_bank);
                (
                    launch
                        .iter()
                        .zip(t_in.iter().zip(&t_pos))
                        .map(|(l, (a, b))| l * a * b)
                        .collect(),
                    launch
                        .iter()
                        .zip(t_in.iter().zip(&t_neg))
                        .map(|(l, (a, b))| l * a * b)
                        .collect(),
                )
            }
            crate::WeightEncoding::DropPort => {
                let d_pos = self.bank_drop_collection(&pos_bank);
                let d_neg = self.bank_drop_collection(&neg_bank);
                (
                    launch
                        .iter()
                        .zip(t_in.iter().zip(&d_pos))
                        .map(|(l, (a, b))| l * a * b)
                        .collect(),
                    launch
                        .iter()
                        .zip(t_in.iter().zip(&d_neg))
                        .map(|(l, (a, b))| l * a * b)
                        .collect(),
                )
            }
        };
        let current = self
            .pd
            .detect(pos_powers.iter().copied(), neg_powers.iter().copied());
        let (positive_ma, negative_ma) = self
            .pd
            .monitor(pos_powers.iter().copied(), neg_powers.iter().copied());
        let tap = RowTap {
            positive_ma,
            negative_ma,
        };
        let (_, digitized) = self.adc.convert(current);
        let raw = digitized / (self.responsivity * p0);

        // Affine decode per encoding; the controller knows the Σw it
        // programmed, so constant terms calibrate out.
        let dot = match p.encoding {
            crate::WeightEncoding::ThroughPort => {
                // Σ T_in·(T⁺ − T⁻) = t_min·Δ·Σw + Δ²·Σ a·w.
                (raw - p.t_min * delta_in * signed_weight_sum) / (delta_in * delta_in)
            }
            crate::WeightEncoding::DropPort => {
                // D = (1 − t_min)·(l + m·(1 − l)) on the active rail, so
                // Σ T_in·(D⁺ − D⁻) = K·(t_min·Σw + Δ·Σ a·w) with
                // K = (1 − t_min)(1 − l).
                let k = (1.0 - p.t_min) * (1.0 - p.drop_floor);
                (raw / k - p.t_min * signed_weight_sum) / delta_in
            }
        };
        Ok((dot, tap))
    }

    /// Reads the row's *effective* signed weights back through the full
    /// physical datapath: channel `c`'s effective weight is the dot product
    /// with the one-hot activation `e_c` (laser → imprint banks → balanced
    /// detection → ADC → affine decode), calibrated differentially against
    /// the same measurement on the healthy row — real accelerators store
    /// exactly that per-channel commissioning baseline, so static
    /// Lorentzian-tail biases cancel and only the fault-induced deviation
    /// survives.
    ///
    /// This is the physical counterpart of the analytic
    /// [`effective_weight_row`](crate::effective_weight_row) and the
    /// primitive behind [`PhysicalBackend`](crate::backend::PhysicalBackend):
    /// it picks up every device-level effect the closed form approximates —
    /// full Lorentzian crosstalk across the row, the balanced detector's
    /// unclamped rail swing and the ADC's finite resolution — so agreement
    /// is within tolerance, not bitwise.
    ///
    /// # Errors
    ///
    /// Returns [`OnnError::MappingMismatch`] when slice lengths differ from
    /// the row width.
    pub fn effective_weight_readback(
        &mut self,
        weights: &[f64],
        conditions: &[MrCondition],
    ) -> Result<Vec<f64>, OnnError> {
        (0..self.channels)
            .map(|c| self.effective_weight_at(c, weights, conditions))
            .collect()
    }

    /// One channel of [`OpticalVdp::effective_weight_readback`].
    ///
    /// # Errors
    ///
    /// Returns [`OnnError::MappingMismatch`] when slice lengths differ from
    /// the row width.
    pub fn effective_weight_at(
        &mut self,
        channel: usize,
        weights: &[f64],
        conditions: &[MrCondition],
    ) -> Result<f64, OnnError> {
        let mut one_hot = vec![0.0f64; self.channels];
        if channel >= self.channels {
            return Err(OnnError::MrOutOfRange {
                index: channel as u64,
                capacity: self.channels as u64,
            });
        }
        one_hot[channel] = 1.0;
        let healthy = vec![MrCondition::Healthy; self.channels];
        let faulty = self.dot(&one_hot, weights, conditions)?;
        let baseline = self.dot(&one_hot, weights, &healthy)?;
        let expected = {
            let w = weights[channel];
            w.signum() * self.params.quantize(w.abs())
        };
        Ok((expected + faulty - baseline).clamp(-1.0, 1.0))
    }

    /// The normalized drop-port response of one physically simulated ring
    /// at its own carrier, imprinted with magnitude `m` under `condition` —
    /// what the bank's monitor photodetector integrates per slot. The
    /// launch-power scaling of an upstream tap is applied, matching the
    /// per-channel scaling of [`OpticalVdp::dot`].
    ///
    /// # Errors
    ///
    /// Propagates photonic device construction errors.
    pub fn slot_monitor_response(&self, m: f64, condition: MrCondition) -> Result<f64, OnnError> {
        let mut ring = Microring::with_geometry(
            safelight_photonics::MicroringGeometry::default(),
            &self.grid,
            0,
        )?;
        let t = self.imprint_through_for(m);
        ring.imprint_transmission(t.clamp(ring.min_transmission(), ring.max_transmission()))?;
        apply_condition(&mut ring, condition, &self.params);
        let lambda = self.grid.channel_wavelength(0).expect("channel 0 exists");
        // drop = (1 − t_min)·L(δ); normalize to the on-resonance peak the
        // analytic model reports, and scale by the surviving launch power.
        let normalized = ring.drop_transmission(lambda) / (1.0 - self.params.t_min);
        Ok(crate::response::channel_power_factor(condition) * normalized)
    }
}

/// Applies an [`MrCondition`] to a physically simulated ring — the single
/// condition→device-state mapping, shared by the dot-product bank builder
/// and the per-slot monitor response so the two can never drift apart:
///
/// * `Parked` — the actuation trojan holds the ring at the modulator's
///   maximum detuning;
/// * `Heated` — the thermo-optic shift of the recorded ΔT;
/// * `Detuned` — a pinned resonance offset, applied as the equivalent
///   thermo-optic shift, plus any spill-over heat;
/// * `Attenuated` — the fault lives *upstream* of the ring (the channel's
///   launch power is scaled by the caller via
///   [`channel_power_factor`](crate::channel_power_factor)); only
///   spill-over heat (intact thermal response) shifts the resonance.
fn apply_condition(ring: &mut Microring, condition: MrCondition, params: &DropResponseModel) {
    match condition {
        MrCondition::Healthy => {}
        MrCondition::Parked => ring.set_state(MicroringState::ParkedOffResonance),
        MrCondition::Heated { delta_kelvin } => ring.set_temperature_delta(delta_kelvin),
        MrCondition::Detuned {
            offset_nm,
            delta_kelvin,
        } => ring.set_temperature_delta(offset_nm / params.shift_per_kelvin_nm + delta_kelvin),
        MrCondition::Attenuated { delta_kelvin, .. } => {
            if delta_kelvin > 0.0 {
                ring.set_temperature_delta(delta_kelvin);
            }
        }
    }
}

/// The monitor photocurrents of one VDP row, in milliamps: what the
/// runtime-detection telemetry layer samples from the detector bus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RowTap {
    /// Summed photocurrent of the positive rail's detector.
    pub positive_ma: f64,
    /// Summed photocurrent of the negative rail's detector.
    pub negative_ma: f64,
}

impl RowTap {
    /// Total monitored photocurrent across both rails.
    #[must_use]
    pub fn total_ma(&self) -> f64 {
        self.positive_ma + self.negative_ma
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vdp(channels: usize) -> OpticalVdp {
        OpticalVdp::new(&AcceleratorConfig::paper().unwrap(), channels).unwrap()
    }

    #[test]
    fn healthy_dot_matches_arithmetic() {
        let mut v = vdp(6);
        let inputs = [1.0, 0.8, 0.6, 0.4, 0.2, 0.0];
        let weights = [0.9, -0.7, 0.5, -0.3, 0.1, 1.0];
        let healthy = vec![MrCondition::Healthy; 6];
        let dot = v.dot(&inputs, &weights, &healthy).unwrap();
        let exact: f64 = inputs.iter().zip(&weights).map(|(a, w)| a * w).sum();
        assert!((dot - exact).abs() < 0.08, "dot {dot} vs exact {exact}");
    }

    #[test]
    fn zero_weights_give_zero_dot() {
        let mut v = vdp(4);
        let dot = v
            .dot(&[1.0; 4], &[0.0; 4], &[MrCondition::Healthy; 4])
            .unwrap();
        assert!(dot.abs() < 0.05, "dot {dot}");
    }

    #[test]
    fn parked_weight_ring_drops_its_term() {
        // Default (drop-port) encoding: a parked ring's term vanishes.
        let mut v = vdp(4);
        let inputs = [1.0, 1.0, 1.0, 1.0];
        let weights = [0.5, 0.5, 0.5, 0.5];
        let healthy = vec![MrCondition::Healthy; 4];
        let clean = v.dot(&inputs, &weights, &healthy).unwrap();
        let mut attacked = healthy.clone();
        attacked[1] = MrCondition::Parked;
        let corrupted = v.dot(&inputs, &weights, &attacked).unwrap();
        // Term 1 falls from 0.5 toward 0: the dot must drop by ~0.5.
        assert!(
            clean - corrupted > 0.3,
            "parked ring moved dot only {clean} → {corrupted}"
        );
    }

    #[test]
    fn parked_weight_ring_inflates_under_through_port() {
        let mut config = AcceleratorConfig::paper().unwrap();
        config.encoding = crate::WeightEncoding::ThroughPort;
        let mut v = OpticalVdp::new(&config, 4).unwrap();
        let inputs = [1.0, 1.0, 1.0, 1.0];
        let weights = [0.2, 0.2, 0.2, 0.2];
        let healthy = vec![MrCondition::Healthy; 4];
        let clean = v.dot(&inputs, &weights, &healthy).unwrap();
        let mut attacked = healthy.clone();
        attacked[1] = MrCondition::Parked;
        let corrupted = v.dot(&inputs, &weights, &attacked).unwrap();
        // Term 1 jumps from 0.2 toward 1.0: the dot must rise by ~0.8.
        assert!(
            corrupted - clean > 0.5,
            "parked ring moved dot only {clean} → {corrupted}"
        );
    }

    #[test]
    fn heated_row_corrupts_multiple_terms() {
        let mut v = vdp(5);
        let config = AcceleratorConfig::paper().unwrap();
        let dt = config.one_channel_delta_kelvin();
        let inputs = [1.0; 5];
        let weights = [0.5, -0.5, 0.5, -0.5, 0.5];
        let healthy = vec![MrCondition::Healthy; 5];
        let clean = v.dot(&inputs, &weights, &healthy).unwrap();
        let heated = vec![MrCondition::Heated { delta_kelvin: dt }; 5];
        let corrupted = v.dot(&inputs, &weights, &heated).unwrap();
        assert!(
            (corrupted - clean).abs() > 0.3,
            "hotspot barely moved dot: {clean} → {corrupted}"
        );
    }

    #[test]
    fn tap_reads_the_rails_and_matches_dot() {
        let mut v = vdp(4);
        let inputs = [1.0, 1.0, 1.0, 1.0];
        let weights = [0.5, -0.5, 0.5, 0.5];
        let healthy = vec![MrCondition::Healthy; 4];
        let (dot, tap) = v.dot_with_tap(&inputs, &weights, &healthy).unwrap();
        assert_eq!(dot, v.dot(&inputs, &weights, &healthy).unwrap());
        // Three positive-rail weights vs one negative: the positive monitor
        // collects more light.
        assert!(tap.positive_ma > tap.negative_ma);
        assert!(tap.total_ma() > 0.0);
        // Parking a positive-rail ring removes its drop-port contribution
        // from the monitored current — the detection signature.
        let mut attacked = healthy.clone();
        attacked[0] = MrCondition::Parked;
        let (_, tapped) = v.dot_with_tap(&inputs, &weights, &attacked).unwrap();
        assert!(
            tapped.positive_ma < tap.positive_ma - 1e-3,
            "monitor current did not drop: {} vs {}",
            tapped.positive_ma,
            tap.positive_ma
        );
    }

    #[test]
    fn physical_readback_matches_analytic_row_within_tolerance() {
        let mut v = vdp(5);
        let p = *v.model();
        let weights = [0.8, -0.4, 0.6, 0.0, -0.9];
        let conds = [
            MrCondition::Healthy,
            MrCondition::Parked,
            MrCondition::Heated { delta_kelvin: 4.0 },
            MrCondition::Attenuated {
                factor: 0.5,
                delta_kelvin: 0.0,
            },
            MrCondition::Healthy,
        ];
        let physical = v.effective_weight_readback(&weights, &conds).unwrap();
        let analytic = crate::executor::effective_weight_row(&weights, &conds, &p);
        for (c, (a, b)) in physical.iter().zip(&analytic).enumerate() {
            assert!(
                (a - b).abs() < 0.05,
                "channel {c}: physical {a} vs analytic {b}"
            );
        }
    }

    #[test]
    fn slot_monitor_response_matches_the_analytic_model() {
        let v = vdp(4);
        let p = *v.model();
        for (m, cond) in [
            (0.7, MrCondition::Healthy),
            (0.7, MrCondition::Parked),
            (0.3, MrCondition::Heated { delta_kelvin: 6.0 }),
            (
                0.5,
                MrCondition::Attenuated {
                    factor: 0.5,
                    delta_kelvin: 0.0,
                },
            ),
            (
                0.5,
                MrCondition::Detuned {
                    offset_nm: 0.1,
                    delta_kelvin: 0.0,
                },
            ),
        ] {
            let physical = v.slot_monitor_response(m, cond).unwrap();
            let analytic = crate::response::channel_power_factor(cond)
                * p.drop_response(p.offset_under(p.quantize(m), cond));
            assert!(
                (physical - analytic).abs() < 0.01,
                "m {m}, {cond:?}: physical {physical} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn wrong_length_is_rejected() {
        let mut v = vdp(4);
        assert!(v
            .dot(&[0.0; 3], &[0.0; 4], &[MrCondition::Healthy; 4])
            .is_err());
    }
}

//! The single drop-response/condition physics core shared by every
//! datapath implementation.
//!
//! [`DropResponseModel`] is the one place that knows how a microring's
//! Lorentzian response, the weight-encoding conventions, DAC quantization
//! and the fault conditions of [`MrCondition`] combine into the response a
//! detector (or monitor tap) reads. The fast analytic executor
//! (`crate::executor`), the slow physical datapath ([`crate::OpticalVdp`])
//! and the telemetry probe ([`crate::TelemetryProbe`]) all consume this
//! model — none carries its own copy of the physics. Backends
//! ([`crate::backend`]) differ in *how* they evaluate the model (closed
//! form, device-level simulation, or finite-resolution converters), never
//! in *what* the model says.

use crate::condition::MrCondition;
use crate::config::{AcceleratorConfig, WeightEncoding};

/// Precomputed device constants for drop-response evaluation.
///
/// Derived once per [`AcceleratorConfig`]; all lengths in nanometres.
///
/// # Example
///
/// ```
/// use safelight_onn::{AcceleratorConfig, DropResponseModel, MrCondition};
///
/// # fn main() -> Result<(), safelight_onn::OnnError> {
/// let model = DropResponseModel::from_config(&AcceleratorConfig::paper()?);
/// // A healthy ring's drop response decodes back to its imprint.
/// let m = 0.4;
/// let response = model.drop_response(model.offset_under(m, MrCondition::Healthy));
/// assert!((model.decode(response) - m).abs() < 1e-9);
/// // A parked ring sits at the drop floor — its weight reads as zero.
/// let parked = model.drop_response(model.offset_under(m, MrCondition::Parked));
/// assert!(model.decode(parked) < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DropResponseModel {
    /// Weight encoding convention.
    pub encoding: WeightEncoding,
    /// Extinction floor of the ring (through-port transmission at exact
    /// resonance).
    pub t_min: f64,
    /// Through-port transmission at the modulator's maximum detuning.
    pub t_max: f64,
    /// Lorentzian full width at half maximum.
    pub fwhm_nm: f64,
    /// WDM channel spacing.
    pub spacing_nm: f64,
    /// Maximum imprint detuning of the modulation circuit.
    pub max_detuning_nm: f64,
    /// Residual (normalized) drop-port response at maximum detuning — the
    /// drop-port encoding's zero level.
    pub drop_floor: f64,
    /// Thermo-optic shift per kelvin (eq. 2 slope).
    pub shift_per_kelvin_nm: f64,
    /// DAC quantization levels minus one (0 disables quantization).
    pub dac_steps: u32,
}

impl DropResponseModel {
    /// Derives the constants from an accelerator configuration.
    #[must_use]
    pub fn from_config(config: &AcceleratorConfig) -> Self {
        let g = &config.geometry;
        let lambda = config.grid_start_nm;
        let fwhm = lambda / g.q_factor;
        let max_detuning = g.max_imprint_detuning_rel * config.channel_spacing_nm;
        let t_min = g.extinction_floor;
        let x = 2.0 * max_detuning / fwhm;
        let lorentz_floor = 1.0 / (1.0 + x * x);
        Self {
            encoding: config.encoding,
            t_min,
            t_max: 1.0 - (1.0 - t_min) * lorentz_floor,
            fwhm_nm: fwhm,
            spacing_nm: config.channel_spacing_nm,
            max_detuning_nm: max_detuning,
            drop_floor: lorentz_floor,
            shift_per_kelvin_nm: g.silicon.resonance_shift_per_kelvin_nm(lambda),
            dac_steps: Self::steps_from_bits(config.dac_bits),
        }
    }

    /// As [`DropResponseModel::from_config`], but with the DAC resolution
    /// overridden to `dac_bits` — the hook the quantized backend uses to
    /// model coarser weight converters on otherwise identical hardware.
    #[must_use]
    pub fn with_dac_bits(config: &AcceleratorConfig, dac_bits: u8) -> Self {
        let mut model = Self::from_config(config);
        model.dac_steps = Self::steps_from_bits(dac_bits);
        model
    }

    /// Quantization step count of a converter with `bits` of resolution:
    /// `2^bits − 1` uniform levels, `0` (quantization disabled) for
    /// zero-bit converters, saturating at 31 bits so pathological depths
    /// cannot overflow the shift. Every bits→steps derivation in the
    /// workspace goes through here.
    #[must_use]
    pub fn steps_from_bits(bits: u8) -> u32 {
        if bits == 0 {
            0
        } else {
            (1u32 << u32::from(bits).min(31)) - 1
        }
    }

    /// Snaps `x ∈ [0, 1]` to `steps` uniform levels (clamp-only when
    /// `steps` is 0). The single snap-to-grid implementation behind DAC
    /// weight quantization and the quantized backend's readout model.
    #[must_use]
    pub fn snap_unit(x: f64, steps: u32) -> f64 {
        if steps == 0 {
            return x.clamp(0.0, 1.0);
        }
        let steps = f64::from(steps);
        (x.clamp(0.0, 1.0) * steps).round() / steps
    }

    /// Snaps a signed value in `[−1, 1]` to `steps` uniform magnitude
    /// levels per sign (clamp-only when `steps` is 0).
    #[must_use]
    pub fn snap_signed(x: f64, steps: u32) -> f64 {
        if steps == 0 {
            return x.clamp(-1.0, 1.0);
        }
        let steps = f64::from(steps);
        (x.clamp(-1.0, 1.0) * steps).round() / steps
    }

    /// Normalized Lorentzian `L(δ) = 1 / (1 + (2δ/FWHM)²)`.
    fn lorentzian(&self, delta_nm: f64) -> f64 {
        let x = 2.0 * delta_nm / self.fwhm_nm;
        1.0 / (1.0 + x * x)
    }

    /// Through-port transmission at detuning `delta_nm`.
    #[must_use]
    pub fn transmission(&self, delta_nm: f64) -> f64 {
        1.0 - (1.0 - self.t_min) * self.lorentzian(delta_nm)
    }

    /// Drop-port response (normalized to its on-resonance peak) at detuning
    /// `delta_nm`.
    #[must_use]
    pub fn drop_response(&self, delta_nm: f64) -> f64 {
        self.lorentzian(delta_nm)
    }

    /// Imprint detuning that encodes magnitude `m ∈ [0, 1]` under the
    /// configured encoding.
    #[must_use]
    pub fn detuning_for_magnitude(&self, m: f64) -> f64 {
        let m = m.clamp(0.0, 1.0);
        let target_lorentz = match self.encoding {
            // Through port: T = 1 − (1−t_min)·L rises with detuning; m maps
            // to T ∈ [t_min, t_max].
            WeightEncoding::ThroughPort => {
                let t = self.t_min + m * (self.t_max - self.t_min);
                (1.0 - t) / (1.0 - self.t_min)
            }
            // Drop port: D ∝ L falls with detuning; m maps to
            // L ∈ [drop_floor, 1].
            WeightEncoding::DropPort => self.drop_floor + m * (1.0 - self.drop_floor),
        };
        let ratio = 1.0 / target_lorentz.clamp(1e-12, 1.0) - 1.0;
        (0.5 * self.fwhm_nm * ratio.max(0.0).sqrt()).min(self.max_detuning_nm)
    }

    /// Decodes a rail's collected response back to a magnitude in `[0, 1]`.
    #[must_use]
    pub fn decode(&self, response: f64) -> f64 {
        match self.encoding {
            WeightEncoding::ThroughPort => (response - self.t_min) / (self.t_max - self.t_min),
            WeightEncoding::DropPort => (response - self.drop_floor) / (1.0 - self.drop_floor),
        }
        .clamp(0.0, 1.0)
    }

    /// DAC-quantizes a magnitude.
    #[must_use]
    pub fn quantize(&self, m: f64) -> f64 {
        Self::snap_unit(m, self.dac_steps)
    }

    /// Effective resonance offset (from the ring's own carrier) under a
    /// fault condition, given the imprinted magnitude. Every consumer of
    /// the model — the fast executor, the physical datapath's ring
    /// construction and the telemetry probe — answers "where is this ring's
    /// resonance under this fault?" through this one function.
    #[must_use]
    pub fn offset_under(&self, m: f64, condition: MrCondition) -> f64 {
        match condition {
            MrCondition::Healthy => self.detuning_for_magnitude(m),
            // A laser power-degradation fault lives upstream of the ring:
            // the resonance keeps its calibrated imprint (the channel power
            // scales via `channel_power_factor`) plus whatever spill-over
            // heat reaches the ring's intact thermal response.
            MrCondition::Attenuated { delta_kelvin, .. } => {
                self.detuning_for_magnitude(m) + self.shift_per_kelvin_nm * delta_kelvin
            }
            MrCondition::Parked => self.max_detuning_nm,
            MrCondition::Heated { delta_kelvin } => {
                self.detuning_for_magnitude(m) + self.shift_per_kelvin_nm * delta_kelvin
            }
            // The trim DAC is pinned, but the thermo-optic shift is
            // independent of it: recorded spill-over heat rides on top.
            MrCondition::Detuned {
                offset_nm,
                delta_kelvin,
            } => {
                self.detuning_for_magnitude(m) + offset_nm + self.shift_per_kelvin_nm * delta_kelvin
            }
        }
    }
}

/// Fraction of the nominal channel power reaching the ring's carrier under
/// a fault condition (1 except for laser power-degradation faults).
#[must_use]
pub fn channel_power_factor(condition: MrCondition) -> f64 {
    match condition {
        MrCondition::Attenuated { factor, .. } => factor.clamp(0.0, 1.0),
        _ => 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> DropResponseModel {
        DropResponseModel::from_config(&AcceleratorConfig::paper().unwrap())
    }

    #[test]
    fn healthy_imprint_round_trips_through_decode() {
        let p = model();
        for m in [0.0, 0.1, 0.5, 0.9, 1.0] {
            let response = p.drop_response(p.offset_under(m, MrCondition::Healthy));
            assert!((p.decode(response) - m).abs() < 1e-9, "m = {m}");
        }
    }

    #[test]
    fn parked_offset_is_max_detuning_regardless_of_imprint() {
        let p = model();
        assert_eq!(p.offset_under(0.0, MrCondition::Parked), p.max_detuning_nm);
        assert_eq!(p.offset_under(1.0, MrCondition::Parked), p.max_detuning_nm);
    }

    #[test]
    fn heat_adds_the_thermo_optic_shift() {
        let p = model();
        let base = p.offset_under(0.5, MrCondition::Healthy);
        let hot = p.offset_under(0.5, MrCondition::Heated { delta_kelvin: 10.0 });
        assert!((hot - base - 10.0 * p.shift_per_kelvin_nm).abs() < 1e-12);
    }

    #[test]
    fn power_factor_only_responds_to_attenuation() {
        assert_eq!(channel_power_factor(MrCondition::Healthy), 1.0);
        assert_eq!(channel_power_factor(MrCondition::Parked), 1.0);
        assert_eq!(
            channel_power_factor(MrCondition::Attenuated {
                factor: 0.25,
                delta_kelvin: 3.0
            }),
            0.25
        );
        // Out-of-range factors clamp.
        assert_eq!(
            channel_power_factor(MrCondition::Attenuated {
                factor: 7.0,
                delta_kelvin: 0.0
            }),
            1.0
        );
    }

    #[test]
    fn with_dac_bits_overrides_only_the_quantizer() {
        let config = AcceleratorConfig::paper().unwrap();
        let fine = DropResponseModel::from_config(&config);
        let coarse = DropResponseModel::with_dac_bits(&config, 2);
        assert_eq!(coarse.dac_steps, 3);
        assert_eq!(coarse.fwhm_nm, fine.fwhm_nm);
        assert_eq!(coarse.drop_floor, fine.drop_floor);
        let off = DropResponseModel::with_dac_bits(&config, 0);
        assert_eq!(off.dac_steps, 0);
        assert_eq!(off.quantize(0.123_456), 0.123_456);
    }
}

//! Runtime telemetry taps: the sensor layer of the trojan-detection
//! subsystem.
//!
//! A deployed accelerator already produces physical side-channels a cheap
//! on-chip monitor can watch:
//!
//! * **Drop-port monitor photodetectors** — one low-bandwidth tap per VDP
//!   bank integrating the drop-port power the bank's rings route onto the
//!   detector bus. Every fault vector perturbs this reading: a parked ring
//!   stops dropping its channel, a heated or trim-drifted ring detunes off
//!   resonance, and an upstream laser tap darkens the whole channel.
//! * **Thermal sensors** — one per bank (see
//!   [`Floorplan::sensor_sites`](safelight_thermal::Floorplan::sensor_sites)),
//!   reading the local temperature rise; the analytic fast path reports the
//!   mean recorded spill-over/attack heat across the bank's rings.
//! * **Laser-rail readback** — the mean per-channel launch-power fraction
//!   reaching each bank (a photocurrent tap on the distribution waveguide).
//! * **Heater/trim-DAC readback** — the mean absolute deviation of each
//!   bank's analog trim rails from their calibrated set points. Readback is
//!   taken from the analog rail, not the (spoofable) digital register.
//!
//! One [`TelemetryFrame`] summarizes these sensors per inference batch.
//! [`TelemetryProbe`] is the analytic fast path matching the effective
//! weight executor: it derives the noiseless per-bank sensor means once per
//! `(network, conditions)` pair and then stamps out cheap noisy frames, so
//! detection sweeps stay as fast as the attack sweeps they ride on. The
//! slow physical counterpart is
//! [`OpticalVdp::dot_with_tap`](crate::OpticalVdp::dot_with_tap), which
//! reads the same monitor photocurrents off the simulated detector bus.

use safelight_neuro::{Network, SimRng};

use crate::condition::{ConditionMap, MrCondition};
use crate::config::{AcceleratorConfig, BlockKind};
use crate::mapping::WeightMapping;
use crate::response::{channel_power_factor, DropResponseModel};
use crate::OnnError;

/// How one (magnitude, condition) slot turns into a monitor response: the
/// analytic closed form of the shared [`DropResponseModel`], or a custom
/// evaluator supplied by a backend (device-level simulation, quantized
/// readout).
pub(crate) type SlotResponseFn<'a> = &'a mut dyn FnMut(f64, MrCondition) -> Result<f64, OnnError>;

/// Configuration of the optional sensor taps: which read-noise levels the
/// monitor ADCs add, and how many sentinel rings are provisioned.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TapConfig {
    /// Read-noise σ of a bank's drop-port monitor, in normalized per-slot
    /// response units (the noiseless reading lives in `[0, 1]`).
    pub drop_noise: f64,
    /// Read-noise σ of a bank's thermal sensor, kelvin.
    pub temp_noise_kelvin: f64,
    /// Read-noise σ of a bank's laser-rail readback (power fraction).
    pub rail_noise: f64,
    /// Read-noise σ of a bank's trim-DAC readback, nanometres.
    pub trim_noise_nm: f64,
    /// Read-noise σ of a sentinel magnitude readback.
    pub sentinel_noise: f64,
}

impl Default for TapConfig {
    fn default() -> Self {
        Self {
            drop_noise: 2e-3,
            temp_noise_kelvin: 0.02,
            rail_noise: 1e-3,
            trim_noise_nm: 1e-3,
            sentinel_noise: 2e-3,
        }
    }
}

/// One addressable sensor channel of a telemetry frame: the four bank-level
/// taps plus the sentinel readbacks. The fault-injection and sensor-health
/// layers address individual readings through this enum (see
/// [`TelemetryFrame::channel`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SensorChannel {
    /// A bank's drop-port monitor photocurrent.
    DropCurrent,
    /// A bank's thermal sensor.
    DeltaKelvin,
    /// A bank's laser-rail readback.
    RailPower,
    /// A bank's trim-DAC readback.
    TrimOffsetNm,
    /// A sentinel magnitude readback (indexed in plan order, not by bank).
    Sentinel,
}

impl SensorChannel {
    /// Stable short token used in fault-spec strings and reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::DropCurrent => "drop",
            Self::DeltaKelvin => "temp",
            Self::RailPower => "rail",
            Self::TrimOffsetNm => "trim",
            Self::Sentinel => "sentinel",
        }
    }

    /// Parses the token [`SensorChannel::label`] emits.
    #[must_use]
    pub fn from_label(s: &str) -> Option<Self> {
        match s {
            "drop" => Some(Self::DropCurrent),
            "temp" => Some(Self::DeltaKelvin),
            "rail" => Some(Self::RailPower),
            "trim" => Some(Self::TrimOffsetNm),
            "sentinel" => Some(Self::Sentinel),
            _ => None,
        }
    }
}

impl std::fmt::Display for SensorChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One bank's sensor readings within a [`TelemetryFrame`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BankTelemetry {
    /// Mean per-slot drop-port monitor response of the bank, normalized to
    /// the on-resonance peak (`[0, 1]` plus read noise).
    pub drop_current: f64,
    /// Thermal-sensor reading: mean temperature rise across the bank's
    /// rings, kelvin.
    pub delta_kelvin: f64,
    /// Laser-rail readback: mean launch-power fraction across the bank's
    /// channels (1 when no tap throttles them).
    pub rail_power: f64,
    /// Trim-DAC readback: mean absolute deviation of the bank's trim rails
    /// from calibration, nanometres.
    pub trim_offset_nm: f64,
}

/// One serializable telemetry frame, emitted per inference batch.
///
/// # Example
///
/// ```
/// use safelight_onn::{BankTelemetry, TelemetryFrame};
///
/// let frame = TelemetryFrame {
///     batch: 3,
///     conv: vec![BankTelemetry {
///         drop_current: 0.41,
///         delta_kelvin: 0.1,
///         rail_power: 1.0,
///         trim_offset_nm: 0.0,
///     }],
///     fc: vec![],
///     conv_sentinels: vec![0.7],
///     fc_sentinels: vec![],
/// };
/// let back = TelemetryFrame::from_csv(&frame.to_csv()).unwrap();
/// assert_eq!(back, frame);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryFrame {
    /// Index of the inference batch this frame summarizes.
    pub batch: u64,
    /// Per-bank readings of the CONV block, in bank order.
    pub conv: Vec<BankTelemetry>,
    /// Per-bank readings of the FC block, in bank order.
    pub fc: Vec<BankTelemetry>,
    /// Sentinel magnitude readbacks of the CONV block, in plan order.
    pub conv_sentinels: Vec<f64>,
    /// Sentinel magnitude readbacks of the FC block, in plan order.
    pub fc_sentinels: Vec<f64>,
}

fn block_token(kind: BlockKind) -> &'static str {
    match kind {
        BlockKind::Conv => "conv",
        BlockKind::Fc => "fc",
    }
}

/// Canonical CSV form of one sensor reading. Finite values print through
/// `Display` (exact round-trip); non-finite values get the fixed tokens
/// `nan`, `inf` and `-inf`, which `f64::from_str` parses back bit-exactly
/// (every NaN canonicalizes to the quiet NaN) — so faulted frames survive
/// the byte-equality discipline instead of serializing as whatever
/// `Display` happens to print.
fn fmt_reading(x: f64) -> String {
    if x.is_nan() {
        "nan".into()
    } else if x == f64::INFINITY {
        "inf".into()
    } else if x == f64::NEG_INFINITY {
        "-inf".into()
    } else {
        format!("{x}")
    }
}

impl TelemetryFrame {
    /// The per-bank readings of `kind`'s block.
    #[must_use]
    pub fn banks(&self, kind: BlockKind) -> &[BankTelemetry] {
        match kind {
            BlockKind::Conv => &self.conv,
            BlockKind::Fc => &self.fc,
        }
    }

    /// The sentinel readbacks of `kind`'s block.
    #[must_use]
    pub fn sentinels(&self, kind: BlockKind) -> &[f64] {
        match kind {
            BlockKind::Conv => &self.conv_sentinels,
            BlockKind::Fc => &self.fc_sentinels,
        }
    }

    /// Reads one addressed sensor: bank `index`'s tap for the four bank
    /// channels, or sentinel `index`'s readback for
    /// [`SensorChannel::Sentinel`]. `None` when `index` is out of range.
    #[must_use]
    pub fn channel(&self, kind: BlockKind, index: usize, channel: SensorChannel) -> Option<f64> {
        match channel {
            SensorChannel::Sentinel => self.sentinels(kind).get(index).copied(),
            _ => self.banks(kind).get(index).map(|b| match channel {
                SensorChannel::DropCurrent => b.drop_current,
                SensorChannel::DeltaKelvin => b.delta_kelvin,
                SensorChannel::RailPower => b.rail_power,
                SensorChannel::TrimOffsetNm => b.trim_offset_nm,
                SensorChannel::Sentinel => unreachable!(),
            }),
        }
    }

    /// Overwrites one addressed sensor reading (the fault injectors' write
    /// path). Returns `false` when `index` is out of range.
    pub fn set_channel(
        &mut self,
        kind: BlockKind,
        index: usize,
        channel: SensorChannel,
        value: f64,
    ) -> bool {
        let sentinels = match kind {
            BlockKind::Conv => &mut self.conv_sentinels,
            BlockKind::Fc => &mut self.fc_sentinels,
        };
        if let SensorChannel::Sentinel = channel {
            return match sentinels.get_mut(index) {
                Some(s) => {
                    *s = value;
                    true
                }
                None => false,
            };
        }
        let banks = match kind {
            BlockKind::Conv => &mut self.conv,
            BlockKind::Fc => &mut self.fc,
        };
        match banks.get_mut(index) {
            Some(b) => {
                match channel {
                    SensorChannel::DropCurrent => b.drop_current = value,
                    SensorChannel::DeltaKelvin => b.delta_kelvin = value,
                    SensorChannel::RailPower => b.rail_power = value,
                    SensorChannel::TrimOffsetNm => b.trim_offset_nm = value,
                    SensorChannel::Sentinel => unreachable!(),
                }
                true
            }
            None => false,
        }
    }

    /// Serializes the frame as CSV: a `# batch` header, one `bank,…` row
    /// per bank and one `sentinel,…` row per sentinel. Finite `f64` values
    /// round-trip exactly through their `Display` form; non-finite readings
    /// (faulted sensors) serialize as the canonical tokens `nan`, `inf` and
    /// `-inf`.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = format!("# batch,{}\n", self.batch);
        out.push_str("record,block,index,drop_current,delta_kelvin,rail_power,trim_offset_nm\n");
        for kind in [BlockKind::Conv, BlockKind::Fc] {
            for (i, b) in self.banks(kind).iter().enumerate() {
                out.push_str(&format!(
                    "bank,{},{i},{},{},{},{}\n",
                    block_token(kind),
                    fmt_reading(b.drop_current),
                    fmt_reading(b.delta_kelvin),
                    fmt_reading(b.rail_power),
                    fmt_reading(b.trim_offset_nm)
                ));
            }
        }
        for kind in [BlockKind::Conv, BlockKind::Fc] {
            for (i, s) in self.sentinels(kind).iter().enumerate() {
                out.push_str(&format!(
                    "sentinel,{},{i},{},0,0,0\n",
                    block_token(kind),
                    fmt_reading(*s)
                ));
            }
        }
        out
    }

    /// Parses a frame serialized by [`TelemetryFrame::to_csv`].
    ///
    /// # Errors
    ///
    /// Returns [`OnnError::TelemetryParse`] for malformed headers, rows or
    /// fields.
    pub fn from_csv(text: &str) -> Result<Self, OnnError> {
        let bad = |context: String| OnnError::TelemetryParse { context };
        let mut lines = text.lines();
        let header = lines.next().ok_or_else(|| bad("empty input".into()))?;
        let batch = header
            .strip_prefix("# batch,")
            .ok_or_else(|| bad(format!("bad header `{header}`")))?
            .parse::<u64>()
            .map_err(|e| bad(format!("batch: {e}")))?;
        let columns = lines
            .next()
            .ok_or_else(|| bad("missing column header".into()))?;
        if !columns.starts_with("record,block,index,") {
            return Err(bad(format!("bad column header `{columns}`")));
        }
        let mut frame = Self {
            batch,
            conv: Vec::new(),
            fc: Vec::new(),
            conv_sentinels: Vec::new(),
            fc_sentinels: Vec::new(),
        };
        for line in lines.filter(|l| !l.is_empty()) {
            let fields: Vec<&str> = line.split(',').collect();
            let [record, block, _index, a, b, c, d] = fields.as_slice() else {
                return Err(bad(format!("bad row `{line}`")));
            };
            let kind = match *block {
                "conv" => BlockKind::Conv,
                "fc" => BlockKind::Fc,
                other => return Err(bad(format!("unknown block `{other}`"))),
            };
            let num = |s: &str| -> Result<f64, OnnError> {
                s.parse::<f64>().map_err(|e| OnnError::TelemetryParse {
                    context: format!("`{s}`: {e}"),
                })
            };
            match *record {
                "bank" => {
                    let entry = BankTelemetry {
                        drop_current: num(a)?,
                        delta_kelvin: num(b)?,
                        rail_power: num(c)?,
                        trim_offset_nm: num(d)?,
                    };
                    match kind {
                        BlockKind::Conv => frame.conv.push(entry),
                        BlockKind::Fc => frame.fc.push(entry),
                    }
                }
                "sentinel" => match kind {
                    BlockKind::Conv => frame.conv_sentinels.push(num(a)?),
                    BlockKind::Fc => frame.fc_sentinels.push(num(a)?),
                },
                other => return Err(bad(format!("unknown record `{other}`"))),
            }
        }
        Ok(frame)
    }
}

/// The sentinel-ring provisioning of one accelerator/model pair: known
/// probe weights imprinted on rings that carry no model parameter in the
/// mapping's final reuse round, so checking their readback costs no model
/// capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct SentinelPlan {
    conv: Vec<u64>,
    fc: Vec<u64>,
    magnitude: f64,
}

impl SentinelPlan {
    /// Picks up to `per_block` evenly spaced sentinel sites per block from
    /// the rings left idle by `mapping`'s final reuse round, probing each
    /// with the known magnitude `magnitude`.
    ///
    /// A fully utilized block (its last round fills every ring) gets no
    /// sentinels — the plan's coverage is honest about that limit; the
    /// drop-port and thermal taps still cover such blocks.
    #[must_use]
    pub fn new(
        mapping: &WeightMapping,
        config: &AcceleratorConfig,
        per_block: usize,
        magnitude: f64,
    ) -> Self {
        let sites_for = |kind: BlockKind| -> Vec<u64> {
            let cap = config.block(kind).total_mrs();
            let used = mapping.used_slots(kind);
            let idle_start = if used == 0 { 0 } else { used % cap };
            if used > 0 && idle_start == 0 {
                return Vec::new(); // block fully utilized in its last round
            }
            let idle = cap - idle_start;
            let count = (per_block as u64).min(idle);
            (0..count)
                .map(|i| idle_start + (i * idle) / count.max(1))
                .collect()
        };
        Self {
            conv: sites_for(BlockKind::Conv),
            fc: sites_for(BlockKind::Fc),
            magnitude: magnitude.clamp(0.0, 1.0),
        }
    }

    /// Builds a plan from explicit sentinel sites per block (sorted and
    /// deduplicated here), probing each with magnitude `magnitude`.
    ///
    /// This is the constructor the serving runtime uses after a
    /// quarantine/remap cycle: the idle region computed from
    /// `used_slots` alone no longer tells the truth once spares absorb
    /// relocated parameters, so the caller provisions sentinels from
    /// [`WeightMapping::idle_slots`](crate::WeightMapping::idle_slots)
    /// instead.
    #[must_use]
    pub fn on_sites(mut conv: Vec<u64>, mut fc: Vec<u64>, magnitude: f64) -> Self {
        conv.sort_unstable();
        conv.dedup();
        fc.sort_unstable();
        fc.dedup();
        Self {
            conv,
            fc,
            magnitude: magnitude.clamp(0.0, 1.0),
        }
    }

    /// The sentinel ring indices of `kind`'s block, ascending.
    #[must_use]
    pub fn sites(&self, kind: BlockKind) -> &[u64] {
        match kind {
            BlockKind::Conv => &self.conv,
            BlockKind::Fc => &self.fc,
        }
    }

    /// The probe magnitude imprinted on every sentinel.
    #[must_use]
    pub fn magnitude(&self) -> f64 {
        self.magnitude
    }
}

/// Per-block noiseless sensor means.
#[derive(Debug, Clone, PartialEq)]
struct BlockMeans {
    banks: Vec<BankTelemetry>,
    sentinels: Vec<f64>,
}

/// The analytic telemetry tap: precomputes the noiseless per-bank sensor
/// means of one `(network, conditions)` pair and stamps out noisy
/// [`TelemetryFrame`]s, deterministic in `(seed, batch)`.
///
/// This is the fast-path counterpart of the physical monitor photodetectors
/// (see [`OpticalVdp::dot_with_tap`](crate::OpticalVdp::dot_with_tap)):
/// it evaluates the same drop-port responses the executor's effective
/// weight model uses, so a detection sweep costs one pass over the mapped
/// slots per scenario instead of a full optical simulation per frame.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryProbe {
    tap: TapConfig,
    conv: BlockMeans,
    fc: BlockMeans,
}

impl TelemetryProbe {
    /// Derives the noiseless sensor means of `network` mapped by `mapping`
    /// onto `config` under the fault `conditions`.
    ///
    /// # Errors
    ///
    /// Returns [`OnnError::MappingMismatch`] when the network's weight
    /// tensors do not line up with the mapping, and
    /// [`OnnError::MrOutOfRange`] when `conditions` reference rings beyond
    /// a block.
    pub fn new(
        network: &Network,
        mapping: &WeightMapping,
        conditions: &ConditionMap,
        config: &AcceleratorConfig,
        sentinels: &SentinelPlan,
        tap: TapConfig,
    ) -> Result<Self, OnnError> {
        let model = DropResponseModel::from_config(config);
        Self::new_with(
            network, mapping, conditions, config, sentinels, tap, &model, None,
        )
    }

    /// As [`TelemetryProbe::new`], but with an explicit physics `model`
    /// (whose DAC steps quantize imprinted magnitudes) and an optional
    /// custom per-slot response evaluator. With `response: None` the
    /// analytic closed forms of the shared model apply — the fast path;
    /// backends pass `Some` to read each slot through their own physics
    /// (device simulation, finite-resolution monitor ADCs).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new_with(
        network: &Network,
        mapping: &WeightMapping,
        conditions: &ConditionMap,
        config: &AcceleratorConfig,
        sentinels: &SentinelPlan,
        tap: TapConfig,
        p: &DropResponseModel,
        mut response: Option<SlotResponseFn<'_>>,
    ) -> Result<Self, OnnError> {
        let _span = safelight_obs::profile_span("probe_build");
        let drop_port = p.encoding == crate::config::WeightEncoding::DropPort;

        // Normalized, quantized |weight| snapshot per layer, mirroring the
        // executor's calibration (per-layer full-scale, then DAC steps).
        let weights: Vec<_> = network.params().into_iter().filter(|q| q.decay).collect();
        let specs = mapping.layer_specs();
        if weights.len() != specs.len() {
            return Err(OnnError::MappingMismatch {
                context: format!(
                    "network has {} weight tensors, mapping has {} layers",
                    weights.len(),
                    specs.len()
                ),
            });
        }
        let mut snapshot: Vec<Vec<f64>> = Vec::with_capacity(weights.len());
        for (q, spec) in weights.iter().zip(&specs) {
            if q.value.len() != spec.weights {
                return Err(OnnError::MappingMismatch {
                    context: format!(
                        "layer `{}`: tensor has {} weights, spec says {}",
                        spec.name,
                        q.value.len(),
                        spec.weights
                    ),
                });
            }
            let scale = f64::from(q.value.max_abs());
            snapshot.push(if scale > 0.0 {
                q.value
                    .as_slice()
                    .iter()
                    .map(|w| p.quantize(f64::from(w.abs()) / scale))
                    .collect()
            } else {
                vec![0.0; q.value.len()]
            });
        }

        let mut means_for = |kind: BlockKind| -> Result<BlockMeans, OnnError> {
            let shape = *config.block(kind);
            let cap = shape.total_mrs();
            let per_bank = shape.mrs_per_bank() as u64;
            for (mr, _) in conditions.iter(kind) {
                if mr >= cap {
                    return Err(OnnError::MrOutOfRange {
                        index: mr,
                        capacity: cap,
                    });
                }
            }
            // One condition lookup per ring (sweeps construct probes per
            // scenario, so per-slot hash lookups would dominate).
            let conds: Vec<MrCondition> = (0..cap).map(|r| conditions.condition(kind, r)).collect();
            // This block's layers with their start slots, in mapping order
            // (reconstructed exactly as `WeightMapping::new` assigns them),
            // so the slot sweep below resolves magnitudes with a monotone
            // cursor instead of a per-slot layer scan.
            let mut block_layers: Vec<(u64, usize)> = Vec::new();
            let mut used = 0u64;
            for (li, spec) in specs.iter().enumerate() {
                if spec.kind == kind {
                    block_layers.push((used, li));
                    used += spec.weights as u64;
                }
            }
            debug_assert_eq!(used, mapping.used_slots(kind));
            let rounds = mapping.rounds(kind).max(1);
            let mut drop_sum = vec![0.0f64; shape.vdp_units];
            // Drop-port monitor: every reuse round re-imprints the block, so
            // the per-batch monitor integral is the mean response over all
            // `rounds × cap` slots. An idle slot imprints zero magnitude —
            // unless the ring hosts a sentinel, whose known probe weight is
            // exactly what the final-round idle region carries (keeping the
            // bank monitor and the sentinel readback models of the same
            // physical ring consistent).
            let sentinel_sites = sentinels.sites(kind);
            let m_sentinel = p.quantize(sentinels.magnitude());
            // After a quarantine/remap cycle the mapping relocates logical
            // rings onto physical spares; the sweep below walks logical
            // slots (so the monotone layer cursor keeps working) and
            // attributes each response to the ring that physically drops
            // the light. Pristine mappings skip the indirection entirely.
            let remapped = mapping.has_remaps(kind);
            let mut cursor = 0usize;
            for slot in 0..rounds * cap {
                let logical = slot % cap;
                let ring = if remapped {
                    mapping.physical_ring(kind, logical)
                } else {
                    logical
                };
                let cond = conds[ring as usize];
                let m = if slot < used {
                    while cursor + 1 < block_layers.len() && block_layers[cursor + 1].0 <= slot {
                        cursor += 1;
                    }
                    let (start, li) = block_layers[cursor];
                    snapshot[li][(slot - start) as usize]
                } else if sentinel_sites.binary_search(&ring).is_ok() {
                    m_sentinel
                } else {
                    0.0
                };
                let slot_response = match &mut response {
                    Some(eval) => eval(m, cond)?,
                    // Fast paths for the two exact closed forms: under the
                    // drop-port encoding a healthy ring's drop response is
                    // the encoding target itself (`detuning_for_magnitude`
                    // is its inverse), and a parked ring sits at max
                    // detuning — i.e. exactly the drop floor, whatever the
                    // encoding. Most rings hit one of these, skipping the
                    // sqrt/Lorentzian round-trip that dominates probe
                    // construction in sweeps.
                    None => match cond {
                        MrCondition::Healthy if drop_port => {
                            p.drop_floor + m * (1.0 - p.drop_floor)
                        }
                        MrCondition::Parked => p.drop_floor,
                        _ => channel_power_factor(cond) * p.drop_response(p.offset_under(m, cond)),
                    },
                };
                drop_sum[(ring / per_bank) as usize] += slot_response;
            }
            // Thermal / rail / trim readbacks are per-ring, independent of
            // the imprinted weights.
            let mut temp_sum = vec![0.0f64; shape.vdp_units];
            let mut rail_sum = vec![0.0f64; shape.vdp_units];
            let mut trim_sum = vec![0.0f64; shape.vdp_units];
            for (ring, &cond) in conds.iter().enumerate() {
                let bank = ring / per_bank as usize;
                rail_sum[bank] += channel_power_factor(cond);
                match cond {
                    MrCondition::Heated { delta_kelvin }
                    | MrCondition::Attenuated { delta_kelvin, .. } => {
                        temp_sum[bank] += delta_kelvin;
                    }
                    MrCondition::Detuned {
                        offset_nm,
                        delta_kelvin,
                    } => {
                        temp_sum[bank] += delta_kelvin;
                        trim_sum[bank] += offset_nm.abs();
                    }
                    MrCondition::Healthy | MrCondition::Parked => {}
                }
            }
            let banks = (0..shape.vdp_units)
                .map(|bank| BankTelemetry {
                    drop_current: drop_sum[bank] / (rounds * per_bank) as f64,
                    delta_kelvin: temp_sum[bank] / per_bank as f64,
                    rail_power: rail_sum[bank] / per_bank as f64,
                    trim_offset_nm: trim_sum[bank] / per_bank as f64,
                })
                .collect();
            // Sentinel readback: the decoded magnitude of the known probe
            // weight on each sentinel ring, through the same physics.
            let m = p.quantize(sentinels.magnitude());
            let mut readbacks = Vec::with_capacity(sentinels.sites(kind).len());
            for &ring in sentinels.sites(kind) {
                let cond = conditions.condition(kind, ring);
                let slot_response = match &mut response {
                    Some(eval) => eval(m, cond)?,
                    None => channel_power_factor(cond) * p.drop_response(p.offset_under(m, cond)),
                };
                readbacks.push(p.decode(slot_response));
            }
            Ok(BlockMeans {
                banks,
                sentinels: readbacks,
            })
        };

        Ok(Self {
            tap,
            conv: means_for(BlockKind::Conv)?,
            fc: means_for(BlockKind::Fc)?,
        })
    }

    /// The tap configuration this probe emits frames with.
    #[must_use]
    pub fn tap(&self) -> &TapConfig {
        &self.tap
    }

    /// The noiseless frame (sensor means) for batch `batch`.
    #[must_use]
    pub fn noiseless(&self, batch: u64) -> TelemetryFrame {
        TelemetryFrame {
            batch,
            conv: self.conv.banks.clone(),
            fc: self.fc.banks.clone(),
            conv_sentinels: self.conv.sentinels.clone(),
            fc_sentinels: self.fc.sentinels.clone(),
        }
    }

    /// Emits the telemetry frame of batch `batch`: the sensor means plus
    /// Gaussian read noise, deterministic in `(seed, batch)` and
    /// independent of how frames are scheduled across threads.
    #[must_use]
    pub fn frame(&self, batch: u64, seed: u64) -> TelemetryFrame {
        let _span = safelight_obs::profile_span("probe_frame");
        let mut rng = SimRng::seed_from(seed).derive(0x7E1E_F4A3 ^ batch);
        let mut frame = self.noiseless(batch);
        for banks in [&mut frame.conv, &mut frame.fc] {
            for b in banks.iter_mut() {
                b.drop_current += rng.gaussian_with(0.0, self.tap.drop_noise);
                b.delta_kelvin += rng.gaussian_with(0.0, self.tap.temp_noise_kelvin);
                b.rail_power += rng.gaussian_with(0.0, self.tap.rail_noise);
                b.trim_offset_nm += rng.gaussian_with(0.0, self.tap.trim_noise_nm);
            }
        }
        for sentinels in [&mut frame.conv_sentinels, &mut frame.fc_sentinels] {
            for s in sentinels.iter_mut() {
                *s += rng.gaussian_with(0.0, self.tap.sentinel_noise);
            }
        }
        frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BlockConfig;
    use crate::mapping::LayerSpec;
    use safelight_neuro::{Flatten, Layer, Linear, Network, Tensor};

    /// One linear layer of 16 weights on a 2-bank FC block of 8 rings each,
    /// leaving the CONV block idle.
    fn setup() -> (Network, WeightMapping, AcceleratorConfig) {
        let mut net = Network::new();
        net.push(Flatten::new());
        let mut fc = Linear::new(4, 4, 3).unwrap();
        fc.params_mut()[0].value = Tensor::from_vec(
            vec![4, 4],
            (0..16).map(|i| 0.2 + (i as f32) / 32.0).collect(),
        )
        .unwrap();
        net.push(fc);
        let config = AcceleratorConfig::custom(
            BlockConfig {
                vdp_units: 2,
                bank_rows: 2,
                bank_cols: 4,
            },
            BlockConfig {
                vdp_units: 2,
                bank_rows: 2,
                bank_cols: 4,
            },
        )
        .unwrap();
        let mapping =
            WeightMapping::new(&config, &[LayerSpec::new("fc", BlockKind::Fc, 16)]).unwrap();
        (net, mapping, config)
    }

    fn probe(conditions: &ConditionMap) -> TelemetryProbe {
        let (net, mapping, config) = setup();
        let sentinels = SentinelPlan::new(&mapping, &config, 4, 0.7);
        TelemetryProbe::new(
            &net,
            &mapping,
            conditions,
            &config,
            &sentinels,
            TapConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn clean_probe_reads_nominal_sensors() {
        let frame = probe(&ConditionMap::new()).noiseless(0);
        for b in frame.banks(BlockKind::Fc) {
            assert!(b.drop_current > 0.1, "drop {}", b.drop_current);
            assert_eq!(b.delta_kelvin, 0.0);
            assert_eq!(b.rail_power, 1.0);
            assert_eq!(b.trim_offset_nm, 0.0);
        }
        // Idle CONV banks read the drop floor (≈ 0.11 for the default
        // devices) plus their two sentinels' 0.7-magnitude responses —
        // the same rings the sentinel readback models.
        for b in frame.banks(BlockKind::Conv) {
            assert!(
                b.drop_current > 0.2 && b.drop_current < 0.35,
                "idle bank reads {}",
                b.drop_current
            );
        }
    }

    #[test]
    fn each_vector_moves_its_signature_sensor() {
        let clean = probe(&ConditionMap::new()).noiseless(0);
        // Actuation: parked rings lower the drop current, nothing else.
        let mut parked = ConditionMap::new();
        parked.set(BlockKind::Fc, 1, MrCondition::Parked);
        let f = probe(&parked).noiseless(0);
        assert!(f.fc[0].drop_current < clean.fc[0].drop_current - 0.01);
        assert_eq!(f.fc[0].delta_kelvin, clean.fc[0].delta_kelvin);
        assert_eq!(f.fc[1], clean.fc[1], "other bank perturbed");
        // Hotspot: heat raises the thermal sensor and lowers the drop.
        let mut heated = ConditionMap::new();
        heated.add_heat(BlockKind::Fc, 2, 10.0);
        let f = probe(&heated).noiseless(0);
        assert!(f.fc[0].delta_kelvin > 1.0 / 8.0);
        assert!(f.fc[0].drop_current < clean.fc[0].drop_current);
        // Laser tap: rail power falls.
        let mut tapped = ConditionMap::new();
        tapped.set(
            BlockKind::Fc,
            3,
            MrCondition::Attenuated {
                factor: 0.5,
                delta_kelvin: 0.0,
            },
        );
        let f = probe(&tapped).noiseless(0);
        assert!(f.fc[0].rail_power < 1.0 - 0.05);
        // Trim drift: the trim readback moves.
        let mut drifted = ConditionMap::new();
        drifted.set(
            BlockKind::Fc,
            0,
            MrCondition::Detuned {
                offset_nm: 0.3,
                delta_kelvin: 0.0,
            },
        );
        let f = probe(&drifted).noiseless(0);
        assert!(f.fc[0].trim_offset_nm > 0.3 / 8.0 - 1e-12);
    }

    #[test]
    fn sentinels_read_their_probe_weight_until_attacked() {
        let (_, mapping, config) = setup();
        let plan = SentinelPlan::new(&mapping, &config, 4, 0.7);
        // The FC block is fully used (16 slots = 16 rings): no sentinels.
        assert!(plan.sites(BlockKind::Fc).is_empty());
        // The idle CONV block hosts them all.
        assert_eq!(plan.sites(BlockKind::Conv).len(), 4);
        let clean = probe(&ConditionMap::new()).noiseless(0);
        for &s in clean.sentinels(BlockKind::Conv) {
            assert!((s - 0.7).abs() < 0.01, "sentinel reads {s}");
        }
        // Parking a sentinel ring zeroes its readback.
        let site = plan.sites(BlockKind::Conv)[1];
        let mut attacked = ConditionMap::new();
        attacked.set(BlockKind::Conv, site, MrCondition::Parked);
        let f = probe(&attacked).noiseless(0);
        assert!(
            f.conv_sentinels[1] < 0.05,
            "parked sentinel reads {}",
            f.conv_sentinels[1]
        );
        assert!((f.conv_sentinels[0] - 0.7).abs() < 0.01);
        // The bank drop monitor models the same physical ring: parking the
        // sentinel darkens its bank's monitor too (site 1 = ring 4, bank 0).
        assert!(
            f.conv[0].drop_current < clean.conv[0].drop_current - 0.05,
            "bank monitor missed the parked sentinel: {} vs {}",
            f.conv[0].drop_current,
            clean.conv[0].drop_current
        );
    }

    #[test]
    fn frames_are_deterministic_and_noise_is_bounded() {
        let p = probe(&ConditionMap::new());
        let a = p.frame(5, 42);
        let b = p.frame(5, 42);
        assert_eq!(a, b);
        let c = p.frame(6, 42);
        assert_ne!(a, c);
        let noiseless = p.noiseless(5);
        for (x, y) in a.fc.iter().zip(&noiseless.fc) {
            assert!((x.drop_current - y.drop_current).abs() < 10.0 * p.tap().drop_noise);
        }
    }

    #[test]
    fn csv_round_trips() {
        let p = probe(&ConditionMap::new());
        let frame = p.frame(9, 7);
        let text = frame.to_csv();
        let back = TelemetryFrame::from_csv(&text).unwrap();
        assert_eq!(back, frame);
        for bad in [
            "",
            "# not a header\n",
            "# batch,1\nrecord,block,index,a,b,c,d\nbank,gpu,0,1,2,3,4\n",
            // A missing column-header line must error, not silently eat
            // the first data row.
            "# batch,1\nbank,conv,0,0.4,0,1,0\n",
            "# batch,1\n",
        ] {
            assert!(TelemetryFrame::from_csv(bad).is_err(), "`{bad}` parsed");
        }
    }

    #[test]
    fn csv_round_trips_non_finite_readings() {
        let p = probe(&ConditionMap::new());
        let mut frame = p.frame(3, 11);
        // A dead drop monitor, a railed-out thermal sensor, a sentinel
        // readback gone to -inf: the canonical tokens must survive a full
        // serialize/parse/serialize cycle byte-identically, and the NaN
        // must come back as a NaN (PartialEq can't see that).
        assert!(frame.set_channel(BlockKind::Fc, 0, SensorChannel::DropCurrent, f64::NAN));
        assert!(frame.set_channel(BlockKind::Fc, 1, SensorChannel::DeltaKelvin, f64::INFINITY));
        assert!(frame.set_channel(
            BlockKind::Conv,
            0,
            SensorChannel::Sentinel,
            f64::NEG_INFINITY
        ));
        let text = frame.to_csv();
        assert!(text.contains(",nan,"), "{text}");
        assert!(text.contains(",inf,"), "{text}");
        assert!(text.contains(",-inf,"), "{text}");
        let back = TelemetryFrame::from_csv(&text).unwrap();
        assert!(back
            .channel(BlockKind::Fc, 0, SensorChannel::DropCurrent)
            .unwrap()
            .is_nan());
        assert_eq!(
            back.channel(BlockKind::Fc, 1, SensorChannel::DeltaKelvin),
            Some(f64::INFINITY)
        );
        assert_eq!(
            back.channel(BlockKind::Conv, 0, SensorChannel::Sentinel),
            Some(f64::NEG_INFINITY)
        );
        assert_eq!(back.to_csv(), text, "second serialization diverged");
    }

    #[test]
    fn channel_accessors_address_every_sensor() {
        let p = probe(&ConditionMap::new());
        let mut frame = p.noiseless(0);
        for kind in [BlockKind::Conv, BlockKind::Fc] {
            for (i, b) in frame.banks(kind).to_vec().iter().enumerate() {
                assert_eq!(
                    frame.channel(kind, i, SensorChannel::DropCurrent),
                    Some(b.drop_current)
                );
                assert_eq!(
                    frame.channel(kind, i, SensorChannel::TrimOffsetNm),
                    Some(b.trim_offset_nm)
                );
            }
        }
        assert!(frame.set_channel(BlockKind::Fc, 1, SensorChannel::RailPower, 0.25));
        assert_eq!(
            frame.channel(BlockKind::Fc, 1, SensorChannel::RailPower),
            Some(0.25)
        );
        // Out-of-range indices are rejected, not silently dropped.
        assert!(frame
            .channel(BlockKind::Fc, 99, SensorChannel::DropCurrent)
            .is_none());
        assert!(!frame.set_channel(BlockKind::Fc, 99, SensorChannel::Sentinel, 1.0));
        // Label round-trip for every channel.
        for ch in [
            SensorChannel::DropCurrent,
            SensorChannel::DeltaKelvin,
            SensorChannel::RailPower,
            SensorChannel::TrimOffsetNm,
            SensorChannel::Sentinel,
        ] {
            assert_eq!(SensorChannel::from_label(ch.label()), Some(ch));
        }
        assert_eq!(SensorChannel::from_label("voltage"), None);
    }

    #[test]
    fn mismatched_network_is_rejected() {
        let (net, _, config) = setup();
        let wrong =
            WeightMapping::new(&config, &[LayerSpec::new("fc", BlockKind::Fc, 99)]).unwrap();
        let plan = SentinelPlan::new(&wrong, &config, 4, 0.7);
        assert!(matches!(
            TelemetryProbe::new(
                &net,
                &wrong,
                &ConditionMap::new(),
                &config,
                &plan,
                TapConfig::default()
            ),
            Err(OnnError::MappingMismatch { .. })
        ));
    }

    #[test]
    fn on_sites_sorts_and_dedups_for_binary_search() {
        let plan = SentinelPlan::on_sites(vec![9, 2, 2, 5], vec![], 1.4);
        assert_eq!(plan.sites(BlockKind::Conv), &[2, 5, 9]);
        assert!(plan.sites(BlockKind::Fc).is_empty());
        assert_eq!(plan.magnitude(), 1.0); // clamped
    }

    #[test]
    fn probe_follows_parameter_relocation() {
        // Map 16 FC weights onto bank 0+1 of a 4-bank block (8 rings each):
        // plenty of idle capacity in banks 2..4 to remap onto.
        let mut net = Network::new();
        net.push(Flatten::new());
        let mut fc = Linear::new(4, 4, 3).unwrap();
        fc.params_mut()[0].value = Tensor::from_vec(vec![4, 4], vec![0.8; 16]).unwrap();
        net.push(fc);
        let config = AcceleratorConfig::custom(
            BlockConfig {
                vdp_units: 1,
                bank_rows: 2,
                bank_cols: 4,
            },
            BlockConfig {
                vdp_units: 4,
                bank_rows: 2,
                bank_cols: 4,
            },
        )
        .unwrap();
        let mut mapping =
            WeightMapping::new(&config, &[LayerSpec::new("fc", BlockKind::Fc, 16)]).unwrap();
        let sentinels = SentinelPlan::on_sites(Vec::new(), Vec::new(), 0.7);
        let probe = |mapping: &WeightMapping, conditions: &ConditionMap| {
            TelemetryProbe::new(
                &net,
                mapping,
                conditions,
                &config,
                &sentinels,
                TapConfig::default(),
            )
            .unwrap()
        };
        let before = probe(&mapping, &ConditionMap::new()).noiseless(0);
        // Banks 0/1 carry the uniform 0.8 weights, banks 2/3 idle.
        assert!(before.fc[0].drop_current > before.fc[3].drop_current + 0.1);
        // Quarantine all of bank 0 (rings 0..8): parameters relocate onto
        // the idle tail (bank 3 first), and the parked quarantined rings
        // darken bank 0.
        let quarantined: Vec<u64> = (0..8).collect();
        let outcome = mapping.remap_params(BlockKind::Fc, &quarantined).unwrap();
        assert!(outcome.fully_placed());
        let mut conditions = ConditionMap::new();
        for &q in &quarantined {
            conditions.set(BlockKind::Fc, q, MrCondition::Parked);
        }
        let after = probe(&mapping, &conditions).noiseless(0);
        // Bank 0 reads near the drop floor; the relocated weights light up
        // the spare banks that absorbed them.
        assert!(after.fc[0].drop_current < before.fc[3].drop_current + 0.05);
        let spare_total: f64 = after.fc[2].drop_current + after.fc[3].drop_current;
        let idle_total: f64 = before.fc[2].drop_current + before.fc[3].drop_current;
        assert!(
            spare_total > idle_total + 0.1,
            "relocated weights invisible: {spare_total} vs {idle_total}"
        );
        // Bank 1 (untouched parameters) is bit-identical.
        assert_eq!(after.fc[1], before.fc[1]);
    }

    #[test]
    fn out_of_range_conditions_are_rejected() {
        let (net, mapping, config) = setup();
        let plan = SentinelPlan::new(&mapping, &config, 4, 0.7);
        let mut conditions = ConditionMap::new();
        conditions.set(BlockKind::Fc, 999, MrCondition::Parked);
        assert!(matches!(
            TelemetryProbe::new(
                &net,
                &mapping,
                &conditions,
                &config,
                &plan,
                TapConfig::default()
            ),
            Err(OnnError::MrOutOfRange { .. })
        ));
    }
}

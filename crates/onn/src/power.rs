//! Energy and latency estimation for the accelerator.
//!
//! A CrossLight-class accelerator's power budget is dominated by the comb
//! lasers, the MR tuning circuits, and the converter arrays. This model
//! produces first-order per-block numbers from the configuration — useful
//! for the ablation discussion and the micro-benchmarks, not a substitute
//! for the original paper's circuit-level figures.

use crate::config::{AcceleratorConfig, BlockKind};

/// Typical per-conversion energies (pJ) for accelerator-grade converters.
const DAC_ENERGY_PJ_PER_CONVERSION: f64 = 1.5;
const ADC_ENERGY_PJ_PER_CONVERSION: f64 = 2.6;
/// Mean EO tuning power per ring while holding a weight (mW).
const EO_HOLD_POWER_MW: f64 = 0.001;
/// Mean TO bias power per ring for fabrication-variation trimming (mW).
const TO_TRIM_POWER_MW: f64 = 1.1;
/// Photonic symbol rate (vector operations per second per VDP row).
const SYMBOL_RATE_HZ: f64 = 5.0e9;

/// First-order power and latency estimates for one block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerBreakdown {
    /// Laser electrical power, milliwatts.
    pub laser_mw: f64,
    /// Tuning (EO hold + TO trim) power, milliwatts.
    pub tuning_mw: f64,
    /// DAC array power at the symbol rate, milliwatts.
    pub dac_mw: f64,
    /// ADC array power at the symbol rate, milliwatts.
    pub adc_mw: f64,
    /// Vector operations per second the block sustains.
    pub vector_ops_per_s: f64,
}

impl PowerBreakdown {
    /// Total electrical power in milliwatts.
    #[must_use]
    pub fn total_mw(&self) -> f64 {
        self.laser_mw + self.tuning_mw + self.dac_mw + self.adc_mw
    }

    /// Energy per multiply-accumulate in picojoules.
    #[must_use]
    pub fn pj_per_mac(&self, macs_per_vector_op: usize) -> f64 {
        let macs_per_s = self.vector_ops_per_s * macs_per_vector_op as f64;
        self.total_mw() * 1e9 / macs_per_s
    }
}

/// Estimates power and throughput per block of an accelerator.
///
/// # Example
///
/// ```
/// use safelight_onn::{AcceleratorConfig, BlockKind, PowerModel};
///
/// # fn main() -> Result<(), safelight_onn::OnnError> {
/// let model = PowerModel::new(AcceleratorConfig::paper()?);
/// let conv = model.block_breakdown(BlockKind::Conv);
/// assert!(conv.total_mw() > 0.0);
/// // Photonic MACs land in the sub-10 pJ/MAC regime.
/// assert!(conv.pj_per_mac(400) < 10.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PowerModel {
    config: AcceleratorConfig,
}

impl PowerModel {
    /// Wraps a configuration.
    #[must_use]
    pub fn new(config: AcceleratorConfig) -> Self {
        Self { config }
    }

    /// The wrapped configuration.
    #[must_use]
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// Power and throughput of one block.
    #[must_use]
    pub fn block_breakdown(&self, kind: BlockKind) -> PowerBreakdown {
        let shape = self.config.block(kind);
        let rings = shape.total_mrs() as f64;
        let rows = (shape.vdp_units * shape.bank_rows) as f64;
        // One comb laser per VDP row waveguide; wall-plug efficiency 20 %.
        let laser_mw = rows * self.config.laser_power_mw * shape.bank_cols as f64 / 0.2;
        let tuning_mw = rings * (EO_HOLD_POWER_MW + TO_TRIM_POWER_MW);
        // One DAC per ring refreshes at the symbol rate; one ADC per row.
        let dac_mw = rings * DAC_ENERGY_PJ_PER_CONVERSION * SYMBOL_RATE_HZ * 1e-9;
        let adc_mw = rows * ADC_ENERGY_PJ_PER_CONVERSION * SYMBOL_RATE_HZ * 1e-9;
        PowerBreakdown {
            laser_mw,
            tuning_mw,
            dac_mw,
            adc_mw,
            vector_ops_per_s: rows * SYMBOL_RATE_HZ,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigger_block_draws_more_power() {
        let model = PowerModel::new(AcceleratorConfig::paper().unwrap());
        let conv = model.block_breakdown(BlockKind::Conv);
        let fc = model.block_breakdown(BlockKind::Fc);
        // FC block has 33× the rings of the CONV block.
        assert!(fc.total_mw() > conv.total_mw());
    }

    #[test]
    fn energy_per_mac_is_sub_ten_picojoule() {
        let model = PowerModel::new(AcceleratorConfig::paper().unwrap());
        let conv = model.block_breakdown(BlockKind::Conv);
        let pj = conv.pj_per_mac(400);
        assert!(pj > 0.0 && pj < 10.0, "pJ/MAC {pj}");
    }

    #[test]
    fn breakdown_components_are_positive() {
        let model = PowerModel::new(AcceleratorConfig::scaled_experiment().unwrap());
        let b = model.block_breakdown(BlockKind::Fc);
        assert!(b.laser_mw > 0.0 && b.tuning_mw > 0.0 && b.dac_mw > 0.0 && b.adc_mw > 0.0);
        assert!((b.total_mw() - (b.laser_mw + b.tuning_mw + b.dac_mw + b.adc_mw)).abs() < 1e-9);
    }
}

//! Error type for the accelerator simulator.

use std::error::Error;
use std::fmt;

use safelight_neuro::NeuroError;
use safelight_photonics::PhotonicsError;
use safelight_thermal::ThermalError;

/// Errors produced by accelerator configuration, mapping and execution.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum OnnError {
    /// A block or converter dimension was invalid.
    InvalidConfig {
        /// Name of the offending field.
        name: &'static str,
        /// Rejected value.
        value: f64,
    },
    /// A layer list or parameter count did not match the mapped network.
    MappingMismatch {
        /// Description of the inconsistency.
        context: String,
    },
    /// An MR index was outside its block.
    MrOutOfRange {
        /// The flat MR index.
        index: u64,
        /// MRs in the block.
        capacity: u64,
    },
    /// A serialized telemetry frame failed to parse.
    TelemetryParse {
        /// Description of the malformed record.
        context: String,
    },
    /// An underlying photonic device error.
    Photonics(PhotonicsError),
    /// An underlying thermal solver error.
    Thermal(ThermalError),
    /// An underlying tensor/network error.
    Neuro(NeuroError),
}

impl fmt::Display for OnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidConfig { name, value } => {
                write!(f, "invalid accelerator config: `{name}` = {value}")
            }
            Self::MappingMismatch { context } => write!(f, "mapping mismatch: {context}"),
            Self::MrOutOfRange { index, capacity } => {
                write!(
                    f,
                    "microring index {index} out of range for block of {capacity}"
                )
            }
            Self::TelemetryParse { context } => write!(f, "telemetry parse error: {context}"),
            Self::Photonics(e) => write!(f, "photonics: {e}"),
            Self::Thermal(e) => write!(f, "thermal: {e}"),
            Self::Neuro(e) => write!(f, "neural network: {e}"),
        }
    }
}

impl Error for OnnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Photonics(e) => Some(e),
            Self::Thermal(e) => Some(e),
            Self::Neuro(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PhotonicsError> for OnnError {
    fn from(e: PhotonicsError) -> Self {
        Self::Photonics(e)
    }
}

impl From<ThermalError> for OnnError {
    fn from(e: ThermalError) -> Self {
        Self::Thermal(e)
    }
}

impl From<NeuroError> for OnnError {
    fn from(e: NeuroError) -> Self {
        Self::Neuro(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<OnnError>();
    }

    #[test]
    fn source_chains_to_inner_error() {
        let inner = PhotonicsError::EmptyGrid;
        let e = OnnError::from(inner);
        assert!(e.source().is_some());
    }
}

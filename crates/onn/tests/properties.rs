//! Property-based tests for the accelerator layer, including the
//! fast-path / slow-path cross-validation: the effective-weight shortcut
//! must predict what the fully physical datapath computes.

use proptest::prelude::*;
use safelight_onn::{
    effective_weight_row, AcceleratorConfig, BlockConfig, BlockKind, DropResponseModel, LayerSpec,
    MrCondition, OpticalVdp, WeightMapping,
};

fn paper_config() -> AcceleratorConfig {
    AcceleratorConfig::paper().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The physical VDP's healthy dot product matches arithmetic within
    /// converter/crosstalk tolerance.
    #[test]
    fn physical_dot_matches_arithmetic(
        inputs in proptest::collection::vec(0.0f64..1.0, 6),
        weights in proptest::collection::vec(-1.0f64..1.0, 6),
    ) {
        let mut vdp = OpticalVdp::new(&paper_config(), 6).unwrap();
        let healthy = vec![MrCondition::Healthy; 6];
        let dot = vdp.dot(&inputs, &weights, &healthy).unwrap();
        let exact: f64 = inputs.iter().zip(&weights).map(|(a, w)| a * w).sum();
        prop_assert!((dot - exact).abs() < 0.12, "optical {dot} vs exact {exact}");
    }

    /// Fast path predicts the slow path: the corrupted dot product the
    /// physical datapath computes matches Σ a·w_eff from the
    /// effective-weight shortcut.
    #[test]
    fn fast_path_predicts_physical_corruption(
        weights in proptest::collection::vec(-1.0f64..1.0, 5),
        park_at in 0usize..5,
        heat_at in 0usize..5,
        heat_frac in 0.0f64..1.5,
    ) {
        let config = paper_config();
        let one_ch = config.one_channel_delta_kelvin();
        let mut conds = vec![MrCondition::Healthy; 5];
        conds[park_at] = MrCondition::Parked;
        if heat_at != park_at && heat_frac > 0.05 {
            conds[heat_at] = MrCondition::Heated { delta_kelvin: heat_frac * one_ch };
        }
        let inputs = vec![1.0, 0.8, 0.6, 0.4, 0.2];

        let mut vdp = OpticalVdp::new(&config, 5).unwrap();
        let physical = vdp.dot(&inputs, &weights, &conds).unwrap();

        let p = DropResponseModel::from_config(&config);
        let effective = effective_weight_row(&weights, &conds, &p);
        let predicted: f64 = inputs.iter().zip(&effective).map(|(a, w)| a * w).sum();

        prop_assert!(
            (physical - predicted).abs() < 0.25,
            "physical {physical:.3} vs fast-path {predicted:.3} (conds {conds:?})"
        );
    }

    /// Mapping round-trip at arbitrary shapes: locate() and params_on_mr()
    /// agree for every parameter of a random two-layer network.
    #[test]
    fn mapping_round_trip_any_shape(
        vdp in 1usize..6,
        rows in 1usize..8,
        cols in 1usize..8,
        conv_weights in 1usize..200,
        fc_weights in 1usize..200,
    ) {
        let config = AcceleratorConfig::custom(
            BlockConfig { vdp_units: vdp, bank_rows: rows, bank_cols: cols },
            BlockConfig { vdp_units: vdp, bank_rows: rows, bank_cols: cols },
        ).unwrap();
        let mapping = WeightMapping::new(&config, &[
            LayerSpec::new("conv", BlockKind::Conv, conv_weights),
            LayerSpec::new("fc", BlockKind::Fc, fc_weights),
        ]).unwrap();
        for (li, n) in [(0usize, conv_weights), (1, fc_weights)] {
            // Probe a deterministic sample of offsets.
            for off in (0..n).step_by((n / 16).max(1)) {
                let home = mapping.locate(li, off).unwrap();
                let hits = mapping.params_on_mr(home.block, home.mr_index).unwrap();
                prop_assert!(hits.contains(&(li, off)));
                let recomposed = mapping
                    .mr_index_of(home.block, home.vdp, home.row, home.col)
                    .unwrap();
                prop_assert_eq!(recomposed, home.mr_index);
            }
        }
    }

    /// Quantization is idempotent and bounded for any DAC resolution.
    #[test]
    fn quantization_is_projection(bits in 1u8..16, m in 0.0f64..1.0) {
        let mut config = paper_config();
        config.dac_bits = bits;
        let p = DropResponseModel::from_config(&config);
        let q1 = p.quantize(m);
        let q2 = p.quantize(q1);
        prop_assert_eq!(q1, q2);
        prop_assert!((0.0..=1.0).contains(&q1));
        prop_assert!((q1 - m).abs() <= 0.5 / f64::from(p.dac_steps.max(1)) + 1e-12);
    }
}

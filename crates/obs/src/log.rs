//! Leveled logging for human-facing diagnostics.
//!
//! SafeLight library crates never print directly: they report through the
//! [`error!`](crate::error)/[`warn!`](crate::warn)/[`info!`](crate::info)/
//! [`debug!`](crate::debug) macros and the hosting binary decides how much
//! of it reaches the terminal ([`set_max_level`]). `Info` and below go to
//! stdout, `Warn` and `Error` to stderr, so result tables survive shell
//! redirection while diagnostics stay visible.
//!
//! The level gate is a single relaxed atomic load and the macros skip
//! formatting entirely when the level is disabled, so a `debug!` in a warm
//! loop costs a couple of nanoseconds when quiet.

use std::sync::atomic::{AtomicU8, Ordering};

/// Severity of a log line, ordered from most to least severe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable problems; always worth surfacing.
    Error = 0,
    /// Suspicious conditions the run survives (shed requests, fallbacks).
    Warn = 1,
    /// Normal progress and result reporting. The default ceiling.
    Info = 2,
    /// Extra detail for debugging (`repro --verbose`).
    Debug = 3,
}

impl Level {
    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Error,
            1 => Level::Warn,
            2 => Level::Info,
            _ => Level::Debug,
        }
    }

    /// Lower-case tag used as a line prefix for stderr levels.
    pub fn tag(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

static MAX_LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);

/// Set the most verbose level that will be emitted.
///
/// `repro` maps `--quiet` to [`Level::Warn`] (results still print — see
/// [`result`]) and `--verbose` to [`Level::Debug`].
pub fn set_max_level(level: Level) {
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current verbosity ceiling.
pub fn max_level() -> Level {
    Level::from_u8(MAX_LEVEL.load(Ordering::Relaxed))
}

/// Whether a message at `level` would be emitted.
#[inline]
pub fn enabled(level: Level) -> bool {
    (level as u8) <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// Emit a pre-formatted message at `level`. Prefer the macros, which skip
/// formatting when the level is disabled.
pub fn log(level: Level, args: std::fmt::Arguments<'_>) {
    if !enabled(level) {
        return;
    }
    match level {
        Level::Error | Level::Warn => eprintln!("{}: {args}", level.tag()),
        Level::Info => println!("{args}"),
        Level::Debug => println!("[debug] {args}"),
    }
}

/// Emit primary result output (tables, artifact paths) to stdout.
///
/// Results are the *product* of a run, not commentary on it, so they
/// bypass the verbosity ceiling: `--quiet` silences progress chatter but
/// still prints the table the user asked for.
pub fn result(args: std::fmt::Arguments<'_>) {
    println!("{args}");
}

/// Log an unrecoverable problem (always emitted unless filtered).
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Error) {
            $crate::log::log($crate::log::Level::Error, format_args!($($arg)*));
        }
    };
}

/// Log a survivable but suspicious condition.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Warn) {
            $crate::log::log($crate::log::Level::Warn, format_args!($($arg)*));
        }
    };
}

/// Log normal progress (suppressed by `--quiet`).
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Info) {
            $crate::log::log($crate::log::Level::Info, format_args!($($arg)*));
        }
    };
}

/// Log debugging detail (only with `--verbose`).
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Debug) {
            $crate::log::log($crate::log::Level::Debug, format_args!($($arg)*));
        }
    };
}

/// Print primary result output (tables, summaries) regardless of level.
#[macro_export]
macro_rules! result {
    ($($arg:tt)*) => {
        $crate::log::result(format_args!($($arg)*));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering_matches_severity() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
    }

    #[test]
    fn enabled_respects_ceiling() {
        let prev = max_level();
        set_max_level(Level::Warn);
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        set_max_level(prev);
    }

    #[test]
    fn tags_are_stable() {
        assert_eq!(Level::Error.tag(), "error");
        assert_eq!(Level::Debug.tag(), "debug");
    }
}

//! Virtual-time SLO specs and alerting rules.
//!
//! This is the *judgment* layer over [`crate::metrics`]: an [`SloSpec`]
//! states the promises a serving fleet makes (availability, tail latency
//! in virtual ticks, shed rate, spurious-quarantine budget), an
//! [`AlertRule`] states when telemetry should page, and an
//! [`AlertEngine`] evaluates the rules against metric snapshots and
//! per-tick sample logs.
//!
//! Everything here runs on **virtual time only**. Threshold rules read a
//! point-in-time [`MetricsSnapshot`] (a pure function of the seed);
//! burn-rate rules read cumulative per-tick sample logs recorded from the
//! serial admission path. No wall clock is ever consulted, so alert
//! firings — like the traces and metrics they judge — are byte-identical
//! across worker-thread counts. See `docs/observability.md`.
//!
//! The spec grammar is a comma-separated `key=value` list over the
//! defaults, e.g. `avail=0.95,p99=8,p999=16,shed=0.02,spurious=0`, with
//! `default` as an alias for the stock spec; [`SloSpec`] round-trips
//! through `Display`/`FromStr` so `repro --slo SPEC` can both parse and
//! reprint it.

use crate::metrics::{split_labels, MetricsSnapshot, SnapshotValue};
use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

/// A serving-level-objective specification: the promises a fleet makes
/// over one stream, judged against deterministic end-of-run statistics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SloSpec {
    /// Minimum fraction of offered requests served undegraded.
    pub availability: f64,
    /// Maximum p99 request latency in virtual ticks.
    pub p99_latency_ticks: f64,
    /// Maximum p99.9 request latency in virtual ticks.
    pub p999_latency_ticks: f64,
    /// Maximum fraction of offered requests shed at admission.
    pub shed_rate: f64,
    /// Maximum tolerated spurious quarantines (false-positive
    /// discriminations) per stream.
    pub spurious_quarantine_budget: u64,
}

impl Default for SloSpec {
    /// The stock spec (`--slo default`): 90% availability, p99 ≤ 16
    /// ticks, p99.9 ≤ 32 ticks, ≤ 5% shed, zero spurious quarantines.
    fn default() -> Self {
        SloSpec {
            availability: 0.90,
            p99_latency_ticks: 16.0,
            p999_latency_ticks: 32.0,
            shed_rate: 0.05,
            spurious_quarantine_budget: 0,
        }
    }
}

impl fmt::Display for SloSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "avail={},p99={},p999={},shed={},spurious={}",
            self.availability,
            self.p99_latency_ticks,
            self.p999_latency_ticks,
            self.shed_rate,
            self.spurious_quarantine_budget
        )
    }
}

impl FromStr for SloSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() || s == "default" {
            return Ok(SloSpec::default());
        }
        let mut spec = SloSpec::default();
        for part in s.split(',') {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("SLO spec field {part:?} is not key=value"))?;
            let num = || {
                value
                    .parse::<f64>()
                    .map_err(|_| format!("SLO spec field {key}={value:?} is not a number"))
            };
            match key.trim() {
                "avail" | "availability" => spec.availability = num()?,
                "p99" => spec.p99_latency_ticks = num()?,
                "p999" => spec.p999_latency_ticks = num()?,
                "shed" => spec.shed_rate = num()?,
                "spurious" => {
                    spec.spurious_quarantine_budget = value
                        .parse::<u64>()
                        .map_err(|_| format!("SLO spec field spurious={value:?} is not a count"))?;
                }
                other => {
                    return Err(format!(
                        "unknown SLO spec key {other:?} (avail, p99, p999, shed, spurious)"
                    ))
                }
            }
        }
        Ok(spec)
    }
}

/// Per-stream statistics an [`SloSpec`] is judged against.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SloInput {
    /// Fraction of offered requests served undegraded.
    pub availability: f64,
    /// p99 request latency in virtual ticks (NaN when unserved).
    pub p99_latency: f64,
    /// p99.9 request latency in virtual ticks (NaN when unserved).
    pub p999_latency: f64,
    /// Fraction of offered requests shed at admission.
    pub shed_rate: f64,
    /// Spurious quarantines observed in the stream.
    pub spurious_quarantines: u64,
}

/// The judgment: pass/fail plus which objectives were violated and how
/// much of the availability error budget the stream burned.
#[derive(Clone, Debug, PartialEq)]
pub struct SloVerdict {
    /// True when every objective held.
    pub pass: bool,
    /// Names of violated objectives, in spec order.
    pub violated: Vec<&'static str>,
    /// Fraction of the availability error budget consumed:
    /// `(1 − availability) / (1 − target)`; infinite when the budget is
    /// zero and any unavailability occurred, NaN when unmeasurable.
    pub budget_burn: f64,
}

impl SloSpec {
    /// Judge one stream's statistics against this spec. NaN inputs (an
    /// unmeasurable objective, e.g. latency of a stream that served
    /// nothing) do not count as violations.
    pub fn verdict(&self, input: &SloInput) -> SloVerdict {
        let mut violated = Vec::new();
        if input.availability < self.availability {
            violated.push("availability");
        }
        if input.p99_latency > self.p99_latency_ticks {
            violated.push("p99_latency");
        }
        if input.p999_latency > self.p999_latency_ticks {
            violated.push("p999_latency");
        }
        if input.shed_rate > self.shed_rate {
            violated.push("shed_rate");
        }
        if input.spurious_quarantines > self.spurious_quarantine_budget {
            violated.push("spurious_quarantine");
        }
        let budget_burn = error_budget_burn(input.availability, self.availability);
        SloVerdict {
            pass: violated.is_empty(),
            violated,
            budget_burn,
        }
    }
}

/// `(1 − availability) / (1 − target)`: 1.0 means the stream consumed
/// exactly its error budget. A zero budget (target = 1) burns infinitely
/// on any unavailability and 0 on none; NaN availability is NaN.
pub fn error_budget_burn(availability: f64, target: f64) -> f64 {
    if availability.is_nan() {
        return f64::NAN;
    }
    let err = (1.0 - availability).max(0.0);
    let budget = 1.0 - target;
    if budget > 0.0 {
        err / budget
    } else if err > 0.0 {
        f64::INFINITY
    } else {
        0.0
    }
}

/// Direction of a threshold comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cmp {
    /// Fire when the observed value exceeds the threshold.
    Above,
    /// Fire when the observed value falls below the threshold.
    Below,
}

/// What a rule watches and when it fires.
#[derive(Clone, Debug, PartialEq)]
pub enum AlertKind {
    /// Compare one series in the snapshot against a fixed threshold.
    ///
    /// `series` selects by base name (labels ignored), optionally with a
    /// `:p50` / `:p99` / `:p999` / `:sum` / `:count` / `:max` / `:min`
    /// suffix for histograms; a bare histogram name reads its count.
    /// Every labeled instance of the series is checked and each violating
    /// instance fires once.
    Threshold {
        /// Series selector (base name plus optional `:stat` suffix).
        series: String,
        /// Comparison direction.
        cmp: Cmp,
        /// Threshold value.
        value: f64,
    },
    /// Multi-window burn-rate over two cumulative per-tick sample logs
    /// (Google SRE-style): fire at the first virtual tick where the
    /// error rate `Δerror/Δtotal` exceeds `factor × budget` over *both*
    /// the long and the short trailing window — the long window filters
    /// noise, the short window guarantees the condition still holds now.
    BurnRate {
        /// Cumulative error counter series (e.g. `serve_shed_total`).
        error_series: String,
        /// Cumulative total counter series (e.g. `serve_offered_total`).
        total_series: String,
        /// Budgeted error rate (e.g. the SLO shed-rate target).
        budget: f64,
        /// Long trailing window in virtual ticks.
        long_window: u64,
        /// Short trailing window in virtual ticks.
        short_window: u64,
        /// Multiple of the budget that pages.
        factor: f64,
    },
}

/// A named alerting rule.
#[derive(Clone, Debug, PartialEq)]
pub struct AlertRule {
    /// Stable rule name (appears in traces, metrics, incident reports).
    pub name: String,
    /// What the rule watches.
    pub kind: AlertKind,
}

/// One rule firing, on virtual time.
#[derive(Clone, Debug, PartialEq)]
pub struct AlertFiring {
    /// Name of the rule that fired.
    pub rule: String,
    /// The concrete (labeled) series or series pair that violated.
    pub series: String,
    /// Virtual tick of the firing (threshold rules fire at the
    /// evaluation tick; burn-rate rules at the first violating tick).
    pub vt: u64,
    /// Observed value at the firing.
    pub value: f64,
    /// Threshold the value crossed.
    pub threshold: f64,
}

/// Evaluates a rule set against snapshots and per-tick sample logs.
///
/// `record` is called from the serial admission path once per virtual
/// tick with cumulative deltas; `evaluate` is called once per stream
/// after the run. Both are deterministic in the seed.
#[derive(Debug, Default)]
pub struct AlertEngine {
    rules: Vec<AlertRule>,
    /// Per-series cumulative sample log: ascending `(vt, value)`.
    samples: BTreeMap<String, Vec<(u64, f64)>>,
}

impl AlertEngine {
    /// An engine over `rules`.
    pub fn new(rules: Vec<AlertRule>) -> AlertEngine {
        AlertEngine {
            rules,
            samples: BTreeMap::new(),
        }
    }

    /// The rule set, in evaluation order.
    pub fn rules(&self) -> &[AlertRule] {
        &self.rules
    }

    /// Append one per-tick delta to `series`' cumulative log. Call once
    /// per tick from the serial control path; repeated calls on the same
    /// tick fold into that tick's sample.
    pub fn record(&mut self, vt: u64, series: &str, delta: f64) {
        let log = self.samples.entry(series.to_string()).or_default();
        match log.last_mut() {
            Some(last) if last.0 == vt => last.1 += delta,
            Some(last) => {
                debug_assert!(last.0 < vt, "sample log must be recorded in tick order");
                let cum = last.1 + delta;
                log.push((vt, cum));
            }
            None => log.push((vt, delta)),
        }
    }

    /// Evaluate every rule: threshold rules against `snapshot` (as of
    /// `end_vt`), burn-rate rules against the recorded sample logs.
    /// Firings are sorted by `(vt, rule, series)` and each rule/series
    /// pair fires at most once.
    pub fn evaluate(&self, snapshot: &MetricsSnapshot, end_vt: u64) -> Vec<AlertFiring> {
        let mut firings = Vec::new();
        for rule in &self.rules {
            match &rule.kind {
                AlertKind::Threshold { series, cmp, value } => {
                    self.eval_threshold(rule, series, *cmp, *value, snapshot, end_vt, &mut firings);
                }
                AlertKind::BurnRate {
                    error_series,
                    total_series,
                    budget,
                    long_window,
                    short_window,
                    factor,
                } => {
                    self.eval_burn_rate(
                        rule,
                        error_series,
                        total_series,
                        *budget,
                        *long_window,
                        *short_window,
                        *factor,
                        &mut firings,
                    );
                }
            }
        }
        firings.sort_by(|a, b| (a.vt, &a.rule, &a.series).cmp(&(b.vt, &b.rule, &b.series)));
        firings
    }

    #[allow(clippy::too_many_arguments)]
    fn eval_threshold(
        &self,
        rule: &AlertRule,
        selector: &str,
        cmp: Cmp,
        threshold: f64,
        snapshot: &MetricsSnapshot,
        end_vt: u64,
        firings: &mut Vec<AlertFiring>,
    ) {
        let (want_base, stat) = match selector.rsplit_once(':') {
            Some((base, stat)) => (base, Some(stat)),
            None => (selector, None),
        };
        for (name, value) in &snapshot.entries {
            let (base, _) = split_labels(name);
            if base != want_base {
                continue;
            }
            let Some(observed) = stat_of(value, stat) else {
                continue;
            };
            let violates = match cmp {
                Cmp::Above => observed > threshold,
                Cmp::Below => observed < threshold,
            };
            // NaN never violates: an unmeasurable series cannot page.
            if violates {
                firings.push(AlertFiring {
                    rule: rule.name.clone(),
                    series: name.clone(),
                    vt: end_vt,
                    value: observed,
                    threshold,
                });
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn eval_burn_rate(
        &self,
        rule: &AlertRule,
        error_series: &str,
        total_series: &str,
        budget: f64,
        long_window: u64,
        short_window: u64,
        factor: f64,
        firings: &mut Vec<AlertFiring>,
    ) {
        if budget <= 0.0 {
            return;
        }
        let (Some(errors), Some(totals)) = (
            self.samples.get(error_series),
            self.samples.get(total_series),
        ) else {
            return;
        };
        let page_at = factor * budget;
        for &(vt, err_now) in errors {
            let Some(tot_now) = value_at(totals, vt) else {
                continue;
            };
            let long_rate = window_rate(errors, totals, vt, long_window, err_now, tot_now);
            let short_rate = window_rate(errors, totals, vt, short_window, err_now, tot_now);
            if let (Some(long), Some(short)) = (long_rate, short_rate) {
                if long >= page_at && short >= page_at {
                    firings.push(AlertFiring {
                        rule: rule.name.clone(),
                        series: format!("{error_series}/{total_series}"),
                        vt,
                        value: long,
                        threshold: page_at,
                    });
                    return;
                }
            }
        }
    }
}

/// Error rate over the trailing `window` ticks ending at `vt`:
/// `Δerror / Δtotal` against the cumulative values just before the
/// window opened (0 before the stream started). None when no requests
/// were offered in the window.
fn window_rate(
    errors: &[(u64, f64)],
    totals: &[(u64, f64)],
    vt: u64,
    window: u64,
    err_now: f64,
    tot_now: f64,
) -> Option<f64> {
    let start = vt.saturating_sub(window);
    let err_base = value_at(errors, start).unwrap_or(0.0);
    let tot_base = value_at(totals, start).unwrap_or(0.0);
    let denom = tot_now - tot_base;
    if denom > 0.0 {
        Some((err_now - err_base) / denom)
    } else {
        None
    }
}

/// Latest cumulative value at or before `vt` in an ascending sample log.
fn value_at(log: &[(u64, f64)], vt: u64) -> Option<f64> {
    let idx = log.partition_point(|&(t, _)| t <= vt);
    idx.checked_sub(1).map(|i| log[i].1)
}

/// Read one statistic from a snapshot value. `stat` is the selector
/// suffix (None = counter/gauge value, histogram count).
fn stat_of(value: &SnapshotValue, stat: Option<&str>) -> Option<f64> {
    match (value, stat) {
        (SnapshotValue::Counter(v), None) => Some(*v as f64),
        (SnapshotValue::Gauge(v), None) => Some(*v),
        (SnapshotValue::Histogram { counts, .. }, None | Some("count")) => {
            Some(counts.iter().sum::<u64>() as f64)
        }
        (SnapshotValue::Histogram { p50, .. }, Some("p50")) => Some(*p50),
        (SnapshotValue::Histogram { p99, .. }, Some("p99")) => Some(*p99),
        (SnapshotValue::Histogram { p999, .. }, Some("p999")) => Some(*p999),
        (SnapshotValue::Histogram { sum, .. }, Some("sum")) => Some(*sum),
        (SnapshotValue::Histogram { min, .. }, Some("min")) => Some(*min),
        (SnapshotValue::Histogram { max, .. }, Some("max")) => Some(*max),
        _ => None,
    }
}

/// The stock rule set for an [`SloSpec`]: threshold rules on the
/// end-of-stream availability / shed-rate gauges and latency tail
/// percentiles, plus a 2× multi-window (12-tick / 3-tick) burn-rate rule
/// over shed vs offered requests.
pub fn default_rules(slo: &SloSpec) -> Vec<AlertRule> {
    let mut rules = vec![
        AlertRule {
            name: "availability_below_target".to_string(),
            kind: AlertKind::Threshold {
                series: "serve_availability".to_string(),
                cmp: Cmp::Below,
                value: slo.availability,
            },
        },
        AlertRule {
            name: "shed_rate_above_target".to_string(),
            kind: AlertKind::Threshold {
                series: "serve_shed_rate".to_string(),
                cmp: Cmp::Above,
                value: slo.shed_rate,
            },
        },
        AlertRule {
            name: "p99_latency_above_target".to_string(),
            kind: AlertKind::Threshold {
                series: "serve_latency_ticks:p99".to_string(),
                cmp: Cmp::Above,
                value: slo.p99_latency_ticks,
            },
        },
        AlertRule {
            name: "p999_latency_above_target".to_string(),
            kind: AlertKind::Threshold {
                series: "serve_latency_ticks:p999".to_string(),
                cmp: Cmp::Above,
                value: slo.p999_latency_ticks,
            },
        },
    ];
    if slo.shed_rate > 0.0 {
        rules.push(AlertRule {
            name: "shed_burn_rate".to_string(),
            kind: AlertKind::BurnRate {
                error_series: "serve_shed_total".to_string(),
                total_series: "serve_offered_total".to_string(),
                budget: slo.shed_rate,
                long_window: 12,
                short_window: 3,
                factor: 2.0,
            },
        });
    }
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{HistogramConfig, MetricsRegistry};

    #[test]
    fn slo_spec_roundtrips_through_display() {
        let spec = SloSpec {
            availability: 0.95,
            p99_latency_ticks: 8.0,
            p999_latency_ticks: 20.0,
            shed_rate: 0.02,
            spurious_quarantine_budget: 1,
        };
        let printed = spec.to_string();
        assert_eq!(printed, "avail=0.95,p99=8,p999=20,shed=0.02,spurious=1");
        assert_eq!(printed.parse::<SloSpec>().unwrap(), spec);
        assert_eq!("default".parse::<SloSpec>().unwrap(), SloSpec::default());
        // Partial specs override the defaults field-wise.
        let partial: SloSpec = "p99=4".parse().unwrap();
        assert_eq!(partial.p99_latency_ticks, 4.0);
        assert_eq!(partial.availability, SloSpec::default().availability);
        assert!("bogus=1".parse::<SloSpec>().is_err());
        assert!("p99=abc".parse::<SloSpec>().is_err());
    }

    #[test]
    fn verdict_flags_each_objective() {
        let slo = SloSpec::default();
        let good = SloInput {
            availability: 0.99,
            p99_latency: 4.0,
            p999_latency: 9.0,
            shed_rate: 0.0,
            spurious_quarantines: 0,
        };
        let v = slo.verdict(&good);
        assert!(v.pass);
        assert!(v.violated.is_empty());
        assert!((v.budget_burn - 0.1).abs() < 1e-12);

        let bad = SloInput {
            availability: 0.5,
            p99_latency: 40.0,
            p999_latency: 80.0,
            shed_rate: 0.5,
            spurious_quarantines: 3,
        };
        let v = slo.verdict(&bad);
        assert!(!v.pass);
        assert_eq!(
            v.violated,
            [
                "availability",
                "p99_latency",
                "p999_latency",
                "shed_rate",
                "spurious_quarantine"
            ]
        );
        assert!((v.budget_burn - 5.0).abs() < 1e-12);

        // NaN latency (nothing served) is unmeasurable, not a violation.
        let unmeasured = SloInput {
            p99_latency: f64::NAN,
            p999_latency: f64::NAN,
            ..good
        };
        assert!(slo.verdict(&unmeasured).pass);
    }

    #[test]
    fn zero_error_budget_burns_infinitely() {
        assert_eq!(error_budget_burn(0.999, 1.0), f64::INFINITY);
        assert_eq!(error_budget_burn(1.0, 1.0), 0.0);
        assert!(error_budget_burn(f64::NAN, 0.9).is_nan());
    }

    #[test]
    fn threshold_rules_fire_per_labeled_series() {
        let reg = MetricsRegistry::new();
        reg.gauge("serve_availability{case=\"00\"}").set(0.8);
        reg.gauge("serve_availability{case=\"01\"}").set(0.99);
        let h = reg.histogram(
            "serve_latency_ticks{case=\"00\"}",
            HistogramConfig::latency_ticks(),
        );
        for _ in 0..50 {
            h.observe(2.0);
        }
        h.observe(100.0);

        let engine = AlertEngine::new(default_rules(&SloSpec::default()));
        let firings = engine.evaluate(&reg.snapshot(), 48);
        let names: Vec<(&str, &str)> = firings
            .iter()
            .map(|f| (f.rule.as_str(), f.series.as_str()))
            .collect();
        // Only the violating case fires, at the evaluation tick.
        assert!(names.contains(&(
            "availability_below_target",
            "serve_availability{case=\"00\"}"
        )));
        assert!(!names.iter().any(|(_, s)| s.contains("case=\"01\"")));
        // p99 of 51 samples is the 100-tick outlier: > 16 (and > 32).
        assert!(names.iter().any(|(r, _)| *r == "p99_latency_above_target"));
        assert!(firings.iter().all(|f| f.vt == 48));
    }

    #[test]
    fn burn_rate_fires_at_first_sustained_violation() {
        let slo = SloSpec::default(); // shed budget 0.05, page at 0.10
        let mut engine = AlertEngine::new(default_rules(&slo));
        // 20 ticks: healthy until tick 10, then half of offered shed.
        for vt in 0..20u64 {
            let shed = if vt >= 10 { 4.0 } else { 0.0 };
            engine.record(vt, "serve_offered_total", 8.0);
            engine.record(vt, "serve_shed_total", shed);
        }
        let snap = MetricsRegistry::new().snapshot();
        let firings = engine.evaluate(&snap, 19);
        let burn: Vec<&AlertFiring> = firings
            .iter()
            .filter(|f| f.rule == "shed_burn_rate")
            .collect();
        assert_eq!(burn.len(), 1, "fires exactly once: {firings:?}");
        // Long window needs enough bad ticks to cross 2×budget: at tick
        // t = 12 the window holds 96 offered / 12 shed → rate 0.125 ≥
        // 0.10, and the 3-tick short window is already at 0.5; ticks 10
        // and 11 stay below the page line.
        assert_eq!(burn[0].vt, 12);
        assert_eq!(burn[0].threshold, 0.1);

        // A healthy stream never fires.
        let mut quiet = AlertEngine::new(default_rules(&slo));
        for vt in 0..20u64 {
            quiet.record(vt, "serve_offered_total", 8.0);
            quiet.record(vt, "serve_shed_total", 0.0);
        }
        assert!(quiet
            .evaluate(&snap, 19)
            .iter()
            .all(|f| f.rule != "shed_burn_rate"));
    }

    #[test]
    fn evaluation_is_input_order_invariant() {
        // The engine's output depends only on the recorded logs and the
        // snapshot, both of which are deterministic; evaluating twice is
        // byte-identical.
        let reg = MetricsRegistry::new();
        reg.gauge("serve_shed_rate").set(0.2);
        let mut engine = AlertEngine::new(default_rules(&SloSpec::default()));
        for vt in 0..8u64 {
            engine.record(vt, "serve_offered_total", 4.0);
            engine.record(vt, "serve_shed_total", 2.0);
        }
        let a = engine.evaluate(&reg.snapshot(), 8);
        let b = engine.evaluate(&reg.snapshot(), 8);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }
}

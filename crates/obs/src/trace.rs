//! Deterministic structured tracing.
//!
//! # Model
//!
//! A [`Tracer`] collects [`TraceEvent`]s from any number of threads into
//! per-thread shards ("lock-free enough": a push only takes the calling
//! thread's own shard lock, which is uncontended unless two threads hash
//! to the same shard). Each event carries:
//!
//! - `vt` — the serve plane's **virtual-time tick**. Simulation time, a
//!   pure function of the seed; never wall clock.
//! - `stage` — a coarse pipeline stage with a fixed ordinal
//!   ([`Stage`]), ordering events that share a tick the way the serial
//!   control loop observes them (admission before recovery before serving
//!   before policy decisions).
//! - `seq` — a stable sequence key within `(vt, stage)`: the global batch
//!   index for serve/policy events, the member id for lifecycle events.
//! - `text` — the rendered payload (`event=... key=value ...`), built by
//!   the emitter from deterministic inputs only.
//! - `wall_ns` — optional wall-clock duration. **Never committed**: the
//!   committed rendering excludes it so the artifact is a function of the
//!   seed alone.
//!
//! # Determinism argument
//!
//! The committed artifact is produced by [`Tracer::drain_sorted`] +
//! [`render_committed`]: shards are concatenated and sorted by the *total*
//! key `(vt, stage, seq, text)`. Every component of that key is computed
//! from simulation state, not from scheduling; shard assignment and
//! insertion order affect only the pre-sort layout. Two runs with the same
//! seed therefore produce the same multiset of events, and the total sort
//! key collapses any interleaving into one canonical order — the rendered
//! bytes are identical across 1 vs N worker threads. CI checks exactly
//! this (`repro --serve --profile` at 1 and 4 threads, byte compare).

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;
use std::time::Instant;

/// Number of shards. Collisions are harmless (brief lock sharing); more
/// shards than typical worker counts keeps pushes uncontended.
const SHARDS: usize = 16;

/// Default per-shard capacity. Overflow drops the event and counts it —
/// committed artifacts must never be produced from a tracer that dropped
/// (see [`Tracer::dropped`]); the default is sized far above what a full
/// chaos grid emits.
const DEFAULT_SHARD_CAPACITY: usize = 1 << 16;

/// Coarse pipeline stage. The ordinal is part of the canonical event
/// order within a tick and mirrors the serial control loop: admission
/// and shedding first, then member lifecycle (recover / crash /
/// compromise activation), then batch service, then policy decisions,
/// then end-of-stream summary.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Request admission / shedding at the queue.
    Admission = 0,
    /// A failed member finishing recovery.
    Recover = 1,
    /// A scheduled crash activating.
    Crash = 2,
    /// A scheduled compromise (attack onset) activating.
    Compromise = 3,
    /// A micro-batch served by a fleet member (emitted from workers).
    Serve = 4,
    /// A response-policy decision (health screen, quarantine, remap,
    /// failover, maintenance) on the serial path.
    Policy = 5,
    /// End-of-stream summary records.
    Summary = 6,
    /// An alert rule firing (virtual-time SLO engine), emitted after the
    /// stream summary when the rule set is evaluated.
    Alert = 7,
}

impl Stage {
    /// Stable lower-case name used in the rendered trace.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Admission => "admission",
            Stage::Recover => "recover",
            Stage::Crash => "crash",
            Stage::Compromise => "compromise",
            Stage::Serve => "serve",
            Stage::Policy => "policy",
            Stage::Summary => "summary",
            Stage::Alert => "alert",
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One structured event. See the module docs for field semantics.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Virtual-time tick (simulation time).
    pub vt: u64,
    /// Pipeline stage (fixed ordinal, part of the sort key).
    pub stage: Stage,
    /// Stable sequence key within `(vt, stage)`.
    pub seq: u64,
    /// Rendered payload, `event=... key=value ...`.
    pub text: String,
    /// Optional wall-clock duration in nanoseconds. Excluded from the
    /// committed rendering.
    pub wall_ns: u64,
}

impl TraceEvent {
    fn sort_key(&self) -> (u64, u8, u64, &str) {
        (self.vt, self.stage as u8, self.seq, &self.text)
    }

    /// The committed (deterministic) rendering of this event.
    pub fn committed_line(&self) -> String {
        format!(
            "vt={:06} {:<10} seq={:06} {}",
            self.vt, self.stage, self.seq, self.text
        )
    }
}

struct Shard {
    events: Vec<TraceEvent>,
    dropped: u64,
}

/// A deterministic multi-producer trace collector.
///
/// Instance-based (shared by `Arc`) rather than global so concurrent test
/// runs cannot pollute each other's traces.
pub struct Tracer {
    shards: [Mutex<Shard>; SHARDS],
    capacity: usize,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl Tracer {
    /// A tracer with the default per-shard capacity.
    pub fn new() -> Tracer {
        Tracer::with_capacity(DEFAULT_SHARD_CAPACITY)
    }

    /// A tracer whose shards each hold at most `capacity` events; pushes
    /// beyond that are dropped and counted.
    pub fn with_capacity(capacity: usize) -> Tracer {
        Tracer {
            shards: std::array::from_fn(|_| {
                Mutex::new(Shard {
                    events: Vec::new(),
                    dropped: 0,
                })
            }),
            capacity,
        }
    }

    fn shard_index() -> usize {
        let mut h = DefaultHasher::new();
        std::thread::current().id().hash(&mut h);
        (h.finish() as usize) % SHARDS
    }

    /// Record an event with no wall-clock component.
    pub fn event(&self, vt: u64, stage: Stage, seq: u64, text: String) {
        self.push(TraceEvent {
            vt,
            stage,
            seq,
            text,
            wall_ns: 0,
        });
    }

    /// Record an event carrying a measured wall-clock duration.
    pub fn event_timed(&self, vt: u64, stage: Stage, seq: u64, text: String, wall_ns: u64) {
        self.push(TraceEvent {
            vt,
            stage,
            seq,
            text,
            wall_ns,
        });
    }

    /// Open a scoped span: the event is recorded when the guard drops,
    /// with `wall_ns` set to the elapsed wall-clock time.
    pub fn span(&self, vt: u64, stage: Stage, seq: u64, text: String) -> TraceSpan<'_> {
        TraceSpan {
            tracer: self,
            vt,
            stage,
            seq,
            text: Some(text),
            start: Instant::now(),
        }
    }

    fn push(&self, ev: TraceEvent) {
        let mut shard = self.shards[Self::shard_index()]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if shard.events.len() >= self.capacity {
            shard.dropped += 1;
        } else {
            shard.events.push(ev);
        }
    }

    /// Number of events dropped to shard-capacity overflow. A committed
    /// artifact is only valid when this is zero.
    pub fn dropped(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).dropped)
            .sum()
    }

    /// Drain all shards and return the events in canonical order
    /// `(vt, stage, seq, text)`. Resets the tracer.
    pub fn drain_sorted(&self) -> Vec<TraceEvent> {
        let mut all = Vec::new();
        for shard in &self.shards {
            let mut shard = shard.lock().unwrap_or_else(|e| e.into_inner());
            all.append(&mut shard.events);
            shard.dropped = 0;
        }
        all.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        all
    }
}

/// Scoped span guard returned by [`Tracer::span`].
pub struct TraceSpan<'a> {
    tracer: &'a Tracer,
    vt: u64,
    stage: Stage,
    seq: u64,
    text: Option<String>,
    start: Instant,
}

impl TraceSpan<'_> {
    /// Append ` key=value` detail to the span's payload before it closes.
    pub fn note(&mut self, detail: &str) {
        if let Some(text) = &mut self.text {
            text.push(' ');
            text.push_str(detail);
        }
    }
}

impl Drop for TraceSpan<'_> {
    fn drop(&mut self) {
        let text = self.text.take().unwrap_or_default();
        let wall_ns = self.start.elapsed().as_nanos() as u64;
        self.tracer
            .event_timed(self.vt, self.stage, self.seq, text, wall_ns);
    }
}

/// Render the committed (deterministic, seed-only) trace section.
///
/// `header` lines are prefixed with `# ` — use them for run identity
/// (model, seed, scenario) so the artifact is self-describing.
pub fn render_committed(header: &[String], events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for line in header {
        out.push_str("# ");
        out.push_str(line);
        out.push('\n');
    }
    for ev in events {
        out.push_str(&ev.committed_line());
        out.push('\n');
    }
    out
}

/// Render the uncommitted wall-clock profile section: the same events
/// with their measured durations. Machine-dependent; never committed or
/// byte-compared.
pub fn render_profile(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    out.push_str("# profile section (wall clock; machine-dependent, not committed)\n");
    for ev in events {
        if ev.wall_ns > 0 {
            out.push_str(&format!("{} wall_ns={}\n", ev.committed_line(), ev.wall_ns));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn collect(tracer: &Tracer) -> Vec<String> {
        tracer
            .drain_sorted()
            .iter()
            .map(|e| e.committed_line())
            .collect()
    }

    #[test]
    fn sorted_by_vt_then_stage_then_seq() {
        let t = Tracer::new();
        t.event(2, Stage::Policy, 0, "c".into());
        t.event(1, Stage::Serve, 5, "b".into());
        t.event(1, Stage::Admission, 9, "a".into());
        t.event(1, Stage::Serve, 2, "z".into());
        let lines = collect(&t);
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("admission"));
        assert!(lines[1].contains("seq=000002"));
        assert!(lines[2].contains("seq=000005"));
        assert!(lines[3].contains("policy"));
    }

    #[test]
    fn merge_is_thread_count_invariant() {
        // Same multiset of events pushed from 1 thread vs 4 threads must
        // render identically.
        let events: Vec<(u64, u64)> = (0..64u64).map(|i| (i / 8, i)).collect();
        let serial = Tracer::new();
        for &(vt, seq) in &events {
            serial.event(vt, Stage::Serve, seq, format!("event=batch idx={seq}"));
        }
        let parallel = Arc::new(Tracer::new());
        let mut handles = Vec::new();
        for chunk in events.chunks(16) {
            let chunk = chunk.to_vec();
            let tracer = Arc::clone(&parallel);
            handles.push(std::thread::spawn(move || {
                for (vt, seq) in chunk {
                    tracer.event(vt, Stage::Serve, seq, format!("event=batch idx={seq}"));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let a = render_committed(&[], &serial.drain_sorted());
        let b = render_committed(&[], &parallel.drain_sorted());
        assert_eq!(a, b);
    }

    #[test]
    fn committed_rendering_excludes_wall_clock() {
        let t = Tracer::new();
        t.event_timed(3, Stage::Policy, 1, "event=quarantine".into(), 12345);
        let events = t.drain_sorted();
        let committed = render_committed(&["run=test".into()], &events);
        assert!(committed.starts_with("# run=test\n"));
        assert!(!committed.contains("12345"));
        assert!(!committed.contains("wall"));
        let profile = render_profile(&events);
        assert!(profile.contains("wall_ns=12345"));
    }

    #[test]
    fn span_records_on_drop_with_duration() {
        let t = Tracer::new();
        {
            let mut span = t.span(7, Stage::Serve, 3, "event=batch".into());
            span.note("member=2");
        }
        let events = t.drain_sorted();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].vt, 7);
        assert_eq!(events[0].text, "event=batch member=2");
    }

    #[test]
    fn overflow_drops_and_counts() {
        let t = Tracer::with_capacity(2);
        for i in 0..64 {
            t.event(0, Stage::Admission, i, "x".into());
        }
        assert!(t.dropped() > 0);
        let n = t.drain_sorted().len();
        assert!(n <= 2 * SHARDS);
        assert_eq!(t.dropped(), 0, "drain resets drop counter");
    }

    #[test]
    fn drain_resets() {
        let t = Tracer::new();
        t.event(0, Stage::Summary, 0, "one".into());
        assert_eq!(t.drain_sorted().len(), 1);
        assert!(t.drain_sorted().is_empty());
    }
}
